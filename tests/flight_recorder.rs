//! Tier-1 gates for the flight recorder, the first-divergence debugger
//! and the perf-trend ledger gate.
//!
//! Four contracts:
//!
//! 1. *Recording is bit-neutral*: attaching an [`EventLog`] to either
//!    engine — including the `FaultPlan::none()` configuration whose
//!    outcome is pinned by captured hex constants in
//!    `tests/chaos_study.rs` — reproduces the unrecorded run bit for bit,
//!    and stays thread-invariant under `par_map`.
//! 2. *First-divergence localization*: a deliberately injected
//!    divergence (flipping one fault coin of a mid-run block via the
//!    test-only `flip_drop_coin` hook) is localized by [`trace_diff`] to
//!    the exact first divergent event — same index and kind as a naive
//!    full-trace comparison — through the digest-checkpoint binary
//!    search.
//! 3. *Ring/checkpoint coherence*: at every capacity (including 0 =
//!    disabled) the rolling digest is capacity-independent and identical
//!    traces never report a divergence.
//! 4. *Trend gate*: a synthetic 2× slowdown row appended to a clean
//!    ledger trips `evaluate_trend` (the engine behind
//!    `perf_report --trend`), while clean back-to-back rows pass.

use selfish_ethereum::prelude::*;

use seleth_bench::par_map;
use seleth_sim::diagnose::capacity_for;

// ---------------------------------------------------------------------
// 1. Recording is bit-neutral
// ---------------------------------------------------------------------

/// The `FaultPlan::none()` pinned configuration from `tests/chaos_study.rs`
/// (`zero_fault_plan_reproduces_the_delay_engine_bit_for_bit`): the same
/// captured hex constants must hold with the flight recorder attached.
#[test]
fn recording_preserves_the_zero_fault_captured_constants() {
    let config = DelayConfig::builder()
        .shares(vec![0.25; 4])
        .delay(6.0)
        .blocks(40_000)
        .seed(2)
        .schedule(RewardSchedule::ethereum())
        .faults(FaultPlan::none())
        .build()
        .expect("valid config");
    let (r, log) = record_delay_run(&config, capacity_for(config.blocks()));
    assert_eq!(r.report.total_reward().to_bits(), 0x40e2decf00000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40c2e9f400000000);
    assert!(log.count() > 0, "a 40k-block run records events");
}

#[test]
fn recording_is_bit_neutral_for_both_engines() {
    // Slot engine.
    let sim_config = SimConfig::builder()
        .alpha(0.3)
        .gamma(0.5)
        .blocks(10_000)
        .seed(7)
        .build()
        .expect("valid config");
    let plain = Simulation::new(sim_config.clone()).run();
    let (recorded, log) = record_engine_run(&sim_config, capacity_for(sim_config.blocks()));
    assert_eq!(
        plain.pool.total().to_bits(),
        recorded.pool.total().to_bits()
    );
    assert_eq!(plain.blocks_mined, recorded.blocks_mined);
    assert!(log.count() > 0);

    // Delay engine, with live faults (the fault pipeline records too).
    let faults = FaultPlan::builder()
        .seed(5)
        .loss(0.1)
        .duplication(0.1)
        .jitter(1.0)
        .build()
        .expect("valid plan");
    let config = DelayConfig::builder()
        .shares(vec![0.3, 0.7])
        .policy(0, PolicyTable::honest(0.3, 0.5, 20))
        .delay(2.0)
        .blocks(5_000)
        .seed(7)
        .faults(faults)
        .build()
        .expect("valid config");
    let plain = DelaySimulation::new(config.clone()).run();
    let (recorded, log) = record_delay_run(&config, capacity_for(config.blocks()));
    assert_eq!(
        plain.report.total_reward().to_bits(),
        recorded.report.total_reward().to_bits()
    );
    assert_eq!(plain.counters, recorded.counters);
    let kinds: Vec<&str> = log
        .counts_by_kind()
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, _)| k.name())
        .collect();
    for expected in ["mine", "hear", "release", "fault_drop"] {
        assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
    }
}

/// Graph-mode propagation records its own event kinds — one
/// `edge_delivery` per (block, receiver) arrival and a `relay_hop` per
/// multi-hop delivery — and recording stays bit-neutral there too.
#[test]
fn graph_mode_records_edge_deliveries_and_relay_hops() {
    let config = DelayConfig::builder()
        .shares(vec![0.25; 4])
        .delay(6.0)
        .blocks(5_000)
        .seed(7)
        .schedule(RewardSchedule::ethereum())
        .topology(Topology::star_relay(&[1.0, 2.0, 3.0, 4.0]).expect("valid star"))
        .build()
        .expect("valid config");
    let plain = DelaySimulation::new(config.clone()).run();
    let (recorded, log) = record_delay_run(&config, capacity_for(config.blocks()));
    assert_eq!(
        plain.report.total_reward().to_bits(),
        recorded.report.total_reward().to_bits()
    );
    assert_eq!(plain.counters, recorded.counters);
    let count_of = |name: &str| {
        log.counts_by_kind()
            .iter()
            .find(|(k, _)| k.name() == name)
            .map_or(0, |(_, n)| *n)
    };
    let deliveries = count_of("edge_delivery");
    let hops = count_of("relay_hop");
    assert!(deliveries > 0, "graph releases record arrivals");
    assert!(hops > 0, "star deliveries route through the hub (2 hops)");
    assert!(
        hops <= deliveries,
        "every relay hop belongs to a delivery event"
    );
    let c = &recorded.counters;
    assert_eq!(
        deliveries,
        c.gossip_hops_1 + c.gossip_hops_2 + c.gossip_hops_3 + c.gossip_hops_4_plus,
        "one edge_delivery event per reachable non-producer arrival"
    );
}

/// Recorded runs stay thread-invariant: sweeping the same seeds through
/// `par_map` at 1 and 4 workers, each run with its own recorder, yields
/// bit-identical reward bits *and* event digests.
#[test]
fn recorded_runs_are_thread_invariant() {
    let seeds: Vec<u64> = (0..4).map(|k| 300 + k).collect();
    let outcome = |threads: usize| -> Vec<(u64, u64, u64)> {
        par_map(&seeds, threads, |&seed| {
            let config = DelayConfig::builder()
                .shares(vec![0.35, 0.65])
                .delay(1.5)
                .blocks(2_000)
                .seed(seed)
                .build()
                .expect("valid config");
            let (r, log) = record_delay_run(&config, capacity_for(config.blocks()));
            (r.report.total_reward().to_bits(), log.digest(), log.count())
        })
    };
    assert_eq!(outcome(1), outcome(4));
}

// ---------------------------------------------------------------------
// 2. First-divergence localization
// ---------------------------------------------------------------------

/// Inject a divergence mid-run by flipping every loss coin of one block
/// (the diagnostics-only `flip_drop_coin` hook) and assert the
/// checkpoint-bisecting `trace_diff` lands on the exact same first
/// divergent event as a naive element-by-element trace comparison.
#[test]
fn injected_divergence_is_localized_to_the_exact_first_event() {
    let plan = FaultPlan::builder()
        .seed(77)
        .loss(0.08)
        .build()
        .expect("valid plan");
    let make = |flip: Option<u64>| {
        let mut b = FaultPlan::builder();
        b.seed(77).loss(0.08);
        if let Some(block) = flip {
            b.flip_drop_coin(block);
        }
        let plan = b.build().expect("valid plan");
        DelayConfig::builder()
            .shares(vec![0.3, 0.7])
            .delay(2.0)
            .blocks(3_000)
            .seed(13)
            .faults(plan)
            .build()
            .expect("valid config")
    };
    assert!(plan.loss() > 0.0);
    let capacity = capacity_for(3_000);
    let (_, baseline) = record_delay_run(&make(None), capacity);
    // Pick a block mined *mid-run*: the flip then perturbs an event
    // stream that has a long identical prefix, so localization is doing
    // real work (checkpoint bisection over the shared prefix).
    let events = baseline.events();
    let mid = events.len() as u64 / 2;
    let target = events
        .iter()
        .find(|e| e.index >= mid && e.kind == EventKind::Mine)
        .expect("a mine event in the back half")
        .a;
    let (_, perturbed) = record_delay_run(&make(Some(target)), capacity);

    let d = trace_diff(&baseline, &perturbed).expect("flip must diverge");
    assert!(d.exact, "full retention proves exactness");

    // The naive ground truth: first index where the traces disagree.
    let perturbed_events = perturbed.events();
    let naive = events
        .iter()
        .zip(perturbed_events.iter())
        .position(|(a, b)| !a.same_step(b))
        .map_or(events.len().min(perturbed_events.len()) as u64, |i| {
            i as u64
        });
    assert_eq!(d.index, naive, "bisection must match the naive scan");
    assert!(
        d.index >= 1,
        "the traces share a non-empty identical prefix"
    );
    let left = d.left.expect("event present at full retention");
    let right = d.right.expect("event present at full retention");
    assert_eq!(left.index, d.index);
    assert_eq!(right.index, d.index);
    assert!(
        !left.same_step(&right),
        "reported events actually disagree: {} vs {}",
        left.to_json_line(),
        right.to_json_line()
    );
    // And the rendered explanation names the divergent index.
    let text = explain_divergence("flip", &baseline, &perturbed);
    assert!(text.contains(&format!("{}", d.index)), "{text}");
}

// ---------------------------------------------------------------------
// 3. Ring/checkpoint coherence across capacities
// ---------------------------------------------------------------------

#[test]
fn digest_is_capacity_independent_and_identity_never_diverges() {
    let config = DelayConfig::builder()
        .shares(vec![0.4, 0.6])
        .delay(1.0)
        .blocks(500)
        .seed(99)
        .build()
        .expect("valid config");
    let (_, full) = record_delay_run(&config, 1 << 20);
    assert!(full.count() > 64, "enough events to wrap small rings");
    for capacity in [0usize, 1, 2, 3, 7, 64, 4096] {
        let (_, log) = record_delay_run(&config, capacity);
        if capacity == 0 {
            assert!(!log.is_enabled());
            assert_eq!(log.count(), 0, "disabled log records nothing");
            continue;
        }
        assert_eq!(log.count(), full.count(), "capacity={capacity}");
        assert_eq!(log.digest(), full.digest(), "capacity={capacity}");
        assert_eq!(
            log.len() as u64,
            full.count().min(capacity as u64),
            "ring retains min(count, capacity)"
        );
        assert!(
            trace_diff(&log, &full).is_none(),
            "identical traces never diverge (capacity={capacity})"
        );
    }
}

// ---------------------------------------------------------------------
// 4. Trend gate
// ---------------------------------------------------------------------

fn ledger_row(bin: &str, metrics: &str) -> String {
    format!(
        "{{\"bin\": \"{bin}\", \"git_sha\": \"deadbeef\", \"unix_time\": 1, \
         \"host\": {{\"os\": \"linux\", \"arch\": \"x86_64\", \
         \"available_parallelism\": 1}}, \"metrics\": {{{metrics}}}}}\n"
    )
}

#[test]
fn trend_gate_trips_on_synthetic_slowdown_and_passes_clean_reruns() {
    // Clean back-to-back runs (small jitter) pass.
    let clean = format!(
        "{}{}",
        ledger_row(
            "bench_solver",
            "\"mdp_solve_ms\": 100.0, \"csr_spmv_ns\": 5000.0"
        ),
        ledger_row(
            "bench_solver",
            "\"mdp_solve_ms\": 104.0, \"csr_spmv_ns\": 4900.0"
        ),
    );
    let rows = parse_history(&clean).expect("ledger parses");
    let report = evaluate_trend(&rows, 1.5);
    assert!(report.passed(), "{}", report.rendered);
    assert_eq!(report.compared, 2);

    // A synthetic 2× slowdown on a lower-better metric trips the gate.
    let slow = format!(
        "{clean}{}",
        ledger_row(
            "bench_solver",
            "\"mdp_solve_ms\": 208.0, \"csr_spmv_ns\": 4950.0"
        )
    );
    let rows = parse_history(&slow).expect("ledger parses");
    let report = evaluate_trend(&rows, 1.5);
    assert!(!report.passed(), "{}", report.rendered);
    assert!(
        report
            .regressions
            .iter()
            .any(|r| r.contains("mdp_solve_ms")),
        "{:?}",
        report.regressions
    );

    // A 2× throughput drop on a higher-better metric trips it too.
    let rate_drop = format!(
        "{}{}",
        ledger_row("bench_sim", "\"single_run_blocks_per_sec\": 2000000"),
        ledger_row("bench_sim", "\"single_run_blocks_per_sec\": 1000000"),
    );
    let rows = parse_history(&rate_drop).expect("ledger parses");
    assert!(!evaluate_trend(&rows, 1.5).passed());

    // Rows from a *different* host never gate against each other.
    let cross_host = format!(
        "{}{}",
        ledger_row("bench_sim", "\"single_run_blocks_per_sec\": 2000000"),
        ledger_row("bench_sim", "\"single_run_blocks_per_sec\": 1000000").replace(
            "\"available_parallelism\": 1",
            "\"available_parallelism\": 8"
        ),
    );
    let rows = parse_history(&cross_host).expect("ledger parses");
    let report = evaluate_trend(&rows, 1.5);
    assert!(report.passed(), "{}", report.rendered);
    assert_eq!(report.compared, 0, "no comparable-host baseline");

    // A single-row (seeding) ledger and an empty one pass.
    let rows = parse_history(&ledger_row(
        "bench_sim",
        "\"single_run_blocks_per_sec\": 1.0",
    ))
    .unwrap();
    assert!(evaluate_trend(&rows, 1.5).passed());
    assert!(evaluate_trend(&[], 1.5).passed());
}

/// The committed `BENCH_sim.json` certifies the disabled-recorder gate
/// the same way `tests/telemetry.rs` pins the no-op overhead gate.
#[test]
fn committed_bench_certifies_the_disabled_recorder_gate() {
    let text = std::fs::read_to_string("results/BENCH_sim.json")
        .expect("committed results/BENCH_sim.json");
    let doc = seleth_obs::parse_json(&text).expect("BENCH_sim.json parses");
    let ratio = doc
        .get("recorder_disabled_ratio")
        .and_then(seleth_obs::JsonValue::as_f64)
        .expect("recorder_disabled_ratio field");
    assert!(
        ratio >= 0.95,
        "committed disabled-recorder ratio {ratio} below the 0.95 gate"
    );
    // Both bench artifacts carry the same-shaped host fingerprint.
    for name in ["results/BENCH_sim.json", "results/BENCH_solver.json"] {
        let text = std::fs::read_to_string(name).expect(name);
        let doc = seleth_obs::parse_json(&text).expect("parses");
        let host = doc.get("host").expect("host block");
        for field in ["os", "arch", "available_parallelism"] {
            assert!(host.get(field).is_some(), "{name} host.{field}");
        }
    }
}
