//! Tier-1 gates for the strategy zoo: hand-written families replayed in
//! the delay simulator must reproduce their closed forms, and the solved
//! MDP artifact must dominate every hand-written family at its own
//! `(α, γ)`.
//!
//! The SM1 gate is the zoo's analogue of the policy-playback gates: the
//! Eyal–Sirer closed form is exact for the two-player zero-delay world
//! the duopoly split reproduces, so the measured revenue must land within
//! 3 standard errors (or 0.5% absolute — tighter than the repo's usual
//! 1% bar, since the prediction here is an exact formula, not a solver
//! output at finite truncation). Family tables are generated at deep
//! truncation (`max_len = 80`): SM1 is truncation-sensitive at `γ = 0`
//! because nothing rebases its epochs' `(a, h)` walk (see the zoo crate
//! docs), and a shallow table's boundary forced-adopts bias the replay
//! low.

use std::path::Path;

use selfish_ethereum::prelude::*;

use seleth_bench::mean_stderr;

const SEED: u64 = 424_242;

fn sm1_playback(alpha: f64, gamma: f64, runs: u64, blocks: u64) -> (f64, f64) {
    let table = Family::Sm1.table(alpha, gamma, 80);
    let config = DelayConfig::builder()
        .shares(vec![alpha, 1.0 - alpha])
        .policy(0, table)
        .tie_gamma(gamma)
        .delay(0.0)
        .schedule(RewardSchedule::bitcoin())
        .blocks(blocks)
        .seed(SEED)
        .build()
        .expect("valid delay config");
    let revenues: Vec<f64> = (0..runs)
        .map(|k| {
            DelaySimulation::new(config.with_seed(SEED + k))
                .run()
                .revenue_share(0)
        })
        .collect();
    mean_stderr(&revenues)
}

#[test]
fn sm1_zero_delay_duopoly_reproduces_the_closed_form() {
    // Above the γ = 0 threshold and in the γ-rich regime: both must land
    // on Eyal–Sirer's formula.
    for (alpha, gamma) in [(0.35, 0.0), (0.30, 0.5)] {
        let cf = sm1_closed_form(alpha, gamma);
        let (mean, se) = sm1_playback(alpha, gamma, 8, 25_000);
        let diff = (mean - cf).abs();
        assert!(
            diff <= (3.0 * se).max(0.005),
            "sm1 at ({alpha}, {gamma}): measured {mean:.5} vs closed form {cf:.5} \
             is {:.2} standard errors ({diff:.5} absolute)",
            diff / se
        );
    }
}

#[test]
fn closed_form_anchors_the_known_thresholds() {
    // The formula itself: R = α exactly at the published thresholds.
    let third = 1.0 / 3.0;
    assert!((sm1_closed_form(third, 0.0) - third).abs() < 1e-12);
    assert!((sm1_closed_form(0.25, 0.5) - 0.25).abs() < 1e-12);
}

#[test]
fn optimal_artifact_dominates_every_family_at_its_own_point() {
    // The acceptance bar: at (α = 0.40, γ = 0.5), zero-delay duopoly, the
    // committed solved artifact must earn at least as much as every
    // hand-written family, within combined Monte-Carlo noise.
    let artifact = PolicyTable::load(Path::new("results/policies/bitcoin_a040_g050.json"))
        .expect("committed artifact");
    let (alpha, gamma) = (artifact.alpha(), artifact.gamma());

    let mut registry = StrategyRegistry::new();
    let art_idx = registry.register_artifact("optimal", artifact);
    // Families lower through the state-space-generic constructor: the
    // line-up now includes the uncle-aware variant, which rides in on a
    // four-axis table while the distance-blind families stay classic.
    let family_idx: Vec<(Family, usize)> = Family::representatives()
        .into_iter()
        .map(|f| (f, registry.register_family(f, alpha, gamma, 64)))
        .collect();
    assert!(
        family_idx.iter().any(|(f, _)| f.is_uncle_aware()),
        "the representatives must field an uncle-aware contestant"
    );
    for &(family, idx) in &family_idx {
        assert_eq!(
            registry.get(idx).table.state_space().has_match_d(),
            family.is_uncle_aware(),
            "{} registered with the wrong state-space shape",
            family.id()
        );
    }

    let config = TournamentConfig {
        runs: 5,
        blocks: 20_000,
        seed: SEED,
        ..Default::default()
    };
    let mut tournament = Tournament::new(&registry, config);
    let shares = vec![alpha, 1.0 - alpha];
    tournament.add_cell(Cell::single("duopoly", art_idx, shares.clone(), gamma, 0.0));
    for &(_, idx) in &family_idx {
        tournament.add_cell(Cell::single("duopoly", idx, shares.clone(), gamma, 0.0));
    }
    let results = tournament.run();

    let opt = &results[0];
    // Tournament cells replay under the lead strategist's reward
    // schedule. Distance-blind families share the artifact's Bitcoin
    // schedule, so its ρ* bounds them; the uncle-aware family replays
    // under the Ethereum schedule, where the correct upper bound is the
    // *Ethereum-model* optimum at the same point (the Bitcoin ρ* is not
    // one — uncle subsidies are the paper's headline).
    let eth_rho = MdpConfig::new(alpha, gamma, RewardModel::EthereumApprox)
        .with_max_len(30)
        .solve()
        .expect("ethereum mdp solve")
        .revenue;
    for ((family, _), fam) in family_idx.iter().zip(&results[1..]) {
        if family.is_uncle_aware() {
            // Additive tolerance: the ~1% model-vs-simulator uncle
            // accounting gap plus Monte-Carlo noise (independent slop
            // sources sum, they don't max).
            let se = fam.strategists[0].std_err;
            assert!(
                fam.lead_revenue() <= eth_rho + 0.01 + 3.0 * se,
                "{} earns {:.5}, beating the Ethereum-model optimum {eth_rho:.5}",
                family.id(),
                fam.lead_revenue(),
            );
            continue;
        }
        let combined =
            (opt.strategists[0].std_err.powi(2) + fam.strategists[0].std_err.powi(2)).sqrt();
        assert!(
            opt.lead_revenue() >= fam.lead_revenue() - (3.0 * combined).max(0.005),
            "{} earns {:.5}, beating the optimal artifact's {:.5}",
            family.id(),
            fam.lead_revenue(),
            opt.lead_revenue()
        );
    }
    // And the artifact must actually reproduce its own rho* here (the
    // same bar tests/delay_study.rs sets the committed artifacts).
    let rho = opt.strategists[0].predicted;
    let diff = (opt.lead_revenue() - rho).abs();
    assert!(
        diff <= (3.0 * opt.strategists[0].std_err).max(0.01),
        "artifact replay {:.5} vs rho* {rho:.5}",
        opt.lead_revenue()
    );
}

#[test]
fn matchup_cells_field_two_strategists_deterministically() {
    // The multi-strategist path end to end through the facade: an SM1
    // matchup cell reports both miners, conserves revenue shares, and is
    // a pure function of the configuration.
    let mut registry = StrategyRegistry::new();
    let sm1 = registry.register_family(Family::Sm1, 0.30, 0.5, 30);
    let run = || {
        let config = TournamentConfig {
            runs: 2,
            blocks: 8_000,
            seed: SEED,
            ..Default::default()
        };
        let mut tournament = Tournament::new(&registry, config);
        tournament.add_cell(Cell::matchup("matchup", (sm1, 0.30), (sm1, 0.30), 0.5, 2.0));
        tournament.run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "tournament cells are seed-deterministic");
    let cell = &a[0];
    assert_eq!(cell.strategists.len(), 2);
    assert_eq!(cell.strategists[0].family, "sm1");
    assert!(cell.strategists[0].revenue > 0.0 && cell.strategists[1].revenue > 0.0);
    assert!(cell.orphan_rate > 0.0, "rival withholding orphans blocks");
}
