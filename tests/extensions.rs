//! Integration tests for the beyond-the-paper extensions, wired through
//! the facade: strategy variants, the propagation-delay study, the
//! optimal-strategy MDP, and attack-cycle statistics — and the consistency
//! relations that tie them back to the paper's analysis.

use selfish_ethereum::core::cycles;
use selfish_ethereum::mdp::{MdpConfig, RewardModel};
use selfish_ethereum::prelude::*;
use selfish_ethereum::sim::delay::{DelayConfig, DelaySimulation};
use selfish_ethereum::sim::PoolStrategy;

#[test]
fn strategies_rank_as_measured() {
    // γ = 0.5, α = 0.4: stubborn > selfish > honest (the strategies
    // experiment's ordering), each by a clear margin.
    let us = |strategy: PoolStrategy| {
        let config = SimConfig::builder()
            .alpha(0.4)
            .gamma(0.5)
            .strategy(strategy)
            .blocks(60_000)
            .n_honest(300)
            .seed(2_024)
            .build()
            .unwrap();
        let reports = multi::run_many(&config, 4);
        multi::mean_absolute_pool(&reports, Scenario::RegularRate).mean
    };
    let honest = us(PoolStrategy::Honest);
    let selfish = us(PoolStrategy::Selfish);
    let stubborn = us(PoolStrategy::LeadStubborn);
    assert!(
        (honest - 0.4).abs() < 0.01,
        "honest pool earns its share, got {honest}"
    );
    assert!(
        selfish > honest + 0.1,
        "selfish {selfish} vs honest {honest}"
    );
    assert!(
        stubborn > selfish + 0.02,
        "stubborn {stubborn} vs selfish {selfish}"
    );
}

#[test]
fn optimal_mdp_consistent_with_algorithm_1() {
    // The paper's Algorithm 1 is a feasible policy of the Ethereum MDP,
    // so the MDP optimum must not fall meaningfully below its revenue
    // (small slack = the MDP's documented first-order nephew model).
    let alpha = 0.3;
    let params = ModelParams::new(alpha, 0.5, RewardSchedule::ethereum()).unwrap();
    let alg1 = Analysis::new(&params)
        .unwrap()
        .revenue()
        .absolute_pool(Scenario::RegularRate);
    let opt = MdpConfig::new(alpha, 0.5, RewardModel::EthereumApprox)
        .with_max_len(30)
        .solve()
        .unwrap()
        .revenue;
    assert!(opt > alg1 - 3e-3, "optimal {opt} vs Algorithm 1 {alg1}");
    // And strictly above the honest baseline.
    assert!(opt > alpha + 0.05);
}

#[test]
fn delay_study_fairness_limits() {
    // No delay → perfectly fair; large delay + Bitcoin rules → the big
    // miner wins more than its share; Ethereum rules compress the edge.
    let run = |delay: f64, schedule: RewardSchedule| {
        let config = DelayConfig::builder()
            .shares(vec![0.4, 0.15, 0.15, 0.15, 0.15])
            .delay(delay)
            .blocks(60_000)
            .seed(5)
            .schedule(schedule)
            .build()
            .unwrap();
        DelaySimulation::new(config).run()
    };
    let fair = run(0.0, RewardSchedule::ethereum());
    assert_eq!(fair.orphan_rate(), 0.0);
    assert!((fair.advantage(0) - 1.0).abs() < 0.03);

    let btc = run(6.0, RewardSchedule::bitcoin());
    let eth = run(6.0, RewardSchedule::ethereum());
    assert!(
        btc.advantage(0) > 1.02,
        "bitcoin advantage {}",
        btc.advantage(0)
    );
    assert!(
        eth.advantage(0) < btc.advantage(0),
        "uncle rewards compress: {} vs {}",
        eth.advantage(0),
        btc.advantage(0)
    );
}

#[test]
fn cycle_statistics_bridge_theory_and_simulation() {
    // E[cycle length] = 1/π₀₀ analytically; the simulator's empirical
    // (0,0) frequency inverts to the same number.
    let (alpha, gamma) = (0.35, 0.5);
    let params =
        ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), 120).unwrap();
    let stats = cycles::cycle_stats(&params).unwrap();
    assert!((stats.expected_length - stats.expected_length_via_hitting).abs() < 1e-6);

    let config = SimConfig::builder()
        .alpha(alpha)
        .gamma(gamma)
        .blocks(150_000)
        .n_honest(100)
        .seed(88)
        .build()
        .unwrap();
    let report = Simulation::new(config).run();
    let empirical_cycle = 1.0 / report.state_frequency(0, 0);
    assert!(
        (empirical_cycle - stats.expected_length).abs() / stats.expected_length < 0.05,
        "empirical {empirical_cycle} vs analytic {}",
        stats.expected_length
    );
}

#[test]
fn waste_is_the_price_of_the_attack() {
    // The cycle-level waste fraction equals the analytic uncle+stale rate,
    // and honest miners bear most of it.
    let params = ModelParams::with_truncation(0.4, 0.5, RewardSchedule::ethereum(), 120).unwrap();
    let stats = cycles::cycle_stats(&params).unwrap();
    let rev = Analysis::new(&params).unwrap().revenue();
    let expected_waste = rev.uncle_rate + rev.stale_rate;
    assert!((stats.waste_fraction() - expected_waste).abs() < 1e-9);
    assert!(
        expected_waste > 0.2,
        "a 40% attacker wastes over a fifth of all blocks"
    );
}
