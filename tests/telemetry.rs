//! The telemetry determinism contract end to end: counter totals merged
//! from per-worker shards must be bit-identical at any thread count, the
//! no-op recorder must not perturb simulation results, and the committed
//! `BENCH_sim.json` must certify the no-op overhead gate.

use selfish_ethereum::prelude::*;

use seleth_obs::parse_json;

/// A fixed-seed faulty delay run: every fault counter is exercised, so a
/// partition-invariance bug in the merge has something to corrupt.
fn faulty_delay_counters(seed: u64) -> DelayCounters {
    let plan = FaultPlan::builder()
        .loss(0.2)
        .duplication(0.2)
        .jitter(1.5)
        .partition(2_000.0, 4_000.0, vec![0, 0, 1])
        .build()
        .expect("valid fault plan");
    let config = DelayConfig::builder()
        .shares(vec![0.3, 0.4, 0.3])
        .tie_gamma(0.5)
        .delay(2.0)
        .blocks(2_000)
        .seed(seed)
        .faults(plan.with_seed(seed))
        .build()
        .expect("valid faulty config");
    DelaySimulation::new(config).run().counters
}

#[test]
fn delay_counter_totals_are_thread_invariant() {
    // Sweep 9 fixed-seed faulty delay runs through the traced work queue
    // at 1, 2 and 8 workers: the merged counter totals must be
    // bit-identical however the queue interleaved the tasks.
    let seeds: Vec<u64> = (0..9).collect();
    let mut totals = Vec::new();
    for threads in [1usize, 2, 8] {
        let (_, shards) =
            seleth_bench::par_map_traced(&seeds, threads, &NoopRecorder, |&seed, shard| {
                let counters = faulty_delay_counters(seed);
                counters.record_into(shard);
                counters
            });
        let merged = Telemetry::merge_shards(&shards);
        let counters: Vec<(String, u64)> =
            merged.counters().map(|(k, v)| (k.to_string(), v)).collect();
        totals.push((threads, counters));
    }
    assert!(
        totals[0]
            .1
            .iter()
            .any(|(k, v)| k == "delay.drops" && *v > 0),
        "the fault plan must actually drop packets"
    );
    assert_eq!(totals[0].1, totals[1].1, "1 vs 2 threads");
    assert_eq!(totals[1].1, totals[2].1, "2 vs 8 threads");
}

#[test]
fn run_many_counter_totals_are_thread_invariant() {
    let config = SimConfig::builder()
        .alpha(0.35)
        .gamma(0.5)
        .blocks(3_000)
        .seed(17)
        .build()
        .expect("valid config");
    let mut totals = Vec::new();
    let mut revenues = Vec::new();
    for threads in [1usize, 2, 8] {
        let (r, shards) = multi::run_many_recorded(&config, 6, threads, &NoopRecorder);
        let merged = Telemetry::merge_shards(&shards);
        assert_eq!(merged.counter("sim.runs"), 6);
        assert_eq!(merged.counter("sim.blocks"), 18_000);
        assert_eq!(
            merged.counter("sim.engine_builds") + merged.counter("sim.engine_reuses"),
            6,
            "every run either builds or reuses an engine"
        );
        // The build/reuse *split* legitimately varies with the worker
        // count (one build per participating worker); only its sum and
        // the per-run counters are invariant.
        totals.push(
            merged
                .counters()
                .filter(|(k, _)| !k.starts_with("sim.engine_"))
                .map(|(k, v)| (k.to_string(), v))
                .collect::<Vec<_>>(),
        );
        revenues.push(
            r.iter()
                .map(|report| report.absolute_pool(Scenario::RegularRate))
                .collect::<Vec<f64>>(),
        );
    }
    // The counter totals are asserted invariant above; the simulation
    // results themselves must also be bit-identical at any thread count.
    assert_eq!(totals[0], totals[1], "1 vs 2 threads");
    assert_eq!(totals[1], totals[2], "2 vs 8 threads");
    assert_eq!(revenues[0], revenues[1]);
    assert_eq!(revenues[1], revenues[2]);
}

#[test]
fn committed_bench_certifies_the_noop_overhead_gate() {
    // `bench_sim` measures a fresh-engine run against the same run through
    // the instrumented `run_many_recorded` path, interleaved, and writes
    // the best paired per-repetition ratio; the committed artifact must
    // certify the overhead contract (the bin itself exits non-zero below
    // 0.95 — the tightest bound same-code host jitter can certify — and
    // this pins the committed state).
    let text = std::fs::read_to_string("results/BENCH_sim.json")
        .expect("committed results/BENCH_sim.json");
    let doc = parse_json(&text).expect("BENCH_sim.json parses");
    let ratio = doc
        .get("noop_overhead_ratio")
        .and_then(seleth_obs::JsonValue::as_f64)
        .expect("noop_overhead_ratio field");
    assert!(
        ratio >= 0.95,
        "committed no-op overhead ratio {ratio} below the 0.95 gate"
    );
    // And the scaling study must carry per-worker utilization.
    for key in ["run_many_t1_workers", "run_many_t8_workers"] {
        let workers = doc
            .get(key)
            .and_then(seleth_obs::JsonValue::as_array)
            .unwrap_or_else(|| panic!("{key} array"));
        assert!(!workers.is_empty(), "{key} must list workers");
        let w0 = &workers[0];
        for field in [
            "worker",
            "tasks",
            "busy_ms",
            "queue_wait_ms",
            "busy_fraction",
        ] {
            assert!(w0.get(field).is_some(), "{key}[0].{field} present");
        }
    }
}
