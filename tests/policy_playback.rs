//! Cross-validation of the policy subsystem: MDP-optimal strategies,
//! exported as artifacts, replayed by the Monte-Carlo simulator.
//!
//! The MDP solver predicts the optimal revenue ρ* by value iteration over
//! an abstract state space; the simulator plays the exported table over a
//! real block tree with real fork choice and real reward accounting.
//! Nothing is shared between the two computations except the policy
//! itself, so agreement here validates solver, lowering, artifact format
//! and playback executor at once — the same closed loop
//! `tests/theory_vs_simulation.rs` provides for the closed-form analysis.
//! Bitcoin points replay classic three-axis artifacts; the Ethereum point
//! replays a four-axis (`match_d`-aware) format-2 artifact and is gated
//! just as hard.

use selfish_ethereum::prelude::*;

const RUNS: u64 = 6;
const BLOCKS: u64 = 30_000;
const SEED: u64 = 31337;

/// Solve the Bitcoin MDP, round-trip the artifact through disk, replay
/// it, and demand the simulated revenue match the predicted ρ* within
/// 3 standard errors *and* 1% absolute.
fn cross_validate(alpha: f64, gamma: f64) {
    let config = MdpConfig::new(alpha, gamma, RewardModel::Bitcoin).with_max_len(30);
    let solution = config.solve().expect("mdp solve");
    let table = PolicyTable::from_solution(&config, &solution);

    // The artifact must survive disk: what we replay is the *loaded* copy.
    let dir = std::env::temp_dir().join("seleth-policy-playback");
    let path = dir.join(format!("btc_a{alpha}_g{gamma}.json"));
    table.save(&path).expect("save artifact");
    let loaded = PolicyTable::load(&path).expect("load artifact");
    assert_eq!(table, loaded, "artifact round-trip must be lossless");
    let _ = std::fs::remove_file(&path);

    let sim_config = SimConfig::builder()
        .alpha(alpha)
        .gamma(gamma)
        .schedule(RewardSchedule::bitcoin())
        .blocks(BLOCKS)
        .n_honest(100)
        .seed(SEED)
        .policy(loaded)
        .build()
        .expect("valid config");
    let reports = multi::run_many(&sim_config, RUNS);
    let us = multi::mean_absolute_pool(&reports, Scenario::RegularRate);
    let std_err = us.std_dev / (RUNS as f64).sqrt();
    let diff = (us.mean - solution.revenue).abs();
    assert!(
        diff <= 3.0 * std_err,
        "alpha={alpha} gamma={gamma}: sim {} vs rho* {} is {:.2} standard errors",
        us.mean,
        solution.revenue,
        diff / std_err
    );
    assert!(
        diff <= 0.01,
        "alpha={alpha} gamma={gamma}: sim {} vs rho* {} misses 1% absolute",
        us.mean,
        solution.revenue
    );
}

#[test]
fn optimal_policy_below_threshold_earns_fair_share() {
    // γ = 0.5 puts the optimal-strategy threshold at 25%: at α = 0.2 the
    // optimum is honest mining and ρ* = α exactly.
    cross_validate(0.20, 0.5);
}

#[test]
fn optimal_policy_matches_published_sapirshtein_point() {
    // α = 0.35, γ = 0 — above the threshold; ρ* ≈ 0.37077 (published).
    cross_validate(0.35, 0.0);
}

#[test]
fn optimal_policy_high_alpha_agrees() {
    // Deep in profitable territory: α = 0.40, γ = 0.5, ρ* ≈ 0.57.
    cross_validate(0.40, 0.5);
}

#[test]
fn honest_table_playback_earns_alpha() {
    // The honest baseline as a *table*: replaying it through the policy
    // executor (publish every lead immediately, adopt otherwise) must earn
    // the fair share α under the full Ethereum schedule — no forks, no
    // uncles, exactly like PoolStrategy::Honest.
    let (alpha, gamma) = (0.30, 0.5);
    let config = SimConfig::builder()
        .alpha(alpha)
        .gamma(gamma)
        .blocks(BLOCKS)
        .n_honest(100)
        .seed(SEED)
        .policy(PolicyTable::honest(alpha, gamma, 20))
        .build()
        .expect("valid config");
    let reports = multi::run_many(&config, RUNS);
    for r in &reports {
        assert_eq!(
            r.reward_report.uncle_count + r.reward_report.stale_count,
            0,
            "honest playback must not fork"
        );
    }
    let us = multi::mean_absolute_pool(&reports, Scenario::RegularRate);
    let tol = 4.0 * us.std_dev / (RUNS as f64).sqrt() + 0.004;
    assert!(
        (us.mean - alpha).abs() < tol,
        "honest playback Us {} vs alpha {alpha} (tol {tol})",
        us.mean
    );
}

#[test]
fn ethereum_model_playback_matches_rho_star() {
    // Ethereum-model tables replay through the same executor. Since the
    // state space became explicit, the lowering keeps the
    // published-prefix distance as a fourth axis instead of projecting it
    // away, and the executor threads the live `match_d` into every
    // decision — so Ethereum playback is *exact* and holds the same
    // 3σ + 1% gate as the Bitcoin points (it was informational, ~0.2σ
    // off, while the lowering still projected).
    let (alpha, gamma) = (0.30, 0.5);
    let config = MdpConfig::new(alpha, gamma, RewardModel::EthereumApprox).with_max_len(30);
    let solution = config.solve().expect("mdp solve");
    let table = PolicyTable::from_solution(&config, &solution);
    assert!(solution.revenue > alpha, "attack profitable at 30%");
    assert!(
        table.state_space().has_match_d(),
        "Ethereum lowering must carry the match_d axis"
    );

    // The artifact must survive disk on the format-2 wire form: what we
    // replay is the *loaded* copy.
    let dir = std::env::temp_dir().join("seleth-policy-playback");
    let path = dir.join(format!("eth_a{alpha}_g{gamma}.json"));
    table.save(&path).expect("save artifact");
    let loaded = PolicyTable::load(&path).expect("load artifact");
    assert_eq!(table, loaded, "artifact round-trip must be lossless");
    let _ = std::fs::remove_file(&path);

    let sim_config = SimConfig::builder()
        .alpha(alpha)
        .gamma(gamma)
        .blocks(BLOCKS)
        .n_honest(100)
        .seed(SEED)
        .policy(loaded)
        .build()
        .expect("valid config");
    let reports = multi::run_many(&sim_config, RUNS);
    let us = multi::mean_absolute_pool(&reports, Scenario::RegularRate);
    let std_err = us.std_dev / (RUNS as f64).sqrt();
    let diff = (us.mean - solution.revenue).abs();
    assert!(
        us.mean > alpha + 0.01,
        "replayed Ethereum policy must beat honest: {} vs {alpha}",
        us.mean
    );
    assert!(
        diff <= 3.0 * std_err,
        "ethereum: sim {} vs rho* {} is {:.2} standard errors",
        us.mean,
        solution.revenue,
        diff / std_err
    );
    assert!(
        diff <= 0.01,
        "ethereum: sim {} vs rho* {} misses 1% absolute",
        us.mean,
        solution.revenue
    );
}

#[test]
fn table_strategy_is_thread_count_invariant() {
    // Policy playback must keep run_many's thread-count invariance: the
    // table is shared, never mutated, and each run is seed-deterministic.
    let config = MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).with_max_len(20);
    let solution = config.solve().expect("mdp solve");
    let table = PolicyTable::from_solution(&config, &solution);
    let sim_config = SimConfig::builder()
        .alpha(0.35)
        .gamma(0.5)
        .schedule(RewardSchedule::bitcoin())
        .blocks(5_000)
        .n_honest(50)
        .seed(99)
        .policy(table)
        .build()
        .expect("valid config");
    let reference = multi::run_many_with_threads(&sim_config, 4, 1);
    for threads in [2, 8] {
        let parallel = multi::run_many_with_threads(&sim_config, 4, threads);
        for (r, p) in reference.iter().zip(parallel.iter()) {
            assert_eq!(r.pool.total(), p.pool.total(), "threads={threads}");
            assert_eq!(r.state_visits, p.state_visits, "threads={threads}");
        }
    }
}
