//! End-to-end checks of every number the paper states in prose, through
//! the public facade API.

use selfish_ethereum::core::bitcoin;
use selfish_ethereum::prelude::*;

fn threshold(gamma: f64, schedule: &RewardSchedule, scenario: Scenario) -> f64 {
    profitability_threshold(gamma, schedule, scenario, ThresholdOptions::default())
        .expect("solver ok")
        .expect("threshold exists below 0.5")
}

#[test]
fn abstract_claim_threshold_below_bitcoin() {
    // "We find that this threshold is lower than that in Bitcoin mining
    // (which is 25% as discovered by Eyal and Sirer)" — at γ = 0.5,
    // scenario 1.
    let eth = threshold(0.5, &RewardSchedule::ethereum(), Scenario::RegularRate);
    assert!((bitcoin::eyal_sirer_threshold(0.5) - 0.25).abs() < 1e-12);
    assert!(
        eth < 0.25,
        "Ethereum threshold {eth} must undercut Bitcoin's 0.25"
    );
}

#[test]
fn section5_threshold_0163_at_ku_half() {
    // Fig. 8 discussion: "when α is above 0.163, the selfish pool can
    // always gain higher revenue" (γ = 0.5, Ku = 4/8).
    let t = threshold(
        0.5,
        &RewardSchedule::fixed_uncle(0.5),
        Scenario::RegularRate,
    );
    assert!((t - 0.163).abs() < 0.005, "got {t}");
}

#[test]
fn section6_all_four_thresholds() {
    let eth = RewardSchedule::ethereum();
    let flat = RewardSchedule::fixed_uncle(0.5);
    let cases = [
        (&eth, Scenario::RegularRate, 0.054),
        (&flat, Scenario::RegularRate, 0.163),
        (&eth, Scenario::RegularPlusUncleRate, 0.270),
        (&flat, Scenario::RegularPlusUncleRate, 0.356),
    ];
    for (schedule, scenario, want) in cases {
        let got = threshold(0.5, schedule, scenario);
        assert!(
            (got - want).abs() < 0.01,
            "{scenario:?}: got {got}, paper says {want}"
        );
    }
}

#[test]
fn fig9_total_revenue_soars_to_135_percent() {
    // "the total revenue increases with α and soars to 135% ... when
    // Ku = 7/8 and α = 0.45."
    let params = ModelParams::new(0.45, 0.5, RewardSchedule::fixed_uncle_unbounded(0.875)).unwrap();
    let total = Analysis::new(&params)
        .unwrap()
        .revenue()
        .absolute_total(Scenario::RegularRate);
    assert!((total - 1.35).abs() < 0.02, "total revenue {total}");
}

#[test]
fn fig9_higher_uncle_reward_more_revenue() {
    // "the higher uncle reward, the more absolute revenue for both the
    // selfish pool and honest miners."
    let mut prev_us = 0.0;
    let mut prev_uh = 0.0;
    for ku in [0.25, 0.5, 0.875] {
        let params = ModelParams::new(0.3, 0.5, RewardSchedule::fixed_uncle_unbounded(ku)).unwrap();
        let rev = Analysis::new(&params).unwrap().revenue();
        let us = rev.absolute_pool(Scenario::RegularRate);
        let uh = rev.absolute_honest(Scenario::RegularRate);
        assert!(us > prev_us, "Us must increase with Ku");
        assert!(uh > prev_uh, "Uh must increase with Ku");
        prev_us = us;
        prev_uh = uh;
    }
}

#[test]
fn fig9_ethereum_ku_equals_78_for_pool() {
    // "the uncle reward function Ku(·) used in Ethereum has the same
    // effect as simply setting Ku = 7/8Ks for selfish pool's revenue."
    let eth = Analysis::new(&ModelParams::new(0.35, 0.5, RewardSchedule::ethereum()).unwrap())
        .unwrap()
        .revenue();
    let f78 =
        Analysis::new(&ModelParams::new(0.35, 0.5, RewardSchedule::fixed_uncle(0.875)).unwrap())
            .unwrap()
            .revenue();
    assert!((eth.pool.uncle_reward - f78.pool.uncle_reward).abs() < 1e-10);
}

#[test]
fn fig10_scenario2_crosses_bitcoin_near_039() {
    // "the hash power thresholds in scenario 2 are higher than Bitcoin
    // when γ ≥ 0.39."
    let eth = RewardSchedule::ethereum();
    let below = threshold(0.3, &eth, Scenario::RegularPlusUncleRate);
    assert!(
        below < bitcoin::eyal_sirer_threshold(0.3),
        "at γ=0.3 scenario 2 still below"
    );
    let above = threshold(0.5, &eth, Scenario::RegularPlusUncleRate);
    assert!(
        above > bitcoin::eyal_sirer_threshold(0.5),
        "at γ=0.5 scenario 2 above"
    );
}

#[test]
fn fig8_small_losses_below_threshold() {
    // "when α is below the threshold 0.163, the selfish pool loses just a
    // small amount of revenue due to the additional uncle block rewards,
    // which is quite different from the results in Bitcoin."
    let alpha = 0.10;
    let eth_params = ModelParams::new(alpha, 0.5, RewardSchedule::fixed_uncle(0.5)).unwrap();
    let us_eth = Analysis::new(&eth_params)
        .unwrap()
        .revenue()
        .absolute_pool(Scenario::RegularRate);
    let btc_rel = bitcoin::eyal_sirer_revenue(alpha, 0.5);
    let eth_loss = alpha - us_eth;
    let btc_loss = alpha - btc_rel;
    assert!(eth_loss > 0.0, "still a loss below threshold");
    assert!(
        eth_loss < 0.5 * btc_loss,
        "Ethereum loss {eth_loss} should be much smaller than Bitcoin's {btc_loss}"
    );
}

#[test]
fn remark2_pi00_decreasing_in_alpha() {
    use selfish_ethereum::core::stationary::pi00;
    let mut prev = 1.0 + 1e-12;
    for k in 0..=49 {
        let v = pi00(k as f64 / 100.0);
        assert!(v < prev);
        prev = v;
    }
}

#[test]
fn table2_analytic_values() {
    let params = ModelParams::new(0.3, 0.5, RewardSchedule::ethereum()).unwrap();
    let d = Analysis::new(&params).unwrap().honest_uncle_distances();
    let paper = [0.527, 0.295, 0.111, 0.043, 0.017, 0.007];
    for (i, &want) in paper.iter().enumerate() {
        assert!((d.prob(i as u64 + 1) - want).abs() < 2e-3);
    }
    assert!((d.expectation() - 1.75).abs() < 0.01);
}

#[test]
fn gamma_one_profitable_for_any_hash_power() {
    // "when γ = 1, the selfish mining in Bitcoin and Ethereum can always
    // be profitable regardless of their hash power."
    assert_eq!(bitcoin::eyal_sirer_threshold(1.0), 0.0);
    for &alpha in &[0.02, 0.1, 0.3] {
        let params = ModelParams::new(alpha, 1.0, RewardSchedule::ethereum()).unwrap();
        let us = Analysis::new(&params)
            .unwrap()
            .revenue()
            .absolute_pool(Scenario::RegularRate);
        assert!(us >= alpha - 1e-9, "alpha={alpha}: Us={us}");
    }
}
