//! The paper's central validation (Fig. 8): the Monte-Carlo simulator and
//! the 2-D Markov analysis must agree on every revenue metric.
//!
//! Each comparison runs several seeded simulations and checks the analytic
//! value lies within a few standard errors of the empirical mean (plus a
//! small absolute tolerance for the short runs used in CI).

use selfish_ethereum::prelude::*;

const RUNS: u64 = 6;
const BLOCKS: u64 = 40_000;

fn compare(alpha: f64, gamma: f64, schedule: RewardSchedule) {
    let params = ModelParams::new(alpha, gamma, schedule.clone()).expect("valid params");
    let theory = Analysis::new(&params).expect("solve").revenue();

    let config = SimConfig::builder()
        .alpha(alpha)
        .gamma(gamma)
        .schedule(schedule)
        .blocks(BLOCKS)
        .n_honest(300)
        .seed(777)
        .build()
        .expect("valid config");
    let reports = multi::run_many(&config, RUNS);

    for scenario in [Scenario::RegularRate, Scenario::RegularPlusUncleRate] {
        let us = multi::mean_absolute_pool(&reports, scenario);
        let uh = multi::mean_absolute_honest(&reports, scenario);
        let tol_us = 4.0 * us.std_dev / (RUNS as f64).sqrt() + 0.004;
        let tol_uh = 4.0 * uh.std_dev / (RUNS as f64).sqrt() + 0.004;
        let want_us = theory.absolute_pool(scenario);
        let want_uh = theory.absolute_honest(scenario);
        assert!(
            (us.mean - want_us).abs() < tol_us,
            "Us mismatch at alpha={alpha} gamma={gamma} {scenario:?}: sim {} vs theory {want_us} (tol {tol_us})",
            us.mean
        );
        assert!(
            (uh.mean - want_uh).abs() < tol_uh,
            "Uh mismatch at alpha={alpha} gamma={gamma} {scenario:?}: sim {} vs theory {want_uh} (tol {tol_uh})",
            uh.mean
        );
    }

    // Block-type rates agree too.
    let reg = multi::summarize(&reports, |r| r.block_type_fractions().0);
    assert!(
        (reg.mean - theory.regular_rate).abs() < 4.0 * reg.std_dev / (RUNS as f64).sqrt() + 0.004,
        "regular rate mismatch at alpha={alpha} gamma={gamma}: sim {} vs theory {}",
        reg.mean,
        theory.regular_rate
    );
}

#[test]
fn ethereum_schedule_alpha_low() {
    compare(0.15, 0.5, RewardSchedule::ethereum());
}

#[test]
fn ethereum_schedule_alpha_mid() {
    compare(0.30, 0.5, RewardSchedule::ethereum());
}

#[test]
fn ethereum_schedule_alpha_high() {
    compare(0.45, 0.5, RewardSchedule::ethereum());
}

#[test]
fn gamma_zero_and_one_extremes() {
    compare(0.30, 0.0, RewardSchedule::ethereum());
    compare(0.30, 1.0, RewardSchedule::ethereum());
}

#[test]
fn fixed_uncle_reward_schedule() {
    compare(0.35, 0.5, RewardSchedule::fixed_uncle(0.5));
    compare(0.35, 0.5, RewardSchedule::fixed_uncle(0.875));
}

#[test]
fn bitcoin_schedule_matches_eyal_sirer() {
    // With no uncle rewards the simulator must reproduce the Eyal–Sirer
    // relative revenue.
    let (alpha, gamma) = (0.35, 0.5);
    let config = SimConfig::builder()
        .alpha(alpha)
        .gamma(gamma)
        .schedule(RewardSchedule::bitcoin())
        .blocks(BLOCKS)
        .n_honest(300)
        .seed(424)
        .build()
        .expect("valid config");
    let reports = multi::run_many(&config, RUNS);
    let share = multi::summarize(&reports, |r| r.relative_pool_share());
    let want = selfish_ethereum::core::bitcoin::eyal_sirer_revenue(alpha, gamma);
    assert!(
        (share.mean - want).abs() < 4.0 * share.std_dev / (RUNS as f64).sqrt() + 0.004,
        "Bitcoin relative share: sim {} vs Eyal-Sirer {want}",
        share.mean
    );
}

#[test]
fn empirical_state_frequencies_match_stationary() {
    let (alpha, gamma) = (0.3, 0.5);
    let config = SimConfig::builder()
        .alpha(alpha)
        .gamma(gamma)
        .blocks(120_000)
        .n_honest(100)
        .seed(5150)
        .build()
        .expect("valid config");
    let report = Simulation::new(config).run();
    let params = ModelParams::new(alpha, gamma, RewardSchedule::ethereum()).expect("valid");
    let analysis = Analysis::new(&params).expect("solve");
    for (ls, lh) in [(0u32, 0u32), (1, 0), (1, 1), (2, 0), (3, 0), (3, 1)] {
        let emp = report.state_frequency(ls, lh);
        let the = analysis.pi(State::new(ls, lh));
        assert!(
            (emp - the).abs() < 0.01,
            "state ({ls},{lh}): empirical {emp:.4} vs stationary {the:.4}"
        );
    }
}

#[test]
fn table2_distances_from_simulation() {
    let config = SimConfig::builder()
        .alpha(0.45)
        .gamma(0.5)
        .blocks(80_000)
        .n_honest(300)
        .seed(31)
        .build()
        .expect("valid config");
    let reports = multi::run_many(&config, 4);
    let pmf = multi::mean_honest_distance_distribution(&reports);
    let paper = [0.284, 0.249, 0.171, 0.125, 0.096, 0.075];
    for (d, (&got, &want)) in pmf.iter().zip(paper.iter()).enumerate() {
        assert!(
            (got - want).abs() < 0.02,
            "P(d={}) = {got:.3}, paper {want:.3}",
            d + 1
        );
    }
    let expectation = multi::summarize(&reports, |r| r.honest_distance_expectation());
    assert!(
        (expectation.mean - 2.72).abs() < 0.1,
        "expectation {}",
        expectation.mean
    );
}
