//! The committed study artifacts must stay renderable by the profiler:
//! `perf_report` (via [`seleth_obs::render_profile`]) walks every study
//! JSON the repo ships, so a format drift in a bin's telemetry emission
//! breaks here before it breaks a user's terminal.

use std::path::Path;

/// Every study JSON committed under `results/`.
const STUDIES: [&str; 8] = [
    "BENCH_sim.json",
    "BENCH_solver.json",
    "BENCH_net.json",
    "optimal_sim.json",
    "delay_study.json",
    "zoo_study.json",
    "chaos_study.json",
    "topology_study.json",
];

fn render(name: &str) -> String {
    let path = Path::new("results").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed {}: {e}", path.display()));
    seleth_obs::render_profile(name, &text).unwrap_or_else(|e| panic!("render {name}: {e}"))
}

#[test]
fn every_committed_study_renders_with_telemetry() {
    for name in STUDIES {
        let report = render(name);
        assert!(report.contains(name), "{name}: header names the file");
        assert!(
            report.contains("-- telemetry at telemetry --"),
            "{name}: must carry a top-level telemetry block"
        );
        assert!(
            !report.contains("no telemetry block"),
            "{name}: telemetry block must be recorded"
        );
        assert!(report.contains("wall:"), "{name}: wall clock line");
    }
}

#[test]
fn study_telemetry_carries_the_expected_signals() {
    // Delay-engine counters flow into every delay-driven study.
    for name in [
        "delay_study.json",
        "zoo_study.json",
        "chaos_study.json",
        "topology_study.json",
    ] {
        let report = render(name);
        assert!(
            report.contains("delay.mining_events"),
            "{name}: delay-engine counters present"
        );
        assert!(
            report.contains("study.runs"),
            "{name}: study bookkeeping present"
        );
        assert!(report.contains("workers:"), "{name}: worker table present");
    }
    // Solver instrumentation flows into the solver-driven studies.
    for name in ["BENCH_solver.json", "optimal_sim.json"] {
        let report = render(name);
        assert!(
            report.contains("solver.sweeps"),
            "{name}: Dinkelbach sweep counters present"
        );
        assert!(
            report.contains("solver.warm_start_hit_rate"),
            "{name}: warm-start gauge present"
        );
    }
    // The sim bench records the scheduler's counters and utilization.
    let report = render("BENCH_sim.json");
    assert!(report.contains("sim.runs"));
    assert!(report.contains("bench.noop_overhead_ratio"));
    assert!(report.contains("workers:"));
    // Graph-mode studies and the net bench surface the gossip layer.
    let report = render("topology_study.json");
    assert!(
        report.contains("delay.gossip_sends"),
        "topology study carries gossip counters"
    );
    let report = render("BENCH_net.json");
    assert!(report.contains("bench.graph_vs_uniform_ratio"));
}

#[test]
fn policy_artifacts_degrade_gracefully() {
    // Pre-telemetry JSON (the policy artifacts) must still render: header
    // plus an explicit note, no error.
    let dir = Path::new("results/policies");
    let mut rendered = 0;
    for entry in std::fs::read_dir(dir).expect("committed policies dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let report = seleth_obs::render_profile("policy", &text).expect("renders");
        assert!(report.contains("no telemetry block"));
        rendered += 1;
    }
    assert!(rendered > 0, "at least one committed policy artifact");
}
