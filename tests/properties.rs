//! Property-based tests over the whole stack: invariants that must hold
//! for *any* parameters, not just the paper's operating points.

use proptest::prelude::*;

use selfish_ethereum::chain::accounting;
use selfish_ethereum::chain::forkchoice::{self, TieBreak};
use selfish_ethereum::core::{revenue, stationary};
use selfish_ethereum::prelude::*;

fn alpha_strategy() -> impl Strategy<Value = f64> {
    // Stay below 0.47 so small truncations remain accurate.
    (0.01f64..0.47).prop_map(|a| (a * 1000.0).round() / 1000.0)
}

fn gamma_strategy() -> impl Strategy<Value = f64> {
    (0.0f64..=1.0).prop_map(|g| (g * 100.0).round() / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The stationary distribution is a probability distribution and its
    /// small states match the closed forms, for any (α, γ).
    #[test]
    fn stationary_is_probability_distribution(alpha in alpha_strategy(), gamma in gamma_strategy()) {
        let params = ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), 250)
            .expect("valid");
        let dist = stationary::solve(&params).expect("solve");
        let mut total = 0.0;
        for (_, p) in dist.iter() {
            prop_assert!(p >= -1e-12, "negative probability {p}");
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Closed-form agreement. Truncation bias is negligible except in
        // the slow-mixing corner γ → 0, α → 0.5, where the pool's lead is
        // a nearly unbiased random walk and excursions outlive any finite
        // truncation (see the `ablation_truncation` experiment); allow a
        // correspondingly looser bound there.
        let tol = if alpha <= 0.40 || gamma >= 0.2 { 1e-5 } else { 2e-2 };
        prop_assert!(
            (dist.prob(&State::new(0, 0)) - stationary::pi00(alpha)).abs() < tol,
            "pi00 numeric {} vs closed {}", dist.prob(&State::new(0, 0)), stationary::pi00(alpha)
        );
    }

    /// Block-type rates always partition the unit production rate, and all
    /// revenue components are non-negative.
    #[test]
    fn revenue_rates_partition(alpha in alpha_strategy(), gamma in gamma_strategy()) {
        let params = ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), 80)
            .expect("valid");
        let dist = stationary::solve(&params).expect("solve");
        let r = revenue::revenue_from_distribution(&params, &dist);
        prop_assert!((r.regular_rate + r.uncle_rate + r.stale_rate - 1.0).abs() < 1e-9);
        for v in [
            r.pool.static_reward, r.pool.uncle_reward, r.pool.nephew_reward,
            r.honest.static_reward, r.honest.uncle_reward, r.honest.nephew_reward,
        ] {
            prop_assert!(v >= -1e-12, "negative revenue component {v}");
        }
        // Static rewards are exactly the regular rate (Ks = 1).
        prop_assert!((r.pool.static_reward + r.honest.static_reward - r.regular_rate).abs() < 1e-9);
    }

    /// The pool's relative share always meets or beats the Eyal–Sirer
    /// share under the Ethereum schedule (uncle rewards only help).
    #[test]
    fn uncle_rewards_never_hurt_the_pool(alpha in alpha_strategy(), gamma in gamma_strategy()) {
        let eth = ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), 80)
            .expect("valid");
        let btc = ModelParams::with_truncation(alpha, gamma, RewardSchedule::bitcoin(), 80)
            .expect("valid");
        let us_eth = Analysis::new(&eth).expect("solve").revenue()
            .absolute_pool(Scenario::RegularRate);
        let us_btc = Analysis::new(&btc).expect("solve").revenue()
            .absolute_pool(Scenario::RegularRate);
        prop_assert!(us_eth >= us_btc - 1e-9, "eth {us_eth} < btc {us_btc}");
    }

    /// Simulated trees always account consistently: the main chain length
    /// equals the regular count, rewards match block counts, and the block
    /// classes partition the tree.
    #[test]
    fn simulation_accounting_consistent(
        alpha in 0.0f64..0.6,
        gamma in gamma_strategy(),
        seed in 0u64..1_000,
    ) {
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(gamma)
            .blocks(2_000)
            .n_honest(20)
            .seed(seed)
            .build()
            .expect("valid");
        let report = Simulation::new(config).run();
        let rr = &report.reward_report;
        prop_assert_eq!(rr.block_count(), report.blocks_mined);
        // Static reward equals regular count (Ks = 1).
        let static_total: f64 = report.pool.static_reward + report.honest.static_reward;
        prop_assert!((static_total - rr.regular_count as f64).abs() < 1e-9);
        // Every uncle pays Ku > 0 at distance <= 6 under the Ethereum
        // schedule, so uncle reward count and histogram agree.
        let hist_total: u64 = report.honest_uncle_histogram.iter().sum::<u64>()
            + report.pool_uncle_histogram.iter().sum::<u64>();
        prop_assert_eq!(hist_total, rr.uncle_count);
    }

    /// The longest chain through a simulated tree is monotone in height
    /// and parent-linked (i.e. a real chain).
    #[test]
    fn main_chain_is_well_formed(seed in 0u64..200) {
        let config = SimConfig::builder()
            .alpha(0.4)
            .gamma(0.5)
            .blocks(500)
            .n_honest(10)
            .seed(seed)
            .build()
            .expect("valid");
        let mut sim = Simulation::new(config);
        for _ in 0..500 {
            sim.step();
        }
        let tree = sim.tree();
        let chain = forkchoice::longest_chain(tree, TieBreak::FirstSeen);
        prop_assert_eq!(chain[0], tree.genesis());
        for w in chain.windows(2) {
            prop_assert_eq!(tree.block(w[1]).parent(), Some(w[0]));
        }
    }

    /// Accounting under any uncle cap never pays more than the uncapped
    /// schedule, and total reward decomposes exactly by miner.
    #[test]
    fn capped_accounting_bounded(seed in 0u64..200) {
        let config = SimConfig::builder()
            .alpha(0.35)
            .blocks(2_000)
            .n_honest(10)
            .seed(seed)
            .build()
            .expect("valid");
        let mut sim = Simulation::new(config);
        for _ in 0..2_000 {
            sim.step();
        }
        let tree = sim.tree();
        let chain = forkchoice::longest_chain(tree, TieBreak::FirstSeen);
        let unlimited = accounting::account(tree, &chain, &RewardSchedule::ethereum());
        let capped = accounting::account(tree, &chain, &RewardSchedule::ethereum_capped());
        prop_assert!(capped.total_reward() <= unlimited.total_reward() + 1e-9);
        prop_assert!(capped.uncle_count <= unlimited.uncle_count);
        let by_miner: f64 = unlimited.per_miner.values().map(|m| m.total()).sum();
        prop_assert!((by_miner - unlimited.total_reward()).abs() < 1e-9);
    }
}
