//! Tier-1 gates for the fault-injection layer and the committed chaos
//! study (`results/chaos_study.json`).
//!
//! Three contracts, in increasing order of strictness:
//!
//! 1. *Graceful degradation*: any valid [`FaultPlan`] — random loss,
//!    duplication, jitter, churn, downtime and partition parameters —
//!    runs to completion without panicking, conserves revenue shares,
//!    and never mints more blocks than the event budget allows.
//! 2. *Determinism*: a faulty run is a pure function of `(sim seed,
//!    fault seed)` — bit-identical when replayed, and bit-identical
//!    across `par_map` thread counts (fault coins are counter-hashed,
//!    never drawn from a shared RNG stream).
//! 3. *Zero-fault identity*: an explicit [`FaultPlan::none`] reproduces
//!    the fault-unaware delay engine **bit for bit**. The hex constants
//!    below were captured from the engine before the fault layer
//!    existed; any drift in the zero-fault path fails loudly.
//!
//! Plus the committed-artifact gate: `results/chaos_study.json` must be
//! coherent and its gated anchor cell must reproduce the artifact's ρ*.

use std::path::PathBuf;

use proptest::prelude::*;

use selfish_ethereum::prelude::*;

use seleth_bench::par_map;

/// The classic SM1 rule as a policy table — the same hand-written
/// strategy the delay-study gates replay.
fn sm1(alpha: f64, gamma: f64, max_len: u32) -> PolicyTable {
    PolicyTable::from_fn3(
        alpha,
        gamma,
        RewardModel::Bitcoin,
        Scenario::RegularRate,
        max_len,
        alpha,
        |a, h, fork| {
            if h > a {
                Action::Adopt
            } else if a == h && a >= 1 {
                if fork == Fork::Relevant {
                    Action::Match
                } else {
                    Action::Wait
                }
            } else if a == h + 1 && h >= 1 {
                Action::Override
            } else {
                Action::Wait
            }
        },
    )
}

// ---------------------------------------------------------------------
// 3. Zero-fault bit identity
// ---------------------------------------------------------------------

/// Reference outcomes captured from the fault-unaware delay engine.
/// Exact `f64` bit patterns: the zero-fault plan must not perturb a
/// single rounding step. Recaptured when `PolicyTable::decide` started
/// forcing resolution at the truncation boundary (the hand-written SM1
/// tables below store `Wait` at `a == max_len`, which the executors now
/// resolve exactly like the solver's boundary action set) — the
/// fault-layer identity itself is unchanged and independently re-gated
/// in `tests/closed_loop_study.rs` by comparing a fault-free config
/// against an explicit `FaultPlan::none()` run.
#[test]
fn zero_fault_plan_reproduces_the_delay_engine_bit_for_bit() {
    // (name, total_reward bits, per-miner bits)
    let honest_eth = DelayConfig::builder()
        .shares(vec![0.25; 4])
        .delay(6.0)
        .blocks(40_000)
        .seed(2)
        .schedule(RewardSchedule::ethereum())
        .faults(FaultPlan::none())
        .build()
        .expect("valid config");
    let r = DelaySimulation::new(honest_eth).run();
    assert_eq!(r.report.total_reward().to_bits(), 0x40e2decf00000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40c2e9f400000000);

    let sm1_btc = DelayConfig::builder()
        .shares(vec![0.35, 0.65])
        .policy(0, sm1(0.35, 0.5, 12))
        .tie_gamma(0.5)
        .delay(2.0)
        .blocks(30_000)
        .seed(17)
        .schedule(RewardSchedule::bitcoin())
        .faults(FaultPlan::none())
        .build()
        .expect("valid config");
    let r = DelaySimulation::new(sm1_btc).run();
    assert_eq!(r.report.total_reward().to_bits(), 0x40d5848000000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40bd900000000000);

    let duo_btc = DelayConfig::builder()
        .shares(vec![0.3, 0.3, 0.4])
        .policy(0, sm1(0.3, 0.5, 12))
        .policy(1, sm1(0.3, 0.5, 12))
        .tie_gamma(0.5)
        .delay(2.0)
        .blocks(30_000)
        .seed(17)
        .schedule(RewardSchedule::bitcoin())
        .faults(FaultPlan::none())
        .build()
        .expect("valid config");
    let r = DelaySimulation::new(duo_btc).run();
    assert_eq!(r.report.total_reward().to_bits(), 0x40ce9e8000000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40b2e70000000000);
    assert_eq!(r.miner(1).total().to_bits(), 0x40b2840000000000);

    let sm1_eth = DelayConfig::builder()
        .shares(vec![0.4, 0.6])
        .policy(0, sm1(0.4, 0.0, 14))
        .tie_gamma(0.0)
        .delay(4.0)
        .blocks(25_000)
        .seed(41)
        .schedule(RewardSchedule::ethereum())
        .faults(FaultPlan::none())
        .build()
        .expect("valid config");
    let r = DelaySimulation::new(sm1_eth).run();
    assert_eq!(r.report.total_reward().to_bits(), 0x40d3181a00000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40b8409800000000);
}

// ---------------------------------------------------------------------
// 2. Determinism across thread counts
// ---------------------------------------------------------------------

fn chaotic_config(seed: u64) -> DelayConfig {
    let faults = FaultPlan::builder()
        .seed(seed ^ 0xfa17)
        .loss(0.2)
        .duplication(0.15)
        .jitter(2.5)
        .churn(1_500.0, 200.0)
        .partition(30_000.0, 36_000.0, vec![0, 1, 0])
        .build()
        .expect("valid fault plan");
    DelayConfig::builder()
        .shares(vec![0.3, 0.3, 0.4])
        .policy(0, sm1(0.3, 0.5, 12))
        .tie_gamma(0.5)
        .delay(4.0)
        .blocks(6_000)
        .seed(seed)
        .schedule(RewardSchedule::ethereum())
        .faults(faults)
        .build()
        .expect("valid config")
}

/// Fault coins come from counter-based hashes of the plan seed, never
/// from a shared RNG: the same grid of seeds must produce bit-identical
/// outcomes whether the runs execute on 1 worker or 4.
#[test]
fn fault_schedules_are_bit_identical_across_thread_counts() {
    let seeds: Vec<u64> = (0..6).map(|k| 9_000 + k).collect();
    let outcome = |threads: usize| -> Vec<(u64, u64, u64)> {
        par_map(&seeds, threads, |&seed| {
            let r = DelaySimulation::new(chaotic_config(seed)).run();
            (
                r.report.total_reward().to_bits(),
                r.miner(0).total().to_bits(),
                r.report.block_count(),
            )
        })
    };
    let single = outcome(1);
    let quad = outcome(4);
    if single != quad {
        // First-divergence debugger: re-run the first disagreeing seed
        // twice with the flight recorder attached and report the exact
        // event where the traces split (dumping JSONL when
        // SELETH_TRACE_ON_FAIL names a directory — ci.sh does).
        let bad = seeds
            .iter()
            .zip(single.iter().zip(quad.iter()))
            .find(|(_, (a, b))| a != b)
            .map_or(seeds[0], |(s, _)| *s);
        let config = chaotic_config(bad);
        let cap = seleth_sim::diagnose::capacity_for(config.blocks());
        let (_, left) = record_delay_run(&config, cap);
        let (_, right) = record_delay_run(&config, cap);
        panic!(
            "fault schedules must not depend on threads (seed {bad}): {}",
            explain_divergence("thread_invariance", &left, &right)
        );
    }
    // And the schedule is genuinely seed-sensitive, not degenerate.
    assert!(single.windows(2).any(|w| w[0] != w[1]));
}

// ---------------------------------------------------------------------
// 1. Graceful degradation under arbitrary valid fault plans
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random-but-valid fault plans: the run must complete, pay only
    /// finite non-negative rewards, conserve revenue shares, and never
    /// exceed the block budget (faults delay and destroy, never mint).
    #[test]
    fn random_fault_plans_degrade_gracefully(
        sim_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        loss in 0.0f64..0.6,
        duplication in 0.0f64..0.6,
        jitter in 0.0f64..4.0,
        churn_on in any::<bool>(),
        churn in (300.0f64..3_000.0, 30.0f64..400.0),
        downs in proptest::collection::vec(
            (0usize..3, 0.0f64..20_000.0, 100.0f64..10_000.0),
            0..3,
        ),
        part_on in any::<bool>(),
        part in (0.0f64..20_000.0, 500.0f64..8_000.0, proptest::collection::vec(0usize..2, 3)),
    ) {
        let mut builder = FaultPlan::builder();
        builder
            .seed(fault_seed)
            .loss(loss)
            .duplication(duplication)
            .jitter(jitter);
        if churn_on {
            let (up, down) = churn;
            builder.churn(up, down);
        }
        for (miner, start, len) in downs {
            builder.downtime(miner, start, start + len);
        }
        if part_on {
            let (start, len, groups) = part;
            builder.partition(start, start + len, groups);
        }
        let faults = builder.build().expect("generated plans are valid");

        let blocks = 2_000u64;
        let config = DelayConfig::builder()
            .shares(vec![0.3, 0.3, 0.4])
            .policy(0, sm1(0.3, 0.5, 12))
            .tie_gamma(0.5)
            .delay(3.0)
            .blocks(blocks)
            .seed(sim_seed)
            .schedule(RewardSchedule::ethereum())
            .faults(faults)
            .build()
            .expect("valid config");
        let r = DelaySimulation::new(config.clone()).run();

        // Crashes thin the block supply but never add to it.
        prop_assert!(r.report.block_count() <= blocks);
        // Every reward paid is finite and non-negative…
        let total = r.report.total_reward();
        prop_assert!(total.is_finite() && total >= 0.0);
        let mut summed = 0.0;
        for i in 0..3 {
            let t = r.miner(i).total();
            prop_assert!(t.is_finite() && t >= 0.0);
            summed += t;
        }
        // …and the per-miner ledger conserves the total.
        prop_assert!((summed - total).abs() <= 1e-9 * total.max(1.0));
        if total > 0.0 {
            let shares: f64 = (0..3).map(|i| r.revenue_share(i)).sum();
            prop_assert!((shares - 1.0).abs() < 1e-9);
        }
        let orphans = r.orphan_rate();
        prop_assert!((0.0..=1.0).contains(&orphans));

        // Replay is a pure function of the configuration.
        let again = DelaySimulation::new(config).run();
        prop_assert_eq!(
            again.report.total_reward().to_bits(),
            total.to_bits(),
            "faulty runs must replay bit-identically"
        );
    }
}

// ---------------------------------------------------------------------
// Committed-artifact gate: results/chaos_study.json
// ---------------------------------------------------------------------

/// Extract the numeric value following `"key": ` inside `chunk`.
fn f64_field(chunk: &str, key: &str) -> f64 {
    let marker = format!("\"{key}\": ");
    let start = chunk
        .find(&marker)
        .unwrap_or_else(|| panic!("field {key} present"))
        + marker.len();
    let end = start
        + chunk[start..]
            .find([',', '}', '\n'])
            .expect("value terminated");
    chunk[start..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("field {key} numeric: {e}"))
}

/// The committed chaos study must be coherent: well-formed header, every
/// series carries the zero-delay anchor cell plus a grid of fault cells
/// with finite statistics, and every *gated* series reproduces its
/// artifact's ρ* in the anchor cell — the same bar `chaos_study` itself
/// enforces before writing the file, re-checked here against the bytes
/// actually in the repository.
#[test]
fn committed_chaos_study_is_coherent_and_anchored() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/chaos_study.json");
    let text = std::fs::read_to_string(&path).expect("committed results/chaos_study.json");
    assert!(
        text.contains("\"kind\": \"seleth-chaos-study\""),
        "kind marker present"
    );
    assert!(f64_field(&text, "runs") >= 2.0);
    assert!(f64_field(&text, "blocks") >= 10_000.0);

    let series: Vec<&str> = text.split("\"strategy\":").skip(1).collect();
    assert!(series.len() >= 2, "study sweeps at least two series");
    let mut gated_seen = false;
    for chunk in series {
        let rho = f64_field(chunk, "rho_star");
        assert!(rho.is_finite() && rho > 0.0);
        let gated = chunk.contains("\"gated\": true");
        gated_seen |= gated;

        let cells: Vec<&str> = chunk.split("\"cell\":").skip(1).collect();
        assert!(cells.len() >= 5, "each series sweeps a fault grid");
        assert!(
            chunk.contains("\"anchor_delay0\""),
            "each series carries the zero-delay anchor"
        );
        for cell in &cells {
            let revenue = f64_field(cell, "revenue");
            let se = f64_field(cell, "std_err");
            let orphan = f64_field(cell, "orphan_rate");
            let mined = f64_field(cell, "mined_fraction");
            assert!(revenue.is_finite() && (0.0..=1.0).contains(&revenue));
            assert!(se.is_finite() && se >= 0.0);
            assert!((0.0..=1.0).contains(&orphan));
            assert!(mined.is_finite() && mined > 0.0 && mined <= 1.0 + 1e-9);
        }

        if gated {
            let anchor = cells
                .iter()
                .find(|c| c.trim_start().starts_with("\"anchor_delay0\""))
                .expect("gated series has the anchor cell");
            let revenue = f64_field(anchor, "revenue");
            let se = f64_field(anchor, "std_err");
            let diff = (revenue - rho).abs();
            assert!(
                diff <= (3.0 * se).max(0.01),
                "gated anchor cell replays {revenue:.5} vs rho* {rho:.5}"
            );
        }
    }
    assert!(gated_seen, "at least one series is gated against its rho*");
}
