//! Tier-1 gates for the peer-graph gossip layer (`seleth-net`) and the
//! committed topology study (`results/topology_study.json`).
//!
//! Four contracts, in increasing order of strictness:
//!
//! 1. *Graceful degradation*: any random connected topology — arbitrary
//!    latencies, lossy edges, relay hubs — runs to completion without
//!    panicking, conserves revenue shares, and replays bit-identically.
//! 2. *Determinism*: graph-mode runs are a pure function of the
//!    configuration — bit-identical across `par_map` thread counts
//!    (every per-edge draw is counter-hashed off the topology seed,
//!    never taken from a shared RNG stream).
//! 3. *Partition equivalence*: a PR 6 group partition expressed as a
//!    timed cut over the peer graph reproduces the uniform engine's
//!    partition run **bit for bit** on an equivalent complete graph.
//! 4. *Uniform identity*: a complete graph at uniform latency reproduces
//!    the fault-unaware delay engine bit for bit — checked against the
//!    same hex anchors `tests/chaos_study.rs` pins, so the gossip path
//!    cannot drift from the engine it generalizes.
//!
//! Plus the committed-artifact gate: `results/topology_study.json` must
//! be coherent, its complete-graph cells bit-equal to uniform, and its
//! hub-vs-leaf attacker spread positive at fixed mean latency.

use std::path::PathBuf;

use proptest::prelude::*;

use selfish_ethereum::prelude::*;

use seleth_bench::par_map;

/// The classic SM1 rule as a policy table — the same hand-written
/// strategy the delay-study and chaos gates replay.
fn sm1(alpha: f64, gamma: f64, max_len: u32) -> PolicyTable {
    PolicyTable::from_fn3(
        alpha,
        gamma,
        RewardModel::Bitcoin,
        Scenario::RegularRate,
        max_len,
        alpha,
        |a, h, fork| {
            if h > a {
                Action::Adopt
            } else if a == h && a >= 1 {
                if fork == Fork::Relevant {
                    Action::Match
                } else {
                    Action::Wait
                }
            } else if a == h + 1 && h >= 1 {
                Action::Override
            } else {
                Action::Wait
            }
        },
    )
}

// ---------------------------------------------------------------------
// 4. Complete-graph/uniform bit identity against the pinned anchors
// ---------------------------------------------------------------------

/// The four reference outcomes `tests/chaos_study.rs` pins for the
/// uniform delay engine, replayed through [`PropagationModel::Graph`] on
/// a complete graph whose every edge carries exactly the uniform delay.
/// The graph path folds each arrival into the same `pub_time + 0.0`
/// arithmetic, so the bit patterns must match — not merely the values.
#[test]
fn complete_graph_reproduces_the_delay_engine_bit_for_bit() {
    let honest_eth = DelayConfig::builder()
        .shares(vec![0.25; 4])
        .delay(6.0)
        .blocks(40_000)
        .seed(2)
        .schedule(RewardSchedule::ethereum())
        .topology(Topology::complete(4, 6.0).expect("valid"))
        .build()
        .expect("valid config");
    let r = DelaySimulation::new(honest_eth).run();
    assert_eq!(r.report.total_reward().to_bits(), 0x40e2decf00000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40c2e9f400000000);

    let sm1_btc = DelayConfig::builder()
        .shares(vec![0.35, 0.65])
        .policy(0, sm1(0.35, 0.5, 12))
        .tie_gamma(0.5)
        .delay(2.0)
        .blocks(30_000)
        .seed(17)
        .schedule(RewardSchedule::bitcoin())
        .topology(Topology::complete(2, 2.0).expect("valid"))
        .build()
        .expect("valid config");
    let r = DelaySimulation::new(sm1_btc).run();
    assert_eq!(r.report.total_reward().to_bits(), 0x40d5848000000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40bd900000000000);

    let duo_btc = DelayConfig::builder()
        .shares(vec![0.3, 0.3, 0.4])
        .policy(0, sm1(0.3, 0.5, 12))
        .policy(1, sm1(0.3, 0.5, 12))
        .tie_gamma(0.5)
        .delay(2.0)
        .blocks(30_000)
        .seed(17)
        .schedule(RewardSchedule::bitcoin())
        .topology(Topology::complete(3, 2.0).expect("valid"))
        .build()
        .expect("valid config");
    let r = DelaySimulation::new(duo_btc).run();
    assert_eq!(r.report.total_reward().to_bits(), 0x40ce9e8000000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40b2e70000000000);
    assert_eq!(r.miner(1).total().to_bits(), 0x40b2840000000000);

    let sm1_eth = DelayConfig::builder()
        .shares(vec![0.4, 0.6])
        .policy(0, sm1(0.4, 0.0, 14))
        .tie_gamma(0.0)
        .delay(4.0)
        .blocks(25_000)
        .seed(41)
        .schedule(RewardSchedule::ethereum())
        .topology(Topology::complete(2, 4.0).expect("valid"))
        .build()
        .expect("valid config");
    let r = DelaySimulation::new(sm1_eth).run();
    assert_eq!(r.report.total_reward().to_bits(), 0x40d3181a00000000);
    assert_eq!(r.miner(0).total().to_bits(), 0x40b8409800000000);
}

// ---------------------------------------------------------------------
// 3. Graph-cut partitions replay the uniform engine's group partitions
// ---------------------------------------------------------------------

/// A PR 6 group partition ({0,1} vs {2,3}, one timed window) on the
/// uniform engine, against the same plan driving per-miner graph cuts on
/// the equivalent complete graph. The cut blocks exactly the deliveries
/// the group split blocks and retries them on the same frontier, so the
/// rewards must agree bit for bit even though the graph engine tracks
/// one view per miner instead of one per group.
#[test]
fn graph_cut_partition_replays_the_group_partition_bit_for_bit() {
    let run = |topo: Option<Topology>| {
        let plan = FaultPlan::builder()
            .partition(20_000.0, 28_000.0, vec![0, 0, 1, 1])
            .seed(5)
            .build()
            .expect("valid plan");
        let mut b = DelayConfig::builder();
        b.shares(vec![0.3, 0.25, 0.25, 0.2])
            .policy(0, sm1(0.3, 0.5, 12))
            .tie_gamma(0.5)
            .delay(4.0)
            .blocks(20_000)
            .seed(33)
            .schedule(RewardSchedule::ethereum())
            .faults(plan);
        if let Some(t) = topo {
            b.topology(t);
        }
        DelaySimulation::new(b.build().expect("valid config")).run()
    };
    let uniform = run(None);
    let graph = run(Some(Topology::complete(4, 4.0).expect("valid")));
    assert!(
        uniform.counters.partition_stalls > 0,
        "the window must actually stall deliveries"
    );
    assert!(graph.counters.partition_stalls > 0);
    assert_eq!(uniform.counters.partition_heals, 1);
    assert_eq!(graph.counters.partition_heals, 1);
    assert_eq!(
        uniform.report.total_reward().to_bits(),
        graph.report.total_reward().to_bits()
    );
    for i in 0..4 {
        assert_eq!(
            uniform.miner(i).total().to_bits(),
            graph.miner(i).total().to_bits(),
            "miner {i}"
        );
    }
    assert_eq!(uniform.report.stale_count, graph.report.stale_count);
}

// ---------------------------------------------------------------------
// 2. Determinism across thread counts
// ---------------------------------------------------------------------

/// A deliberately messy topology: a relay hub, asymmetric spokes,
/// jittered lossy edges — everything that draws from the per-edge hash
/// streams.
fn messy_topology(seed: u64) -> Topology {
    let mut b = Topology::builder();
    let m0 = b.miner();
    let m1 = b.miner();
    let m2 = b.miner();
    let hub = b.relay();
    b.seed(seed);
    b.link(m0, hub, 1.0);
    b.link(m1, hub, 2.5);
    b.link(m2, hub, 5.0);
    b.edge_spec(Link {
        from: m0,
        to: m1,
        latency: Latency::Uniform { lo: 0.5, hi: 4.0 },
        loss: 0.3,
        shortcut: false,
    });
    b.edge_spec(Link {
        from: m1,
        to: m0,
        latency: Latency::Uniform { lo: 0.5, hi: 4.0 },
        loss: 0.3,
        shortcut: false,
    });
    b.shortcut(m1, m2, 0.75);
    b.build().expect("messy topology is valid")
}

/// Per-edge latency and loss coins come from counter-based hashes of the
/// topology seed, never from a shared RNG: the same grid of seeds must
/// produce bit-identical outcomes on 1 worker or 4.
#[test]
fn graph_runs_are_bit_identical_across_thread_counts() {
    let seeds: Vec<u64> = (0..6).map(|k| 5_000 + k).collect();
    let outcome = |threads: usize| -> Vec<(u64, u64, u64)> {
        par_map(&seeds, threads, |&seed| {
            let config = DelayConfig::builder()
                .shares(vec![0.35, 0.35, 0.3])
                .policy(0, sm1(0.35, 0.5, 12))
                .tie_gamma(0.5)
                .delay(3.0)
                .blocks(6_000)
                .seed(seed)
                .schedule(RewardSchedule::ethereum())
                .topology(messy_topology(seed ^ 0x7090))
                .build()
                .expect("valid config");
            let r = DelaySimulation::new(config).run();
            (
                r.report.total_reward().to_bits(),
                r.miner(0).total().to_bits(),
                r.counters.gossip_sends,
            )
        })
    };
    let single = outcome(1);
    let quad = outcome(4);
    assert_eq!(single, quad, "gossip draws must not depend on thread count");
    // And the runs are genuinely seed-sensitive, not degenerate.
    assert!(single.windows(2).any(|w| w[0] != w[1]));
}

// ---------------------------------------------------------------------
// 1. Graceful degradation on random connected topologies
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random connected topologies (a ring backbone guarantees a path
    /// between every pair, chords and loss are arbitrary): the run must
    /// complete, pay only finite non-negative rewards, conserve revenue
    /// shares, and replay bit-identically.
    #[test]
    fn random_connected_topologies_degrade_gracefully(
        sim_seed in any::<u64>(),
        net_seed in any::<u64>(),
        miners in 3usize..6,
        ring_latency in 0.1f64..8.0,
        chords in proptest::collection::vec(
            (0usize..6, 0usize..6, 0.1f64..10.0, 0.0f64..0.5),
            0..4,
        ),
        jitter_edges in any::<bool>(),
    ) {
        let mut b = Topology::builder();
        let first = b.miners(miners);
        b.seed(net_seed);
        for i in 0..miners {
            let j = (i + 1) % miners;
            b.link(first + i, first + j, ring_latency);
        }
        for (a, z, latency, loss) in chords {
            let (a, z) = (a % miners, z % miners);
            if a == z {
                continue;
            }
            let latency = if jitter_edges {
                Latency::Uniform { lo: latency * 0.5, hi: latency }
            } else {
                Latency::Fixed(latency)
            };
            b.edge_spec(Link { from: a, to: z, latency, loss, shortcut: false });
        }
        let topology = b.build().expect("generated topologies are valid");

        let blocks = 2_000u64;
        let mut shares = vec![0.6 / (miners - 1) as f64; miners];
        shares[0] = 0.4;
        let config = DelayConfig::builder()
            .shares(shares)
            .policy(0, sm1(0.4, 0.5, 12))
            .tie_gamma(0.5)
            .delay(3.0)
            .blocks(blocks)
            .seed(sim_seed)
            .schedule(RewardSchedule::ethereum())
            .topology(topology)
            .build()
            .expect("valid config");
        let r = DelaySimulation::new(config.clone()).run();

        prop_assert!(r.report.block_count() <= blocks);
        let total = r.report.total_reward();
        prop_assert!(total.is_finite() && total >= 0.0);
        let mut summed = 0.0;
        for i in 0..miners {
            let t = r.miner(i).total();
            prop_assert!(t.is_finite() && t >= 0.0);
            summed += t;
        }
        prop_assert!((summed - total).abs() <= 1e-9 * total.max(1.0));
        if total > 0.0 {
            let shares: f64 = (0..miners).map(|i| r.revenue_share(i)).sum();
            prop_assert!((shares - 1.0).abs() < 1e-9);
        }
        let orphans = r.orphan_rate();
        prop_assert!((0.0..=1.0).contains(&orphans));
        // The ring backbone keeps every miner reachable.
        prop_assert_eq!(r.counters.gossip_unreachable, 0);

        // Replay is a pure function of the configuration.
        let again = DelaySimulation::new(config).run();
        prop_assert_eq!(
            again.report.total_reward().to_bits(),
            total.to_bits(),
            "graph runs must replay bit-identically"
        );
    }
}

// ---------------------------------------------------------------------
// Committed-artifact gate: results/topology_study.json
// ---------------------------------------------------------------------

/// Extract the numeric value following `"key": ` inside `chunk`.
fn f64_field(chunk: &str, key: &str) -> f64 {
    let marker = format!("\"{key}\": ");
    let start = chunk
        .find(&marker)
        .unwrap_or_else(|| panic!("field {key} present"))
        + marker.len();
    let end = start
        + chunk[start..]
            .find([',', '}', '\n'])
            .expect("value terminated");
    chunk[start..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("field {key} numeric: {e}"))
}

/// Extract the string value following `"key": "` inside `chunk`.
fn str_field<'a>(chunk: &'a str, key: &str) -> &'a str {
    let marker = format!("\"{key}\": \"");
    let start = chunk
        .find(&marker)
        .unwrap_or_else(|| panic!("field {key} present"))
        + marker.len();
    let end = start + chunk[start..].find('"').expect("string terminated");
    &chunk[start..end]
}

/// The committed topology study must be coherent: well-formed header,
/// every gate bit-identical and with a positive hub-vs-leaf spread, and
/// every swept cell carrying finite statistics at the fixed mean
/// latency — the same bar `topology_study` itself enforces before
/// writing the file, re-checked here against the bytes actually in the
/// repository.
#[test]
fn committed_topology_study_is_coherent_and_gated() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/topology_study.json");
    let text = std::fs::read_to_string(&path).expect("committed results/topology_study.json");
    assert!(
        text.contains("\"kind\": \"seleth-topology-study\""),
        "kind marker present"
    );
    assert!(f64_field(&text, "runs") >= 2.0);
    assert!(f64_field(&text, "blocks") >= 10_000.0);
    let mean_latency = f64_field(&text, "mean_latency");
    assert!(mean_latency > 0.0);

    // Every gate: the complete graph replays uniform to the bit, and the
    // well-connected attacker out-earns the peripheral one.
    let gates: Vec<&str> = text.split("\"bit_identical\":").skip(1).collect();
    assert!(gates.len() >= 2, "study gates at least two series");
    for gate in &gates {
        assert!(
            gate.trim_start().starts_with("true"),
            "complete-graph cells must be bit-identical to uniform"
        );
        assert_eq!(
            str_field(gate, "uniform_revenue_bits"),
            str_field(gate, "complete_revenue_bits"),
            "the recorded bit patterns must agree"
        );
        let spread = f64_field(gate, "hub_leaf_spread");
        assert!(
            spread > 0.0,
            "hub attacker must out-earn leaf attacker: spread {spread}"
        );
    }

    // Every swept cell is statistically sane.
    let cells: Vec<&str> = text.split("\"shape\":").skip(1).collect();
    assert!(cells.len() >= 14, "full sweep covers the shape grid");
    let mut relay_seen = false;
    for cell in &cells {
        let revenue = f64_field(cell, "revenue");
        let se = f64_field(cell, "std_err");
        let orphan = f64_field(cell, "orphan_rate");
        let latency = f64_field(cell, "mean_latency");
        assert!(revenue.is_finite() && (0.0..=1.0).contains(&revenue));
        assert!(se.is_finite() && se >= 0.0);
        assert!((0.0..=1.0).contains(&orphan));
        assert!(latency.is_finite() && latency > 0.0);
        // The revenue_bits hex field round-trips to the revenue value.
        let bits = str_field(cell, "revenue_bits");
        let bits = u64::from_str_radix(bits.trim_start_matches("0x"), 16).expect("hex bits");
        assert_eq!(f64::from_bits(bits).to_bits(), revenue.to_bits());
        if cell.trim_start().starts_with("\"relay_shortcut\"") {
            relay_seen = true;
            assert!(
                latency < mean_latency,
                "the relay overlay must lower the effective mean latency"
            );
        }
    }
    assert!(relay_seen, "the relay-shortcut shape is part of the sweep");
}
