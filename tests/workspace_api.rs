//! Cross-crate API flows through the facade: building trees by hand,
//! classifying and accounting them, and wiring analysis pieces together —
//! the way a downstream user would.

use selfish_ethereum::chain::accounting;
use selfish_ethereum::chain::classify::{self, BlockClass};
use selfish_ethereum::chain::forkchoice::{self, TieBreak};
use selfish_ethereum::markov::{ChainBuilder, SolveOptions};
use selfish_ethereum::prelude::*;

#[test]
fn manual_selfish_episode_accounts_like_the_paper() {
    // Re-enact Fig. 5: the pool withholds three blocks, publishes under
    // pressure, and overrides two honest blocks.
    let pool = MinerId(0);
    let honest = MinerId(1);
    let mut tree = BlockTree::new();
    let base = tree.genesis();

    // Step 1: pool mines A1, B1, C1 privately.
    let a1 = tree.add_block(base, pool, &[]).unwrap();
    let b1 = tree.add_block(a1, pool, &[]).unwrap();
    let c1 = tree.add_block(b1, pool, &[]).unwrap();
    // Step 2: honest A2 appears, pool publishes A1.
    let a2 = tree.add_block(base, honest, &[]).unwrap();
    // Step 3: honest B2 on A2; pool publishes everything and wins.
    let b2 = tree.add_block(a2, honest, &[]).unwrap();
    // Aftermath: next block (honest) extends C1, referencing the orphans.
    let d = tree.add_block(c1, honest, &[a2, b2]).unwrap();

    let chain = forkchoice::longest_chain(&tree, TieBreak::FirstSeen);
    assert_eq!(chain.last(), Some(&d));

    let classes = classify::classify(&tree, &chain, 6);
    assert_eq!(classes[&c1], BlockClass::Regular);
    // A2 forked directly off the main chain → uncle, referenced by D at
    // height 4 (distance 3). B2's parent A2 is itself stale, so B2 can
    // never be an uncle (the paper's Case 11) — D's reference to it is
    // invalid and ignored.
    assert!(matches!(
        classes[&a2],
        BlockClass::Uncle { distance: 3, .. }
    ));
    assert_eq!(classes[&b2], BlockClass::Stale);

    let report = accounting::account(&tree, &chain, &RewardSchedule::ethereum());
    // Pool: 3 static; honest: 1 static + Ku(3) + 1 nephew reward.
    assert_eq!(report.miner(pool).static_reward, 3.0);
    let h = report.miner(honest);
    assert_eq!(h.static_reward, 1.0);
    assert!((h.uncle_reward - 5.0 / 8.0).abs() < 1e-12);
    assert!((h.nephew_reward - 1.0 / 32.0).abs() < 1e-12);
    assert_eq!(h.stale_blocks, 1);
}

#[test]
fn markov_crate_usable_standalone() {
    // The generic machinery is not tied to the mining model.
    let mut b = ChainBuilder::new();
    for i in 0..10u32 {
        b.add_rate(i, (i + 1) % 10, 1.0);
        b.add_rate(i, i, 1.0);
    }
    let pi = b.build_dtmc().stationary(SolveOptions::default()).unwrap();
    for i in 0..10u32 {
        assert!((pi.prob(&i) - 0.1).abs() < 1e-9);
    }
}

#[test]
fn facade_prelude_covers_the_workflow() {
    let params = ModelParams::new(0.2, 0.5, RewardSchedule::ethereum()).unwrap();
    let analysis = Analysis::new(&params).unwrap();
    let revenue: RevenueBreakdown = analysis.revenue();
    assert!(revenue.relative_pool_share() > 0.0);

    let config = SimConfig::builder()
        .alpha(0.2)
        .blocks(5_000)
        .seed(3)
        .build()
        .unwrap();
    let report: SimReport = Simulation::new(config).run();
    assert!(report.pool.total() > 0.0);
}

#[test]
fn ghost_and_longest_agree_on_selfish_trees() {
    // Under Algorithm 1 the private branch is both longest and heaviest,
    // so the two fork-choice rules pick the same head on simulated trees.
    let config = SimConfig::builder()
        .alpha(0.4)
        .blocks(5_000)
        .n_honest(50)
        .seed(9)
        .build()
        .unwrap();
    let mut sim = Simulation::new(config);
    for _ in 0..5_000 {
        sim.step();
    }
    let tree = sim.tree();
    let a = forkchoice::longest_chain_head(tree, TieBreak::FirstSeen);
    let b = forkchoice::ghost_head(tree, TieBreak::FirstSeen);
    assert_eq!(tree.height(a), tree.height(b), "same consensus depth");
}

#[test]
fn state_space_descriptors_flow_through_the_prelude() {
    // The v2 policy API end to end through the facade: explicit state
    // spaces, the generic constructor, distance-aware decisions, and the
    // format-2 artifact round-trip.
    let classic = StateSpace::classic(8);
    assert_eq!(classic.dims(), vec![("fork", 3), ("a", 9), ("h", 9)]);
    assert_eq!(classic.match_d_bound(), None);

    let eth = StateSpace::ethereum(8);
    assert_eq!(eth.match_d_bound(), Some(MATCH_D_CAP));
    assert_eq!(eth.len(), 3 * 9 * 9 * usize::from(MATCH_D_CAP + 1));

    // A rule that genuinely reads the fourth axis: concede only on rich
    // published prefixes (and at the truncation boundary, where waiting
    // is no longer a legal prescription).
    let table = PolicyTable::from_fn(
        0.3,
        0.5,
        RewardModel::EthereumApprox,
        Scenario::RegularRate,
        eth,
        0.3,
        |a, h, _, d| {
            if (1..=2).contains(&d) || a >= 8 || h >= 8 {
                Action::Adopt
            } else {
                Action::Wait
            }
        },
    );
    assert_eq!(table.state_space(), eth);
    assert_eq!(table.decide(1, 3, Fork::Relevant, 0), Action::Wait);
    assert_eq!(table.decide(1, 3, Fork::Relevant, 2), Action::Adopt);
    assert!(table.is_legal_everywhere());

    let json = table.to_json();
    assert!(json.contains("\"format\": 2") && json.contains("\"dims\""));
    let restored = PolicyTable::from_json(&json).expect("v2 parse");
    assert_eq!(table, restored);

    // The facade also replays four-axis tables: the zoo's uncle-aware
    // family through the delay simulator, end to end.
    let family = Family::UncleTrailStubborn { k: 1, cash_d: 2 };
    let config = DelayConfig::builder()
        .shares(vec![0.3, 0.7])
        .policy(0, family.table(0.3, 0.5, 12))
        .tie_gamma(0.5)
        .delay(0.0)
        .blocks(2_000)
        .seed(5)
        .build()
        .expect("valid delay config");
    let report = DelaySimulation::new(config).run();
    assert_eq!(report.report.block_count(), 2_000);
}

#[test]
fn telemetry_types_flow_through_the_prelude() {
    // The observability layer end to end through the facade: a recorded
    // parallel sweep, deterministic counter totals, a trace, and the
    // profile renderer.
    let config = SimConfig::builder()
        .alpha(0.3)
        .blocks(2_000)
        .seed(7)
        .build()
        .unwrap();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = &trace;
    let (reports, shards) =
        selfish_ethereum::sim::multi::run_many_recorded(&config, 4, 2, recorder);
    assert_eq!(reports.len(), 4);
    assert_eq!(trace.len(), 4, "one span per recorded run");

    let mut merged = Telemetry::merge_shards(&shards);
    assert_eq!(merged.counter("sim.runs"), 4);
    assert_eq!(merged.counter("sim.blocks"), 8_000);

    // The no-op recorder produces bit-identical results.
    let (baseline, _) =
        selfish_ethereum::sim::multi::run_many_recorded(&config, 4, 1, &NoopRecorder);
    let revenue = |rs: &[SimReport]| -> Vec<f64> {
        rs.iter()
            .map(|r| r.absolute_pool(Scenario::RegularRate))
            .collect()
    };
    assert_eq!(revenue(&reports), revenue(&baseline));

    // Shards from a DelayCounters run fold into the same summary type.
    let delay_config = DelayConfig::builder()
        .shares(vec![0.3, 0.7])
        .tie_gamma(0.5)
        .delay(2.0)
        .blocks(1_000)
        .seed(11)
        .build()
        .unwrap();
    let report = DelaySimulation::new(delay_config).run();
    let counters: DelayCounters = report.counters;
    let mut shard = TelemetryShard::new(0);
    counters.record_into(&mut shard);
    merged.fold_shard(&shard);
    assert_eq!(merged.counter("delay.mining_events"), 1_000);

    // A stopwatch ticks and the summary renders through the profiler.
    let watch = Stopwatch::start();
    merged.wall_ns = watch.elapsed_ns().max(1);
    let doc = format!(
        "{{\"kind\": \"facade-test\", \"telemetry\": {}}}",
        merged.to_json(0)
    );
    let rendered = selfish_ethereum::obs::render_profile("facade", &doc).unwrap();
    assert!(rendered.contains("facade"));
    assert!(rendered.contains("sim.runs"));
}

#[test]
fn error_types_are_std_errors() {
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<AnalysisError>();
    assert_error::<selfish_ethereum::chain::ChainError>();
    assert_error::<selfish_ethereum::markov::SolveError>();
    assert_error::<selfish_ethereum::sim::SimError>();
    assert_error::<NetError>();
}

#[test]
fn network_types_flow_through_the_prelude() {
    // Hand-build a topology with a relay and a lossy jittered edge, then
    // drive the delay simulator in graph mode — the downstream workflow.
    let mut b = Topology::builder();
    let m0 = b.miner();
    let m1 = b.miner();
    let hub = b.relay();
    b.link(m0, hub, 1.0);
    b.link(m1, hub, 2.0);
    b.edge_spec(Link {
        from: m0,
        to: m1,
        latency: Latency::Uniform { lo: 0.5, hi: 1.5 },
        loss: 0.1,
        shortcut: false,
    });
    let topology = b.build().expect("valid topology");
    assert_eq!(topology.miner_count(), 2);
    assert_eq!(topology.relay_count(), 1);
    assert_eq!(topology.node_count(), 3);
    assert!(matches!(NodeRole::Miner(0), NodeRole::Miner(_)));

    let p: Propagation = topology.propagate(0, 0);
    assert_eq!(p.arrival[0], 0.0, "the producer holds its own block");
    assert!(p.arrival[1].is_finite(), "the relay path delivers");
    assert!(p.stats.sends > 0);

    // Invalid shapes surface the typed error.
    assert!(matches!(
        Topology::builder().build(),
        Err(NetError::NoMiners)
    ));

    // The propagation model threads through the delay configuration.
    let config = DelayConfig::builder()
        .shares(vec![0.5, 0.5])
        .delay(2.0)
        .blocks(1_000)
        .seed(3)
        .propagation(PropagationModel::Graph(std::sync::Arc::new(
            Topology::complete(2, 2.0).expect("valid"),
        )))
        .build()
        .expect("valid graph config");
    assert!(matches!(config.propagation(), PropagationModel::Graph(_)));
    let r = DelaySimulation::new(config).run();
    assert_eq!(r.report.block_count(), 1_000);
    assert!(r.counters.gossip_sends > 0);
}

#[test]
fn data_types_are_debuggable_and_cloneable() {
    let params = ModelParams::new(0.3, 0.5, RewardSchedule::ethereum()).unwrap();
    let text = format!("{:?}", params.clone());
    assert!(text.contains("0.3"));

    let config = SimConfig::builder().alpha(0.25).build().unwrap();
    let text = format!("{:?}", config.clone());
    assert!(text.contains("0.25"));
}
