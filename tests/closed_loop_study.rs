//! Tier-1 gates for the delay-aware (race-window) artifacts and the
//! committed closed-loop study (`results/optimal_closed_loop.json`).
//!
//! The PR 8 kernel folds each release's orphan/loss probability into the
//! MDP's transition rows, so artifacts solved at a nonzero
//! delay/interval ratio price in the races the propagation-delay
//! simulator will actually run. These gates hold the committed
//! truncation-200 artifacts to that promise:
//!
//! 1. *Dominance*: at its design delay, a delay-aware artifact replayed
//!    in the duopoly delay simulator must not trail the zero-delay
//!    baseline (`bitcoin_a040_g050`) by more than 3 combined standard
//!    errors or 1% absolute — and, under the pinned study seeds, must
//!    strictly beat it.
//! 2. *Metadata*: the artifacts carry their solve-time delay ratio and
//!    truncation, and their self-predicted ρ* prices in the races (below
//!    the zero-delay ρ*).
//! 3. *Fault-layer identity*: an explicit [`FaultPlan::none`] replays a
//!    delay-aware artifact bit-for-bit identically to the fault-free
//!    configuration path.

use std::path::Path;

use selfish_ethereum::prelude::*;

use seleth_bench::mean_stderr;

const RUNS: u64 = 8;
const BLOCKS: u64 = 30_000;
const SEED: u64 = 31_337;
/// Mean block interval used by the closed-loop study (seconds).
const INTERVAL: f64 = 13.0;

fn load_artifact(name: &str) -> PolicyTable {
    let path = Path::new("results/policies").join(name);
    PolicyTable::load(&path).unwrap_or_else(|e| panic!("committed artifact {name}: {e}"))
}

/// Replay `table` in the duopoly delay simulator at `delay` seconds —
/// the closed-loop study's world, pinned seeds included.
fn delay_playback(table: &PolicyTable, delay: f64, runs: u64, blocks: u64) -> Vec<f64> {
    let config = DelayConfig::builder()
        .shares(vec![table.alpha(), 1.0 - table.alpha()])
        .policy(0, table.clone())
        .tie_gamma(table.gamma())
        .delay(delay)
        .interval(INTERVAL)
        .schedule(RewardSchedule::bitcoin())
        .blocks(blocks)
        .seed(SEED)
        .build()
        .expect("valid delay config");
    (0..runs)
        .map(|k| {
            DelaySimulation::new(config.with_seed(SEED + k))
                .run()
                .revenue_share(0)
        })
        .collect()
}

/// The dominance gate shared by both design-delay tests: aware vs
/// baseline at `delay` seconds, 3σ-or-1% tolerance plus the strict
/// deterministic improvement under the pinned seeds.
fn assert_aware_dominates(aware_name: &str, delay: f64) {
    let aware = load_artifact(aware_name);
    let base = load_artifact("bitcoin_a040_g050.json");
    let (aware_mean, aware_se) = mean_stderr(&delay_playback(&aware, delay, RUNS, BLOCKS));
    let (base_mean, base_se) = mean_stderr(&delay_playback(&base, delay, RUNS, BLOCKS));
    let combined = aware_se.hypot(base_se);
    assert!(
        aware_mean >= base_mean - (3.0 * combined).max(0.01),
        "{aware_name} at {delay}s: {aware_mean} trails the zero-delay \
         baseline {base_mean} beyond 3σ-or-1%"
    );
    // Under the pinned seeds the replay is deterministic, so the study's
    // measured improvement is a reproducible fact, not a noisy estimate.
    assert!(
        aware_mean > base_mean,
        "{aware_name} at {delay}s: {aware_mean} must strictly beat the \
         zero-delay baseline {base_mean} under the pinned study seeds"
    );
}

#[test]
fn six_second_artifact_dominates_the_baseline_at_its_design_delay() {
    assert_aware_dominates("bitcoin_a040_g050_d6.json", 6.0);
}

#[test]
fn twelve_second_artifact_dominates_the_baseline_at_its_design_delay() {
    assert_aware_dominates("bitcoin_a040_g050_d12.json", 12.0);
}

#[test]
fn aware_artifacts_carry_their_race_window_metadata() {
    let base = load_artifact("bitcoin_a040_g050.json");
    assert_eq!(base.delay(), 0.0, "the baseline is a zero-delay artifact");
    for (name, seconds) in [
        ("bitcoin_a040_g050_d6.json", 6.0),
        ("bitcoin_a040_g050_d12.json", 12.0),
    ] {
        let aware = load_artifact(name);
        assert_eq!(aware.delay(), seconds / INTERVAL, "{name} delay ratio");
        assert_eq!(aware.max_len(), 200, "{name} truncation");
        assert_eq!(aware.alpha(), base.alpha());
        assert_eq!(aware.gamma(), base.gamma());
        // The race-window kernel prices in orphan losses the zero-delay
        // model ignores, so the self-predicted ρ* must drop.
        assert!(
            aware.predicted_revenue() < base.predicted_revenue(),
            "{name} rho* {} must price in races (baseline {})",
            aware.predicted_revenue(),
            base.predicted_revenue()
        );
    }
}

#[test]
fn fault_free_plans_replay_aware_artifacts_bit_identically() {
    // The chaos layer's zero-fault identity, re-gated on a delay-aware
    // artifact: an explicit FaultPlan::none() must not perturb a single
    // rounding step of the closed-loop replay.
    let aware = load_artifact("bitcoin_a040_g050_d6.json");
    let plain_config = DelayConfig::builder()
        .shares(vec![aware.alpha(), 1.0 - aware.alpha()])
        .policy(0, aware.clone())
        .tie_gamma(aware.gamma())
        .delay(6.0)
        .interval(INTERVAL)
        .schedule(RewardSchedule::bitcoin())
        .blocks(20_000)
        .seed(SEED)
        .build()
        .expect("valid delay config");
    let none_config = DelayConfig::builder()
        .shares(vec![aware.alpha(), 1.0 - aware.alpha()])
        .policy(0, aware.clone())
        .tie_gamma(aware.gamma())
        .delay(6.0)
        .interval(INTERVAL)
        .schedule(RewardSchedule::bitcoin())
        .blocks(20_000)
        .seed(SEED)
        .faults(FaultPlan::none())
        .build()
        .expect("valid delay config");
    let plain = DelaySimulation::new(plain_config).run();
    let none = DelaySimulation::new(none_config).run();
    assert_eq!(
        plain.report.total_reward().to_bits(),
        none.report.total_reward().to_bits(),
        "FaultPlan::none() must not change the total reward"
    );
    assert_eq!(
        plain.miner(0).total().to_bits(),
        none.miner(0).total().to_bits(),
        "FaultPlan::none() must not change the strategist's reward"
    );
    assert_eq!(
        plain.counters.released_blocks,
        none.counters.released_blocks
    );
}
