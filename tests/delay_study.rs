//! Cross-validation of strategic playback in the propagation-delay
//! simulator against the PR 2 policy subsystem.
//!
//! The delay engine replays the *committed* policy artifacts under
//! `results/policies/` — the exact tables the `optimal_sim` experiment
//! gated against the MDP's ρ*. In the zero-delay limit with two miners the
//! delay simulator models the same world as the instant-broadcast engine,
//! so its measured revenue must reproduce both the predicted ρ* and the
//! engine's own `PoolStrategy::Table` playback. Nothing is shared between
//! the two simulators beyond the artifact and the reward accounting, so
//! agreement validates the delay engine's strategic event loop end to end.

use std::path::Path;

use selfish_ethereum::prelude::*;

use seleth_bench::mean_stderr;

const RUNS: u64 = 8;
const BLOCKS: u64 = 30_000;
const SEED: u64 = 31_337;

fn load_artifact(name: &str) -> PolicyTable {
    let path = Path::new("results/policies").join(name);
    PolicyTable::load(&path).unwrap_or_else(|e| panic!("committed artifact {name}: {e}"))
}

/// Replay `table` in the delay simulator: a two-miner world (strategist
/// vs one honest pool), Bitcoin schedule, `runs` seeds.
fn delay_playback(table: &PolicyTable, delay: f64, runs: u64, blocks: u64) -> Vec<f64> {
    let config = DelayConfig::builder()
        .shares(vec![table.alpha(), 1.0 - table.alpha()])
        .policy(0, table.clone())
        .tie_gamma(table.gamma())
        .delay(delay)
        .schedule(RewardSchedule::bitcoin())
        .blocks(blocks)
        .seed(SEED)
        .build()
        .expect("valid delay config");
    (0..runs)
        .map(|k| {
            DelaySimulation::new(config.with_seed(SEED + k))
                .run()
                .revenue_share(0)
        })
        .collect()
}

#[test]
fn zero_delay_strategic_run_reproduces_rho_star_below_threshold() {
    // Bitcoin-model artifact at α = 0.20, γ = 0.5: below the optimal-play
    // threshold, ρ* = α exactly. Hard gate: 3 standard errors AND 1%
    // absolute, the same bar `tests/policy_playback.rs` sets the engine.
    let table = load_artifact("bitcoin_a020_g050.json");
    let rho = table.predicted_revenue();
    let (mean, std_err) = mean_stderr(&delay_playback(&table, 0.0, RUNS, BLOCKS));
    let diff = (mean - rho).abs();
    assert!(
        diff <= 3.0 * std_err,
        "delay sim {mean} vs rho* {rho} is {:.2} standard errors",
        diff / std_err
    );
    assert!(diff <= 0.01, "delay sim {mean} vs rho* {rho} misses 1%");
}

#[test]
fn zero_delay_strategic_run_reproduces_rho_star_above_threshold() {
    // Bitcoin-model artifact at α = 0.40, γ = 0.5 (ρ* ≈ 0.57): the
    // zero-delay limit must land within 3 standard errors or 1% absolute
    // of the PR 2 prediction — deep in profitable territory, with live
    // match races exercising the tie_gamma machinery.
    let table = load_artifact("bitcoin_a040_g050.json");
    let rho = table.predicted_revenue();
    let (mean, std_err) = mean_stderr(&delay_playback(&table, 0.0, RUNS, BLOCKS));
    let diff = (mean - rho).abs();
    assert!(
        diff <= (3.0 * std_err).max(0.01),
        "delay sim {mean} vs rho* {rho}: {:.2} standard errors and {diff:.4} absolute",
        diff / std_err
    );
    // And the edge itself must be there: far above the fair share.
    assert!(mean > 0.5, "optimal play at 40% must clear half: {mean}");
}

#[test]
fn zero_delay_strategic_run_matches_engine_playback() {
    // Same artifact, same world, two independent executors: the delay
    // simulator at delay 0 vs the engine's PoolStrategy::Table. Their
    // mean revenues must agree within combined Monte-Carlo noise.
    let table = load_artifact("bitcoin_a035_g000.json");
    let (delay_mean, delay_se) = mean_stderr(&delay_playback(&table, 0.0, RUNS, BLOCKS));

    let engine_config = SimConfig::builder()
        .alpha(table.alpha())
        .gamma(table.gamma())
        .schedule(RewardSchedule::bitcoin())
        .blocks(BLOCKS)
        .n_honest(1)
        .seed(SEED)
        .policy(table)
        .build()
        .expect("valid engine config");
    let reports = multi::run_many(&engine_config, RUNS);
    let engine: Vec<f64> = reports
        .iter()
        .map(|r| r.absolute_pool(Scenario::RegularRate))
        .collect();
    let (engine_mean, engine_se) = mean_stderr(&engine);

    let diff = (delay_mean - engine_mean).abs();
    let combined = (delay_se * delay_se + engine_se * engine_se).sqrt();
    assert!(
        diff <= (3.0 * combined).max(0.01),
        "delay sim {delay_mean} vs engine playback {engine_mean}: \
         {:.2} combined standard errors",
        diff / combined
    );
}

#[test]
fn strategic_delay_runs_are_seed_deterministic() {
    let table = load_artifact("bitcoin_a035_g000.json");
    let a = delay_playback(&table, 3.0, 2, 5_000);
    let b = delay_playback(&table, 3.0, 2, 5_000);
    assert_eq!(a, b, "same seeds must reproduce bit-identical revenue");
    let c = delay_playback(&table, 4.0, 2, 5_000);
    assert_ne!(a, c, "a different delay must change the dynamics");
}

#[test]
fn delay_strictly_degrades_the_above_threshold_artifact() {
    // The study's headline, as a regression: the α = 0.40 artifact's
    // measured revenue falls monotonically-in-spirit (0 vs 6s) once
    // propagation delay lets honest miners race its overrides.
    let table = load_artifact("bitcoin_a040_g050.json");
    let (fast, _) = mean_stderr(&delay_playback(&table, 0.0, 4, 20_000));
    let (slow, _) = mean_stderr(&delay_playback(&table, 6.0, 4, 20_000));
    assert!(
        slow < fast - 0.01,
        "6s of delay must cost the strategist: {slow} vs {fast}"
    );
}
