//! Vendored wall-clock benchmarking subset of `criterion`.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple timing loop:
//! per sample, the measured closure is batched until it exceeds a minimum
//! measurable duration, and the mean/min per-iteration wall time over
//! `sample_size` samples is printed. When run under `cargo test` (bench
//! targets default to `test = true`), pass `--test` to skip measurement.
//! See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// `--test` mode: run each closure once, skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, self.test_mode, |b| f(b));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Throughput annotation for a group; reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id carrying both a function name and a parameter.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `name` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        let per_iter = run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.test_mode,
            |b| f(b),
        );
        self.report_throughput(per_iter);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let per_iter = run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.test_mode,
            |b| f(b, input),
        );
        self.report_throughput(per_iter);
        self
    }

    /// Finish the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}

    fn report_throughput(&self, per_iter: Option<Duration>) {
        let (Some(t), Some(per_iter)) = (self.throughput, per_iter) else {
            return;
        };
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                println!("{:>24} {:.3} Kelem/s", "", n as f64 / secs / 1e3);
            }
            Throughput::Bytes(n) => {
                println!("{:>24} {:.3} MiB/s", "", n as f64 / secs / 1024.0 / 1024.0);
            }
        }
    }
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    /// Mean per-iteration duration across samples.
    result: Option<Duration>,
    /// Fastest per-iteration sample.
    best: Option<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Time `f`, batching iterations until each sample is long enough to
    /// measure reliably.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f());
            self.result = Some(Duration::ZERO);
            return;
        }
        // Calibrate: batch until one sample exceeds ~5 ms.
        let mut iters_per_sample = 1u64;
        let min_sample = Duration::from_millis(5);
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= min_sample || iters_per_sample >= 1 << 20 {
                break;
            }
            // Grow toward the target with headroom.
            let factor = (min_sample.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .ceil()
                .min(1024.0) as u64;
            iters_per_sample = (iters_per_sample * factor.max(2)).min(1 << 20);
        }

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            best = best.min(elapsed);
        }
        let denom = iters_per_sample.max(1) as u32;
        let mean = total / (self.sample_size as u32) / denom;
        self.result = Some(mean);
        self.best = Some(best / denom);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) -> Option<Duration> {
    let mut bencher = Bencher {
        result: None,
        best: None,
        sample_size,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("test-mode {name}: ok");
        return None;
    }
    match (bencher.result, bencher.best) {
        (Some(mean), Some(best)) => {
            println!(
                "bench {name:<48} mean {:>12} min {:>12} ({} samples)",
                format_duration(mean),
                format_duration(best),
                sample_size
            );
            Some(mean)
        }
        _ => {
            println!("bench {name}: closure never called Bencher::iter");
            None
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declare a benchmark group runner function, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
