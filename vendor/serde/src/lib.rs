//! Vendored marker-trait subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! as part of their API contract, but nothing in-tree actually serializes
//! through serde (experiment binaries write CSV/JSON by hand). This subset
//! keeps the derives compiling in the offline build environment: the traits
//! are markers and the derive macros emit empty impls. Swapping in the real
//! `serde` restores full functionality without any source change.
//! See `vendor/README.md`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
