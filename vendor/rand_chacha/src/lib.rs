//! Vendored ChaCha12-based RNG. A real ChaCha stream cipher core (12
//! rounds), but seeded via `rand_core`'s SplitMix64 `seed_from_u64`, so
//! streams are deterministic within this workspace yet not byte-compatible
//! with upstream `rand_chacha`. See `vendor/README.md`.

#![forbid(unsafe_code)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

/// A ChaCha stream with 12 rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Cipher input state: constants, 32-byte key, 64-bit counter, 64-bit
    /// nonce (zero).
    state: [u32; 16],
    /// Current 64-byte output block as sixteen words.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    word_pos: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 12;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word_pos = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha12Rng {
            state,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut c = ChaCha12Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // 16 words per block; draw three blocks' worth and check no cycle.
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn rfc8439_style_known_state_changes() {
        // Smoke test: all-zero seed produces a non-trivial, stable stream.
        let mut rng = ChaCha12Rng::from_seed([0u8; 32]);
        let a = rng.next_u32();
        let b = rng.next_u32();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        // Re-creating reproduces it exactly.
        let mut rng2 = ChaCha12Rng::from_seed([0u8; 32]);
        assert_eq!(rng2.next_u32(), a);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha12Rng::seed_from_u64(3);
        let mut b = ChaCha12Rng::seed_from_u64(3);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }
}
