//! Vendored property-testing subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's test suites
//! use: the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range/tuple/`Just`/`any` strategies, [`collection::vec`], the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]/
//! [`prop_oneof!`] macros and a deterministic case runner. Cases are
//! generated from a ChaCha12 stream seeded by the test name, so failures
//! reproduce exactly; there is no shrinking. See `vendor/README.md`.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Generate arbitrary values of `T` (full-range for the integer types the
/// workspace tests use).
pub fn any<T: strategy::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The core macro: declares property tests over named strategies.
///
/// Supports the `#![proptest_config(...)]` inner attribute and any number
/// of `fn name(binding in strategy, ...) { body }` items carrying their own
/// outer attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    $( let $arg = $crate::strategy::Strategy::gen(&($strat), __rng); )+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body; failure reports the
/// formatted message and fails the test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Discard the current case (not counted as a failure) when a precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::BoxedStrategy::new($strat) ),+
        ])
    };
}
