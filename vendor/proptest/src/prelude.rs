//! One-stop imports mirroring `proptest::prelude`.

pub use crate::any;
pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
