//! The deterministic case runner.

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per property.
    pub cases: u32,
    /// Give up after this many rejected cases.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases, other fields default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assume!` precondition failed: skip, don't fail.
    Reject(String),
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

/// Result type of a generated test-case closure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG driving strategy generation: a ChaCha12 stream seeded from the
/// test name, so every run of a given property generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha12Rng);

impl TestRng {
    fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable, collision-tolerant (a
        // collision only means two properties share a stream).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(ChaCha12Rng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Run `config.cases` cases of `f`, panicking on the first failure.
///
/// # Panics
///
/// Panics when a case fails (with its case number and message) or when too
/// many consecutive cases are rejected.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    f: impl Fn(&mut TestRng) -> TestCaseResult,
) {
    let mut rng = TestRng::for_test(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(cond)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property {test_name}: too many prop_assume! rejections (last: {cond})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {test_name} failed at case {passed}: {msg}")
            }
        }
    }
}
