//! Strategies: composable random-value generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng as _, RngCore as _};

use crate::test_runner::TestRng;

/// A generator of test-case values. Unlike upstream proptest there is no
/// value tree: strategies generate directly and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Types with a canonical full-range strategy (the workspace's `any::<T>()`
/// surface).
pub trait Arbitrary: Sized {
    /// The strategy [`crate::any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range generator behind [`crate::any`].
pub struct Any<T>(PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty => $method:ident),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.$method() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64);

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(PhantomData)
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn gen(&self, rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Object-safe strategy wrapper used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> BoxedStrategy<T> {
    /// Erase `strategy`.
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        BoxedStrategy(Box::new(strategy))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Wrap the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].gen(rng)
    }
}
