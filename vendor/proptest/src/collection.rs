//! Collection strategies (`vec`).

use std::ops::Range;

use rand::Rng as _;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec()`]: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}
