//! Vendored API subset of `rand_core`: the two traits the workspace uses.
//! See `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (deterministic,
    /// well-mixed; not stream-compatible with upstream `rand_core`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, v) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}
