//! Derive macros for the vendored `serde` marker traits: each derive emits
//! an empty impl of the corresponding marker. Supports plain (non-generic)
//! structs and enums, which covers every derive site in the workspace.
//! See `vendor/README.md`.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct`/`enum`/`union` keyword,
/// skipping attributes and visibility modifiers.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "vendored serde_derive does not support generic type `{name}`; \
                                 see vendor/README.md"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{word}`, found {other:?}"),
                }
            }
        }
    }
    panic!("derive input contains no struct/enum/union")
}

/// Stand-in for `serde_derive::Serialize`: emits an empty marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Stand-in for `serde_derive::Deserialize`: emits an empty marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
