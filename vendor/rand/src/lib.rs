//! Vendored API subset of `rand`: the `Rng` extension trait over
//! `rand_core::RngCore`, covering exactly the sampling surface the
//! workspace uses (`gen_bool`, `gen_range` over integer and float ranges).
//! See `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Types that can describe a sampled range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

/// Convert 53 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (rng.next_u64() >> 11) as f64 * SCALE
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        // Include the upper endpoint by scaling 53-bit draws over 2^53
        // inclusive steps.
        const DENOM: f64 = ((1u64 << 53) - 1) as f64;
        let u = (rng.next_u64() >> 11) as f64 / DENOM;
        start + u * (end - start)
    }
}

/// Extension methods for random sampling, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A crude LCG: good enough to test plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..2_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = Counter(123);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
