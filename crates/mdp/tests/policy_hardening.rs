//! Hostile-input hardening of the policy-artifact loader: byte-level
//! mutations of the *committed* artifacts — replacements, insertions,
//! deletions, truncations — must always come back as a typed
//! [`seleth_mdp::PolicyError`] or a well-formed table, never a panic and
//! never an absurd allocation. This is the library-crate contract the
//! workspace's `clippy::unwrap_used`/`clippy::panic` lints enforce
//! statically, exercised dynamically against real artifact bytes.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use seleth_mdp::{Fork, PolicyTable};

/// The committed artifact texts, loaded once per test process.
fn artifacts() -> &'static Vec<(String, String)> {
    static CACHE: OnceLock<Vec<(String, String)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/policies");
        let mut found = Vec::new();
        for entry in std::fs::read_dir(&dir).expect("results/policies exists") {
            let path = entry.expect("readable dir entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let name = path.display().to_string();
            let text = std::fs::read_to_string(&path).expect("readable artifact");
            found.push((name, text));
        }
        assert!(found.len() >= 4, "expected the committed artifact set");
        found.sort();
        found
    })
}

/// Whatever the mutation produced, parsing must return — and a table that
/// *does* parse must answer decision queries without panicking (that is
/// the surface a replay executor touches).
fn parse_must_degrade_gracefully(text: &str) {
    if let Ok(table) = PolicyTable::from_json(text) {
        let m = table.max_len();
        for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
            let _ = table.decide(0, 0, fork, 0);
            let _ = table.decide(m, m, fork, 8);
            let _ = table.decide(m + 1, 0, fork, 0);
        }
        let _ = table.is_legal_everywhere();
        let _ = table.to_json();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Replace one byte anywhere in a committed artifact.
    #[test]
    fn single_byte_replacement_never_panics(
        pick in any::<usize>(),
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let (_, text) = &artifacts()[pick % artifacts().len()];
        let mut bytes = text.clone().into_bytes();
        let at = pos % bytes.len();
        bytes[at] = byte;
        parse_must_degrade_gracefully(&String::from_utf8_lossy(&bytes));
    }

    /// Insert one byte anywhere.
    #[test]
    fn single_byte_insertion_never_panics(
        pick in any::<usize>(),
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let (_, text) = &artifacts()[pick % artifacts().len()];
        let mut bytes = text.clone().into_bytes();
        let at = pos % (bytes.len() + 1);
        bytes.insert(at, byte);
        parse_must_degrade_gracefully(&String::from_utf8_lossy(&bytes));
    }

    /// Delete a short span anywhere.
    #[test]
    fn span_deletion_never_panics(
        pick in any::<usize>(),
        pos in any::<usize>(),
        span in 1usize..64,
    ) {
        let (_, text) = &artifacts()[pick % artifacts().len()];
        let mut bytes = text.clone().into_bytes();
        let at = pos % bytes.len();
        let end = (at + span).min(bytes.len());
        bytes.drain(at..end);
        parse_must_degrade_gracefully(&String::from_utf8_lossy(&bytes));
    }

    /// Truncate to an arbitrary prefix (the torn-write case).
    #[test]
    fn truncation_never_panics(pick in any::<usize>(), keep in any::<usize>()) {
        let (_, text) = &artifacts()[pick % artifacts().len()];
        let mut bytes = text.clone().into_bytes();
        bytes.truncate(keep % (bytes.len() + 1));
        parse_must_degrade_gracefully(&String::from_utf8_lossy(&bytes));
    }

    /// Scramble a handful of scattered bytes at once — compound damage,
    /// not just single-fault.
    #[test]
    fn scattered_corruption_never_panics(
        pick in any::<usize>(),
        seeds in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..16),
    ) {
        let (_, text) = &artifacts()[pick % artifacts().len()];
        let mut bytes = text.clone().into_bytes();
        for (pos, byte) in seeds {
            let at = pos % bytes.len();
            bytes[at] = byte;
        }
        parse_must_degrade_gracefully(&String::from_utf8_lossy(&bytes));
    }
}

/// Hostile `max_len` declarations are bounded *before* any allocation is
/// sized by them: the loader rejects out-of-limit truncations and
/// length-mismatched action tables with a typed error.
#[test]
fn hostile_max_len_is_rejected_before_allocation() {
    let (_, text) = &artifacts()[0];
    for hostile in ["4096", "1000000", "4294967295", "-3", "2.5", "1e30"] {
        let mutated = mutate_field(text, "max_len", hostile);
        assert!(
            PolicyTable::from_json(&mutated).is_err(),
            "max_len {hostile} must be rejected"
        );
    }
}

/// Every committed artifact parses, and its text round-trips (sanity
/// anchor for the mutation tests above: the *unmutated* baseline is Ok).
#[test]
fn unmutated_artifacts_parse() {
    for (name, text) in artifacts() {
        let table =
            PolicyTable::from_json(text).unwrap_or_else(|e| panic!("{name} fails to parse: {e}"));
        parse_must_degrade_gracefully(text);
        assert!(table.max_len() > 0, "{name}");
    }
}

/// Replace the value of a numeric `"field": value` line.
fn mutate_field(text: &str, field: &str, value: &str) -> String {
    let marker = format!("\"{field}\": ");
    let start = text.find(&marker).expect("field present") + marker.len();
    let end = start + text[start..].find([',', '\n']).expect("value terminated");
    let mut out = text.to_string();
    out.replace_range(start..end, value);
    out
}
