//! Property tests of the policy-artifact format: save → load must be
//! bit-identical for solved policies and for arbitrary hand-built tables
//! — on both wire formats (classic three-axis format 1 and the four-axis
//! format 2 with its `dims` descriptor) — and every artifact committed
//! under `results/policies/` must load and re-save byte-identically.

use std::path::PathBuf;

use proptest::prelude::*;

use seleth_chain::Scenario;
use seleth_mdp::{Action, Fork, MdpConfig, PolicyTable, RewardModel, StateSpace};

/// Bitwise table equality: every metadata float compared by bits, every
/// action slot compared exactly. (`PartialEq` would treat `-0.0 == 0.0`;
/// artifacts must be stricter.)
fn assert_bit_identical(a: &PolicyTable, b: &PolicyTable) {
    assert_eq!(a.alpha().to_bits(), b.alpha().to_bits(), "alpha");
    assert_eq!(a.gamma().to_bits(), b.gamma().to_bits(), "gamma");
    assert_eq!(
        a.predicted_revenue().to_bits(),
        b.predicted_revenue().to_bits(),
        "revenue"
    );
    assert_eq!(a.rewards(), b.rewards());
    assert_eq!(a.scenario(), b.scenario());
    assert_eq!(a.state_space(), b.state_space());
    assert_eq!(a.family(), b.family(), "family");
    let d_bound = a.state_space().match_d_bound().unwrap_or(0);
    for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
        for d in 0..=d_bound {
            for x in 0..=a.max_len() {
                for h in 0..=a.max_len() {
                    assert_eq!(
                        a.action(x, h, fork, d),
                        b.action(x, h, fork, d),
                        "slot ({x}, {h}, {fork:?}, {d})"
                    );
                }
            }
        }
    }
}

fn action_from_index(i: u8) -> Action {
    match i % 4 {
        0 => Action::Adopt,
        1 => Action::Override,
        2 => Action::Match,
        _ => Action::Wait,
    }
}

/// Every artifact committed under `results/policies/` loads through the
/// v2 API and re-saves **byte-identically** — the compat contract that
/// keeps pre-existing format-1 files stable across the state-space
/// redesign (and format-2 files a fixed point of their own writer).
#[test]
fn committed_artifacts_resave_byte_identically() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/policies");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&dir).expect("results/policies exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let table = PolicyTable::from_json(&text)
            .unwrap_or_else(|e| panic!("{} fails to parse: {e}", path.display()));
        assert_eq!(
            table.to_json(),
            text,
            "{} does not re-save byte-identically",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the committed artifact set, found {checked}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random *solved* policies round-trip bit-identically, including the
    /// solver's full-precision revenue — Bitcoin solves on the classic
    /// format, Ethereum solves on the four-axis format 2.
    #[test]
    fn solved_policy_roundtrip(
        alpha in 0.05f64..0.45,
        gamma in 0.0f64..1.0,
        max_len in 4u32..9,
        bitcoin in any::<bool>(),
    ) {
        let rewards = if bitcoin {
            RewardModel::Bitcoin
        } else {
            RewardModel::EthereumApprox
        };
        let config = MdpConfig::new(alpha, gamma, rewards).with_max_len(max_len);
        let solution = config.solve().expect("solve");
        let table = PolicyTable::from_solution(&config, &solution);
        prop_assert_eq!(table.state_space().has_match_d(), !bitcoin);
        let restored = PolicyTable::from_json(&table.to_json()).expect("parse");
        assert_bit_identical(&table, &restored);
        prop_assert_eq!(restored.predicted_revenue(), solution.revenue);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary hand-built tables (any action pattern, any metadata
    /// floats, either state-space shape) round-trip bit-identically,
    /// dims and family tag included.
    #[test]
    fn arbitrary_table_roundtrip(
        alpha in 0.0f64..1.0,
        gamma in 0.0f64..1.0,
        revenue in -2.0f64..2.0,
        max_len in 0u32..14,
        d_bound in 0u8..9,
        scenario2 in any::<bool>(),
        pattern in any::<u64>(),
        family_pick in any::<u8>(),
    ) {
        // The vendored proptest has no string-regex strategies; pick a
        // family name (possibly empty) from a representative list.
        let family = ["", "sm1", "lead_stubborn_l2", "trail_stubborn_t7", "x_0"]
            [usize::from(family_pick) % 5];
        let scenario = if scenario2 {
            Scenario::RegularPlusUncleRate
        } else {
            Scenario::RegularRate
        };
        // d_bound = 0 exercises the classic shape (format 1), anything
        // else the four-axis format 2.
        let space = if d_bound == 0 {
            StateSpace::classic(max_len)
        } else {
            StateSpace::with_match_d(max_len, d_bound)
        };
        // A cheap deterministic action hash over (a, h, fork, d).
        let table = PolicyTable::from_fn(
            alpha,
            gamma,
            RewardModel::EthereumApprox,
            scenario,
            space,
            revenue,
            |a, h, fork, d| {
                let mix = u64::from(a)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(h).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                    .wrapping_add(fork as u64)
                    .wrapping_add(u64::from(d) << 7)
                    .wrapping_add(pattern);
                action_from_index((mix >> 32) as u8)
            },
        )
        .with_family(family);
        let restored = PolicyTable::from_json(&table.to_json()).expect("parse");
        assert_bit_identical(&table, &restored);
        // And a second trip is a fixed point of the text form too.
        prop_assert_eq!(table.to_json(), restored.to_json());
    }

    /// Corrupting any single action code makes the parse fail or changes
    /// exactly that slot — never silently reinterprets the rest. Checked
    /// on both wire formats.
    #[test]
    fn corrupt_action_codes_never_parse(byte in any::<u8>()) {
        let c = char::from(byte);
        if "aomw".contains(c) || !c.is_ascii_alphanumeric() {
            return Ok(()); // valid code or would break JSON structure
        }
        for (json, marker) in [
            (
                PolicyTable::honest(0.3, 0.5, 3).to_json(),
                "\"irrelevant\": \"",
            ),
            (
                Family4Stub::table().to_json(),
                "\"actions\": \"",
            ),
        ] {
            // Replace the first action code of the string.
            let at = json.find(marker).expect("action field") + marker.len();
            let mut corrupted = json.clone();
            corrupted.replace_range(at..at + 1, &c.to_string());
            prop_assert!(PolicyTable::from_json(&corrupted).is_err());
        }
    }
}

/// A tiny fixed four-axis table for the corruption proptest (free
/// functions keep the macro body simple).
struct Family4Stub;

impl Family4Stub {
    fn table() -> PolicyTable {
        PolicyTable::from_fn(
            0.3,
            0.5,
            RewardModel::EthereumApprox,
            Scenario::RegularRate,
            StateSpace::with_match_d(3, 7),
            0.3,
            |_, _, _, _| Action::Wait,
        )
    }
}
