//! Property tests of the policy-artifact format: save → load must be
//! bit-identical for solved policies and for arbitrary hand-built tables.

use proptest::prelude::*;

use seleth_chain::Scenario;
use seleth_mdp::{Action, Fork, MdpConfig, PolicyTable, RewardModel};

/// Bitwise table equality: every metadata float compared by bits, every
/// action slot compared exactly. (`PartialEq` would treat `-0.0 == 0.0`;
/// artifacts must be stricter.)
fn assert_bit_identical(a: &PolicyTable, b: &PolicyTable) {
    assert_eq!(a.alpha().to_bits(), b.alpha().to_bits(), "alpha");
    assert_eq!(a.gamma().to_bits(), b.gamma().to_bits(), "gamma");
    assert_eq!(
        a.predicted_revenue().to_bits(),
        b.predicted_revenue().to_bits(),
        "revenue"
    );
    assert_eq!(a.rewards(), b.rewards());
    assert_eq!(a.scenario(), b.scenario());
    assert_eq!(a.max_len(), b.max_len());
    assert_eq!(a.family(), b.family(), "family");
    for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
        for x in 0..=a.max_len() {
            for h in 0..=a.max_len() {
                assert_eq!(
                    a.action(x, h, fork),
                    b.action(x, h, fork),
                    "slot ({x}, {h}, {fork:?})"
                );
            }
        }
    }
}

fn action_from_index(i: u8) -> Action {
    match i % 4 {
        0 => Action::Adopt,
        1 => Action::Override,
        2 => Action::Match,
        _ => Action::Wait,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random *solved* policies round-trip bit-identically, including the
    /// solver's full-precision revenue.
    #[test]
    fn solved_policy_roundtrip(
        alpha in 0.05f64..0.45,
        gamma in 0.0f64..1.0,
        max_len in 4u32..9,
        bitcoin in any::<bool>(),
    ) {
        let rewards = if bitcoin {
            RewardModel::Bitcoin
        } else {
            RewardModel::EthereumApprox
        };
        let config = MdpConfig::new(alpha, gamma, rewards).with_max_len(max_len);
        let solution = config.solve().expect("solve");
        let table = PolicyTable::from_solution(&config, &solution);
        let restored = PolicyTable::from_json(&table.to_json()).expect("parse");
        assert_bit_identical(&table, &restored);
        prop_assert_eq!(restored.predicted_revenue(), solution.revenue);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary hand-built tables (any action pattern, any metadata
    /// floats) round-trip bit-identically.
    #[test]
    fn arbitrary_table_roundtrip(
        alpha in 0.0f64..1.0,
        gamma in 0.0f64..1.0,
        revenue in -2.0f64..2.0,
        max_len in 0u32..14,
        scenario2 in any::<bool>(),
        pattern in any::<u64>(),
        family_pick in any::<u8>(),
    ) {
        // The vendored proptest has no string-regex strategies; pick a
        // family name (possibly empty) from a representative list.
        let family = ["", "sm1", "lead_stubborn_l2", "trail_stubborn_t7", "x_0"]
            [usize::from(family_pick) % 5];
        let scenario = if scenario2 {
            Scenario::RegularPlusUncleRate
        } else {
            Scenario::RegularRate
        };
        // A cheap deterministic action hash over (a, h, fork).
        let table = PolicyTable::from_fn(
            alpha,
            gamma,
            RewardModel::EthereumApprox,
            scenario,
            max_len,
            revenue,
            |a, h, fork| {
                let mix = u64::from(a)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(h).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                    .wrapping_add(fork as u64)
                    .wrapping_add(pattern);
                action_from_index((mix >> 32) as u8)
            },
        )
        .with_family(family);
        let restored = PolicyTable::from_json(&table.to_json()).expect("parse");
        assert_bit_identical(&table, &restored);
        // And a second trip is a fixed point of the text form too.
        prop_assert_eq!(table.to_json(), restored.to_json());
    }

    /// Corrupting any single action code makes the parse fail or changes
    /// exactly that slot — never silently reinterprets the rest.
    #[test]
    fn corrupt_action_codes_never_parse(byte in any::<u8>()) {
        let json = PolicyTable::honest(0.3, 0.5, 3).to_json();
        let c = char::from(byte);
        if "aomw".contains(c) || !c.is_ascii_alphanumeric() {
            return Ok(()); // valid code or would break JSON structure
        }
        // Replace the first action code of the irrelevant table.
        let marker = "\"irrelevant\": \"";
        let at = json.find(marker).expect("irrelevant field") + marker.len();
        let mut corrupted = json.clone();
        corrupted.replace_range(at..at + 1, &c.to_string());
        prop_assert!(PolicyTable::from_json(&corrupted).is_err());
    }
}
