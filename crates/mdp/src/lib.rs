//! Optimal selfish-mining strategies via Markov decision processes.
//!
//! *Selfish Mining in Ethereum* analyses one fixed strategy (Algorithm 1)
//! and notes it "isn't necessarily optimal" (Remark 1); its related work
//! leans on Sapirshtein et al. (FC 2016) and Gervais et al. (CCS 2016),
//! who compute *optimal* withholding strategies for Bitcoin as an
//! average-reward MDP. This crate implements that machinery from scratch:
//!
//! - the standard state space `(a, h, fork)` — attacker chain length,
//!   honest chain length, and whether a published fork race is relevant or
//!   active — with the four actions *adopt / override / match / wait*;
//! - the relative-revenue transformation: for a candidate revenue share
//!   `ρ`, per-step rewards become `(1−ρ)·r_attacker − ρ·r_honest`, and the
//!   optimal share is the `ρ*` at which the optimal average reward is
//!   zero. `ρ*` is found by bisection over relative value iterations;
//! - two reward models: exact Bitcoin (validated against Eyal–Sirer's
//!   closed form where SM1 is optimal, and against Sapirshtein et al.'s
//!   published optimal revenue 0.37077 at `α = 0.35, γ = 0`), and a
//!   documented
//!   first-order approximation of Ethereum's uncle/nephew rewards
//!   ([`RewardModel::EthereumApprox`]), which lets the optimal-play
//!   analysis reproduce the paper's headline — Ethereum is strictly more
//!   vulnerable — beyond the fixed Algorithm 1.
//!
//! # Example
//!
//! ```
//! use seleth_mdp::{MdpConfig, RewardModel};
//!
//! // Optimal Bitcoin selfish mining at α = 0.3 with uniform tie-breaking
//! // (γ = 0.5): profitable — the honest baseline would earn exactly 0.3.
//! let config = MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin).with_max_len(40);
//! let solution = config.solve().unwrap();
//! assert!(solution.revenue > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never a panic, on
// untrusted input; invariant violations use `expect` with a message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod model;
pub mod policy;
mod solver;

pub use model::{Action, Fork, MdpConfig, MdpError, MdpState, RewardModel, MATCH_D_CAP};
pub use policy::{PolicyError, PolicyTable, StateSpace};
pub use solver::{Policy, Solution, SolveStats, ValueCache};
