//! The selfish-mining MDP: states, actions, transitions and reward models.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use seleth_chain::Scenario;

/// Fork qualifier of an MDP state (Sapirshtein et al.'s three-valued
/// label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fork {
    /// The last block was mined by the attacker: honest miners saw nothing
    /// new, no match is possible right now.
    Irrelevant,
    /// The last block was mined honestly: the attacker may publish a
    /// matching prefix (action *match*) to start a tie race.
    Relevant,
    /// A match is live: the network is split between two equal-length
    /// public branches; `γ` of honest hash power mines on the attacker's.
    Active,
}

/// An MDP state: attacker private-chain length `a`, honest chain length
/// `h` since the last consensus block, fork qualifier, and — if the
/// attacker has *published* a prefix of its branch during this fork epoch
/// — the reference distance its first block was (or will be) referenced
/// at. The prefix's first block is a direct child of the main chain; if
/// the honest side ultimately wins the epoch, it is a rewarded uncle at
/// exactly that distance (the mechanism behind the paper's Remark 5:
/// pool uncles always collect the maximum reward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MdpState {
    /// Attacker chain length above the fork point.
    pub a: u32,
    /// Honest chain length above the fork point.
    pub h: u32,
    /// Fork qualifier.
    pub fork: Fork,
    /// 0 if no prefix is public; otherwise the reference distance of the
    /// prefix's first block, fixed at first match (capped at 7, where
    /// `Ku = 0` anyway).
    pub match_d: u8,
}

/// Cap on the stored reference distance (rewards vanish beyond 6): the
/// bound of the Ethereum MDP's `match_d` axis, and therefore of the
/// four-axis policy tables lowered from it.
pub const MATCH_D_CAP: u8 = 7;

impl MdpState {
    /// State with no published prefix.
    ///
    /// # Panics
    ///
    /// Debug-panics for [`Fork::Active`], which always has a published
    /// prefix — use [`MdpState::active`].
    pub const fn new(a: u32, h: u32, fork: Fork) -> Self {
        debug_assert!(!matches!(fork, Fork::Active));
        MdpState {
            a,
            h,
            fork,
            match_d: 0,
        }
    }

    /// An active-fork state with the given first-reference distance.
    pub const fn active(a: u32, h: u32, match_d: u8) -> Self {
        MdpState {
            a,
            h,
            fork: Fork::Active,
            match_d,
        }
    }

    /// Set the published-prefix reference distance.
    pub const fn with_match_d(mut self, match_d: u8) -> Self {
        self.match_d = match_d;
        self
    }
}

impl fmt::Display for MdpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.fork {
            Fork::Irrelevant => "i",
            Fork::Relevant => "r",
            Fork::Active => "a",
        };
        if self.match_d > 0 {
            write!(f, "({}, {}, {tag}+{})", self.a, self.h, self.match_d)
        } else {
            write!(f, "({}, {}, {tag})", self.a, self.h)
        }
    }
}

/// The attacker's actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Give up the private chain and mine on the honest tip.
    Adopt,
    /// Publish `h + 1` blocks, orphaning the honest chain (needs `a > h`).
    Override,
    /// Publish a matching prefix of length `h`, splitting the network
    /// (needs `a ≥ h ≥ 1` and a *relevant* fork).
    Match,
    /// Keep mining privately.
    Wait,
}

/// Reward semantics attached to chain events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RewardModel {
    /// Static rewards only; the Sapirshtein et al. MDP. The optimized
    /// quantity coincides with the attacker's relative revenue share.
    Bitcoin,
    /// Bitcoin rewards plus a first-order model of Ethereum's
    /// uncle/nephew rewards (`Ku(d) = (8−d)/8` for `d ≤ 6`, `Kn = 1/32`):
    ///
    /// - *override*: the first orphaned honest block is a direct child of
    ///   the main chain → uncle at distance `h + 1`; `Ku` to the honest
    ///   side, `Kn` to whoever mines the next main-chain block;
    /// - *match resolved for the attacker* (`γβ` outcome): the orphaned
    ///   honest chain's first block → uncle at distance `h`, referenced by
    ///   the honest block that just won the race;
    /// - *adopt with a published attacker prefix*: the prefix's first
    ///   block → uncle at distance `h`; `Ku` to the attacker (the paper's
    ///   subsidy effect), `Kn` to the honest side.
    ///
    /// Deeper orphans (parents themselves stale) earn nothing, matching
    /// the paper's Cases 11–12. Reference distances are first-order
    /// (the earliest possible nephew); the model slightly under-counts
    /// honest uncle income, which does not enter the attacker's
    /// absolute-revenue objective.
    EthereumApprox,
}

impl RewardModel {
    pub(crate) fn ku(self, d: u32) -> f64 {
        match self {
            RewardModel::Bitcoin => 0.0,
            RewardModel::EthereumApprox => {
                if (1..=6).contains(&d) {
                    (8 - d) as f64 / 8.0
                } else {
                    0.0
                }
            }
        }
    }

    pub(crate) fn kn(self, d: u32) -> f64 {
        match self {
            RewardModel::Bitcoin => 0.0,
            RewardModel::EthereumApprox => {
                if (1..=6).contains(&d) {
                    1.0 / 32.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Whether orphans get referenced at all (drives the uncle-block count
    /// used by the Scenario-2 normalization).
    fn references_uncles(self) -> bool {
        matches!(self, RewardModel::EthereumApprox)
    }
}

/// One outcome of taking an action: probability, successor, and the
/// *settled* quantities of the step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Outcome {
    pub prob: f64,
    pub next: MdpState,
    /// Attacker reward settled this step (static + uncle + nephew), `Ks`
    /// units.
    pub attacker_reward: f64,
    /// Honest reward settled this step.
    pub honest_reward: f64,
    /// Regular blocks settled this step.
    pub regular: f64,
    /// Uncle blocks settled this step.
    pub uncles: f64,
}

/// Error raised by [`MdpConfig::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// `alpha` must lie in `(0, 0.5)`.
    InvalidAlpha {
        /// The rejected value.
        alpha: f64,
    },
    /// `gamma` must lie in `[0, 1]`.
    InvalidGamma {
        /// The rejected value.
        gamma: f64,
    },
    /// `tolerance` / `rho_tolerance` must be positive finite numbers — a
    /// zero or negative bisection tolerance would loop forever.
    InvalidTolerance {
        /// The rejected value.
        tolerance: f64,
    },
    /// `delay_ratio` must be a finite non-negative number.
    InvalidDelay {
        /// The rejected value.
        delay_ratio: f64,
    },
    /// Value iteration or the Dinkelbach bisection exhausted its iteration
    /// budget. Carries the ρ bracket reached and the sweeps spent, so a
    /// caller can see how close the solve got before giving up.
    NoConvergence {
        /// Lower end of the ρ bracket when the solve gave up.
        rho_lo: f64,
        /// Upper end of the ρ bracket when the solve gave up.
        rho_hi: f64,
        /// Value-iteration sweeps spent across all candidates.
        sweeps: usize,
    },
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::InvalidAlpha { alpha } => {
                write!(f, "alpha must be in (0, 0.5), got {alpha}")
            }
            MdpError::InvalidGamma { gamma } => {
                write!(f, "gamma must be in [0, 1], got {gamma}")
            }
            MdpError::InvalidTolerance { tolerance } => {
                write!(f, "tolerances must be positive finite, got {tolerance}")
            }
            MdpError::InvalidDelay { delay_ratio } => {
                write!(
                    f,
                    "delay_ratio must be finite and non-negative, got {delay_ratio}"
                )
            }
            MdpError::NoConvergence {
                rho_lo,
                rho_hi,
                sweeps,
            } => write!(
                f,
                "solver did not converge after {sweeps} sweeps \
                 (rho bracketed in [{rho_lo}, {rho_hi}])"
            ),
        }
    }
}

impl Error for MdpError {}

/// Configuration of the optimal-strategy computation.
///
/// The optimized objective is the attacker's **absolute revenue** in the
/// paper's sense: expected attacker reward per normalization unit, where
/// the unit is regular blocks (Scenario 1) or regular + uncle blocks
/// (Scenario 2). For [`RewardModel::Bitcoin`] the two scenarios coincide
/// and the objective equals the classical relative revenue share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MdpConfig {
    /// Attacker hash-power fraction.
    pub alpha: f64,
    /// Tie-breaking parameter of the network model.
    pub gamma: f64,
    /// Reward semantics.
    pub rewards: RewardModel,
    /// Difficulty-adjustment normalization for the objective.
    pub scenario: Scenario,
    /// Truncation: maximum chain length per side. At the boundary the
    /// attacker is forced to resolve (adopt/override); bias is
    /// `O((α/β)^max_len)`.
    pub max_len: u32,
    /// Propagation delay as a fraction of the mean block interval
    /// (`delay / interval`). Zero (the default) reproduces the classic
    /// zero-delay kernel exactly; a positive ratio folds a race-loss
    /// probability into every release action: honest blocks mined during
    /// the propagation window extend the stale public tip, so an
    /// *override* can be out-raced and a *match* reaches only the honest
    /// miners it beats to the wire (see [`MdpConfig::with_delay_ratio`]).
    pub delay_ratio: f64,
    /// Span tolerance for relative value iteration.
    pub tolerance: f64,
    /// Bisection tolerance on the optimal revenue.
    pub rho_tolerance: f64,
    /// Worker threads for the Bellman sweeps (`0` = use
    /// `available_parallelism`). Results are identical for every value.
    pub threads: usize,
}

impl MdpConfig {
    /// Configuration with defaults (Scenario 1, `max_len = 60`, tolerances
    /// `1e-9` / `1e-6`).
    pub fn new(alpha: f64, gamma: f64, rewards: RewardModel) -> Self {
        MdpConfig {
            alpha,
            gamma,
            rewards,
            scenario: Scenario::RegularRate,
            max_len: 60,
            delay_ratio: 0.0,
            tolerance: 1e-9,
            rho_tolerance: 1e-6,
            threads: 0,
        }
    }

    /// Override the propagation-delay ratio (`delay / interval`).
    ///
    /// The race-window model matches the propagation-delay simulator's
    /// semantics: while a release propagates, honest mining continues on
    /// the stale public tip at rate `β`, so the number of honest race
    /// blocks in one window is Poisson with mean `λ = β · delay_ratio`.
    /// An *override* (published lead of exactly one block) then loses the
    /// epoch with probability
    ///
    /// ```text
    /// loss = P(1 race block) · (1 − (α + γβ)) + P(≥ 2 race blocks)
    /// ```
    ///
    /// — one race block forces a tie the attacker wins only if the next
    /// block lands on its branch (`α + γβ`, the engine's tie semantics),
    /// two or more mean the honest chain is already longer. A *match*
    /// splits the honest miners only when no race block beats the
    /// matching prefix to the wire, shrinking the effective tie-breaking
    /// power to `γ · e^{−λ}`; an established race (*wait* on an active
    /// fork) keeps the full `γ`, both branches being public already.
    pub fn with_delay_ratio(mut self, delay_ratio: f64) -> Self {
        self.delay_ratio = delay_ratio;
        self
    }

    /// Override the truncation length.
    pub fn with_max_len(mut self, max_len: u32) -> Self {
        self.max_len = max_len.max(4);
        self
    }

    /// Override the difficulty scenario.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Override the Bellman-sweep worker count (`0` = auto). The solution
    /// is identical for every thread count; this only trades wall-clock.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Race-window quantities of one release under this configuration's
    /// delay ratio: `(loss, keep)`, where `loss` is the probability an
    /// override is out-raced during propagation and `keep = e^{−λ}` is
    /// the probability a matching prefix reaches the network before any
    /// honest race block (`λ = β · delay_ratio`). Both are exactly
    /// `(0, 1)` at `delay_ratio = 0`, which is what keeps the zero-delay
    /// kernel byte-identical to the classic one.
    pub(crate) fn release_race(&self) -> (f64, f64) {
        let beta = 1.0 - self.alpha;
        let lambda = beta * self.delay_ratio;
        let keep = (-lambda).exp();
        let p1 = lambda * keep;
        // Guard the tail against floating dust: e^{−λ}(1 + λ) ≤ 1
        // mathematically, but the rounded sum may overshoot by an ulp.
        let p2 = (1.0 - keep - p1).max(0.0);
        let tie_win = self.alpha + self.gamma * beta;
        let loss = (p1 * (1.0 - tie_win) + p2).clamp(0.0, 1.0);
        (loss, keep)
    }

    /// The effective worker count for this configuration.
    pub(crate) fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// All outcomes of taking `action` in `state`.
    pub(crate) fn outcomes(&self, state: MdpState, action: Action) -> Vec<Outcome> {
        let MdpState {
            a,
            h,
            fork,
            match_d,
        } = state;
        let alpha = self.alpha;
        let beta = 1.0 - alpha;
        let gamma = self.gamma;
        let r = self.rewards;
        let refs = r.references_uncles();

        let mk = |prob: f64, next: MdpState, ra: f64, rh: f64, regular: f64, uncles: f64| Outcome {
            prob,
            next,
            attacker_reward: ra,
            honest_reward: rh,
            regular,
            uncles,
        };

        match action {
            Action::Adopt => {
                // The honest chain's h blocks settle as regular. If the
                // attacker had published a prefix, its first block becomes
                // an uncle at the distance fixed when it was first
                // referenced: Ku to the attacker, Kn to the honest nephew.
                let has_uncle = refs && match_d >= 1 && a >= 1;
                let (ua, uh, unc) = if has_uncle {
                    (r.ku(match_d as u32), r.kn(match_d as u32), 1.0)
                } else {
                    (0.0, 0.0, 0.0)
                };
                vec![
                    mk(
                        alpha,
                        MdpState::new(1, 0, Fork::Irrelevant),
                        ua,
                        h as f64 + uh,
                        h as f64,
                        unc,
                    ),
                    mk(
                        beta,
                        MdpState::new(0, 1, Fork::Relevant),
                        ua,
                        h as f64 + uh,
                        h as f64,
                        unc,
                    ),
                ]
            }
            Action::Override => {
                // Attacker publishes h + 1 blocks and wins them; the
                // honest chain's first block becomes an uncle at distance
                // h + 1, referenced by the next main-chain block (attacker
                // w.p. α).
                //
                // Under a positive delay ratio the release races its own
                // propagation window: with probability `loss` honest race
                // blocks out-grow the published one-block lead before it
                // lands (see `release_race`), the attacker's whole private
                // chain orphans, and the honest chain — approximated at
                // its pre-race length plus the winning race block —
                // settles instead. At `delay_ratio = 0`, `loss = 0` and
                // the zero-probability branches are pruned, leaving the
                // classic kernel bit-for-bit.
                debug_assert!(a > h);
                let (loss, _) = self.release_race();
                let win = 1.0 - loss;
                let d = h + 1;
                let has_uncle = refs && h >= 1;
                let (hu, kn, unc) = if has_uncle {
                    (r.ku(d), r.kn(d), 1.0)
                } else {
                    (0.0, 0.0, 0.0)
                };
                let settled = (h + 1) as f64;
                let lost = (h + 1) as f64;
                let mut out = vec![
                    mk(
                        win * alpha,
                        MdpState::new(a - h, 0, Fork::Irrelevant),
                        settled + kn,
                        hu,
                        settled,
                        unc,
                    ),
                    mk(
                        win * beta,
                        MdpState::new(a - h - 1, 1, Fork::Relevant),
                        settled,
                        hu + kn,
                        settled,
                        unc,
                    ),
                    mk(
                        loss * alpha,
                        MdpState::new(1, 0, Fork::Irrelevant),
                        0.0,
                        lost,
                        lost,
                        0.0,
                    ),
                    mk(
                        loss * beta,
                        MdpState::new(0, 1, Fork::Relevant),
                        0.0,
                        lost,
                        lost,
                        0.0,
                    ),
                ];
                out.retain(|o| o.prob > 0.0);
                out
            }
            Action::Wait if fork != Fork::Active => {
                vec![
                    mk(
                        alpha,
                        MdpState::new(a + 1, h, Fork::Irrelevant).with_match_d(match_d),
                        0.0,
                        0.0,
                        0.0,
                        0.0,
                    ),
                    mk(
                        beta,
                        MdpState::new(a, h + 1, Fork::Relevant).with_match_d(match_d),
                        0.0,
                        0.0,
                        0.0,
                        0.0,
                    ),
                ]
            }
            Action::Match | Action::Wait => {
                // A matched prefix of length h races the honest chain:
                //  - attacker extends privately (α): race stands;
                //  - honest mines on the attacker's prefix (γβ): the
                //    attacker's h published blocks win; the orphaned honest
                //    chain's first block is an uncle at distance h,
                //    referenced by the just-mined honest block;
                //  - honest extends its own chain ((1−γ)β): the race
                //    stands, the published prefix stays public.
                debug_assert!(a >= h && h >= 1);
                // The prefix's first block is referenced by the next
                // honest block mined after publication: if this is the
                // epoch's first match, that distance is h (fixed from now
                // on); re-matches keep the original distance. Bitcoin has
                // no uncle rewards, so its distance dimension is collapsed
                // to a single canonical value.
                let d_active = if !refs {
                    1
                } else if match_d >= 1 {
                    match_d
                } else {
                    (h as u8).min(MATCH_D_CAP)
                };
                let (hu, kn, unc) = if refs {
                    (r.ku(h), r.kn(h), 1.0)
                } else {
                    (0.0, 0.0, 0.0)
                };
                // Initiating a match is a release, so under delay the
                // prefix only splits the honest miners it beats to the
                // wire: the effective tie-breaking power is γ·e^{−λ}.
                // Waiting on an *active* race keeps the full γ — both
                // branches are already public.
                let g_eff = if action == Action::Match {
                    gamma * self.release_race().1
                } else {
                    gamma
                };
                let mut out = vec![
                    mk(
                        alpha,
                        MdpState::active(a + 1, h, d_active),
                        0.0,
                        0.0,
                        0.0,
                        0.0,
                    ),
                    mk(
                        g_eff * beta,
                        MdpState::new(a - h, 1, Fork::Relevant),
                        h as f64,
                        hu + kn,
                        h as f64,
                        unc,
                    ),
                    mk(
                        (1.0 - g_eff) * beta,
                        MdpState::new(a, h + 1, Fork::Relevant).with_match_d(if refs {
                            d_active
                        } else {
                            0
                        }),
                        0.0,
                        0.0,
                        0.0,
                        0.0,
                    ),
                ];
                out.retain(|o| o.prob > 0.0);
                out
            }
        }
    }

    /// The actions legal in `state` under this configuration's truncation.
    pub(crate) fn legal_actions(&self, state: MdpState) -> Vec<Action> {
        let MdpState { a, h, fork, .. } = state;
        let mut actions = Vec::with_capacity(4);
        let at_boundary = a >= self.max_len || h >= self.max_len;
        if a > h {
            actions.push(Action::Override);
        }
        actions.push(Action::Adopt);
        if !at_boundary {
            if fork == Fork::Relevant && a >= h && h >= 1 {
                actions.push(Action::Match);
            }
            actions.push(Action::Wait);
        }
        actions
    }

    /// Enumerate the truncated state space.
    ///
    /// The `match_d` dimension only exists when the reward model
    /// references uncles (Bitcoin collapses it to 0), which keeps the
    /// Bitcoin MDP at its classical size.
    pub(crate) fn states(&self) -> Vec<MdpState> {
        let d_range: Vec<u8> = if matches!(self.rewards, RewardModel::Bitcoin) {
            vec![0]
        } else {
            (0..=MATCH_D_CAP).collect()
        };
        let mut out = Vec::new();
        for a in 0..=self.max_len {
            for h in 0..=self.max_len {
                // Irrelevant / Relevant states.
                for fork in [Fork::Irrelevant, Fork::Relevant] {
                    if fork == Fork::Relevant && h == 0 {
                        continue;
                    }
                    for &d in &d_range {
                        // A published prefix requires at least one block
                        // on each side of the epoch.
                        if d >= 1 && (a == 0 || h == 0) {
                            continue;
                        }
                        out.push(MdpState::new(a, h, fork).with_match_d(d));
                    }
                }
                // Active states carry d >= 1 by construction.
                if h >= 1 && a >= h {
                    let active_d: Vec<u8> = if matches!(self.rewards, RewardModel::Bitcoin) {
                        vec![1]
                    } else {
                        (1..=MATCH_D_CAP).collect()
                    };
                    for d in active_d {
                        out.push(MdpState::active(a, h, d));
                    }
                }
            }
        }
        out
    }

    pub(crate) fn validate(&self) -> Result<(), MdpError> {
        if !self.alpha.is_finite() || !(0.0..0.5).contains(&self.alpha) || self.alpha == 0.0 {
            return Err(MdpError::InvalidAlpha { alpha: self.alpha });
        }
        if !self.gamma.is_finite() || !(0.0..=1.0).contains(&self.gamma) {
            return Err(MdpError::InvalidGamma { gamma: self.gamma });
        }
        for tolerance in [self.tolerance, self.rho_tolerance] {
            if !tolerance.is_finite() || tolerance <= 0.0 {
                return Err(MdpError::InvalidTolerance { tolerance });
            }
        }
        if !self.delay_ratio.is_finite() || self.delay_ratio < 0.0 {
            return Err(MdpError::InvalidDelay {
                delay_ratio: self.delay_ratio,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MdpConfig {
        MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin).with_max_len(20)
    }

    #[test]
    fn outcome_probabilities_sum_to_one() {
        for rewards in [RewardModel::Bitcoin, RewardModel::EthereumApprox] {
            for delay in [0.0, 0.4615, 0.92] {
                let c = MdpConfig::new(0.3, 0.5, rewards)
                    .with_max_len(20)
                    .with_delay_ratio(delay);
                for s in c.states().into_iter().filter(|s| s.a <= 6 && s.h <= 6) {
                    for action in c.legal_actions(s) {
                        let total: f64 = c.outcomes(s, action).iter().map(|o| o.prob).sum();
                        assert!(
                            (total - 1.0).abs() < 1e-12,
                            "{s} {action:?} delay {delay}: probabilities sum to {total}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_delay_kernel_is_bit_identical_to_the_classic_one() {
        let classic = MdpConfig::new(0.35, 0.5, RewardModel::EthereumApprox).with_max_len(12);
        let zero = classic.with_delay_ratio(0.0);
        for s in classic.states() {
            for action in classic.legal_actions(s) {
                assert_eq!(
                    classic.outcomes(s, action),
                    zero.outcomes(s, action),
                    "{s} {action:?}"
                );
            }
        }
    }

    #[test]
    fn delayed_override_carries_a_loss_branch() {
        let c = MdpConfig::new(0.4, 0.5, RewardModel::Bitcoin)
            .with_max_len(20)
            .with_delay_ratio(6.0 / 13.0);
        let (loss, keep) = c.release_race();
        // λ = 0.6 · 6/13 ≈ 0.277: a visible but sub-dominant race risk.
        assert!(loss > 0.05 && loss < 0.25, "loss {loss}");
        assert!(keep > 0.7 && keep < 1.0, "keep {keep}");
        let outs = c.outcomes(MdpState::new(5, 2, Fork::Irrelevant), Action::Override);
        assert_eq!(outs.len(), 4, "win and loss branches, α/β each");
        let total: f64 = outs.iter().map(|o| o.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Loss branches reset the attacker, pay it nothing, and settle
        // the honest chain plus the winning race block.
        for o in outs.iter().filter(|o| o.attacker_reward == 0.0) {
            assert!(o.next.a <= 1 && o.next.h <= 1, "loss resets: {}", o.next);
            assert_eq!(o.honest_reward, 3.0);
            assert_eq!(o.regular, 3.0);
        }
        // The win branches still pay h + 1 settled attacker blocks.
        let win_mass: f64 = outs
            .iter()
            .filter(|o| o.attacker_reward > 0.0)
            .map(|o| o.prob)
            .sum();
        assert!((win_mass - (1.0 - loss)).abs() < 1e-12);
    }

    #[test]
    fn delayed_match_shrinks_gamma_but_active_wait_keeps_it() {
        let c = MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin)
            .with_max_len(20)
            .with_delay_ratio(0.5);
        let beta = 0.7;
        let keep = c.release_race().1;
        // Initiating the match: the γβ win outcome is scaled by e^{−λ}.
        let outs = c.outcomes(MdpState::new(3, 2, Fork::Relevant), Action::Match);
        let win = outs
            .iter()
            .find(|o| o.attacker_reward > 0.0)
            .expect("match win branch");
        assert!((win.prob - 0.5 * keep * beta).abs() < 1e-12);
        // Waiting on the already-public race keeps the full γ.
        let outs = c.outcomes(MdpState::active(3, 2, 1), Action::Wait);
        let win = outs
            .iter()
            .find(|o| o.attacker_reward > 0.0)
            .expect("active win branch");
        assert!((win.prob - 0.5 * beta).abs() < 1e-12);
    }

    #[test]
    fn delayed_successors_stay_in_state_space() {
        let c = MdpConfig::new(0.45, 0.5, RewardModel::EthereumApprox)
            .with_max_len(12)
            .with_delay_ratio(0.9);
        let space: std::collections::HashSet<MdpState> = c.states().into_iter().collect();
        for &s in &c.states() {
            for action in c.legal_actions(s) {
                for o in c.outcomes(s, action) {
                    assert!(
                        space.contains(&o.next),
                        "{s} --{action:?}--> {} escapes",
                        o.next
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_delay_ratio_is_rejected() {
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            let c = MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin).with_delay_ratio(bad);
            assert!(
                matches!(c.validate(), Err(MdpError::InvalidDelay { .. })),
                "delay_ratio {bad} must be rejected"
            );
        }
        let c = MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin).with_delay_ratio(0.9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn successors_stay_in_state_space() {
        let c = MdpConfig::new(0.45, 0.5, RewardModel::EthereumApprox).with_max_len(12);
        let space: std::collections::HashSet<MdpState> = c.states().into_iter().collect();
        for &s in &c.states() {
            for action in c.legal_actions(s) {
                for o in c.outcomes(s, action) {
                    assert!(
                        space.contains(&o.next),
                        "{s} --{action:?}--> {} escapes",
                        o.next
                    );
                }
            }
        }
    }

    #[test]
    fn override_requires_longer_chain() {
        let c = config();
        assert!(!c
            .legal_actions(MdpState::new(2, 2, Fork::Relevant))
            .contains(&Action::Override));
        assert!(c
            .legal_actions(MdpState::new(3, 2, Fork::Relevant))
            .contains(&Action::Override));
    }

    #[test]
    fn match_requires_relevant_fork() {
        let c = config();
        assert!(c
            .legal_actions(MdpState::new(2, 1, Fork::Relevant))
            .contains(&Action::Match));
        assert!(!c
            .legal_actions(MdpState::new(2, 1, Fork::Irrelevant))
            .contains(&Action::Match));
        assert!(!c
            .legal_actions(MdpState::new(2, 0, Fork::Relevant))
            .contains(&Action::Match));
    }

    #[test]
    fn boundary_forces_resolution() {
        let c = config();
        let legal = c.legal_actions(MdpState::new(20, 3, Fork::Irrelevant));
        assert!(!legal.contains(&Action::Wait));
        assert!(legal.contains(&Action::Override));
    }

    #[test]
    fn adopt_awards_honest_blocks_and_counts_regular() {
        let c = config();
        for o in c.outcomes(MdpState::new(1, 3, Fork::Relevant), Action::Adopt) {
            assert_eq!(o.attacker_reward, 0.0);
            assert_eq!(o.honest_reward, 3.0);
            assert_eq!(o.regular, 3.0);
            assert_eq!(o.uncles, 0.0, "Bitcoin never references orphans");
        }
    }

    #[test]
    fn override_awards_h_plus_one() {
        let c = config();
        for o in c.outcomes(MdpState::new(5, 2, Fork::Irrelevant), Action::Override) {
            assert!(o.attacker_reward >= 3.0);
            assert_eq!(o.honest_reward, 0.0);
            assert_eq!(o.regular, 3.0);
        }
    }

    #[test]
    fn ethereum_override_pays_uncles() {
        let c = MdpConfig::new(0.3, 0.5, RewardModel::EthereumApprox).with_max_len(20);
        for o in c.outcomes(MdpState::new(5, 2, Fork::Irrelevant), Action::Override) {
            assert_eq!(o.uncles, 1.0);
            // Uncle at distance 3: Ku = 5/8; Kn = 1/32 to the next miner.
            if o.next.a == 3 {
                assert!((o.attacker_reward - (3.0 + 1.0 / 32.0)).abs() < 1e-12);
                assert!((o.honest_reward - 5.0 / 8.0).abs() < 1e-12);
            } else {
                assert!((o.attacker_reward - 3.0).abs() < 1e-12);
                assert!((o.honest_reward - (5.0 / 8.0 + 1.0 / 32.0)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn adopt_with_published_prefix_pays_the_attacker() {
        let c = MdpConfig::new(0.3, 0.5, RewardModel::EthereumApprox).with_max_len(20);
        // Prefix first referenced at distance 1 (matched at h = 1), honest
        // chain has since grown to 3: the attacker still collects the full
        // Ku(1) = 7/8 on adoption — the paper's Remark 5 in MDP form.
        let s = MdpState::new(2, 3, Fork::Relevant).with_match_d(1);
        for o in c.outcomes(s, Action::Adopt) {
            assert!((o.attacker_reward - 7.0 / 8.0).abs() < 1e-12);
            assert!((o.honest_reward - (3.0 + 1.0 / 32.0)).abs() < 1e-12);
            assert_eq!(o.uncles, 1.0);
        }
        // Without a published prefix the attacker gets nothing back.
        let s = MdpState::new(2, 3, Fork::Relevant);
        for o in c.outcomes(s, Action::Adopt) {
            assert_eq!(o.attacker_reward, 0.0);
        }
    }

    #[test]
    fn match_distance_fixed_at_first_match() {
        let c = MdpConfig::new(0.3, 0.5, RewardModel::EthereumApprox).with_max_len(20);
        // First match at h = 1: every successor carries match_d = 1.
        let outs = c.outcomes(MdpState::new(3, 1, Fork::Relevant), Action::Match);
        for o in &outs {
            if o.next.h > 0
                && o.next.a >= 1
                && o.next.fork != Fork::Irrelevant
                && (o.next.fork == Fork::Active || o.next.h == 2)
            {
                assert_eq!(o.next.match_d, 1, "{}", o.next);
            }
        }
        // Re-match at larger h keeps the original distance.
        let outs = c.outcomes(
            MdpState::new(4, 2, Fork::Relevant).with_match_d(1),
            Action::Match,
        );
        let active = outs.iter().find(|o| o.next.fork == Fork::Active).unwrap();
        assert_eq!(active.next.match_d, 1);
    }

    #[test]
    fn match_d_survives_waiting() {
        let c = MdpConfig::new(0.3, 0.5, RewardModel::EthereumApprox).with_max_len(20);
        let s = MdpState::new(2, 2, Fork::Relevant).with_match_d(2);
        for o in c.outcomes(s, Action::Wait) {
            assert_eq!(
                o.next.match_d, 2,
                "waiting must not forget the published prefix"
            );
        }
        // The (1−γ)β branch of an active race keeps the prefix public.
        let s = MdpState::active(3, 2, 2);
        let outs = c.outcomes(s, Action::Wait);
        let grown = outs
            .iter()
            .find(|o| o.next.h == 3)
            .expect("honest-extends outcome");
        assert_eq!(grown.next.match_d, 2);
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(MdpConfig::new(0.0, 0.5, RewardModel::Bitcoin)
            .validate()
            .is_err());
        assert!(MdpConfig::new(0.5, 0.5, RewardModel::Bitcoin)
            .validate()
            .is_err());
        assert!(MdpConfig::new(0.3, 1.5, RewardModel::Bitcoin)
            .validate()
            .is_err());
        assert!(MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin)
            .validate()
            .is_ok());
    }
}
