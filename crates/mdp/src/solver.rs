//! Relative value iteration + Dinkelbach bisection over the revenue `ρ`.
//!
//! The attacker maximizes a *ratio*: expected reward per normalization
//! unit (regular blocks for Scenario 1; regular + uncle blocks for
//! Scenario 2 — exactly the paper's absolute revenue `U_s`). Following the
//! fractional-programming transformation (Dinkelbach; Sapirshtein et al.
//! use its relative-revenue special case), for a candidate ratio `ρ`
//! per-step rewards become `w = r_attacker − ρ · units`, the optimal
//! long-run average `g(ρ)` is strictly decreasing, and the optimal ratio
//! is the root `g(ρ*) = 0`. `g(ρ)` itself is computed by relative value
//! iteration on the unichain MDP.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use seleth_chain::Scenario;

use crate::model::{Action, Fork, MdpConfig, MdpError, MdpState};

/// An optimal stationary policy: the best action per state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Policy {
    actions: HashMap<MdpState, Action>,
}

impl Policy {
    /// The optimal action in `state` (`None` for states outside the
    /// truncated space).
    pub fn action(&self, state: MdpState) -> Option<Action> {
        self.actions.get(&state).copied()
    }

    /// Number of states covered.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` if the policy covers no states.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Fraction of states at or behind parity (`a ≤ h + 1`) in which the
    /// policy still deviates from simply adopting — a rough measure of how
    /// aggressive the optimal attacker is.
    pub fn aggression(&self) -> f64 {
        let candidates: Vec<_> = self
            .actions
            .iter()
            .filter(|(s, _)| s.a <= s.h + 1)
            .collect();
        if candidates.is_empty() {
            return 0.0;
        }
        let deviant = candidates
            .iter()
            .filter(|(_, a)| !matches!(a, Action::Adopt))
            .count();
        deviant as f64 / candidates.len() as f64
    }
}

/// Result of solving the MDP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// The attacker's optimal revenue: reward per normalization unit
    /// (the paper's `U_s`; relative share for Bitcoin). Honest mining
    /// earns exactly `α`, so `revenue > α` means the chain is attackable
    /// at this hash power by *some* strategy.
    pub revenue: f64,
    /// The optimal policy at the solved revenue.
    pub policy: Policy,
    /// Value-iteration sweeps used across all bisection steps.
    pub iterations: usize,
}

impl MdpConfig {
    /// Optimal average transformed reward `g(ρ)` via relative value
    /// iteration, plus the greedy policy achieving it.
    fn average_reward(&self, rho: f64) -> Result<(f64, Policy, usize), MdpError> {
        let states = self.states();
        let index: HashMap<MdpState, usize> =
            states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        // Pre-expand per-action transitions with transformed rewards:
        // per state, the legal actions with their (prob, successor index,
        // transformed reward) outcome lists.
        type Expanded = Vec<(Action, Vec<(f64, usize, f64)>)>;
        let mut action_sets: Vec<Expanded> = Vec::with_capacity(states.len());
        for &s in &states {
            let mut acts = Vec::new();
            for action in self.legal_actions(s) {
                let ts: Vec<(f64, usize, f64)> = self
                    .outcomes(s, action)
                    .into_iter()
                    .map(|o| {
                        let j = *index.get(&o.next).unwrap_or_else(|| {
                            panic!("successor {} of {s} outside the state space", o.next)
                        });
                        let units = match self.scenario {
                            Scenario::RegularRate => o.regular,
                            Scenario::RegularPlusUncleRate => o.regular + o.uncles,
                        };
                        (o.prob, j, o.attacker_reward - rho * units)
                    })
                    .collect();
                acts.push((action, ts));
            }
            debug_assert!(!acts.is_empty(), "state {s} has no legal action");
            action_sets.push(acts);
        }

        let n = states.len();
        let ref_state = index[&MdpState::new(0, 0, Fork::Irrelevant)];
        let mut v = vec![0.0f64; n];
        let mut next_v = vec![0.0f64; n];
        let max_sweeps = 200_000;
        for sweep in 0..max_sweeps {
            for i in 0..n {
                let mut best = f64::NEG_INFINITY;
                for (_, ts) in &action_sets[i] {
                    let mut q = 0.0;
                    for &(p, j, w) in ts {
                        q += p * (w + v[j]);
                    }
                    if q > best {
                        best = q;
                    }
                }
                next_v[i] = best;
            }
            // Span seminorm of the Bellman update.
            let mut min_d = f64::INFINITY;
            let mut max_d = f64::NEG_INFINITY;
            for i in 0..n {
                let d = next_v[i] - v[i];
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
            let offset = next_v[ref_state];
            for i in 0..n {
                v[i] = next_v[i] - offset;
            }
            if max_d - min_d < self.tolerance {
                let g = 0.5 * (max_d + min_d);
                let mut actions = HashMap::with_capacity(n);
                for i in 0..n {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_action = Action::Adopt;
                    for &(action, ref ts) in &action_sets[i] {
                        let q: f64 = ts.iter().map(|&(p, j, w)| p * (w + v[j])).sum();
                        if q > best {
                            best = q;
                            best_action = action;
                        }
                    }
                    actions.insert(states[i], best_action);
                }
                return Ok((g, Policy { actions }, sweep + 1));
            }
        }
        Err(MdpError::NotConverged)
    }

    /// Solve for the attacker's optimal revenue and policy.
    ///
    /// # Errors
    ///
    /// - [`MdpError::InvalidAlpha`] / [`MdpError::InvalidGamma`] for bad
    ///   parameters;
    /// - [`MdpError::NotConverged`] if value iteration stalls.
    pub fn solve(&self) -> Result<Solution, MdpError> {
        self.validate()?;
        // Us ≤ static + uncle + nephew per regular block < 2 comfortably.
        let mut lo = 0.0f64;
        let mut hi = 2.0f64;
        let mut iterations = 0usize;
        let mut last = None;
        while hi - lo > self.rho_tolerance {
            let mid = 0.5 * (lo + hi);
            let (g, policy, sweeps) = self.average_reward(mid)?;
            iterations += sweeps;
            if g > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
            last = Some(policy);
        }
        let revenue = 0.5 * (lo + hi);
        let policy = match last {
            Some(p) => p,
            None => self.average_reward(revenue)?.1,
        };
        Ok(Solution {
            revenue,
            policy,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RewardModel;
    use seleth_core::bitcoin;

    fn solve(alpha: f64, gamma: f64, rewards: RewardModel) -> Solution {
        MdpConfig::new(alpha, gamma, rewards)
            .with_max_len(30)
            .solve()
            .unwrap()
    }

    #[test]
    fn optimal_dominates_eyal_sirer() {
        // SM1 is a feasible policy, so the optimum can only do better
        // (up to truncation bias).
        for &(a, g) in &[(0.3, 0.0), (0.35, 0.5), (0.4, 0.5), (0.45, 0.9)] {
            let opt = solve(a, g, RewardModel::Bitcoin).revenue;
            let sm1 = bitcoin::eyal_sirer_revenue(a, g);
            assert!(
                opt >= sm1 - 2e-3,
                "alpha={a} gamma={g}: optimal {opt} below SM1 {sm1}"
            );
        }
    }

    #[test]
    fn optimal_matches_sm1_where_sm1_is_optimal() {
        // At γ = 0.5 and modest α, Eyal–Sirer's SM1 is known-optimal; two
        // completely independent implementations (closed form vs MDP)
        // must agree to bisection precision.
        for &a in &[0.26, 0.28, 0.30] {
            let opt = solve(a, 0.5, RewardModel::Bitcoin).revenue;
            let sm1 = bitcoin::eyal_sirer_revenue(a, 0.5);
            assert!(
                (opt - sm1).abs() < 5e-5,
                "alpha={a}: optimal {opt} vs SM1 {sm1}"
            );
        }
    }

    #[test]
    fn optimal_strictly_beats_sm1_at_high_alpha() {
        // Sapirshtein et al.: above ~1/3 the optimal policy outperforms
        // SM1 (e.g. their published 0.37077 at α = 0.35, γ = 0).
        let opt = solve(0.35, 0.0, RewardModel::Bitcoin).revenue;
        let sm1 = bitcoin::eyal_sirer_revenue(0.35, 0.0);
        assert!(opt > sm1 + 4e-3, "optimal {opt} vs SM1 {sm1}");
        assert!(
            (opt - 0.37077).abs() < 5e-4,
            "published optimal value: got {opt}"
        );
    }

    #[test]
    fn optimal_never_below_honest() {
        // "Override at (1,0), adopt when behind" is honest mining and
        // earns exactly α, so the optimum is at least that.
        for &(a, g) in &[(0.1, 0.0), (0.2, 0.5), (0.45, 1.0)] {
            let opt = solve(a, g, RewardModel::Bitcoin).revenue;
            assert!(opt >= a - 2e-3, "alpha={a} gamma={g}: {opt}");
        }
    }

    #[test]
    fn revenue_monotone_in_alpha() {
        let mut prev = 0.0;
        for &a in &[0.15, 0.25, 0.35, 0.45] {
            let r = solve(a, 0.5, RewardModel::Bitcoin).revenue;
            assert!(r > prev);
            prev = r;
        }
    }

    #[test]
    fn ethereum_rewards_dominate_bitcoin() {
        // Under the absolute-revenue objective, uncle rewards are free
        // money for the attacker: optimal Ethereum revenue must be at
        // least the Bitcoin optimum — the paper's headline under optimal
        // play, not just Algorithm 1.
        for &(a, g) in &[(0.2, 0.0), (0.3, 0.5), (0.4, 0.5)] {
            let btc = solve(a, g, RewardModel::Bitcoin).revenue;
            let eth = solve(a, g, RewardModel::EthereumApprox).revenue;
            assert!(
                eth >= btc - 1e-4,
                "alpha={a} gamma={g}: eth {eth} vs btc {btc}"
            );
        }
    }

    #[test]
    fn ethereum_profitable_where_bitcoin_is_not() {
        // At γ = 0.5, α = 0.22 the Bitcoin optimum is honest mining
        // (below the optimal threshold); with uncle rewards the attacker
        // clears its fair share.
        let btc = solve(0.22, 0.5, RewardModel::Bitcoin).revenue;
        let eth = solve(0.22, 0.5, RewardModel::EthereumApprox).revenue;
        assert!(btc <= 0.22 + 1e-3, "bitcoin optimum ~honest, got {btc}");
        assert!(eth > 0.2225, "ethereum optimum profitable, got {eth}");
    }

    #[test]
    fn scenario2_no_more_profitable_than_scenario1() {
        // Counting uncles in the difficulty can only shrink the ratio.
        let base = MdpConfig::new(0.35, 0.5, RewardModel::EthereumApprox).with_max_len(30);
        let s1 = base.solve().unwrap().revenue;
        let s2 = base
            .with_scenario(Scenario::RegularPlusUncleRate)
            .solve()
            .unwrap()
            .revenue;
        assert!(s2 <= s1 + 1e-6, "scenario2 {s2} vs scenario1 {s1}");
    }

    #[test]
    fn policy_is_meaningful() {
        let s = solve(0.4, 0.5, RewardModel::Bitcoin);
        assert!(!s.policy.is_empty());
        // With a 2-lead the attacker holds (waits), not adopts.
        let act = s.policy.action(MdpState::new(2, 0, Fork::Irrelevant));
        assert_eq!(act, Some(Action::Wait), "lead of 2 should be held");
        // Far behind, adopt.
        let act = s.policy.action(MdpState::new(0, 3, Fork::Relevant));
        assert_eq!(act, Some(Action::Adopt));
        assert!(s.policy.aggression() > 0.0);
    }

    #[test]
    fn gamma_one_always_profitable() {
        let r = solve(0.1, 1.0, RewardModel::Bitcoin).revenue;
        assert!(r > 0.1, "γ=1 attack profitable even at 10%: {r}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(MdpConfig::new(0.0, 0.5, RewardModel::Bitcoin)
            .solve()
            .is_err());
        assert!(MdpConfig::new(0.3, 2.0, RewardModel::Bitcoin)
            .solve()
            .is_err());
    }
}
