//! Relative value iteration + Dinkelbach bisection over the revenue `ρ`.
//!
//! The attacker maximizes a *ratio*: expected reward per normalization
//! unit (regular blocks for Scenario 1; regular + uncle blocks for
//! Scenario 2 — exactly the paper's absolute revenue `U_s`). Following the
//! fractional-programming transformation (Dinkelbach; Sapirshtein et al.
//! use its relative-revenue special case), for a candidate ratio `ρ`
//! per-step rewards become `w = r_attacker − ρ · units`, the optimal
//! long-run average `g(ρ)` is strictly decreasing, and the optimal ratio
//! is the root `g(ρ*) = 0`. `g(ρ)` itself is computed by relative value
//! iteration on the unichain MDP.
//!
//! # Performance architecture
//!
//! The transition table is expanded **once per solve** into flat
//! struct-of-arrays storage ([`ExpandedMdp`]): per outcome, `(prob,
//! successor index, attacker reward, normalization units)`. Each ρ
//! candidate then re-weights rewards on the fly (`w = r − ρ·units`) inside
//! the Bellman sweep instead of rebuilding per-action outcome lists, and
//! the value function is **warm-started across ρ iterates** (the optimal
//! `v` moves continuously with ρ, so each bisection step starts next to
//! its fixed point and converges in a fraction of the cold-start sweeps).
//! Bellman sweeps and greedy-policy extraction run in parallel over
//! contiguous state chunks; every chunk writes disjoint slots and all
//! reductions (span seminorm, reference offset) are performed sequentially
//! in index order, so results are bit-identical for every thread count.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use seleth_chain::Scenario;
use seleth_obs::{EventKind, NoopRecorder, Recorder};

use crate::model::{Action, Fork, MdpConfig, MdpError, MdpState};

/// Don't spin up worker threads below this state count; a sweep this small
/// is cheaper than the thread handoff.
const PARALLEL_MIN_STATES: usize = 4096;

/// Minimum slots per worker thread: the effective worker count is clamped
/// to `n / PARALLEL_GRAIN`, so arbitrarily large `with_threads` values
/// cannot spawn per-state threads.
const PARALLEL_GRAIN: usize = 1024;

/// Hard cap on Dinkelbach bisection steps. 128 halvings of the initial
/// `[0, 2]` bracket reach the limit of f64 resolution, so any positive
/// `rho_tolerance` converges well before this; the cap turns a
/// pathological tolerance into a typed [`MdpError::NoConvergence`] instead
/// of an unbounded loop.
const MAX_BISECTIONS: usize = 128;

/// The dense state enumeration of one solve, shared (via [`Arc`]) between
/// the solver's flat tables and the policies it returns. The hash index
/// exists only for boundary lookups ([`Policy::action`]); the numeric
/// kernels address states by dense index.
///
/// Derives the serde traits so [`Policy`]'s own derive stays valid under
/// the real `serde` too (which additionally needs its `rc` feature for the
/// `Arc` field; see `vendor/README.md`).
#[derive(Debug, Serialize, Deserialize)]
struct StateSpace {
    states: Vec<MdpState>,
    index: HashMap<MdpState, usize>,
}

impl StateSpace {
    fn new(states: Vec<MdpState>) -> Self {
        let index = states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        StateSpace { states, index }
    }
}

/// An optimal stationary policy: the best action per state.
///
/// Index-backed: actions are stored densely in state-enumeration order and
/// the state table is shared with the solver, so constructing and cloning
/// policies is cheap; the state → action lookup keeps its hash-map API.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Policy {
    space: Arc<StateSpace>,
    actions: Vec<Action>,
}

impl Policy {
    /// The optimal action in `state` (`None` for states outside the
    /// truncated space).
    pub fn action(&self, state: MdpState) -> Option<Action> {
        self.space.index.get(&state).map(|&i| self.actions[i])
    }

    /// Number of states covered.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` if the policy covers no states.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterate `(state, action)` pairs in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = (MdpState, Action)> + '_ {
        self.space
            .states
            .iter()
            .copied()
            .zip(self.actions.iter().copied())
    }

    /// Fraction of states at or behind parity (`a ≤ h + 1`) in which the
    /// policy still deviates from simply adopting — a rough measure of how
    /// aggressive the optimal attacker is.
    pub fn aggression(&self) -> f64 {
        let mut candidates = 0usize;
        let mut deviant = 0usize;
        for (s, a) in self.iter() {
            if s.a <= s.h + 1 {
                candidates += 1;
                if !matches!(a, Action::Adopt) {
                    deviant += 1;
                }
            }
        }
        if candidates == 0 {
            return 0.0;
        }
        deviant as f64 / candidates as f64
    }
}

/// Instrumentation of one Dinkelbach solve.
///
/// Collected on every [`MdpConfig::solve`] (and on the legacy
/// re-expanding solver, where it documents what warm starts buy): one
/// entry per ρ iterate — the bisection candidates in order, then the
/// closing full-tolerance evaluation at the solved revenue. Recording is
/// pure bookkeeping over values the solver already computes, so the
/// numerics (and exported policy artifacts) are untouched.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SolveStats {
    /// Bisection steps taken on the ρ bracket.
    pub bisection_steps: usize,
    /// Value-iteration sweeps spent per ρ iterate (last entry: the
    /// closing evaluation at ρ*).
    pub sweeps_per_iterate: Vec<usize>,
    /// Final Bellman-update span per ρ iterate — the residual each
    /// iterate converged (or sign-resolved) at.
    pub residuals: Vec<f64>,
    /// Iterates after the first that converged in fewer sweeps than the
    /// cold first iterate — warm starts paying off.
    pub warm_start_hits: usize,
}

impl SolveStats {
    fn record(&mut self, sweeps: usize, residual: f64) {
        if let Some(&cold) = self.sweeps_per_iterate.first() {
            if sweeps < cold {
                self.warm_start_hits += 1;
            }
        }
        self.sweeps_per_iterate.push(sweeps);
        self.residuals.push(residual);
    }

    /// Fraction of post-cold iterates that beat the cold iterate's sweep
    /// count; `0.0` for a solve with at most one iterate.
    pub fn warm_start_hit_rate(&self) -> f64 {
        let later = self.sweeps_per_iterate.len().saturating_sub(1);
        if later == 0 {
            return 0.0;
        }
        self.warm_start_hits as f64 / later as f64
    }
}

/// Result of solving the MDP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// The attacker's optimal revenue: reward per normalization unit
    /// (the paper's `U_s`; relative share for Bitcoin). Honest mining
    /// earns exactly `α`, so `revenue > α` means the chain is attackable
    /// at this hash power by *some* strategy.
    pub revenue: f64,
    /// The optimal policy at the solved revenue.
    pub policy: Policy,
    /// Value-iteration sweeps used across all bisection steps.
    pub iterations: usize,
    /// Per-iterate instrumentation of the solve.
    pub stats: SolveStats,
}

/// The transition table of one solve, flattened into contiguous arrays.
///
/// Layout: state `i`'s legal actions occupy `state_ptr[i]..state_ptr[i+1]`
/// of `actions`; action slot `k`'s outcomes occupy `out_ptr[k]..
/// out_ptr[k+1]` of the four parallel outcome arrays. Rewards are stored
/// *untransformed*; the ρ weighting happens inside the sweep.
#[derive(Debug)]
struct ExpandedMdp {
    space: Arc<StateSpace>,
    ref_state: usize,
    state_ptr: Vec<usize>,
    actions: Vec<Action>,
    out_ptr: Vec<usize>,
    prob: Vec<f64>,
    succ: Vec<u32>,
    attacker_reward: Vec<f64>,
    units: Vec<f64>,
}

/// Reusable value-iteration buffers, retained across every ρ candidate of
/// a solve (both the allocation and the converged values, which warm-start
/// the next candidate).
#[derive(Debug)]
struct ValueWorkspace {
    v: Vec<f64>,
    next_v: Vec<f64>,
    /// Per-action-slot expected transformed reward at the current ρ
    /// candidate: `base[k] = Σ_t prob[t]·(r[t] − ρ·units[t])`. Computed
    /// once per candidate, so the hot sweep loop streams only
    /// `prob`/`succ` and the value function.
    base: Vec<f64>,
}

impl ValueWorkspace {
    fn new(n: usize) -> Self {
        ValueWorkspace {
            v: vec![0.0; n],
            next_v: vec![0.0; n],
            base: Vec::new(),
        }
    }
}

/// A cross-solve value-function cache for parameter sweeps.
///
/// The Dinkelbach solver already warm-starts its value function across ρ
/// candidates *within* one solve; a sweep over a model axis (most notably
/// the delay axis of a delay-aware study: the optimal `v` moves
/// continuously with `delay_ratio`) can reuse the previous solve's
/// converged values the same way via [`MdpConfig::solve_with_cache`].
/// The cache is consulted only when the state-space size matches, so
/// sweeping mixed truncations or reward models through one cache is safe
/// (those solves simply start cold).
#[derive(Debug, Clone, Default)]
pub struct ValueCache {
    v: Vec<f64>,
}

impl ValueCache {
    /// An empty cache; the first solve through it starts cold.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExpandedMdp {
    /// Expand `config`'s transition table. Builds the state index (the one
    /// hash-map construction of the whole solve) and flattens every legal
    /// `(state, action)`'s outcomes.
    fn build(config: &MdpConfig) -> Self {
        let space = Arc::new(StateSpace::new(config.states()));
        let n = space.states.len();
        let ref_state = space.index[&MdpState::new(0, 0, Fork::Irrelevant)];

        let mut state_ptr = Vec::with_capacity(n + 1);
        state_ptr.push(0);
        let mut actions = Vec::new();
        let mut out_ptr = vec![0usize];
        let mut prob = Vec::new();
        let mut succ = Vec::new();
        let mut attacker_reward = Vec::new();
        let mut units = Vec::new();

        for &s in &space.states {
            let legal = config.legal_actions(s);
            debug_assert!(!legal.is_empty(), "state {s} has no legal action");
            for action in legal {
                let row_start = prob.len();
                for o in config.outcomes(s, action) {
                    debug_assert!(
                        space.index.contains_key(&o.next),
                        "successor {} of {s} outside the state space",
                        o.next
                    );
                    let j = *space
                        .index
                        .get(&o.next)
                        .expect("transition successors stay inside the truncated space");
                    let u = match config.scenario {
                        Scenario::RegularRate => o.regular,
                        Scenario::RegularPlusUncleRate => o.regular + o.uncles,
                    };
                    prob.push(o.prob);
                    succ.push(u32::try_from(j).expect("state index fits u32"));
                    attacker_reward.push(o.attacker_reward);
                    units.push(u);
                }
                // Every CSR row is a probability distribution; the
                // delay-aware race folding (win/loss branch splits,
                // effective-γ scaling) makes silent mass leakage easy, so
                // rows are validated at construction.
                debug_assert!(
                    {
                        let row_sum: f64 = prob[row_start..].iter().sum();
                        (row_sum - 1.0).abs() < 1e-12
                    },
                    "transition row ({s}, {action:?}) leaks probability mass"
                );
                out_ptr.push(prob.len());
                actions.push(action);
            }
            state_ptr.push(actions.len());
        }

        ExpandedMdp {
            space,
            ref_state,
            state_ptr,
            actions,
            out_ptr,
            prob,
            succ,
            attacker_reward,
            units,
        }
    }

    fn len(&self) -> usize {
        self.space.states.len()
    }

    /// Refill `base[k] = Σ_t prob[t]·(r[t] − ρ·units[t])` for every
    /// action slot — the reward half of the Bellman backup, hoisted out
    /// of the sweep loop. One `O(nnz)` pass per ρ candidate buys every
    /// subsequent sweep a multiply-subtract per outcome and halves the
    /// arrays the hot loop streams.
    fn fill_base(&self, rho: f64, base: &mut Vec<f64>) {
        base.clear();
        base.extend((0..self.actions.len()).map(|k| {
            let mut b = 0.0;
            for t in self.out_ptr[k]..self.out_ptr[k + 1] {
                b += self.prob[t] * (self.attacker_reward[t] - rho * self.units[t]);
            }
            b
        }));
    }

    /// Best action value for state `i` given the per-action reward bases
    /// (already ρ-weighted by [`ExpandedMdp::fill_base`]) and the current
    /// value function.
    #[inline]
    fn best_q(&self, i: usize, base: &[f64], v: &[f64]) -> (f64, Action) {
        let mut best = f64::NEG_INFINITY;
        let mut best_action = Action::Adopt;
        let (lo, hi) = (self.state_ptr[i], self.state_ptr[i + 1]);
        for ((&action, &b), k) in self.actions[lo..hi].iter().zip(&base[lo..hi]).zip(lo..hi) {
            let mut q = b;
            for t in self.out_ptr[k]..self.out_ptr[k + 1] {
                q += self.prob[t] * v[self.succ[t] as usize];
            }
            if q > best {
                best = q;
                best_action = action;
            }
        }
        (best, best_action)
    }

    /// Fill `out[i] = f(i)` for every slot, in parallel. Workers claim
    /// fixed-size state tiles ([`PARALLEL_GRAIN`] slots) from an atomic
    /// counter — the same work-queue scheduling the experiment harness
    /// uses — so heterogeneous per-state costs (the action fan-out varies
    /// across the space) stay load-balanced at truncation 200+. Tile
    /// membership only decides which thread computes which slot, never
    /// the arithmetic, so the result is deterministic for any `threads`;
    /// each tile sits behind an uncontended mutex purely to hand its
    /// `&mut` slice across threads.
    fn par_fill<T: Send>(out: &mut [T], threads: usize, f: impl Fn(usize) -> T + Sync) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let n = out.len();
        let threads = threads.min(n.div_ceil(PARALLEL_GRAIN)).max(1);
        if threads <= 1 || n < PARALLEL_MIN_STATES {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(i);
            }
            return;
        }
        let tiles: Vec<Mutex<(usize, &mut [T])>> = out
            .chunks_mut(PARALLEL_GRAIN)
            .enumerate()
            .map(|(k, chunk)| Mutex::new((k * PARALLEL_GRAIN, chunk)))
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tiles = &tiles;
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= tiles.len() {
                        break;
                    }
                    let mut tile = tiles[k].lock().expect("sweep tile lock");
                    let (start, slots) = &mut *tile;
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = f(*start + j);
                    }
                });
            }
        });
    }

    /// One Bellman sweep: `next_v[i] = max_a Q(i, a)` for every state.
    fn bellman_sweep(&self, base: &[f64], v: &[f64], next_v: &mut [f64], threads: usize) {
        Self::par_fill(next_v, threads, |i| self.best_q(i, base, v).0);
    }

    /// Optimal average transformed reward `g(ρ)` via relative value
    /// iteration, warm-started from (and leaving its converged values in)
    /// `ws.v`. Returns `(g, sweeps, span)` — `span` is the Bellman-update
    /// span seminorm of the terminating sweep (the iterate's residual).
    ///
    /// With `sign_only`, iteration stops as soon as the sign of `g(ρ)` is
    /// certain: every sweep's Bellman-update differences bound the optimal
    /// gain (`min_d ≤ g ≤ max_d`, the classic value-iteration sandwich for
    /// unichain MDPs), so once the whole interval clears zero the returned
    /// midpoint carries the exact sign — which is all a bisection step
    /// needs. Candidates far from the root resolve in a handful of sweeps.
    fn optimal_average(
        &self,
        rho: f64,
        tolerance: f64,
        threads: usize,
        sign_only: bool,
        ws: &mut ValueWorkspace,
    ) -> Result<(f64, usize, f64), MdpError> {
        let n = self.len();
        let max_sweeps = 200_000;
        self.fill_base(rho, &mut ws.base);
        for sweep in 0..max_sweeps {
            self.bellman_sweep(&ws.base, &ws.v, &mut ws.next_v, threads);
            // Span seminorm of the Bellman update; sequential index-order
            // reduction keeps it deterministic under any thread count.
            let mut min_d = f64::INFINITY;
            let mut max_d = f64::NEG_INFINITY;
            for i in 0..n {
                let d = ws.next_v[i] - ws.v[i];
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
            let offset = ws.next_v[self.ref_state];
            for i in 0..n {
                ws.v[i] = ws.next_v[i] - offset;
            }
            if sign_only && (min_d > 0.0 || max_d < 0.0) {
                return Ok((0.5 * (max_d + min_d), sweep + 1, max_d - min_d));
            }
            if max_d - min_d < tolerance {
                return Ok((0.5 * (max_d + min_d), sweep + 1, max_d - min_d));
            }
        }
        // The caller widens `rho_lo`/`rho_hi` to its live bisection
        // bracket; here only the failing candidate is known.
        Err(MdpError::NoConvergence {
            rho_lo: rho,
            rho_hi: rho,
            sweeps: max_sweeps,
        })
    }

    /// Extract the greedy policy from the converged values and the reward
    /// bases of the final ρ (deterministic: ties break by
    /// action-enumeration order in every tiling).
    fn greedy_policy(&self, base: &[f64], v: &[f64], threads: usize) -> Vec<Action> {
        let mut actions = vec![Action::Adopt; self.len()];
        Self::par_fill(&mut actions, threads, |i| self.best_q(i, base, v).1);
        actions
    }
}

/// Replace a [`MdpError::NoConvergence`] candidate-point bracket with the
/// bisection's live `[lo, hi]` bracket and accumulated sweep count, so the
/// diagnostics describe the whole solve rather than the failing candidate.
fn widen_bracket(e: MdpError, lo: f64, hi: f64, done: usize) -> MdpError {
    match e {
        MdpError::NoConvergence { sweeps, .. } => MdpError::NoConvergence {
            rho_lo: lo,
            rho_hi: hi,
            sweeps: done + sweeps,
        },
        other => other,
    }
}

impl MdpConfig {
    /// Solve for the attacker's optimal revenue and policy.
    ///
    /// The transition table is expanded once; each Dinkelbach bisection
    /// step re-weights it on the fly and warm-starts relative value
    /// iteration from the previous candidate's fixed point. The reported
    /// policy is the greedy policy at the solved revenue.
    ///
    /// # Errors
    ///
    /// - [`MdpError::InvalidAlpha`] / [`MdpError::InvalidGamma`] /
    ///   [`MdpError::InvalidTolerance`] for bad parameters;
    /// - [`MdpError::NoConvergence`] if value iteration stalls or the
    ///   bisection exhausts its step budget; the error carries the ρ
    ///   bracket reached and the sweeps spent.
    pub fn solve(&self) -> Result<Solution, MdpError> {
        self.solve_with_cache(&mut ValueCache::new())
    }

    /// [`MdpConfig::solve`], warm-started from (and refreshing) a
    /// cross-solve [`ValueCache`]. When the cached value function matches
    /// this solve's state count it seeds relative value iteration — for a
    /// sweep along a continuous model axis (delay, α, γ) each solve then
    /// starts next to its fixed point, exactly like the within-solve warm
    /// start across ρ candidates. A mismatched (or empty) cache is
    /// ignored; either way the converged values are stored back.
    ///
    /// Sign-only bisection candidates resolve the *exact* sign of `g(ρ)`
    /// regardless of the starting values, so a warm-started solve walks
    /// the identical ρ bracket and returns a revenue within
    /// `rho_tolerance` of the cold solve's.
    ///
    /// # Errors
    ///
    /// As [`MdpConfig::solve`].
    pub fn solve_with_cache(&self, cache: &mut ValueCache) -> Result<Solution, MdpError> {
        self.solve_observed(cache, &NoopRecorder)
    }

    /// [`MdpConfig::solve_with_cache`] with a flight recorder attached.
    ///
    /// Each bisection candidate emits an [`EventKind::Bisect`] event
    /// (actor: step number; payloads: the candidate ρ's bits and the
    /// sweeps it took), warm-start payoffs emit [`EventKind::WarmStart`]
    /// (sweeps vs the cold first iterate), and the closing full-tolerance
    /// evaluation emits [`EventKind::Sweep`] with the solved revenue.
    /// Recording is pure observation of values the solver already
    /// computes: the bisection walk, the revenue and the exported policy
    /// are bit-identical with any recorder, including none.
    ///
    /// # Errors
    ///
    /// As [`MdpConfig::solve`].
    pub fn solve_observed(
        &self,
        cache: &mut ValueCache,
        recorder: &dyn Recorder,
    ) -> Result<Solution, MdpError> {
        self.validate()?;
        let threads = self.resolved_threads();
        let expanded = ExpandedMdp::build(self);
        let mut ws = ValueWorkspace::new(expanded.len());
        if cache.v.len() == expanded.len() {
            ws.v.copy_from_slice(&cache.v);
        }
        // Us ≤ static + uncle + nephew per regular block < 2 comfortably.
        let mut lo = 0.0f64;
        let mut hi = 2.0f64;
        let mut iterations = 0usize;
        let mut steps = 0usize;
        let mut stats = SolveStats::default();
        while hi - lo > self.rho_tolerance {
            if steps >= MAX_BISECTIONS {
                return Err(MdpError::NoConvergence {
                    rho_lo: lo,
                    rho_hi: hi,
                    sweeps: iterations,
                });
            }
            steps += 1;
            let mid = 0.5 * (lo + hi);
            let (g, sweeps, span) = expanded
                .optimal_average(mid, self.tolerance, threads, true, &mut ws)
                .map_err(|e| widen_bracket(e, lo, hi, iterations))?;
            iterations += sweeps;
            let cold = stats.sweeps_per_iterate.first().copied();
            stats.record(sweeps, span);
            recorder.event(
                EventKind::Bisect,
                u32::try_from(steps).unwrap_or(u32::MAX),
                mid.to_bits(),
                sweeps as u64,
            );
            if let Some(cold) = cold {
                if sweeps < cold {
                    recorder.event(
                        EventKind::WarmStart,
                        u32::try_from(steps).unwrap_or(u32::MAX),
                        sweeps as u64,
                        cold as u64,
                    );
                }
            }
            if g > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        stats.bisection_steps = steps;
        let revenue = 0.5 * (lo + hi);
        // One more full-tolerance evaluation at the solved revenue (cheap:
        // warm-started) so the reported policy is greedy at ρ*, not at the
        // last bisection midpoint.
        let (_, sweeps, span) = expanded
            .optimal_average(revenue, self.tolerance, threads, false, &mut ws)
            .map_err(|e| widen_bracket(e, lo, hi, iterations))?;
        iterations += sweeps;
        stats.record(sweeps, span);
        recorder.event(EventKind::Sweep, 0, revenue.to_bits(), sweeps as u64);
        let actions = expanded.greedy_policy(&ws.base, &ws.v, threads);
        cache.v.clear();
        cache.v.extend_from_slice(&ws.v);
        Ok(Solution {
            revenue,
            policy: Policy {
                space: expanded.space.clone(),
                actions,
            },
            iterations,
            stats,
        })
    }

    /// Legacy solver kept for benchmarking the single-expansion layout:
    /// re-expands the transition table, cold-starts the value function and
    /// rebuilds the policy on **every** ρ candidate, exactly like the
    /// pre-CSR implementation. Produces the same revenue as
    /// [`MdpConfig::solve`]. Do not use outside benchmarks.
    ///
    /// # Errors
    ///
    /// As [`MdpConfig::solve`].
    #[doc(hidden)]
    pub fn solve_reexpanding(&self) -> Result<Solution, MdpError> {
        self.validate()?;
        let threads = self.resolved_threads();
        let mut lo = 0.0f64;
        let mut hi = 2.0f64;
        let mut iterations = 0usize;
        let mut steps = 0usize;
        let mut stats = SolveStats::default();
        let mut last: Option<Solution> = None;
        while hi - lo > self.rho_tolerance {
            if steps >= MAX_BISECTIONS {
                return Err(MdpError::NoConvergence {
                    rho_lo: lo,
                    rho_hi: hi,
                    sweeps: iterations,
                });
            }
            steps += 1;
            let mid = 0.5 * (lo + hi);
            // The legacy behaviour under benchmark: full re-expansion and a
            // cold-started value function per candidate.
            let expanded = ExpandedMdp::build(self);
            let mut ws = ValueWorkspace::new(expanded.len());
            let (g, sweeps, span) =
                expanded.optimal_average(mid, self.tolerance, threads, false, &mut ws)?;
            iterations += sweeps;
            stats.record(sweeps, span);
            let actions = expanded.greedy_policy(&ws.base, &ws.v, threads);
            if g > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
            last = Some(Solution {
                revenue: 0.5 * (lo + hi),
                policy: Policy {
                    space: expanded.space.clone(),
                    actions,
                },
                iterations,
                stats: SolveStats::default(),
            });
        }
        let mut solution = last.expect("bisection runs at least once");
        solution.revenue = 0.5 * (lo + hi);
        solution.iterations = iterations;
        stats.bisection_steps = steps;
        solution.stats = stats;
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RewardModel;
    use seleth_core::bitcoin;

    fn solve(alpha: f64, gamma: f64, rewards: RewardModel) -> Solution {
        MdpConfig::new(alpha, gamma, rewards)
            .with_max_len(30)
            .solve()
            .unwrap()
    }

    #[test]
    fn optimal_dominates_eyal_sirer() {
        // SM1 is a feasible policy, so the optimum can only do better
        // (up to truncation bias).
        for &(a, g) in &[(0.3, 0.0), (0.35, 0.5), (0.4, 0.5), (0.45, 0.9)] {
            let opt = solve(a, g, RewardModel::Bitcoin).revenue;
            let sm1 = bitcoin::eyal_sirer_revenue(a, g);
            assert!(
                opt >= sm1 - 2e-3,
                "alpha={a} gamma={g}: optimal {opt} below SM1 {sm1}"
            );
        }
    }

    #[test]
    fn optimal_matches_sm1_where_sm1_is_optimal() {
        // At γ = 0.5 and modest α, Eyal–Sirer's SM1 is known-optimal; two
        // completely independent implementations (closed form vs MDP)
        // must agree to bisection precision.
        for &a in &[0.26, 0.28, 0.30] {
            let opt = solve(a, 0.5, RewardModel::Bitcoin).revenue;
            let sm1 = bitcoin::eyal_sirer_revenue(a, 0.5);
            assert!(
                (opt - sm1).abs() < 5e-5,
                "alpha={a}: optimal {opt} vs SM1 {sm1}"
            );
        }
    }

    #[test]
    fn optimal_strictly_beats_sm1_at_high_alpha() {
        // Sapirshtein et al.: above ~1/3 the optimal policy outperforms
        // SM1 (e.g. their published 0.37077 at α = 0.35, γ = 0).
        let opt = solve(0.35, 0.0, RewardModel::Bitcoin).revenue;
        let sm1 = bitcoin::eyal_sirer_revenue(0.35, 0.0);
        assert!(opt > sm1 + 4e-3, "optimal {opt} vs SM1 {sm1}");
        assert!(
            (opt - 0.37077).abs() < 5e-4,
            "published optimal value: got {opt}"
        );
    }

    #[test]
    fn solve_stats_trace_the_bisection() {
        let s = solve(0.35, 0.5, RewardModel::Bitcoin);
        let stats = &s.stats;
        assert!(stats.bisection_steps > 0);
        // One entry per bisection candidate plus the closing evaluation.
        assert_eq!(stats.sweeps_per_iterate.len(), stats.bisection_steps + 1);
        assert_eq!(stats.residuals.len(), stats.sweeps_per_iterate.len());
        assert_eq!(
            stats.sweeps_per_iterate.iter().sum::<usize>(),
            s.iterations,
            "per-iterate sweeps must partition the total"
        );
        assert!(stats.residuals.iter().all(|r| r.is_finite() && *r >= 0.0));
        let rate = stats.warm_start_hit_rate();
        assert!((0.0..=1.0).contains(&rate));
        assert!(
            rate > 0.5,
            "warm starts should beat the cold iterate most of the time: {rate}"
        );
    }

    #[test]
    fn observed_solve_records_events_without_changing_the_answer() {
        let config = MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).with_max_len(30);
        let plain = config.solve().unwrap();
        let log = seleth_obs::EventLog::new(4096);
        let observed = config.solve_observed(&mut ValueCache::new(), &log).unwrap();
        // Observation is bit-neutral: same revenue, same policy walk.
        assert_eq!(plain.revenue.to_bits(), observed.revenue.to_bits());
        assert_eq!(plain.iterations, observed.iterations);
        let counts = log.counts_by_kind();
        let count_of = |k: EventKind| {
            counts
                .iter()
                .find(|(kind, _)| *kind == k)
                .map_or(0, |(_, n)| *n)
        };
        assert_eq!(
            count_of(EventKind::Bisect) as usize,
            observed.stats.bisection_steps
        );
        assert_eq!(count_of(EventKind::Sweep), 1);
        assert_eq!(
            count_of(EventKind::WarmStart) as usize,
            observed.stats.warm_start_hits
        );
        // The closing Sweep event carries the solved revenue's exact bits.
        let sweep = log
            .events()
            .into_iter()
            .find(|e| e.kind == EventKind::Sweep)
            .unwrap();
        assert_eq!(sweep.a, observed.revenue.to_bits());
    }

    #[test]
    fn optimal_never_below_honest() {
        // "Override at (1,0), adopt when behind" is honest mining and
        // earns exactly α, so the optimum is at least that.
        for &(a, g) in &[(0.1, 0.0), (0.2, 0.5), (0.45, 1.0)] {
            let opt = solve(a, g, RewardModel::Bitcoin).revenue;
            assert!(opt >= a - 2e-3, "alpha={a} gamma={g}: {opt}");
        }
    }

    #[test]
    fn revenue_monotone_in_alpha() {
        let mut prev = 0.0;
        for &a in &[0.15, 0.25, 0.35, 0.45] {
            let r = solve(a, 0.5, RewardModel::Bitcoin).revenue;
            assert!(r > prev);
            prev = r;
        }
    }

    #[test]
    fn ethereum_rewards_dominate_bitcoin() {
        // Under the absolute-revenue objective, uncle rewards are free
        // money for the attacker: optimal Ethereum revenue must be at
        // least the Bitcoin optimum — the paper's headline under optimal
        // play, not just Algorithm 1.
        for &(a, g) in &[(0.2, 0.0), (0.3, 0.5), (0.4, 0.5)] {
            let btc = solve(a, g, RewardModel::Bitcoin).revenue;
            let eth = solve(a, g, RewardModel::EthereumApprox).revenue;
            assert!(
                eth >= btc - 1e-4,
                "alpha={a} gamma={g}: eth {eth} vs btc {btc}"
            );
        }
    }

    #[test]
    fn ethereum_profitable_where_bitcoin_is_not() {
        // At γ = 0.5, α = 0.22 the Bitcoin optimum is honest mining
        // (below the optimal threshold); with uncle rewards the attacker
        // clears its fair share.
        let btc = solve(0.22, 0.5, RewardModel::Bitcoin).revenue;
        let eth = solve(0.22, 0.5, RewardModel::EthereumApprox).revenue;
        assert!(btc <= 0.22 + 1e-3, "bitcoin optimum ~honest, got {btc}");
        assert!(eth > 0.2225, "ethereum optimum profitable, got {eth}");
    }

    #[test]
    fn scenario2_no_more_profitable_than_scenario1() {
        // Counting uncles in the difficulty can only shrink the ratio.
        let base = MdpConfig::new(0.35, 0.5, RewardModel::EthereumApprox).with_max_len(30);
        let s1 = base.solve().unwrap().revenue;
        let s2 = base
            .with_scenario(Scenario::RegularPlusUncleRate)
            .solve()
            .unwrap()
            .revenue;
        assert!(s2 <= s1 + 1e-6, "scenario2 {s2} vs scenario1 {s1}");
    }

    #[test]
    fn policy_is_meaningful() {
        let s = solve(0.4, 0.5, RewardModel::Bitcoin);
        assert!(!s.policy.is_empty());
        // With a 2-lead the attacker holds (waits), not adopts.
        let act = s.policy.action(MdpState::new(2, 0, Fork::Irrelevant));
        assert_eq!(act, Some(Action::Wait), "lead of 2 should be held");
        // Far behind, adopt.
        let act = s.policy.action(MdpState::new(0, 3, Fork::Relevant));
        assert_eq!(act, Some(Action::Adopt));
        assert!(s.policy.aggression() > 0.0);
    }

    #[test]
    fn gamma_one_always_profitable() {
        let r = solve(0.1, 1.0, RewardModel::Bitcoin).revenue;
        assert!(r > 0.1, "γ=1 attack profitable even at 10%: {r}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(MdpConfig::new(0.0, 0.5, RewardModel::Bitcoin)
            .solve()
            .is_err());
        assert!(MdpConfig::new(0.3, 2.0, RewardModel::Bitcoin)
            .solve()
            .is_err());
    }

    #[test]
    fn degenerate_tolerances_are_typed_errors() {
        // A zero or negative bisection tolerance used to loop forever;
        // now it is rejected up front.
        for bad in [0.0, -1e-6, f64::NAN, f64::INFINITY] {
            let mut config = MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin).with_max_len(8);
            config.rho_tolerance = bad;
            assert!(
                matches!(config.solve(), Err(MdpError::InvalidTolerance { .. })),
                "rho_tolerance {bad} must be rejected"
            );
            let mut config = MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin).with_max_len(8);
            config.tolerance = bad;
            assert!(matches!(
                config.solve(),
                Err(MdpError::InvalidTolerance { .. })
            ));
        }
    }

    #[test]
    fn sub_resolution_tolerance_terminates() {
        // A positive but sub-f64-resolution tolerance passes validation;
        // the bisection must terminate regardless — either the bracket
        // collapses to zero width at the floating-point floor (Ok), or the
        // step cap fires with bracket diagnostics. Never an unbounded loop.
        let mut config = MdpConfig::new(0.3, 0.5, RewardModel::Bitcoin).with_max_len(6);
        config.rho_tolerance = 1e-300;
        match config.solve() {
            Ok(s) => assert!((0.0..1.0).contains(&s.revenue), "revenue {}", s.revenue),
            Err(MdpError::NoConvergence { rho_lo, rho_hi, .. }) => {
                assert!(rho_lo <= rho_hi, "bracket [{rho_lo}, {rho_hi}]")
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn no_convergence_carries_bracket_diagnostics() {
        // The bisection widens a candidate-point failure to its live ρ
        // bracket and accumulates the sweep count; other errors pass
        // through untouched.
        let e = widen_bracket(
            MdpError::NoConvergence {
                rho_lo: 0.4,
                rho_hi: 0.4,
                sweeps: 7,
            },
            0.25,
            0.5,
            100,
        );
        assert_eq!(
            e,
            MdpError::NoConvergence {
                rho_lo: 0.25,
                rho_hi: 0.5,
                sweeps: 107
            }
        );
        let msg = e.to_string();
        assert!(
            msg.contains("107") && msg.contains("0.25") && msg.contains("0.5"),
            "diagnostics missing from {msg:?}"
        );
        let other = widen_bracket(MdpError::InvalidGamma { gamma: 2.0 }, 0.0, 1.0, 5);
        assert_eq!(other, MdpError::InvalidGamma { gamma: 2.0 });
    }

    #[test]
    fn thread_count_never_changes_solution() {
        // The parallel Bellman sweep partitions states but never reorders
        // arithmetic: revenue, sweep counts and the full policy must be
        // identical for every worker count.
        let base = MdpConfig::new(0.38, 0.4, RewardModel::EthereumApprox).with_max_len(16);
        let reference = base.with_threads(1).solve().unwrap();
        for threads in [2, 3, 8] {
            let parallel = base.with_threads(threads).solve().unwrap();
            assert_eq!(reference.revenue, parallel.revenue, "threads={threads}");
            assert_eq!(
                reference.iterations, parallel.iterations,
                "threads={threads}"
            );
            let same = reference
                .policy
                .iter()
                .zip(parallel.policy.iter())
                .all(|((s1, a1), (s2, a2))| s1 == s2 && a1 == a2);
            assert!(same, "policy differs at threads={threads}");
        }
    }

    #[test]
    fn reexpanding_solver_matches_fast_path() {
        // The legacy-layout benchmark reference must agree on the solved
        // revenue to bisection precision (both bisect the same g(ρ)).
        let config = MdpConfig::new(0.33, 0.5, RewardModel::Bitcoin).with_max_len(20);
        let fast = config.solve().unwrap();
        let slow = config.solve_reexpanding().unwrap();
        assert!(
            (fast.revenue - slow.revenue).abs() < 1e-9,
            "fast {} vs legacy {}",
            fast.revenue,
            slow.revenue
        );
        // Warm-starting must save sweeps, not just wall-clock.
        assert!(
            fast.iterations < slow.iterations,
            "warm start used {} sweeps vs {}",
            fast.iterations,
            slow.iterations
        );
    }

    #[test]
    fn csr_rows_sum_to_one_over_random_configs() {
        // Property test over random (α, γ, delay): every expanded CSR row
        // must be a probability distribution to 1e-12 — the construction
        // debug-assert fires inside `build`, and the explicit re-check
        // below keeps the property gated in release-mode test runs too.
        let mut state = 0x5eed_cafe_f00d_u64;
        let mut next_unit = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..40 {
            let alpha = 0.05 + 0.44 * next_unit();
            let gamma = next_unit();
            let delay = 2.0 * next_unit();
            let rewards = if case % 2 == 0 {
                RewardModel::Bitcoin
            } else {
                RewardModel::EthereumApprox
            };
            let config = MdpConfig::new(alpha, gamma, rewards)
                .with_max_len(8)
                .with_delay_ratio(delay);
            let expanded = ExpandedMdp::build(&config);
            for k in 0..expanded.actions.len() {
                let row: f64 = expanded.prob[expanded.out_ptr[k]..expanded.out_ptr[k + 1]]
                    .iter()
                    .sum();
                assert!(
                    (row - 1.0).abs() < 1e-12,
                    "case {case} (α={alpha} γ={gamma} delay={delay}): \
                     action slot {k} sums to {row}"
                );
            }
        }
    }

    #[test]
    fn value_cache_saves_sweeps_across_a_delay_sweep() {
        // Sweeping the delay axis through one cache must (a) keep every
        // revenue within bisection tolerance of its cold solve and (b)
        // spend fewer sweeps than the cold solves once warm.
        let base = MdpConfig::new(0.4, 0.5, RewardModel::Bitcoin).with_max_len(16);
        let mut cache = ValueCache::new();
        let mut warm_total = 0usize;
        let mut cold_total = 0usize;
        for (i, &delay) in [0.0, 0.15, 0.3, 0.45].iter().enumerate() {
            let config = base.with_delay_ratio(delay);
            let warm = config.solve_with_cache(&mut cache).unwrap();
            let cold = config.solve().unwrap();
            assert!(
                (warm.revenue - cold.revenue).abs() <= config.rho_tolerance,
                "delay {delay}: warm {} vs cold {}",
                warm.revenue,
                cold.revenue
            );
            if i > 0 {
                warm_total += warm.iterations;
                cold_total += cold.iterations;
            }
        }
        assert!(
            warm_total < cold_total,
            "cache-seeded solves spent {warm_total} sweeps vs {cold_total} cold"
        );
    }

    #[test]
    fn revenue_degrades_as_delay_grows() {
        // The race window only ever costs the attacker (releases can now
        // lose), so optimal revenue is monotone non-increasing in delay —
        // and strictly lower once the window is material.
        let base = MdpConfig::new(0.4, 0.5, RewardModel::Bitcoin).with_max_len(16);
        let mut prev = f64::INFINITY;
        for &delay in &[0.0, 0.2, 0.5, 1.0] {
            let r = base.with_delay_ratio(delay).solve().unwrap().revenue;
            assert!(
                r <= prev + 1e-9,
                "delay {delay}: revenue {r} above previous {prev}"
            );
            prev = r;
        }
        let zero = base.solve().unwrap().revenue;
        assert!(
            prev < zero - 0.01,
            "delay 1.0 should cost materially: {prev} vs {zero}"
        );
    }

    #[test]
    fn policy_lookup_outside_space_is_none() {
        let s = solve(0.3, 0.5, RewardModel::Bitcoin);
        assert_eq!(
            s.policy.action(MdpState::new(900, 0, Fork::Irrelevant)),
            None
        );
        assert_eq!(s.policy.len(), s.policy.iter().count());
    }
}
