//! Executable policy artifacts: compact, versioned, replayable tables.
//!
//! A solved [`crate::Policy`] is index-backed but tied to the solver's
//! in-memory state enumeration. This module lowers it into a
//! [`PolicyTable`] — three dense `(a, h) → Action` arrays, one per
//! [`Fork`] label, plus the metadata needed to reproduce and audit the
//! solve (α, γ, reward model, scenario, truncation, predicted revenue ρ*).
//! The table is what the simulator replays ([`seleth-sim`]'s
//! `PoolStrategy::Table`): lookups are pure arithmetic over flat arrays,
//! no hashing, no allocation.
//!
//! # Artifact format
//!
//! Tables serialize to a single flat JSON object (format version
//! [`FORMAT_VERSION`]) with one key per metadata field and one
//! action-code string per fork label (`a` = adopt, `o` = override,
//! `m` = match, `w` = wait; row-major, `index = a · (max_len + 1) + h`).
//! Hand-written tables may additionally carry a strategy-family name
//! ([`PolicyTable::with_family`]), written as an optional `family` field.
//! Floats are written with Rust's shortest round-trip formatting, so
//! save → load is bit-identical. The reader is a small hand-rolled parser
//! (the vendored `serde` is marker-only; see `vendor/README.md`) that
//! accepts any field order and ignores unknown string/number fields.
//!
//! # Lowering and the `match_d` dimension
//!
//! [`RewardModel::Bitcoin`] policies carry no published-prefix distance,
//! so the lowering is exact: the table plays the same action the MDP
//! optimum plays in every reachable state.
//! [`RewardModel::EthereumApprox`] policies additionally condition on the
//! first-reference distance of a published prefix; the table keeps the
//! no-prefix slice (`match_d = 0`) for irrelevant/relevant states and the
//! first-match slice (`match_d = min(h, 7)`) for active states — the
//! distances actually reached when a fork epoch's first match happens at
//! the current height. Replays of Ethereum-model tables are therefore a
//! (very good) feasible approximation of the optimum, not the optimum
//! itself; cross-validation against ρ* is enforced for Bitcoin-model
//! tables (see `tests/policy_playback.rs`).
//!
//! [`seleth-sim`]: https://docs.rs/seleth-sim

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use seleth_chain::Scenario;

use crate::model::{Action, Fork, MdpConfig, MdpState, RewardModel, MATCH_D_CAP};
use crate::solver::Solution;

/// Version tag written into (and required from) policy artifacts.
pub const FORMAT_VERSION: u32 = 1;

/// Artifact kind tag, so unrelated JSON files fail loudly on load.
const KIND: &str = "seleth-policy";

/// Upper bound accepted for `max_len` when parsing (keeps hostile inputs
/// from requesting absurd allocations).
const MAX_LEN_LIMIT: u32 = 4096;

/// Error raised by [`PolicyTable`] parsing and I/O.
#[derive(Debug)]
pub enum PolicyError {
    /// Reading or writing the artifact file failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The artifact text is not a valid policy table.
    Parse(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Io { path, source } => write!(f, "policy I/O on {path}: {source}"),
            PolicyError::Parse(msg) => write!(f, "policy parse error: {msg}"),
        }
    }
}

impl Error for PolicyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PolicyError::Io { source, .. } => Some(source),
            PolicyError::Parse(_) => None,
        }
    }
}

/// A dense, replayable withholding policy: `(a, h, fork) → Action` over
/// the truncated region `a, h ≤ max_len`, plus solve metadata.
///
/// Construct by lowering a solve ([`PolicyTable::from_solution`]), from a
/// closure ([`PolicyTable::from_fn`]), as the honest baseline
/// ([`PolicyTable::honest`]), or by loading an artifact
/// ([`PolicyTable::load`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTable {
    alpha: f64,
    gamma: f64,
    rewards: RewardModel,
    scenario: Scenario,
    max_len: u32,
    revenue: f64,
    /// Name of the strategy family (plus parameters) this table encodes —
    /// e.g. `sm1` or `lead_stubborn_l2` for hand-written strategies from
    /// the zoo's generators. Empty for unnamed tables (solver lowerings,
    /// artifacts predating the field); serialized only when non-empty, so
    /// pre-existing artifacts stay byte-identical.
    family: String,
    /// `(max_len + 1)²` actions per fork label, `index = a·(max_len+1)+h`.
    irrelevant: Vec<Action>,
    relevant: Vec<Action>,
    active: Vec<Action>,
}

impl PolicyTable {
    /// Lower a solved policy into a dense table.
    ///
    /// `config` must be the configuration `solution` was solved with (the
    /// table records its α, γ, reward model, scenario and truncation).
    /// See the [module docs](self) for how the Ethereum `match_d`
    /// dimension is projected.
    pub fn from_solution(config: &MdpConfig, solution: &Solution) -> Self {
        let policy = &solution.policy;
        let lookup = |a: u32, h: u32, fork: Fork| -> Action {
            let state = match fork {
                // The no-published-prefix slice exists for every (a, h)
                // that has the label at all.
                Fork::Irrelevant => MdpState::new(a, h, Fork::Irrelevant),
                Fork::Relevant => MdpState::new(a, h, Fork::Relevant),
                // Active states carry the distance fixed at first match:
                // h, capped where rewards vanish (Bitcoin collapses the
                // dimension to a canonical 1).
                Fork::Active => {
                    let d = match config.rewards {
                        RewardModel::Bitcoin => 1,
                        RewardModel::EthereumApprox => {
                            (u8::try_from(h).unwrap_or(MATCH_D_CAP)).clamp(1, MATCH_D_CAP)
                        }
                    };
                    MdpState::active(a, h, d)
                }
            };
            // Slots for states outside the MDP's space (relevant/active
            // with h = 0, active with a < h) are unreachable in replay;
            // fill them with the always-safe resolution.
            policy.action(state).unwrap_or(Action::Adopt)
        };
        Self::from_fn(
            config.alpha,
            config.gamma,
            config.rewards,
            config.scenario,
            config.max_len,
            solution.revenue,
            lookup,
        )
    }

    /// Build a table from an arbitrary `(a, h, fork) → Action` rule — the
    /// escape hatch for hand-written strategies and tests. `revenue`
    /// records the strategy's *predicted* objective value (use the honest
    /// baseline `α` when no prediction exists).
    pub fn from_fn(
        alpha: f64,
        gamma: f64,
        rewards: RewardModel,
        scenario: Scenario,
        max_len: u32,
        revenue: f64,
        mut f: impl FnMut(u32, u32, Fork) -> Action,
    ) -> Self {
        let side = (max_len + 1) as usize;
        let mut tables = [
            Vec::with_capacity(side * side),
            Vec::with_capacity(side * side),
            Vec::with_capacity(side * side),
        ];
        for (slot, fork) in [Fork::Irrelevant, Fork::Relevant, Fork::Active]
            .into_iter()
            .enumerate()
        {
            for a in 0..=max_len {
                for h in 0..=max_len {
                    tables[slot].push(f(a, h, fork));
                }
            }
        }
        let [irrelevant, relevant, active] = tables;
        PolicyTable {
            alpha,
            gamma,
            rewards,
            scenario,
            max_len,
            revenue,
            family: String::new(),
            irrelevant,
            relevant,
            active,
        }
    }

    /// Tag the table with a strategy-family name (e.g. `trail_stubborn_t1`
    /// from the zoo's generators). The name survives the JSON round-trip.
    ///
    /// # Panics
    ///
    /// Panics when `family` contains characters the escape-free artifact
    /// string format cannot carry (`"`, `\`, control characters).
    #[must_use]
    pub fn with_family(mut self, family: impl Into<String>) -> Self {
        let family = family.into();
        assert!(
            !family
                .chars()
                .any(|c| c == '"' || c == '\\' || c.is_control()),
            "family name {family:?} needs escaping, which the artifact format forbids"
        );
        self.family = family;
        self
    }

    /// The honest-mining baseline as a table: publish (override) any
    /// private lead immediately, adopt whenever behind or tied. Replaying
    /// it earns exactly the fair share `α`, which is what the `revenue`
    /// field records.
    pub fn honest(alpha: f64, gamma: f64, max_len: u32) -> Self {
        Self::from_fn(
            alpha,
            gamma,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            max_len,
            alpha,
            |a, h, _| {
                if a > h {
                    Action::Override
                } else {
                    Action::Adopt
                }
            },
        )
    }

    /// Attacker hash-power fraction the policy was solved for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Tie-breaking parameter the policy was solved for.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Reward semantics of the solve.
    pub fn rewards(&self) -> RewardModel {
        self.rewards
    }

    /// Difficulty-adjustment scenario of the solve's objective.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Truncation: the table covers `a, h ≤ max_len`.
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// The solver-predicted optimal revenue ρ* (the replay target).
    pub fn predicted_revenue(&self) -> f64 {
        self.revenue
    }

    /// The strategy-family name set via [`PolicyTable::with_family`], or
    /// `""` for unnamed tables.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// Number of stored action slots (`3 · (max_len + 1)²`).
    pub fn len(&self) -> usize {
        self.irrelevant.len() + self.relevant.len() + self.active.len()
    }

    /// `true` if the table covers no states (never produced by the
    /// constructors; tables always cover at least `a = h = 0`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The action prescribed in `(a, h, fork)`, or `None` when the state
    /// lies outside the truncated region — the replay executor's
    /// documented fallback is then a forced *adopt*.
    #[inline]
    pub fn action(&self, a: u32, h: u32, fork: Fork) -> Option<Action> {
        if a > self.max_len || h > self.max_len {
            return None;
        }
        let side = (self.max_len + 1) as usize;
        let idx = a as usize * side + h as usize;
        let table = match fork {
            Fork::Irrelevant => &self.irrelevant,
            Fork::Relevant => &self.relevant,
            Fork::Active => &self.active,
        };
        Some(table[idx])
    }

    /// The action an event-driven replay executor should take in the live
    /// state `(a, h, fork)`, with the documented fallback semantics
    /// resolved: states outside the truncated region, and prescriptions
    /// that are illegal in the live state (*override* without a strictly
    /// longer private chain, *match* without a relevant race of length
    /// `h ≥ 1` it can cover), degrade to the always-legal forced *adopt*.
    ///
    /// This is the single decision procedure shared by every executor that
    /// replays artifacts over real block trees (the instant-broadcast
    /// engine's `PoolStrategy::Table` and the propagation-delay
    /// simulator's strategic miners), so fallback behaviour cannot drift
    /// between them. Corrupt or hand-written tables therefore never make a
    /// replay panic — at worst they concede epochs.
    #[inline]
    pub fn decide(&self, a: u32, h: u32, fork: Fork) -> Action {
        match self.action(a, h, fork) {
            Some(Action::Override) if a > h => Action::Override,
            Some(Action::Match) if fork == Fork::Relevant && a >= h && h >= 1 => Action::Match,
            Some(Action::Wait) => Action::Wait,
            // Out-of-table states and illegal prescriptions fall back to
            // the always-legal resolution.
            _ => Action::Adopt,
        }
    }

    /// Audit the whole truncation region: `true` iff
    /// [`PolicyTable::decide`] returns every stored prescription
    /// unchanged — no slot is an illegal *override* (without a lead) or
    /// *match* (outside a coverable relevant race), so a replay inside
    /// the region never hits the forced-adopt fallback.
    ///
    /// Solver lowerings and the zoo's strategy-family generators must
    /// pass this audit; corrupt or adversarial tables (which executors
    /// tolerate by degrading to adopt) are flagged by it. This is the
    /// single legality check tests should use instead of re-deriving the
    /// fallback rules ad hoc.
    pub fn is_legal_everywhere(&self) -> bool {
        [Fork::Irrelevant, Fork::Relevant, Fork::Active]
            .into_iter()
            .all(|fork| {
                (0..=self.max_len).all(|a| {
                    (0..=self.max_len).all(|h| {
                        let stored = self.action(a, h, fork).expect("in-region slot");
                        self.decide(a, h, fork) == stored
                    })
                })
            })
    }

    // ------------------------------------------------------------------
    // Serialization (hand-rolled: the vendored serde is marker-only)
    // ------------------------------------------------------------------

    /// Render the artifact JSON. Floats use Rust's shortest round-trip
    /// formatting, so [`PolicyTable::from_json`] restores them
    /// bit-identically.
    pub fn to_json(&self) -> String {
        let side = (self.max_len + 1) as usize;
        let mut out = String::with_capacity(3 * side * side + 512);
        out.push_str("{\n");
        out.push_str(&format!("  \"kind\": \"{KIND}\",\n"));
        out.push_str(&format!("  \"format\": {FORMAT_VERSION},\n"));
        out.push_str(&format!("  \"alpha\": {},\n", self.alpha));
        out.push_str(&format!("  \"gamma\": {},\n", self.gamma));
        let rewards = match self.rewards {
            RewardModel::Bitcoin => "bitcoin",
            RewardModel::EthereumApprox => "ethereum_approx",
        };
        out.push_str(&format!("  \"rewards\": \"{rewards}\",\n"));
        let scenario = match self.scenario {
            Scenario::RegularRate => "regular_rate",
            Scenario::RegularPlusUncleRate => "regular_plus_uncle_rate",
        };
        out.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
        out.push_str(&format!("  \"max_len\": {},\n", self.max_len));
        out.push_str(&format!("  \"revenue\": {},\n", self.revenue));
        // Written only when set: artifacts predating the field stay
        // byte-identical across a load/save cycle.
        if !self.family.is_empty() {
            out.push_str(&format!("  \"family\": \"{}\",\n", self.family));
        }
        for (name, table) in [
            ("irrelevant", &self.irrelevant),
            ("relevant", &self.relevant),
            ("active", &self.active),
        ] {
            out.push_str(&format!("  \"{name}\": \""));
            for &action in table.iter() {
                out.push(encode_action(action));
            }
            out.push_str("\",\n");
        }
        // Replace the trailing comma of the last field.
        out.truncate(out.len() - 2);
        out.push_str("\n}\n");
        out
    }

    /// Parse an artifact produced by [`PolicyTable::to_json`].
    ///
    /// # Errors
    ///
    /// [`PolicyError::Parse`] on malformed JSON, a wrong `kind`/`format`
    /// tag, missing fields, or action strings whose length disagrees with
    /// `max_len`.
    pub fn from_json(text: &str) -> Result<Self, PolicyError> {
        let mut cur = Cursor::new(text);
        cur.skip_ws();
        cur.expect(b'{')?;

        let mut kind: Option<String> = None;
        let mut format: Option<f64> = None;
        let mut alpha: Option<f64> = None;
        let mut gamma: Option<f64> = None;
        let mut rewards: Option<String> = None;
        let mut scenario: Option<String> = None;
        let mut max_len: Option<f64> = None;
        let mut revenue: Option<f64> = None;
        let mut family: Option<String> = None;
        let mut irrelevant: Option<String> = None;
        let mut relevant: Option<String> = None;
        let mut active: Option<String> = None;

        loop {
            cur.skip_ws();
            if cur.eat(b'}') {
                break;
            }
            let key = cur.parse_string()?;
            cur.skip_ws();
            cur.expect(b':')?;
            cur.skip_ws();
            match key.as_str() {
                "kind" => kind = Some(cur.parse_string()?),
                "family" => family = Some(cur.parse_string()?),
                "rewards" => rewards = Some(cur.parse_string()?),
                "scenario" => scenario = Some(cur.parse_string()?),
                "irrelevant" => irrelevant = Some(cur.parse_string()?),
                "relevant" => relevant = Some(cur.parse_string()?),
                "active" => active = Some(cur.parse_string()?),
                "format" => format = Some(cur.parse_number()?),
                "alpha" => alpha = Some(cur.parse_number()?),
                "gamma" => gamma = Some(cur.parse_number()?),
                "max_len" => max_len = Some(cur.parse_number()?),
                "revenue" => revenue = Some(cur.parse_number()?),
                // Unknown scalar fields are skipped for forward
                // compatibility.
                _ => {
                    if cur.peek() == Some(b'"') {
                        cur.parse_string()?;
                    } else {
                        cur.parse_number()?;
                    }
                }
            }
            cur.skip_ws();
            if cur.eat(b',') {
                continue;
            }
            cur.expect(b'}')?;
            break;
        }

        let missing = |field: &str| PolicyError::Parse(format!("missing field `{field}`"));
        let kind = kind.ok_or_else(|| missing("kind"))?;
        if kind != KIND {
            return Err(PolicyError::Parse(format!("kind `{kind}` is not `{KIND}`")));
        }
        let format = format.ok_or_else(|| missing("format"))?;
        if format != f64::from(FORMAT_VERSION) {
            return Err(PolicyError::Parse(format!(
                "unsupported format version {format} (expected {FORMAT_VERSION})"
            )));
        }
        let max_len_f = max_len.ok_or_else(|| missing("max_len"))?;
        if !(0.0..=f64::from(MAX_LEN_LIMIT)).contains(&max_len_f) || max_len_f.fract() != 0.0 {
            return Err(PolicyError::Parse(format!("bad max_len {max_len_f}")));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let max_len = max_len_f as u32;
        let rewards = match rewards.ok_or_else(|| missing("rewards"))?.as_str() {
            "bitcoin" => RewardModel::Bitcoin,
            "ethereum_approx" => RewardModel::EthereumApprox,
            other => {
                return Err(PolicyError::Parse(format!(
                    "unknown reward model `{other}`"
                )));
            }
        };
        let scenario = match scenario.ok_or_else(|| missing("scenario"))?.as_str() {
            "regular_rate" => Scenario::RegularRate,
            "regular_plus_uncle_rate" => Scenario::RegularPlusUncleRate,
            other => {
                return Err(PolicyError::Parse(format!("unknown scenario `{other}`")));
            }
        };
        let side = (max_len + 1) as usize;
        let decode = |name: &str, text: Option<String>| -> Result<Vec<Action>, PolicyError> {
            let text = text.ok_or_else(|| missing(name))?;
            if text.len() != side * side {
                return Err(PolicyError::Parse(format!(
                    "table `{name}` has {} slots, expected {}",
                    text.len(),
                    side * side
                )));
            }
            text.bytes().map(decode_action).collect()
        };

        Ok(PolicyTable {
            alpha: alpha.ok_or_else(|| missing("alpha"))?,
            gamma: gamma.ok_or_else(|| missing("gamma"))?,
            rewards,
            scenario,
            max_len,
            revenue: revenue.ok_or_else(|| missing("revenue"))?,
            family: family.unwrap_or_default(),
            irrelevant: decode("irrelevant", irrelevant)?,
            relevant: decode("relevant", relevant)?,
            active: decode("active", active)?,
        })
    }

    /// Write the artifact to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`PolicyError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), PolicyError> {
        let io_err = |source| PolicyError::Io {
            path: path.display().to_string(),
            source,
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(io_err)?;
            }
        }
        fs::write(path, self.to_json()).map_err(io_err)
    }

    /// Load an artifact written by [`PolicyTable::save`].
    ///
    /// # Errors
    ///
    /// [`PolicyError::Io`] on filesystem failure, [`PolicyError::Parse`]
    /// on malformed content.
    pub fn load(path: &Path) -> Result<Self, PolicyError> {
        let text = fs::read_to_string(path).map_err(|source| PolicyError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Self::from_json(&text)
    }
}

fn encode_action(action: Action) -> char {
    match action {
        Action::Adopt => 'a',
        Action::Override => 'o',
        Action::Match => 'm',
        Action::Wait => 'w',
    }
}

fn decode_action(byte: u8) -> Result<Action, PolicyError> {
    match byte {
        b'a' => Ok(Action::Adopt),
        b'o' => Ok(Action::Override),
        b'm' => Ok(Action::Match),
        b'w' => Ok(Action::Wait),
        other => Err(PolicyError::Parse(format!(
            "unknown action code `{}`",
            char::from(other)
        ))),
    }
}

/// Minimal scanner over the artifact's flat-JSON subset: one object whose
/// values are numbers or escape-free strings.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), PolicyError> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(PolicyError::Parse(format!(
                "expected `{}` at byte {} of the artifact",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, PolicyError> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => break,
                Some(b'\\') => {
                    return Err(PolicyError::Parse(
                        "escape sequences are not part of the artifact format".into(),
                    ));
                }
                Some(_) => self.pos += 1,
                None => {
                    return Err(PolicyError::Parse("unterminated string".into()));
                }
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| PolicyError::Parse("non-UTF-8 string".into()))?
            .to_string();
        self.pos += 1; // closing quote
        Ok(text)
    }

    fn parse_number(&mut self) -> Result<f64, PolicyError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| PolicyError::Parse("non-UTF-8 number".into()))?;
        text.parse::<f64>()
            .map_err(|_| PolicyError::Parse(format!("bad number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solved_table(alpha: f64, gamma: f64, rewards: RewardModel, len: u32) -> PolicyTable {
        let config = MdpConfig::new(alpha, gamma, rewards).with_max_len(len);
        let solution = config.solve().expect("solve");
        PolicyTable::from_solution(&config, &solution)
    }

    #[test]
    fn lowering_preserves_policy_actions() {
        let config = MdpConfig::new(0.4, 0.5, RewardModel::Bitcoin).with_max_len(16);
        let solution = config.solve().expect("solve");
        let table = PolicyTable::from_solution(&config, &solution);
        // Bitcoin lowering is exact: every in-space (a, h, fork) slot
        // matches the solver's policy.
        for (state, action) in solution.policy.iter() {
            if state.fork == Fork::Active && state.match_d != 1 {
                continue; // Bitcoin active states are canonicalized at d=1
            }
            assert_eq!(
                table.action(state.a, state.h, state.fork),
                Some(action),
                "slot {state}"
            );
        }
        assert_eq!(table.predicted_revenue(), solution.revenue);
        assert_eq!(table.max_len(), 16);
        assert_eq!(table.len(), 3 * 17 * 17);
    }

    #[test]
    fn lookup_outside_truncation_is_none() {
        let table = PolicyTable::honest(0.3, 0.5, 8);
        assert_eq!(table.action(9, 0, Fork::Irrelevant), None);
        assert_eq!(table.action(0, 9, Fork::Relevant), None);
        assert!(table.action(8, 8, Fork::Active).is_some());
        assert!(!table.is_empty());
    }

    #[test]
    fn honest_table_overrides_leads_adopts_otherwise() {
        let table = PolicyTable::honest(0.3, 0.5, 10);
        assert_eq!(table.action(1, 0, Fork::Irrelevant), Some(Action::Override));
        assert_eq!(table.action(3, 1, Fork::Relevant), Some(Action::Override));
        assert_eq!(table.action(0, 2, Fork::Relevant), Some(Action::Adopt));
        assert_eq!(table.action(2, 2, Fork::Active), Some(Action::Adopt));
        assert_eq!(table.predicted_revenue(), 0.3);
    }

    #[test]
    fn decide_resolves_fallbacks() {
        // Outside truncation: forced adopt regardless of content.
        let table = PolicyTable::honest(0.3, 0.5, 4);
        assert_eq!(table.decide(5, 0, Fork::Irrelevant), Action::Adopt);
        assert_eq!(table.decide(0, 5, Fork::Relevant), Action::Adopt);
        // Legal prescriptions pass through.
        assert_eq!(table.decide(2, 1, Fork::Relevant), Action::Override);
        assert_eq!(table.decide(0, 1, Fork::Relevant), Action::Adopt);

        // Illegal prescriptions degrade to adopt: override without a lead,
        // match without a coverable relevant race.
        let overrides = PolicyTable::from_fn(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |_, _, _| Action::Override,
        );
        assert_eq!(overrides.decide(2, 2, Fork::Relevant), Action::Adopt);
        assert_eq!(overrides.decide(3, 1, Fork::Relevant), Action::Override);
        let matches = PolicyTable::from_fn(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |_, _, _| Action::Match,
        );
        assert_eq!(matches.decide(2, 1, Fork::Relevant), Action::Match);
        assert_eq!(matches.decide(2, 0, Fork::Relevant), Action::Adopt);
        assert_eq!(matches.decide(1, 2, Fork::Relevant), Action::Adopt);
        assert_eq!(matches.decide(2, 1, Fork::Active), Action::Adopt);
    }

    #[test]
    fn family_metadata_round_trips_and_defaults_empty() {
        let table = PolicyTable::honest(0.3, 0.5, 4);
        assert_eq!(table.family(), "");
        // Unnamed tables serialize without the field at all.
        assert!(!table.to_json().contains("family"));
        let named = table.with_family("sm1");
        assert_eq!(named.family(), "sm1");
        let restored = PolicyTable::from_json(&named.to_json()).expect("parse");
        assert_eq!(restored.family(), "sm1");
        assert_eq!(named, restored);
        // Artifacts predating the field load with an empty family.
        let legacy = named.to_json().replace("  \"family\": \"sm1\",\n", "");
        assert_eq!(PolicyTable::from_json(&legacy).expect("parse").family(), "");
    }

    #[test]
    #[should_panic(expected = "needs escaping")]
    fn family_names_needing_escapes_are_rejected() {
        let _ = PolicyTable::honest(0.3, 0.5, 2).with_family("bad\"name");
    }

    #[test]
    fn legality_audit_flags_illegal_slots_only() {
        // Honest and solver-lowered tables are legal in the whole region.
        assert!(PolicyTable::honest(0.3, 0.5, 8).is_legal_everywhere());
        assert!(solved_table(0.35, 0.5, RewardModel::Bitcoin, 10).is_legal_everywhere());
        // Override without a lead is illegal; so is match outside a
        // coverable relevant race.
        for bad in [Action::Override, Action::Match] {
            let table = PolicyTable::from_fn(
                0.3,
                0.5,
                RewardModel::Bitcoin,
                Scenario::RegularRate,
                4,
                0.3,
                move |_, _, _| bad,
            );
            assert!(!table.is_legal_everywhere(), "{bad:?} everywhere");
        }
        // Wait everywhere is legal (truncation fallbacks happen *outside*
        // the region, which the audit deliberately does not cover).
        let waits = PolicyTable::from_fn(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |_, _, _| Action::Wait,
        );
        assert!(waits.is_legal_everywhere());
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        for (rewards, scenario) in [
            (RewardModel::Bitcoin, Scenario::RegularRate),
            (RewardModel::EthereumApprox, Scenario::RegularPlusUncleRate),
        ] {
            let config = MdpConfig::new(0.37, 0.41, rewards)
                .with_max_len(10)
                .with_scenario(scenario);
            let solution = config.solve().expect("solve");
            let table = PolicyTable::from_solution(&config, &solution);
            let restored = PolicyTable::from_json(&table.to_json()).expect("parse");
            assert_eq!(table, restored);
            assert_eq!(table.alpha().to_bits(), restored.alpha().to_bits());
            assert_eq!(table.gamma().to_bits(), restored.gamma().to_bits());
            assert_eq!(
                table.predicted_revenue().to_bits(),
                restored.predicted_revenue().to_bits()
            );
        }
    }

    #[test]
    fn save_load_round_trip() {
        let table = solved_table(0.35, 0.0, RewardModel::Bitcoin, 12);
        let dir = std::env::temp_dir().join("seleth-policy-test");
        let path = dir.join("nested").join("t.json");
        table.save(&path).expect("save");
        let restored = PolicyTable::load(&path).expect("load");
        assert_eq!(table, restored);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(PolicyTable::from_json("").is_err());
        assert!(PolicyTable::from_json("{}").is_err());
        assert!(PolicyTable::from_json("{\"kind\": \"other\"}").is_err());
        // Wrong format version.
        let json = PolicyTable::honest(0.3, 0.5, 4)
            .to_json()
            .replace("\"format\": 1", "\"format\": 99");
        assert!(PolicyTable::from_json(&json).is_err());
        // Truncated action table.
        let json = PolicyTable::honest(0.3, 0.5, 4)
            .to_json()
            .replace("\"max_len\": 4", "\"max_len\": 5");
        assert!(PolicyTable::from_json(&json).is_err());
        // Unknown action code.
        let json = PolicyTable::honest(0.3, 0.5, 4).to_json().replace('o', "x");
        assert!(PolicyTable::from_json(&json).is_err());
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let table = PolicyTable::honest(0.25, 0.5, 4);
        let json = table.to_json().replace(
            "\"alpha\"",
            "\"note\": \"extra\",\n  \"spare\": 7,\n  \"alpha\"",
        );
        let restored = PolicyTable::from_json(&json).expect("parse with extras");
        assert_eq!(table, restored);
    }

    #[test]
    fn field_order_does_not_matter() {
        let table = solved_table(0.3, 0.5, RewardModel::Bitcoin, 6);
        let json = table.to_json();
        // Reverse the field lines of the object.
        let body: Vec<&str> = json
            .trim()
            .trim_start_matches('{')
            .trim_end_matches('}')
            .trim()
            .trim_end_matches(',')
            .split(",\n")
            .collect();
        let reversed = format!(
            "{{\n{}\n}}\n",
            body.iter().rev().copied().collect::<Vec<_>>().join(",\n")
        );
        let restored = PolicyTable::from_json(&reversed).expect("parse reversed");
        assert_eq!(table, restored);
    }
}
