//! Executable policy artifacts: compact, versioned, replayable tables.
//!
//! A solved [`crate::Policy`] is index-backed but tied to the solver's
//! in-memory state enumeration. This module lowers it into a
//! [`PolicyTable`] — one dense action array over an explicit
//! [`StateSpace`] descriptor, plus the metadata needed to reproduce and
//! audit the solve (α, γ, reward model, scenario, truncation, predicted
//! revenue ρ*). The table is what the simulator replays ([`seleth-sim`]'s
//! `PoolStrategy::Table`): lookups are pure arithmetic over a flat array,
//! no hashing, no allocation.
//!
//! # State spaces
//!
//! The state space is part of the artifact, not an assumption baked into
//! the storage layout. A [`StateSpace`] records its axes:
//!
//! - the **classic** three-axis shape `(fork, a, h)` — the
//!   Sapirshtein-style Bitcoin abstraction every pre-v2 artifact used;
//! - optionally a fourth **`match_d`** axis (the published-prefix
//!   reference distance, with an explicit bound): the Ethereum MDP's
//!   fourth state component, which decides uncle eligibility.
//!
//! Storage is a single flat array addressed by a computed strided
//! indexer ([`StateSpace::index`]), row-major over
//! `fork → match_d → a → h`.
//!
//! # Artifact format
//!
//! Tables serialize to a single flat JSON object. Three-axis tables write
//! **format 1** — one action-code string per fork label (`a` = adopt,
//! `o` = override, `m` = match, `w` = wait; row-major,
//! `index = a · (max_len + 1) + h`) — byte-identical to every artifact
//! produced before the state space became explicit, so pre-existing
//! files load and re-save losslessly. Tables with a `match_d` axis, or
//! any table solved against a non-zero propagation delay, write
//! **format 2** ([`FORMAT_VERSION`]): an explicit `dims` array naming
//! every axis with its size (e.g. `["fork:3", "match_d:8", "a:31",
//! "h:31"]`, or the three-axis `["fork:3", "a:201", "h:201"]` for
//! delay-aware Bitcoin tables) and a single `actions` string of
//! `∏ dims` codes in storage order. Hand-written tables may additionally
//! carry a strategy-family name ([`PolicyTable::with_family`]), written
//! as an optional `family` field; delay-aware tables record their delay
//! ratio in an optional `delay` field. Floats are written with Rust's shortest round-trip formatting,
//! so save → load is bit-identical. The reader is a small hand-rolled
//! parser (the vendored `serde` is marker-only; see `vendor/README.md`)
//! that accepts any field order and ignores unknown string, string-array
//! and number fields (other JSON value kinds are outside the artifact
//! grammar and rejected).
//!
//! # Lowering
//!
//! [`RewardModel::Bitcoin`] policies carry no published-prefix distance;
//! they lower to the classic shape and the lowering is exact.
//! [`RewardModel::EthereumApprox`] policies condition on the
//! first-reference distance of a published prefix; since format 2 they
//! lower to a four-axis table **without projection** — every
//! `(a, h, fork, match_d)` slice of the optimum is preserved, so replay
//! of an Ethereum-model table plays the same action the MDP optimum
//! plays in every reachable state (cross-validated against ρ* in
//! `tests/policy_playback.rs`, gated exactly like the Bitcoin points).
//!
//! [`seleth-sim`]: https://docs.rs/seleth-sim

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use seleth_chain::Scenario;

use crate::model::{Action, Fork, MdpConfig, MdpState, RewardModel, MATCH_D_CAP};
use crate::solver::Solution;

/// Newest artifact format version this build writes and reads. Classic
/// three-axis tables still serialize as format 1 (byte-identical with
/// pre-v2 artifacts); tables with a `match_d` axis serialize as format 2.
pub const FORMAT_VERSION: u32 = 2;

/// The format version of classic three-axis artifacts.
const FORMAT_V1: u32 = 1;

/// Artifact kind tag, so unrelated JSON files fail loudly on load.
const KIND: &str = "seleth-policy";

/// Upper bound accepted for `max_len` when parsing (keeps hostile inputs
/// from requesting absurd allocations).
const MAX_LEN_LIMIT: u32 = 4096;

/// Error raised by [`PolicyTable`] parsing and I/O.
#[derive(Debug)]
pub enum PolicyError {
    /// Reading or writing the artifact file failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The artifact text is not a valid policy table.
    Parse(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Io { path, source } => write!(f, "policy I/O on {path}: {source}"),
            PolicyError::Parse(msg) => write!(f, "policy parse error: {msg}"),
        }
    }
}

impl Error for PolicyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PolicyError::Io { source, .. } => Some(source),
            PolicyError::Parse(_) => None,
        }
    }
}

/// The explicit state-space descriptor of a [`PolicyTable`]: which axes
/// the table covers and how `(a, h, fork, match_d)` maps to a flat slot.
///
/// Two shapes exist:
///
/// - [`StateSpace::classic`] — the three-axis `(fork, a, h)` space of
///   Bitcoin-model tables and every pre-v2 artifact. The `match_d`
///   coordinate is ignored by the indexer.
/// - [`StateSpace::with_match_d`] — the four-axis space carrying the
///   published-prefix reference distance `0..=bound` explicitly, which
///   makes Ethereum-model lowering (and playback) exact.
///
/// Storage order is row-major over `fork → match_d → a → h`; the axes
/// (with sizes) are reported by [`StateSpace::dims`] and recorded
/// verbatim in format-2 artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateSpace {
    max_len: u32,
    /// `None` for the classic three-axis shape; `Some(bound)` adds a
    /// `match_d ∈ 0..=bound` axis.
    match_d_bound: Option<u8>,
}

impl StateSpace {
    /// The classic three-axis space `(fork, a, h)` with `a, h ≤ max_len`.
    pub fn classic(max_len: u32) -> Self {
        StateSpace {
            max_len,
            match_d_bound: None,
        }
    }

    /// The four-axis space with an explicit `match_d ∈ 0..=bound` axis.
    ///
    /// The MDP's own bound is [`MATCH_D_CAP`] (rewards vanish beyond
    /// distance 6, so larger live distances are stored clamped).
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0` — a zero-width distance axis is the
    /// classic shape; use [`StateSpace::classic`].
    pub fn with_match_d(max_len: u32, bound: u8) -> Self {
        assert!(bound >= 1, "a match_d axis needs bound >= 1");
        StateSpace {
            max_len,
            match_d_bound: Some(bound),
        }
    }

    /// The four-axis space at the MDP's own distance bound
    /// ([`MATCH_D_CAP`]) — the shape [`PolicyTable::from_solution`] uses
    /// for Ethereum-model solves.
    pub fn ethereum(max_len: u32) -> Self {
        Self::with_match_d(max_len, MATCH_D_CAP)
    }

    /// Truncation: the space covers `a, h ≤ max_len`.
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// The `match_d` axis bound, or `None` for the classic shape.
    pub fn match_d_bound(&self) -> Option<u8> {
        self.match_d_bound
    }

    /// `true` when the space carries the `match_d` axis.
    pub fn has_match_d(&self) -> bool {
        self.match_d_bound.is_some()
    }

    fn side(&self) -> usize {
        (self.max_len + 1) as usize
    }

    fn d_size(&self) -> usize {
        self.match_d_bound.map_or(1, |b| b as usize + 1)
    }

    /// The axes in storage order, each with its size — what a format-2
    /// artifact records in its `dims` field.
    pub fn dims(&self) -> Vec<(&'static str, usize)> {
        let side = self.side();
        match self.match_d_bound {
            None => vec![("fork", 3), ("a", side), ("h", side)],
            Some(_) => vec![
                ("fork", 3),
                ("match_d", self.d_size()),
                ("a", side),
                ("h", side),
            ],
        }
    }

    /// Total number of action slots (`∏` of the axis sizes).
    pub fn len(&self) -> usize {
        3 * self.d_size() * self.side() * self.side()
    }

    /// `true` if the space covers no slots (never: every space covers at
    /// least `a = h = 0`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `match_d` value an epoch's *first* match fixes when the
    /// honest branch has length `h`: the published prefix's first block
    /// will be referenced at exactly that distance, capped at
    /// [`MATCH_D_CAP`] where rewards vanish. This is the single
    /// first-match rule shared by every replay executor (the
    /// instant-broadcast engine and the delay simulator's strategists),
    /// mirroring the MDP's own transition dynamics — kept here, next to
    /// [`PolicyTable::decide`], so the two executors cannot drift.
    /// Re-matches keep the previously fixed distance; callers apply this
    /// only when no prefix is public yet (`match_d == 0`).
    #[inline]
    pub fn first_match_d(h: u32) -> u8 {
        u8::try_from(h).unwrap_or(MATCH_D_CAP).clamp(1, MATCH_D_CAP)
    }

    /// The flat slot of `(a, h, fork, match_d)`, or `None` outside the
    /// truncated region. On the classic shape `match_d` is ignored; on
    /// the four-axis shape live distances beyond the bound are clamped to
    /// it (the MDP stores capped distances the same way).
    #[inline]
    pub fn index(&self, a: u32, h: u32, fork: Fork, match_d: u8) -> Option<usize> {
        if a > self.max_len || h > self.max_len {
            return None;
        }
        let side = self.side();
        let d_size = self.d_size();
        let fork_idx = match fork {
            Fork::Irrelevant => 0usize,
            Fork::Relevant => 1,
            Fork::Active => 2,
        };
        let d = (match_d as usize).min(d_size - 1);
        Some(((fork_idx * d_size + d) * side + a as usize) * side + h as usize)
    }
}

/// A dense, replayable withholding policy: `(a, h, fork[, match_d]) →
/// Action` over an explicit [`StateSpace`], plus solve metadata.
///
/// Construct by lowering a solve ([`PolicyTable::from_solution`]), from a
/// closure over the state space ([`PolicyTable::from_fn`], or the
/// three-axis compat entry [`PolicyTable::from_fn3`]), as the honest
/// baseline ([`PolicyTable::honest`]), or by loading an artifact
/// ([`PolicyTable::load`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTable {
    alpha: f64,
    gamma: f64,
    rewards: RewardModel,
    scenario: Scenario,
    space: StateSpace,
    revenue: f64,
    /// Propagation-delay ratio (delay / mean block interval) the policy
    /// was solved against — `0.0` for the classic zero-delay kernel.
    /// Serialized (as a `delay` field) only when non-zero, so
    /// pre-existing artifacts stay byte-identical; any non-zero value
    /// forces the self-describing format 2, since format 1's grammar
    /// predates the field.
    delay: f64,
    /// Name of the strategy family (plus parameters) this table encodes —
    /// e.g. `sm1` or `lead_stubborn_l2` for hand-written strategies from
    /// the zoo's generators. Empty for unnamed tables (solver lowerings,
    /// artifacts predating the field); serialized only when non-empty, so
    /// pre-existing artifacts stay byte-identical.
    family: String,
    /// One action per [`StateSpace`] slot, in storage order.
    actions: Vec<Action>,
}

impl PolicyTable {
    /// Lower a solved policy into a dense table.
    ///
    /// `config` must be the configuration `solution` was solved with (the
    /// table records its α, γ, reward model, scenario and truncation).
    /// Bitcoin-model solves lower to the classic three-axis shape (their
    /// MDP collapses the distance dimension); Ethereum-model solves lower
    /// to the four-axis shape **without projection** — every `match_d`
    /// slice of the optimum is preserved.
    pub fn from_solution(config: &MdpConfig, solution: &Solution) -> Self {
        let delay = config.delay_ratio;
        let policy = &solution.policy;
        let space = match config.rewards {
            RewardModel::Bitcoin => StateSpace::classic(config.max_len),
            RewardModel::EthereumApprox => StateSpace::ethereum(config.max_len),
        };
        let classic = !space.has_match_d();
        let lookup = |a: u32, h: u32, fork: Fork, d: u8| -> Action {
            let state = match fork {
                Fork::Irrelevant | Fork::Relevant => MdpState::new(a, h, fork).with_match_d(d),
                // Bitcoin collapses the active distance to a canonical 1;
                // the four-axis space asks for each distance explicitly.
                Fork::Active => MdpState::active(a, h, if classic { 1 } else { d }),
            };
            // Slots for states outside the MDP's space (relevant/active
            // with h = 0, active with a < h or d = 0, a prefix distance
            // without blocks on both sides) are unreachable in replay;
            // fill them with the always-safe resolution.
            policy.action(state).unwrap_or(Action::Adopt)
        };
        Self::from_fn(
            config.alpha,
            config.gamma,
            config.rewards,
            config.scenario,
            space,
            solution.revenue,
            lookup,
        )
        .with_delay(delay)
    }

    /// Build a table from an arbitrary `(a, h, fork, match_d) → Action`
    /// rule over an explicit [`StateSpace`] — the state-space-generic
    /// constructor behind every lowering. On the classic shape the
    /// closure is called with `match_d = 0` only. `revenue` records the
    /// strategy's *predicted* objective value (use the honest baseline
    /// `α` when no prediction exists).
    pub fn from_fn(
        alpha: f64,
        gamma: f64,
        rewards: RewardModel,
        scenario: Scenario,
        space: StateSpace,
        revenue: f64,
        mut f: impl FnMut(u32, u32, Fork, u8) -> Action,
    ) -> Self {
        let mut actions = Vec::with_capacity(space.len());
        let d_bound = space.match_d_bound().unwrap_or(0);
        for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
            for d in 0..=d_bound {
                for a in 0..=space.max_len {
                    for h in 0..=space.max_len {
                        actions.push(f(a, h, fork, d));
                    }
                }
            }
        }
        PolicyTable {
            alpha,
            gamma,
            rewards,
            scenario,
            space,
            revenue,
            delay: 0.0,
            family: String::new(),
            actions,
        }
    }

    /// Build a classic three-axis table from an `(a, h, fork) → Action`
    /// rule — the single compat entry point for the pre-v2 shape, kept
    /// for hand-written rules that never condition on the prefix
    /// distance. Equivalent to [`PolicyTable::from_fn`] over
    /// [`StateSpace::classic`] with the distance coordinate ignored.
    pub fn from_fn3(
        alpha: f64,
        gamma: f64,
        rewards: RewardModel,
        scenario: Scenario,
        max_len: u32,
        revenue: f64,
        mut f: impl FnMut(u32, u32, Fork) -> Action,
    ) -> Self {
        Self::from_fn(
            alpha,
            gamma,
            rewards,
            scenario,
            StateSpace::classic(max_len),
            revenue,
            |a, h, fork, _| f(a, h, fork),
        )
    }

    /// Tag the table with a strategy-family name (e.g. `trail_stubborn_t1`
    /// from the zoo's generators). The name survives the JSON round-trip.
    ///
    /// # Panics
    ///
    /// Panics when `family` contains characters the escape-free artifact
    /// string format cannot carry (`"`, `\`, control characters).
    #[must_use]
    pub fn with_family(mut self, family: impl Into<String>) -> Self {
        let family = family.into();
        assert!(
            !family
                .chars()
                .any(|c| c == '"' || c == '\\' || c.is_control()),
            "family name {family:?} needs escaping, which the artifact format forbids"
        );
        self.family = family;
        self
    }

    /// Tag the table with the propagation-delay ratio it was solved
    /// against (delay / mean block interval; see
    /// [`MdpConfig::with_delay_ratio`]). [`PolicyTable::from_solution`]
    /// copies the ratio from the config automatically; this builder is
    /// for hand-constructed tables. A non-zero ratio forces the
    /// self-describing format 2 on serialization.
    ///
    /// # Panics
    ///
    /// Panics when `delay` is negative or non-finite — those never come
    /// out of a validated solve.
    #[must_use]
    pub fn with_delay(mut self, delay: f64) -> Self {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay ratio {delay} must be finite and non-negative"
        );
        self.delay = delay;
        self
    }

    /// The honest-mining baseline as a table: publish (override) any
    /// private lead immediately, adopt whenever behind or tied. Replaying
    /// it earns exactly the fair share `α`, which is what the `revenue`
    /// field records.
    pub fn honest(alpha: f64, gamma: f64, max_len: u32) -> Self {
        Self::from_fn3(
            alpha,
            gamma,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            max_len,
            alpha,
            |a, h, _| {
                if a > h {
                    Action::Override
                } else {
                    Action::Adopt
                }
            },
        )
    }

    /// Attacker hash-power fraction the policy was solved for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Tie-breaking parameter the policy was solved for.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Reward semantics of the solve.
    pub fn rewards(&self) -> RewardModel {
        self.rewards
    }

    /// Difficulty-adjustment scenario of the solve's objective.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The explicit state-space descriptor: axes, bounds, slot count.
    pub fn state_space(&self) -> StateSpace {
        self.space
    }

    /// Truncation: the table covers `a, h ≤ max_len`.
    pub fn max_len(&self) -> u32 {
        self.space.max_len()
    }

    /// The solver-predicted optimal revenue ρ* (the replay target).
    pub fn predicted_revenue(&self) -> f64 {
        self.revenue
    }

    /// The propagation-delay ratio the policy was solved against —
    /// `0.0` for classic zero-delay artifacts.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// The strategy-family name set via [`PolicyTable::with_family`], or
    /// `""` for unnamed tables.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// Number of stored action slots ([`StateSpace::len`]).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` if the table covers no states (never produced by the
    /// constructors; tables always cover at least `a = h = 0`).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The action prescribed in `(a, h, fork, match_d)`, or `None` when
    /// the state lies outside the truncated region — the replay
    /// executor's documented fallback is then a forced *adopt*. Classic
    /// tables ignore `match_d` (pass the live distance anyway; the
    /// indexer projects it).
    #[inline]
    pub fn action(&self, a: u32, h: u32, fork: Fork, match_d: u8) -> Option<Action> {
        self.space
            .index(a, h, fork, match_d)
            .map(|i| self.actions[i])
    }

    /// The action an event-driven replay executor should take in the live
    /// state `(a, h, fork, match_d)`, with the documented fallback
    /// semantics resolved: states outside the truncated region, and
    /// prescriptions that are illegal in the live state (*override*
    /// without a strictly longer private chain, *match* without a
    /// relevant race of length `h ≥ 1` it can cover), degrade to the
    /// always-legal forced *adopt*. Legality never depends on `match_d`;
    /// the distance only selects the slice consulted.
    ///
    /// On the truncation boundary (`a == max_len` or `h == max_len`) the
    /// executors mirror the solver's own boundary rule exactly: the MDP
    /// removes *wait* and *match* from the legal set there (growing
    /// either chain would leave the truncated space), so a stored
    /// *wait*/*match* at the boundary degrades to the forced *adopt* —
    /// one slot earlier than the out-of-region fallback, which is the
    /// point: the replayed chain state never escapes the region the
    /// policy was solved on.
    ///
    /// This is the single decision procedure shared by every executor that
    /// replays artifacts over real block trees (the instant-broadcast
    /// engine's `PoolStrategy::Table` and the propagation-delay
    /// simulator's strategic miners), so fallback behaviour cannot drift
    /// between them. Corrupt or hand-written tables therefore never make a
    /// replay panic — at worst they concede epochs.
    #[inline]
    pub fn decide(&self, a: u32, h: u32, fork: Fork, match_d: u8) -> Action {
        let at_boundary = a >= self.max_len() || h >= self.max_len();
        match self.action(a, h, fork, match_d) {
            Some(Action::Override) if a > h => Action::Override,
            Some(Action::Match) if !at_boundary && fork == Fork::Relevant && a >= h && h >= 1 => {
                Action::Match
            }
            Some(Action::Wait) if !at_boundary => Action::Wait,
            // Out-of-table states, boundary holds and illegal
            // prescriptions fall back to the always-legal resolution.
            _ => Action::Adopt,
        }
    }

    /// Audit the whole truncation region across every axis: `true` iff
    /// [`PolicyTable::decide`] returns every stored prescription
    /// unchanged — no slot is an illegal *override* (without a lead) or
    /// *match* (outside a coverable relevant race), so a replay inside
    /// the region never hits the forced-adopt fallback.
    ///
    /// Solver lowerings and the zoo's strategy-family generators must
    /// pass this audit; corrupt or adversarial tables (which executors
    /// tolerate by degrading to adopt) are flagged by it. This is the
    /// single legality check tests should use instead of re-deriving the
    /// fallback rules ad hoc.
    pub fn is_legal_everywhere(&self) -> bool {
        let d_bound = self.space.match_d_bound().unwrap_or(0);
        [Fork::Irrelevant, Fork::Relevant, Fork::Active]
            .into_iter()
            .all(|fork| {
                (0..=d_bound).all(|d| {
                    (0..=self.max_len()).all(|a| {
                        (0..=self.max_len()).all(|h| {
                            let stored = self.action(a, h, fork, d).expect("in-region slot");
                            self.decide(a, h, fork, d) == stored
                        })
                    })
                })
            })
    }

    // ------------------------------------------------------------------
    // Serialization (hand-rolled: the vendored serde is marker-only)
    // ------------------------------------------------------------------

    /// Render the artifact JSON: format 1 for classic three-axis
    /// zero-delay tables (byte-identical with pre-v2 artifacts), format 2
    /// — explicit `dims`, single `actions` string — for tables with a
    /// `match_d` axis *or* a non-zero delay ratio (the `delay` field
    /// postdates format 1's grammar, so delay-aware tables always write
    /// the self-describing format). Floats use Rust's shortest
    /// round-trip formatting, so [`PolicyTable::from_json`] restores
    /// them bit-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.actions.len() + 512);
        out.push_str("{\n");
        out.push_str(&format!("  \"kind\": \"{KIND}\",\n"));
        let format = if self.space.has_match_d() || self.delay != 0.0 {
            FORMAT_VERSION
        } else {
            FORMAT_V1
        };
        out.push_str(&format!("  \"format\": {format},\n"));
        out.push_str(&format!("  \"alpha\": {},\n", self.alpha));
        out.push_str(&format!("  \"gamma\": {},\n", self.gamma));
        let rewards = match self.rewards {
            RewardModel::Bitcoin => "bitcoin",
            RewardModel::EthereumApprox => "ethereum_approx",
        };
        out.push_str(&format!("  \"rewards\": \"{rewards}\",\n"));
        let scenario = match self.scenario {
            Scenario::RegularRate => "regular_rate",
            Scenario::RegularPlusUncleRate => "regular_plus_uncle_rate",
        };
        out.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
        out.push_str(&format!("  \"max_len\": {},\n", self.max_len()));
        out.push_str(&format!("  \"revenue\": {},\n", self.revenue));
        // Written only when non-zero / non-empty: artifacts predating
        // these fields stay byte-identical across a load/save cycle.
        if self.delay != 0.0 {
            out.push_str(&format!("  \"delay\": {},\n", self.delay));
        }
        if !self.family.is_empty() {
            out.push_str(&format!("  \"family\": \"{}\",\n", self.family));
        }
        if format == FORMAT_VERSION {
            let dims: Vec<String> = self
                .space
                .dims()
                .into_iter()
                .map(|(name, size)| format!("\"{name}:{size}\""))
                .collect();
            out.push_str(&format!("  \"dims\": [{}],\n", dims.join(", ")));
            out.push_str("  \"actions\": \"");
            for &action in &self.actions {
                out.push(encode_action(action));
            }
            out.push_str("\",\n");
        } else {
            let slice = self.space.side() * self.space.side();
            for (name, chunk) in ["irrelevant", "relevant", "active"]
                .into_iter()
                .zip(self.actions.chunks(slice))
            {
                out.push_str(&format!("  \"{name}\": \""));
                for &action in chunk {
                    out.push(encode_action(action));
                }
                out.push_str("\",\n");
            }
        }
        // Replace the trailing comma of the last field.
        out.truncate(out.len() - 2);
        out.push_str("\n}\n");
        out
    }

    /// Parse an artifact produced by [`PolicyTable::to_json`] — either
    /// format version.
    ///
    /// # Errors
    ///
    /// [`PolicyError::Parse`] on malformed JSON, a wrong `kind`/`format`
    /// tag, missing fields, a `dims` descriptor the indexer cannot
    /// honour, or action strings whose length disagrees with the
    /// declared state space.
    pub fn from_json(text: &str) -> Result<Self, PolicyError> {
        let mut cur = Cursor::new(text);
        cur.skip_ws();
        cur.expect(b'{')?;

        let mut kind: Option<String> = None;
        let mut format: Option<f64> = None;
        let mut alpha: Option<f64> = None;
        let mut gamma: Option<f64> = None;
        let mut rewards: Option<String> = None;
        let mut scenario: Option<String> = None;
        let mut max_len: Option<f64> = None;
        let mut revenue: Option<f64> = None;
        let mut delay: Option<f64> = None;
        let mut family: Option<String> = None;
        let mut dims: Option<Vec<String>> = None;
        let mut flat_actions: Option<String> = None;
        let mut irrelevant: Option<String> = None;
        let mut relevant: Option<String> = None;
        let mut active: Option<String> = None;

        loop {
            cur.skip_ws();
            if cur.eat(b'}') {
                break;
            }
            let key = cur.parse_string()?;
            cur.skip_ws();
            cur.expect(b':')?;
            cur.skip_ws();
            match key.as_str() {
                "kind" => kind = Some(cur.parse_string()?),
                "family" => family = Some(cur.parse_string()?),
                "rewards" => rewards = Some(cur.parse_string()?),
                "scenario" => scenario = Some(cur.parse_string()?),
                "irrelevant" => irrelevant = Some(cur.parse_string()?),
                "relevant" => relevant = Some(cur.parse_string()?),
                "active" => active = Some(cur.parse_string()?),
                "actions" => flat_actions = Some(cur.parse_string()?),
                "dims" => dims = Some(cur.parse_string_array()?),
                "format" => format = Some(cur.parse_number()?),
                "alpha" => alpha = Some(cur.parse_number()?),
                "gamma" => gamma = Some(cur.parse_number()?),
                "max_len" => max_len = Some(cur.parse_number()?),
                "revenue" => revenue = Some(cur.parse_number()?),
                "delay" => delay = Some(cur.parse_number()?),
                // Unknown fields are skipped for forward compatibility.
                _ => match cur.peek() {
                    Some(b'"') => {
                        cur.parse_string()?;
                    }
                    Some(b'[') => {
                        cur.parse_string_array()?;
                    }
                    _ => {
                        cur.parse_number()?;
                    }
                },
            }
            cur.skip_ws();
            if cur.eat(b',') {
                continue;
            }
            cur.expect(b'}')?;
            break;
        }

        let missing = |field: &str| PolicyError::Parse(format!("missing field `{field}`"));
        let kind = kind.ok_or_else(|| missing("kind"))?;
        if kind != KIND {
            return Err(PolicyError::Parse(format!("kind `{kind}` is not `{KIND}`")));
        }
        let format = format.ok_or_else(|| missing("format"))?;
        if format != f64::from(FORMAT_V1) && format != f64::from(FORMAT_VERSION) {
            return Err(PolicyError::Parse(format!(
                "unsupported format version {format} (expected {FORMAT_V1} or {FORMAT_VERSION})"
            )));
        }
        let max_len_f = max_len.ok_or_else(|| missing("max_len"))?;
        if !(0.0..=f64::from(MAX_LEN_LIMIT)).contains(&max_len_f) || max_len_f.fract() != 0.0 {
            return Err(PolicyError::Parse(format!("bad max_len {max_len_f}")));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let max_len = max_len_f as u32;
        let rewards = match rewards.ok_or_else(|| missing("rewards"))?.as_str() {
            "bitcoin" => RewardModel::Bitcoin,
            "ethereum_approx" => RewardModel::EthereumApprox,
            other => {
                return Err(PolicyError::Parse(format!(
                    "unknown reward model `{other}`"
                )));
            }
        };
        let scenario = match scenario.ok_or_else(|| missing("scenario"))?.as_str() {
            "regular_rate" => Scenario::RegularRate,
            "regular_plus_uncle_rate" => Scenario::RegularPlusUncleRate,
            other => {
                return Err(PolicyError::Parse(format!("unknown scenario `{other}`")));
            }
        };

        let delay = delay.unwrap_or(0.0);
        if !delay.is_finite() || delay < 0.0 {
            return Err(PolicyError::Parse(format!("bad delay ratio {delay}")));
        }
        if delay != 0.0 && format == f64::from(FORMAT_V1) {
            return Err(PolicyError::Parse(
                "format-1 artifacts cannot carry a delay field".into(),
            ));
        }

        let (space, actions) = if format == f64::from(FORMAT_V1) {
            let space = StateSpace::classic(max_len);
            let slice = space.side() * space.side();
            // Validate every declared length before allocating anything
            // sized by the artifact's own claims.
            let tables = [
                ("irrelevant", irrelevant),
                ("relevant", relevant),
                ("active", active),
            ];
            let mut texts = Vec::with_capacity(tables.len());
            for (name, text) in tables {
                let text = text.ok_or_else(|| missing(name))?;
                if text.len() != slice {
                    return Err(PolicyError::Parse(format!(
                        "table `{name}` has {} slots, expected {slice}",
                        text.len()
                    )));
                }
                texts.push(text);
            }
            let mut actions = Vec::with_capacity(space.len());
            for text in &texts {
                for byte in text.bytes() {
                    actions.push(decode_action(byte)?);
                }
            }
            (space, actions)
        } else {
            let dims = dims.ok_or_else(|| missing("dims"))?;
            let space = parse_dims(&dims, max_len)?;
            let text = flat_actions.ok_or_else(|| missing("actions"))?;
            if text.len() != space.len() {
                return Err(PolicyError::Parse(format!(
                    "actions has {} slots, dims declare {}",
                    text.len(),
                    space.len()
                )));
            }
            let actions = text
                .bytes()
                .map(decode_action)
                .collect::<Result<Vec<Action>, PolicyError>>()?;
            (space, actions)
        };

        Ok(PolicyTable {
            alpha: alpha.ok_or_else(|| missing("alpha"))?,
            gamma: gamma.ok_or_else(|| missing("gamma"))?,
            rewards,
            scenario,
            space,
            revenue: revenue.ok_or_else(|| missing("revenue"))?,
            delay,
            family: family.unwrap_or_default(),
            actions,
        })
    }

    /// Write the artifact to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`PolicyError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), PolicyError> {
        let io_err = |source| PolicyError::Io {
            path: path.display().to_string(),
            source,
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(io_err)?;
            }
        }
        fs::write(path, self.to_json()).map_err(io_err)
    }

    /// Load an artifact written by [`PolicyTable::save`].
    ///
    /// # Errors
    ///
    /// [`PolicyError::Io`] on filesystem failure, [`PolicyError::Parse`]
    /// on malformed content.
    pub fn load(path: &Path) -> Result<Self, PolicyError> {
        let text = fs::read_to_string(path).map_err(|source| PolicyError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Self::from_json(&text)
    }
}

/// Reconstruct a [`StateSpace`] from a format-2 `dims` descriptor,
/// cross-checking it against the artifact's `max_len`.
fn parse_dims(dims: &[String], max_len: u32) -> Result<StateSpace, PolicyError> {
    let mut parsed = Vec::with_capacity(dims.len());
    for entry in dims {
        let (name, size) = entry
            .split_once(':')
            .ok_or_else(|| PolicyError::Parse(format!("malformed dims entry `{entry}`")))?;
        let size: usize = size
            .parse()
            .map_err(|_| PolicyError::Parse(format!("bad axis size in `{entry}`")))?;
        parsed.push((name, size));
    }
    let side = (max_len + 1) as usize;
    match parsed.as_slice() {
        // Classic three-axis tables appear in format 2 when they carry
        // post-v1 metadata (a delay ratio).
        [("fork", 3), ("a", a), ("h", h)] => {
            if *a != side || *h != side {
                return Err(PolicyError::Parse(format!(
                    "dims disagree with max_len {max_len}: a:{a}, h:{h}"
                )));
            }
            Ok(StateSpace::classic(max_len))
        }
        [("fork", 3), ("match_d", d), ("a", a), ("h", h)] => {
            if *a != side || *h != side {
                return Err(PolicyError::Parse(format!(
                    "dims disagree with max_len {max_len}: a:{a}, h:{h}"
                )));
            }
            let bound = d
                .checked_sub(1)
                .and_then(|b| u8::try_from(b).ok())
                .filter(|&b| b >= 1)
                .ok_or_else(|| {
                    PolicyError::Parse(format!("match_d axis size {d} outside 2..=256"))
                })?;
            Ok(StateSpace::with_match_d(max_len, bound))
        }
        _ => Err(PolicyError::Parse(format!(
            "unsupported dims descriptor {dims:?}"
        ))),
    }
}

fn encode_action(action: Action) -> char {
    match action {
        Action::Adopt => 'a',
        Action::Override => 'o',
        Action::Match => 'm',
        Action::Wait => 'w',
    }
}

fn decode_action(byte: u8) -> Result<Action, PolicyError> {
    match byte {
        b'a' => Ok(Action::Adopt),
        b'o' => Ok(Action::Override),
        b'm' => Ok(Action::Match),
        b'w' => Ok(Action::Wait),
        other => Err(PolicyError::Parse(format!(
            "unknown action code `{}`",
            char::from(other)
        ))),
    }
}

/// Minimal scanner over the artifact's flat-JSON subset: one object whose
/// values are numbers, escape-free strings, or arrays of such strings.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), PolicyError> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(PolicyError::Parse(format!(
                "expected `{}` at byte {} of the artifact",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, PolicyError> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => break,
                Some(b'\\') => {
                    return Err(PolicyError::Parse(
                        "escape sequences are not part of the artifact format".into(),
                    ));
                }
                Some(_) => self.pos += 1,
                None => {
                    return Err(PolicyError::Parse("unterminated string".into()));
                }
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| PolicyError::Parse("non-UTF-8 string".into()))?
            .to_string();
        self.pos += 1; // closing quote
        Ok(text)
    }

    fn parse_string_array(&mut self) -> Result<Vec<String>, PolicyError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(b']') {
                break;
            }
            out.push(self.parse_string()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            break;
        }
        Ok(out)
    }

    fn parse_number(&mut self) -> Result<f64, PolicyError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| PolicyError::Parse("non-UTF-8 number".into()))?;
        text.parse::<f64>()
            .map_err(|_| PolicyError::Parse(format!("bad number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solved_table(alpha: f64, gamma: f64, rewards: RewardModel, len: u32) -> PolicyTable {
        let config = MdpConfig::new(alpha, gamma, rewards).with_max_len(len);
        let solution = config.solve().expect("solve");
        PolicyTable::from_solution(&config, &solution)
    }

    #[test]
    fn state_space_indexing_is_strided_and_bounded() {
        let classic = StateSpace::classic(4);
        assert_eq!(classic.len(), 3 * 5 * 5);
        assert_eq!(classic.dims(), vec![("fork", 3), ("a", 5), ("h", 5)]);
        assert_eq!(classic.match_d_bound(), None);
        assert_eq!(classic.index(0, 0, Fork::Irrelevant, 0), Some(0));
        // Classic spaces project the distance away.
        assert_eq!(
            classic.index(2, 3, Fork::Active, 5),
            classic.index(2, 3, Fork::Active, 0)
        );
        assert_eq!(classic.index(5, 0, Fork::Irrelevant, 0), None);

        let eth = StateSpace::with_match_d(4, 7);
        assert_eq!(eth.len(), 3 * 8 * 5 * 5);
        assert_eq!(
            eth.dims(),
            vec![("fork", 3), ("match_d", 8), ("a", 5), ("h", 5)]
        );
        assert_eq!(eth.match_d_bound(), Some(7));
        // Distinct distances land in distinct slots...
        assert_ne!(
            eth.index(2, 3, Fork::Active, 1),
            eth.index(2, 3, Fork::Active, 2)
        );
        // ...and beyond the bound they clamp instead of escaping.
        assert_eq!(
            eth.index(2, 3, Fork::Active, 200),
            eth.index(2, 3, Fork::Active, 7)
        );
        // Every slot is hit exactly once by the enumeration order.
        let mut seen = vec![false; eth.len()];
        for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
            for d in 0..=7 {
                for a in 0..=4 {
                    for h in 0..=4 {
                        let i = eth.index(a, h, fork, d).expect("in region");
                        assert!(!seen[i], "slot ({a}, {h}, {fork:?}, {d}) collides");
                        seen[i] = true;
                    }
                }
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    #[should_panic(expected = "bound >= 1")]
    fn zero_width_match_d_axis_is_rejected() {
        let _ = StateSpace::with_match_d(4, 0);
    }

    #[test]
    fn lowering_preserves_policy_actions() {
        let config = MdpConfig::new(0.4, 0.5, RewardModel::Bitcoin).with_max_len(16);
        let solution = config.solve().expect("solve");
        let table = PolicyTable::from_solution(&config, &solution);
        // Bitcoin lowering is exact: every in-space (a, h, fork) slot
        // matches the solver's policy.
        for (state, action) in solution.policy.iter() {
            assert_eq!(
                table.action(state.a, state.h, state.fork, state.match_d),
                Some(action),
                "slot {state}"
            );
        }
        assert_eq!(table.predicted_revenue(), solution.revenue);
        assert_eq!(table.max_len(), 16);
        assert_eq!(table.len(), 3 * 17 * 17);
        assert!(!table.state_space().has_match_d());
    }

    #[test]
    fn ethereum_lowering_is_exact_over_all_four_axes() {
        // The v2 point: no projection. Every state of the Ethereum MDP —
        // including every match_d slice — appears verbatim in the table.
        let config = MdpConfig::new(0.3, 0.5, RewardModel::EthereumApprox).with_max_len(10);
        let solution = config.solve().expect("solve");
        let table = PolicyTable::from_solution(&config, &solution);
        assert_eq!(table.state_space(), StateSpace::ethereum(10));
        assert_eq!(table.len(), 3 * 8 * 11 * 11);
        for (state, action) in solution.policy.iter() {
            assert_eq!(
                table.action(state.a, state.h, state.fork, state.match_d),
                Some(action),
                "slot {state}"
            );
        }
        assert!(table.is_legal_everywhere());
    }

    #[test]
    fn lookup_outside_truncation_is_none() {
        let table = PolicyTable::honest(0.3, 0.5, 8);
        assert_eq!(table.action(9, 0, Fork::Irrelevant, 0), None);
        assert_eq!(table.action(0, 9, Fork::Relevant, 0), None);
        assert!(table.action(8, 8, Fork::Active, 0).is_some());
        assert!(!table.is_empty());
    }

    #[test]
    fn honest_table_overrides_leads_adopts_otherwise() {
        let table = PolicyTable::honest(0.3, 0.5, 10);
        assert_eq!(
            table.action(1, 0, Fork::Irrelevant, 0),
            Some(Action::Override)
        );
        assert_eq!(
            table.action(3, 1, Fork::Relevant, 0),
            Some(Action::Override)
        );
        assert_eq!(table.action(0, 2, Fork::Relevant, 0), Some(Action::Adopt));
        assert_eq!(table.action(2, 2, Fork::Active, 0), Some(Action::Adopt));
        assert_eq!(table.predicted_revenue(), 0.3);
    }

    #[test]
    fn decide_resolves_fallbacks() {
        // Outside truncation: forced adopt regardless of content.
        let table = PolicyTable::honest(0.3, 0.5, 4);
        assert_eq!(table.decide(5, 0, Fork::Irrelevant, 0), Action::Adopt);
        assert_eq!(table.decide(0, 5, Fork::Relevant, 0), Action::Adopt);
        // Legal prescriptions pass through.
        assert_eq!(table.decide(2, 1, Fork::Relevant, 0), Action::Override);
        assert_eq!(table.decide(0, 1, Fork::Relevant, 0), Action::Adopt);

        // Illegal prescriptions degrade to adopt: override without a lead,
        // match without a coverable relevant race.
        let overrides = PolicyTable::from_fn3(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |_, _, _| Action::Override,
        );
        assert_eq!(overrides.decide(2, 2, Fork::Relevant, 0), Action::Adopt);
        assert_eq!(overrides.decide(3, 1, Fork::Relevant, 0), Action::Override);
        let matches = PolicyTable::from_fn3(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |_, _, _| Action::Match,
        );
        assert_eq!(matches.decide(2, 1, Fork::Relevant, 0), Action::Match);
        assert_eq!(matches.decide(2, 0, Fork::Relevant, 0), Action::Adopt);
        assert_eq!(matches.decide(1, 2, Fork::Relevant, 0), Action::Adopt);
        assert_eq!(matches.decide(2, 1, Fork::Active, 0), Action::Adopt);
    }

    #[test]
    fn decide_forces_resolution_on_the_truncation_boundary() {
        // The solver removes wait/match from the legal set at
        // a == max_len or h == max_len (either chain growing would leave
        // the truncated space); the shared executor decision procedure
        // must mirror that exactly, not one slot later.
        let waits = PolicyTable::from_fn3(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |_, _, _| Action::Wait,
        );
        // Interior waits pass through...
        assert_eq!(waits.decide(3, 3, Fork::Irrelevant, 0), Action::Wait);
        // ...boundary waits resolve, on either axis, corner included.
        assert_eq!(waits.decide(4, 0, Fork::Irrelevant, 0), Action::Adopt);
        assert_eq!(waits.decide(0, 4, Fork::Relevant, 0), Action::Adopt);
        assert_eq!(waits.decide(4, 4, Fork::Active, 0), Action::Adopt);

        let matches = PolicyTable::from_fn3(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |_, _, _| Action::Match,
        );
        // A coverable relevant race at the boundary still must not match:
        // the race state itself sits outside the solvable region.
        assert_eq!(matches.decide(4, 4, Fork::Relevant, 0), Action::Adopt);
        assert_eq!(matches.decide(4, 2, Fork::Relevant, 0), Action::Adopt);
        assert_eq!(matches.decide(3, 2, Fork::Relevant, 0), Action::Match);

        // Override with a lead stays legal on the boundary — it shrinks
        // the state back into the region.
        let honest = PolicyTable::honest(0.3, 0.5, 4);
        assert_eq!(honest.decide(4, 1, Fork::Irrelevant, 0), Action::Override);
        assert_eq!(honest.decide(4, 4, Fork::Relevant, 0), Action::Adopt);
    }

    #[test]
    fn delay_metadata_round_trips_in_format_two() {
        let ratio = 6.0 / 13.0;
        let config = MdpConfig::new(0.4, 0.5, RewardModel::Bitcoin)
            .with_max_len(8)
            .with_delay_ratio(ratio);
        let solution = config.solve().expect("solve");
        let table = PolicyTable::from_solution(&config, &solution);
        assert_eq!(table.delay(), ratio);
        // A delay-aware Bitcoin table is three-axis but must write the
        // self-describing format with its dims spelled out.
        let json = table.to_json();
        assert!(json.contains("\"format\": 2"), "{json}");
        assert!(json.contains("\"dims\": [\"fork:3\", \"a:9\", \"h:9\"]"));
        assert!(json.contains(&format!("\"delay\": {ratio}")));
        let restored = PolicyTable::from_json(&json).expect("parse");
        assert_eq!(table, restored);
        assert_eq!(table.delay().to_bits(), restored.delay().to_bits());
        // Zero-delay tables don't write the field and stay on format 1.
        let classic = PolicyTable::honest(0.4, 0.5, 8);
        assert_eq!(classic.delay(), 0.0);
        assert!(!classic.to_json().contains("delay"));
    }

    #[test]
    fn bad_delay_fields_are_rejected() {
        let ratio = 6.0 / 13.0;
        let config = MdpConfig::new(0.4, 0.5, RewardModel::Bitcoin)
            .with_max_len(6)
            .with_delay_ratio(ratio);
        let solution = config.solve().expect("solve");
        let json = PolicyTable::from_solution(&config, &solution).to_json();
        let negative = json.replace(&format!("\"delay\": {ratio}"), "\"delay\": -0.5");
        assert!(PolicyTable::from_json(&negative).is_err());
        // The delay field postdates format 1's grammar; a format-1
        // artifact claiming one is corrupt, not forward-compatible.
        let v1 = PolicyTable::honest(0.3, 0.5, 4)
            .to_json()
            .replace("\"revenue\": 0.3,", "\"revenue\": 0.3,\n  \"delay\": 0.5,");
        assert!(PolicyTable::from_json(&v1).is_err());
    }

    #[test]
    fn decide_consults_the_match_d_slice() {
        // A four-axis table whose prescription genuinely depends on the
        // distance: wait on rich prefixes (d ≤ 2), adopt otherwise.
        let table = PolicyTable::from_fn(
            0.3,
            0.5,
            RewardModel::EthereumApprox,
            Scenario::RegularRate,
            StateSpace::with_match_d(6, 7),
            0.3,
            |a, h, _, d| {
                if (1..=2).contains(&d) && a < 6 && h < 6 {
                    Action::Wait
                } else {
                    Action::Adopt
                }
            },
        );
        assert_eq!(table.decide(1, 3, Fork::Relevant, 0), Action::Adopt);
        assert_eq!(table.decide(1, 3, Fork::Relevant, 1), Action::Wait);
        assert_eq!(table.decide(1, 3, Fork::Relevant, 2), Action::Wait);
        assert_eq!(table.decide(1, 3, Fork::Relevant, 3), Action::Adopt);
        // Distances beyond the bound clamp to the last slice.
        assert_eq!(table.decide(1, 3, Fork::Relevant, 200), Action::Adopt);
        assert!(table.is_legal_everywhere());
    }

    #[test]
    fn family_metadata_round_trips_and_defaults_empty() {
        let table = PolicyTable::honest(0.3, 0.5, 4);
        assert_eq!(table.family(), "");
        // Unnamed tables serialize without the field at all.
        assert!(!table.to_json().contains("family"));
        let named = table.with_family("sm1");
        assert_eq!(named.family(), "sm1");
        let restored = PolicyTable::from_json(&named.to_json()).expect("parse");
        assert_eq!(restored.family(), "sm1");
        assert_eq!(named, restored);
        // Artifacts predating the field load with an empty family.
        let legacy = named.to_json().replace("  \"family\": \"sm1\",\n", "");
        assert_eq!(PolicyTable::from_json(&legacy).expect("parse").family(), "");
    }

    #[test]
    #[should_panic(expected = "needs escaping")]
    fn family_names_needing_escapes_are_rejected() {
        let _ = PolicyTable::honest(0.3, 0.5, 2).with_family("bad\"name");
    }

    #[test]
    fn legality_audit_flags_illegal_slots_only() {
        // Honest and solver-lowered tables are legal in the whole region.
        assert!(PolicyTable::honest(0.3, 0.5, 8).is_legal_everywhere());
        assert!(solved_table(0.35, 0.5, RewardModel::Bitcoin, 10).is_legal_everywhere());
        // Override without a lead is illegal; so is match outside a
        // coverable relevant race — on four-axis tables too, where a
        // single bad slice must flunk the audit.
        for bad in [Action::Override, Action::Match] {
            let table = PolicyTable::from_fn3(
                0.3,
                0.5,
                RewardModel::Bitcoin,
                Scenario::RegularRate,
                4,
                0.3,
                move |_, _, _| bad,
            );
            assert!(!table.is_legal_everywhere(), "{bad:?} everywhere");
            let four_d = PolicyTable::from_fn(
                0.3,
                0.5,
                RewardModel::EthereumApprox,
                Scenario::RegularRate,
                StateSpace::with_match_d(4, 7),
                0.3,
                move |_, _, _, d| if d == 5 { bad } else { Action::Adopt },
            );
            assert!(!four_d.is_legal_everywhere(), "{bad:?} on the d=5 slice");
        }
        // Wait on the truncation boundary is illegal — the solver removes
        // wait/match from the legal set at a == max_len or h == max_len,
        // and the executors mirror that exactly — so an everywhere-wait
        // table flunks the audit...
        let waits = PolicyTable::from_fn3(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |_, _, _| Action::Wait,
        );
        assert!(!waits.is_legal_everywhere());
        // ...while the same rule kept strictly inside the region passes.
        let interior_waits = PolicyTable::from_fn3(
            0.3,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            4,
            0.3,
            |a, h, _| {
                if a < 4 && h < 4 {
                    Action::Wait
                } else {
                    Action::Adopt
                }
            },
        );
        assert!(interior_waits.is_legal_everywhere());
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        for (rewards, scenario) in [
            (RewardModel::Bitcoin, Scenario::RegularRate),
            (RewardModel::EthereumApprox, Scenario::RegularPlusUncleRate),
        ] {
            let config = MdpConfig::new(0.37, 0.41, rewards)
                .with_max_len(10)
                .with_scenario(scenario);
            let solution = config.solve().expect("solve");
            let table = PolicyTable::from_solution(&config, &solution);
            let restored = PolicyTable::from_json(&table.to_json()).expect("parse");
            assert_eq!(table, restored);
            assert_eq!(table.alpha().to_bits(), restored.alpha().to_bits());
            assert_eq!(table.gamma().to_bits(), restored.gamma().to_bits());
            assert_eq!(
                table.predicted_revenue().to_bits(),
                restored.predicted_revenue().to_bits()
            );
            assert_eq!(table.state_space(), restored.state_space());
        }
    }

    #[test]
    fn format_two_artifacts_carry_their_dims() {
        let table = solved_table(0.3, 0.5, RewardModel::EthereumApprox, 8);
        let json = table.to_json();
        assert!(json.contains("\"format\": 2"));
        assert!(json.contains("\"dims\": [\"fork:3\", \"match_d:8\", \"a:9\", \"h:9\"]"));
        assert!(json.contains("\"actions\": \""));
        // Classic tables stay on the v1 wire format.
        let classic = PolicyTable::honest(0.3, 0.5, 8).to_json();
        assert!(classic.contains("\"format\": 1"));
        assert!(!classic.contains("dims"));
    }

    #[test]
    fn save_load_round_trip() {
        for table in [
            solved_table(0.35, 0.0, RewardModel::Bitcoin, 12),
            solved_table(0.3, 0.5, RewardModel::EthereumApprox, 8),
        ] {
            let dir = std::env::temp_dir().join("seleth-policy-test");
            let path = dir.join("nested").join("t.json");
            table.save(&path).expect("save");
            let restored = PolicyTable::load(&path).expect("load");
            assert_eq!(table, restored);
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(PolicyTable::from_json("").is_err());
        assert!(PolicyTable::from_json("{}").is_err());
        assert!(PolicyTable::from_json("{\"kind\": \"other\"}").is_err());
        // Wrong format version.
        let json = PolicyTable::honest(0.3, 0.5, 4)
            .to_json()
            .replace("\"format\": 1", "\"format\": 99");
        assert!(PolicyTable::from_json(&json).is_err());
        // Truncated action table.
        let json = PolicyTable::honest(0.3, 0.5, 4)
            .to_json()
            .replace("\"max_len\": 4", "\"max_len\": 5");
        assert!(PolicyTable::from_json(&json).is_err());
        // Unknown action code.
        let json = PolicyTable::honest(0.3, 0.5, 4).to_json().replace('o', "x");
        assert!(PolicyTable::from_json(&json).is_err());
        // Format-2 artifacts must declare a coherent state space.
        let v2 = solved_table(0.3, 0.5, RewardModel::EthereumApprox, 6).to_json();
        for (from, to) in [
            ("\"dims\": [\"fork:3\"", "\"dims\": [\"spork:3\""),
            ("\"match_d:8\"", "\"match_d:1\""),
            ("\"a:7\"", "\"a:9\""),
            ("\"format\": 2", "\"format\": 1"),
        ] {
            let broken = v2.replace(from, to);
            assert!(
                PolicyTable::from_json(&broken).is_err(),
                "{from} -> {to} must be rejected"
            );
        }
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let table = PolicyTable::honest(0.25, 0.5, 4);
        let json = table.to_json().replace(
            "\"alpha\"",
            "\"note\": \"extra\",\n  \"spare\": 7,\n  \"tags\": [\"x\", \"y\"],\n  \"alpha\"",
        );
        let restored = PolicyTable::from_json(&json).expect("parse with extras");
        assert_eq!(table, restored);
    }

    #[test]
    fn field_order_does_not_matter() {
        for table in [
            solved_table(0.3, 0.5, RewardModel::Bitcoin, 6),
            solved_table(0.3, 0.5, RewardModel::EthereumApprox, 6),
        ] {
            let json = table.to_json();
            // Reverse the field lines of the object.
            let body: Vec<&str> = json
                .trim()
                .trim_start_matches('{')
                .trim_end_matches('}')
                .trim()
                .trim_end_matches(',')
                .split(",\n")
                .collect();
            let reversed = format!(
                "{{\n{}\n}}\n",
                body.iter().rev().copied().collect::<Vec<_>>().join(",\n")
            );
            let restored = PolicyTable::from_json(&reversed).expect("parse reversed");
            assert_eq!(table, restored);
        }
    }
}
