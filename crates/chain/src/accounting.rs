//! Per-miner reward accounting over a finished block tree.
//!
//! Applies a [`RewardSchedule`] to the classification of
//! [`crate::classify`] and tallies static, uncle, and nephew rewards per
//! miner — the quantities `r_b`, `r_u`, `r_n` of Section IV-E, measured
//! instead of derived. The report also carries the block-type counts and the
//! uncle reference-distance histogram needed for the paper's Scenario 1/2
//! revenue normalizations and for Table II.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::block::{BlockId, MinerId};
use crate::classify::{self, UncleEvent};
use crate::rewards::RewardSchedule;
use crate::tree::BlockTree;

/// Reward tally for a single miner.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MinerRewards {
    /// Static rewards from regular blocks.
    pub static_reward: f64,
    /// Uncle rewards from referenced stale blocks.
    pub uncle_reward: f64,
    /// Nephew rewards from referencing uncles.
    pub nephew_reward: f64,
    /// Regular blocks mined.
    pub regular_blocks: u64,
    /// Uncle blocks mined (stale blocks that got referenced).
    pub uncle_blocks: u64,
    /// Stale, unrewarded blocks mined.
    pub stale_blocks: u64,
}

impl MinerRewards {
    /// Total reward across all three types.
    pub fn total(&self) -> f64 {
        self.static_reward + self.uncle_reward + self.nephew_reward
    }
}

/// Complete accounting of a block tree under a reward schedule.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RewardReport {
    /// Tally per miner.
    pub per_miner: HashMap<MinerId, MinerRewards>,
    /// Number of regular blocks (excluding genesis).
    pub regular_count: u64,
    /// Number of uncle blocks.
    pub uncle_count: u64,
    /// Number of stale, never-rewarded blocks.
    pub stale_count: u64,
    /// Histogram of accepted reference distances: entry `d − 1` counts
    /// uncles referenced at distance `d`.
    pub distance_histogram: Vec<u64>,
}

impl RewardReport {
    /// Sum of all rewards paid out.
    pub fn total_reward(&self) -> f64 {
        self.per_miner.values().map(MinerRewards::total).sum()
    }

    /// Rewards of a single miner (zero tally if unknown).
    pub fn miner(&self, id: MinerId) -> MinerRewards {
        self.per_miner.get(&id).copied().unwrap_or_default()
    }

    /// Combined tally over any set of miners (e.g. "all honest miners").
    pub fn combined<I: IntoIterator<Item = MinerId>>(&self, ids: I) -> MinerRewards {
        let mut acc = MinerRewards::default();
        for id in ids {
            let m = self.miner(id);
            acc.static_reward += m.static_reward;
            acc.uncle_reward += m.uncle_reward;
            acc.nephew_reward += m.nephew_reward;
            acc.regular_blocks += m.regular_blocks;
            acc.uncle_blocks += m.uncle_blocks;
            acc.stale_blocks += m.stale_blocks;
        }
        acc
    }

    /// Total blocks that earned anything or not (excluding genesis).
    pub fn block_count(&self) -> u64 {
        self.regular_count + self.uncle_count + self.stale_count
    }
}

/// Account rewards for `tree` under `schedule`, given the main chain
/// (genesis → head).
///
/// Respects the schedule's maximum reference distance and per-block uncle
/// cap. Genesis earns nothing.
///
/// # Panics
///
/// Panics if `main_chain` contains ids not in the tree.
///
/// ```
/// use seleth_chain::{accounting, BlockTree, MinerId, RewardSchedule};
/// let m0 = MinerId(0);
/// let m1 = MinerId(1);
/// let mut t = BlockTree::new();
/// let a = t.add_block(t.genesis(), m0, &[]).unwrap();
/// let u = t.add_block(a, m1, &[]).unwrap();
/// let b = t.add_block(a, m0, &[]).unwrap();
/// let c = t.add_block(b, m0, &[u]).unwrap();
/// let chain = vec![t.genesis(), a, b, c];
/// let report = accounting::account(&t, &chain, &RewardSchedule::ethereum());
/// // m1's block is an uncle at distance 1 → Ku(1) = 7/8.
/// assert_eq!(report.miner(m1).uncle_reward, 7.0 / 8.0);
/// // m0 mined 3 regular blocks and the nephew reward.
/// assert_eq!(report.miner(m0).static_reward, 3.0);
/// assert_eq!(report.miner(m0).nephew_reward, 1.0 / 32.0);
/// ```
pub fn account(
    tree: &BlockTree,
    main_chain: &[BlockId],
    schedule: &RewardSchedule,
) -> RewardReport {
    let events = classify::uncle_events_with_cap(
        tree,
        main_chain,
        schedule.max_uncle_distance(),
        schedule.max_uncles_per_block(),
    );
    account_with_events(tree, main_chain, schedule, &events)
}

/// Like [`account`] but with pre-computed uncle events (avoids re-walking
/// the chain when the caller already has them).
pub fn account_with_events(
    tree: &BlockTree,
    main_chain: &[BlockId],
    schedule: &RewardSchedule,
    events: &[UncleEvent],
) -> RewardReport {
    let mut report = RewardReport::default();
    let on_chain: std::collections::HashSet<BlockId> = main_chain.iter().copied().collect();
    let uncles: std::collections::HashSet<BlockId> = events.iter().map(|e| e.uncle).collect();

    for block in tree.iter() {
        if block.is_genesis() {
            continue;
        }
        let entry = report.per_miner.entry(block.miner()).or_default();
        if on_chain.contains(&block.id()) {
            entry.static_reward += schedule.static_reward();
            entry.regular_blocks += 1;
            report.regular_count += 1;
        } else if uncles.contains(&block.id()) {
            entry.uncle_blocks += 1;
            report.uncle_count += 1;
        } else {
            entry.stale_blocks += 1;
            report.stale_count += 1;
        }
    }

    for ev in events {
        let uncle_miner = tree.block(ev.uncle).miner();
        let nephew_miner = tree.block(ev.nephew).miner();
        report
            .per_miner
            .entry(uncle_miner)
            .or_default()
            .uncle_reward += schedule.uncle_reward(ev.distance);
        report
            .per_miner
            .entry(nephew_miner)
            .or_default()
            .nephew_reward += schedule.nephew_reward(ev.distance);
        let d = ev.distance as usize;
        if report.distance_histogram.len() < d {
            report.distance_histogram.resize(d, 0);
        }
        report.distance_histogram[d - 1] += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewards::RewardSchedule;

    /// A fork where miner 1's block is orphaned and referenced.
    fn forked() -> (BlockTree, Vec<BlockId>) {
        let mut t = BlockTree::new();
        let a = t.add_block(t.genesis(), MinerId(0), &[]).unwrap();
        let u = t.add_block(a, MinerId(1), &[]).unwrap();
        let b = t.add_block(a, MinerId(0), &[]).unwrap();
        let c = t.add_block(b, MinerId(0), &[u]).unwrap();
        let chain = vec![t.genesis(), a, b, c];
        (t, chain)
    }

    #[test]
    fn counts_partition_blocks() {
        let (t, chain) = forked();
        let r = account(&t, &chain, &RewardSchedule::ethereum());
        assert_eq!(r.regular_count, 3);
        assert_eq!(r.uncle_count, 1);
        assert_eq!(r.stale_count, 0);
        assert_eq!(r.block_count(), 4);
        assert_eq!(r.distance_histogram, vec![1]);
    }

    #[test]
    fn bitcoin_schedule_pays_no_uncles() {
        let (t, chain) = forked();
        let r = account(&t, &chain, &RewardSchedule::bitcoin());
        assert_eq!(r.miner(MinerId(1)).total(), 0.0);
        assert_eq!(r.miner(MinerId(0)).total(), 3.0);
        // The orphan is plain stale under Bitcoin rules (distance cap 0).
        assert_eq!(r.uncle_count, 0);
        assert_eq!(r.stale_count, 1);
    }

    #[test]
    fn total_reward_is_sum_of_parts() {
        let (t, chain) = forked();
        let r = account(&t, &chain, &RewardSchedule::ethereum());
        let expected = 3.0 + 7.0 / 8.0 + 1.0 / 32.0;
        assert!((r.total_reward() - expected).abs() < 1e-12);
    }

    #[test]
    fn combined_aggregates_miners() {
        let (t, chain) = forked();
        let r = account(&t, &chain, &RewardSchedule::ethereum());
        let both = r.combined([MinerId(0), MinerId(1)]);
        assert!((both.total() - r.total_reward()).abs() < 1e-12);
        assert_eq!(both.regular_blocks, 3);
        assert_eq!(both.uncle_blocks, 1);
    }

    #[test]
    fn uncle_cap_limits_references() {
        // Three stale siblings, one nephew referencing all three.
        let mut t = BlockTree::new();
        let a = t.add_block(t.genesis(), MinerId(0), &[]).unwrap();
        let u1 = t.add_block(a, MinerId(1), &[]).unwrap();
        let u2 = t.add_block(a, MinerId(1), &[]).unwrap();
        let u3 = t.add_block(a, MinerId(1), &[]).unwrap();
        let b = t.add_block(a, MinerId(0), &[]).unwrap();
        let c = t.add_block(b, MinerId(0), &[u1, u2, u3]).unwrap();
        let chain = vec![t.genesis(), a, b, c];

        let unlimited = account(&t, &chain, &RewardSchedule::ethereum());
        assert_eq!(unlimited.uncle_count, 3);

        let capped = account(&t, &chain, &RewardSchedule::ethereum_capped());
        assert_eq!(capped.uncle_count, 2);
        assert_eq!(capped.stale_count, 1);
        assert!((capped.miner(MinerId(0)).nephew_reward - 2.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_miner_reports_zero() {
        let (t, chain) = forked();
        let r = account(&t, &chain, &RewardSchedule::ethereum());
        assert_eq!(r.miner(MinerId(99)), MinerRewards::default());
    }
}
