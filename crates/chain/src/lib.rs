//! Blockchain substrate for the selfish-mining study: block trees,
//! fork-choice rules, Ethereum-style block classification and reward
//! schedules.
//!
//! *Selfish Mining in Ethereum* (Niu & Feng, ICDCS 2019) analyses mining
//! revenue under Ethereum's three block-reward types (Table I of the paper):
//! the **static** reward for regular (main-chain) blocks, the **uncle**
//! reward for stale blocks that are direct children of the main chain and
//! get referenced, and the **nephew** reward for the regular block that
//! references an uncle. This crate implements the machinery those concepts
//! live on:
//!
//! - [`BlockTree`]: an append-only arena of blocks with parent links, uncle
//!   reference links and ancestry queries (Section II-A of the paper).
//! - [`forkchoice`]: the longest-chain rule with pluggable tie-breaking and
//!   the GHOST heaviest-subtree rule (Section II-B).
//! - [`classify`]: partitioning a tree into regular / uncle / stale blocks
//!   given a main chain, with reference distances (Section III-B, Fig. 3).
//! - [`RewardSchedule`]: static/uncle/nephew reward functions, including the
//!   Ethereum Byzantium schedule `Ku(d) = (8-d)/8`, `Kn = 1/32` (Eq. (7)),
//!   fixed-value schedules used in Section VI, and Bitcoin (no uncle
//!   rewards).
//! - [`accounting`]: per-miner reward tallies over a finished tree.
//!
//! # Example: a fork resolved by a referencing nephew
//!
//! ```
//! use seleth_chain::{BlockTree, MinerId, classify::{self, BlockClass}};
//!
//! let miner = MinerId(0);
//! let mut tree = BlockTree::new();
//! let a = tree.add_block(tree.genesis(), miner, &[]).unwrap();
//! let b1 = tree.add_block(a, miner, &[]).unwrap();
//! let b2 = tree.add_block(a, miner, &[]).unwrap();
//! let b3 = tree.add_block(a, miner, &[]).unwrap();
//! // C1 extends B2 and references the two stale siblings.
//! let c1 = tree.add_block(b2, miner, &[b1, b3]).unwrap();
//! let main_chain = [tree.genesis(), a, b2, c1];
//! let classes = classify::classify(&tree, &main_chain, 6);
//! assert_eq!(classes[&b2], BlockClass::Regular);
//! assert!(matches!(classes[&b1], BlockClass::Uncle { distance: 1, .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never a panic, on
// untrusted input; invariant violations use `expect` with a message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod accounting;
mod block;
pub mod classify;
mod error;
pub mod forkchoice;
mod rewards;
mod tree;

pub use block::{Block, BlockId, MinerId};
pub use error::ChainError;
pub use rewards::{
    NephewReward, RewardSchedule, Scenario, UncleReward, ETHEREUM_MAX_UNCLE_DISTANCE,
    UNBOUNDED_UNCLE_DISTANCE,
};
pub use tree::BlockTree;
