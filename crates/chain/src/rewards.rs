use serde::{Deserialize, Serialize};

/// Difficulty-adjustment scenario for *absolute* revenue normalization
/// (Section IV-E-2 of the paper).
///
/// Ethereum did not account for uncle blocks when adjusting mining
/// difficulty until its third milestone (EIP100 / Byzantium); the paper
/// therefore evaluates both regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario 1: difficulty keeps the *regular* block rate at 1 block per
    /// time unit (pre-EIP100 Ethereum; Bitcoin).
    RegularRate,
    /// Scenario 2: difficulty keeps the *regular + uncle* block rate at 1
    /// block per time unit (EIP100 / Byzantium).
    RegularPlusUncleRate,
}

/// How uncle blocks are rewarded as a function of reference distance.
///
/// All values are expressed as fractions of the static block reward `Ks`,
/// matching the paper's normalization `Ks = 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UncleReward {
    /// Ethereum Byzantium / EIP100 schedule, Eq. (7) of the paper:
    /// `Ku(d) = (8 − d)/8` for `1 ≤ d ≤ 6`, zero beyond.
    Ethereum,
    /// Fixed fraction for all distances within the schedule's maximum —
    /// the redesigned reward of Section VI (e.g. `Ku = 4/8`).
    Fixed(f64),
    /// Arbitrary table: entry `d − 1` holds `Ku(d)`; zero beyond the table.
    /// Realizes the paper's "our analysis applies to an arbitrary function
    /// of `Ku(·)`" claim.
    Table(Vec<f64>),
    /// No uncle rewards (Bitcoin).
    Zero,
}

/// How nephew (referencing) blocks are rewarded per referenced uncle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NephewReward {
    /// Ethereum's constant `Kn = 1/32` per referenced uncle.
    Ethereum,
    /// Fixed fraction per referenced uncle.
    Fixed(f64),
    /// Arbitrary table indexed by `d − 1`, zero beyond.
    Table(Vec<f64>),
    /// No nephew rewards (Bitcoin).
    Zero,
}

/// A complete mining reward schedule: static, uncle and nephew rewards plus
/// the uncle-reference policy knobs.
///
/// ```
/// use seleth_chain::RewardSchedule;
/// let eth = RewardSchedule::ethereum();
/// assert_eq!(eth.uncle_reward(1), 7.0 / 8.0);
/// assert_eq!(eth.uncle_reward(6), 2.0 / 8.0);
/// assert_eq!(eth.uncle_reward(7), 0.0);
/// assert_eq!(eth.nephew_reward(3), 1.0 / 32.0);
///
/// let btc = RewardSchedule::bitcoin();
/// assert_eq!(btc.uncle_reward(1), 0.0);
/// assert_eq!(btc.nephew_reward(1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardSchedule {
    static_reward: f64,
    uncle: UncleReward,
    nephew: NephewReward,
    max_uncle_distance: u64,
    max_uncles_per_block: Option<usize>,
}

/// Maximum reference distance in Ethereum.
pub const ETHEREUM_MAX_UNCLE_DISTANCE: u64 = 6;

/// Effective "infinite" reference distance used by
/// [`RewardSchedule::fixed_uncle_unbounded`].
pub const UNBOUNDED_UNCLE_DISTANCE: u64 = 64;

impl RewardSchedule {
    /// The Ethereum Byzantium schedule with the paper's normalization
    /// `Ks = 1`: `Ku(d) = (8 − d)/8`, `Kn = 1/32`, distances up to 6,
    /// unlimited uncle references per block (as assumed by the paper's
    /// Algorithm 1, which references "all unreferenced uncle blocks").
    pub fn ethereum() -> Self {
        RewardSchedule {
            static_reward: 1.0,
            uncle: UncleReward::Ethereum,
            nephew: NephewReward::Ethereum,
            max_uncle_distance: ETHEREUM_MAX_UNCLE_DISTANCE,
            max_uncles_per_block: None,
        }
    }

    /// Like [`RewardSchedule::ethereum`] but with the real protocol's cap of
    /// two uncle references per block.
    pub fn ethereum_capped() -> Self {
        RewardSchedule {
            max_uncles_per_block: Some(2),
            ..Self::ethereum()
        }
    }

    /// Bitcoin: static rewards only.
    pub fn bitcoin() -> Self {
        RewardSchedule {
            static_reward: 1.0,
            uncle: UncleReward::Zero,
            nephew: NephewReward::Zero,
            max_uncle_distance: 0,
            max_uncles_per_block: Some(0),
        }
    }

    /// Ethereum with a *fixed* uncle reward `ku` (fraction of `Ks`) for all
    /// distances `1..=6` — the redesign proposed in Section VI of the paper
    /// (`ku = 4/8`, "if uncle blocks' referencing block distance is between
    /// 1 and 6").
    pub fn fixed_uncle(ku: f64) -> Self {
        RewardSchedule {
            uncle: UncleReward::Fixed(ku),
            ..Self::ethereum()
        }
    }

    /// A fixed uncle reward paid "regardless of the distance" — the
    /// schedules swept in Figs. 8 and 9 of the paper, which drop the
    /// 6-block reference limit entirely.
    ///
    /// The distance bound is set to [`UNBOUNDED_UNCLE_DISTANCE`] rather
    /// than infinity so the simulator's ancestor walks stay finite; the
    /// stationary mass of leads beyond it is below `1e-5` even at
    /// `α = 0.45`.
    pub fn fixed_uncle_unbounded(ku: f64) -> Self {
        RewardSchedule {
            uncle: UncleReward::Fixed(ku),
            max_uncle_distance: UNBOUNDED_UNCLE_DISTANCE,
            ..Self::ethereum()
        }
    }

    /// Fully custom schedule.
    ///
    /// # Panics
    ///
    /// Panics if `static_reward` is not finite and non-negative.
    pub fn custom(
        static_reward: f64,
        uncle: UncleReward,
        nephew: NephewReward,
        max_uncle_distance: u64,
        max_uncles_per_block: Option<usize>,
    ) -> Self {
        assert!(
            static_reward.is_finite() && static_reward >= 0.0,
            "static reward must be finite and non-negative"
        );
        RewardSchedule {
            static_reward,
            uncle,
            nephew,
            max_uncle_distance,
            max_uncles_per_block,
        }
    }

    /// The static reward `Ks` paid to each regular block.
    pub fn static_reward(&self) -> f64 {
        self.static_reward
    }

    /// The uncle reward `Ku(distance)`, zero outside `1..=max_distance`.
    pub fn uncle_reward(&self, distance: u64) -> f64 {
        if distance == 0 || distance > self.max_uncle_distance {
            return 0.0;
        }
        let ks = self.static_reward;
        match &self.uncle {
            UncleReward::Ethereum => ks * (8 - distance.min(7)) as f64 / 8.0,
            UncleReward::Fixed(v) => ks * v,
            UncleReward::Table(t) => ks * t.get(distance as usize - 1).copied().unwrap_or(0.0),
            UncleReward::Zero => 0.0,
        }
    }

    /// The nephew reward `Kn(distance)` paid to the referencing block per
    /// uncle, zero outside `1..=max_distance`.
    pub fn nephew_reward(&self, distance: u64) -> f64 {
        if distance == 0 || distance > self.max_uncle_distance {
            return 0.0;
        }
        let ks = self.static_reward;
        match &self.nephew {
            NephewReward::Ethereum => ks / 32.0,
            NephewReward::Fixed(v) => ks * v,
            NephewReward::Table(t) => ks * t.get(distance as usize - 1).copied().unwrap_or(0.0),
            NephewReward::Zero => 0.0,
        }
    }

    /// Maximum reference distance after which uncles earn nothing.
    pub fn max_uncle_distance(&self) -> u64 {
        self.max_uncle_distance
    }

    /// Cap on uncle references per block (`None` = unlimited, the paper's
    /// assumption; `Some(2)` = real Ethereum).
    pub fn max_uncles_per_block(&self) -> Option<usize> {
        self.max_uncles_per_block
    }

    /// Replace the per-block uncle cap.
    pub fn with_max_uncles_per_block(mut self, cap: Option<usize>) -> Self {
        self.max_uncles_per_block = cap;
        self
    }

    /// Replace the maximum reference distance.
    pub fn with_max_uncle_distance(mut self, d: u64) -> Self {
        self.max_uncle_distance = d;
        self
    }

    /// `true` if the schedule pays any uncle or nephew rewards
    /// (distinguishes Ethereum-like from Bitcoin-like schedules, Table I).
    pub fn has_uncle_rewards(&self) -> bool {
        (1..=self.max_uncle_distance)
            .any(|d| self.uncle_reward(d) > 0.0 || self.nephew_reward(d) > 0.0)
    }
}

impl Default for RewardSchedule {
    fn default() -> Self {
        Self::ethereum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethereum_schedule_matches_eq7() {
        let s = RewardSchedule::ethereum();
        for d in 1..=6u64 {
            assert_eq!(s.uncle_reward(d), (8 - d) as f64 / 8.0, "Ku({d})");
            assert_eq!(s.nephew_reward(d), 1.0 / 32.0, "Kn({d})");
        }
        assert_eq!(s.uncle_reward(0), 0.0);
        assert_eq!(s.uncle_reward(7), 0.0);
        assert_eq!(s.nephew_reward(7), 0.0);
        assert!(s.has_uncle_rewards());
        assert_eq!(s.max_uncles_per_block(), None);
    }

    #[test]
    fn bitcoin_schedule_pays_static_only() {
        let s = RewardSchedule::bitcoin();
        assert_eq!(s.static_reward(), 1.0);
        for d in 0..10 {
            assert_eq!(s.uncle_reward(d), 0.0);
            assert_eq!(s.nephew_reward(d), 0.0);
        }
        assert!(!s.has_uncle_rewards());
    }

    #[test]
    fn fixed_uncle_flat_within_range() {
        let s = RewardSchedule::fixed_uncle(0.5);
        for d in 1..=6u64 {
            assert_eq!(s.uncle_reward(d), 0.5);
        }
        assert_eq!(s.uncle_reward(7), 0.0);
        assert_eq!(s.nephew_reward(3), 1.0 / 32.0);
    }

    #[test]
    fn table_schedule_and_bounds() {
        let s = RewardSchedule::custom(
            2.0,
            UncleReward::Table(vec![0.9, 0.1]),
            NephewReward::Table(vec![0.05]),
            6,
            Some(2),
        );
        assert_eq!(s.uncle_reward(1), 1.8);
        assert_eq!(s.uncle_reward(2), 0.2);
        assert_eq!(s.uncle_reward(3), 0.0); // beyond table
        assert_eq!(s.nephew_reward(1), 0.1);
        assert_eq!(s.nephew_reward(2), 0.0);
        assert_eq!(s.max_uncles_per_block(), Some(2));
    }

    #[test]
    fn builder_style_overrides() {
        let s = RewardSchedule::ethereum()
            .with_max_uncles_per_block(Some(2))
            .with_max_uncle_distance(3);
        assert_eq!(s.max_uncles_per_block(), Some(2));
        assert_eq!(s.uncle_reward(4), 0.0);
        assert_eq!(s.uncle_reward(3), 5.0 / 8.0);
    }

    #[test]
    fn ethereum_capped_matches_protocol() {
        let s = RewardSchedule::ethereum_capped();
        assert_eq!(s.max_uncles_per_block(), Some(2));
        assert_eq!(s.uncle_reward(1), 7.0 / 8.0);
    }

    #[test]
    fn unbounded_fixed_pays_far_uncles() {
        let s = RewardSchedule::fixed_uncle_unbounded(0.875);
        assert_eq!(s.uncle_reward(1), 0.875);
        assert_eq!(s.uncle_reward(7), 0.875);
        assert_eq!(s.uncle_reward(30), 0.875);
        assert_eq!(s.uncle_reward(65), 0.0);
        assert_eq!(s.nephew_reward(30), 1.0 / 32.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_static_reward_panics() {
        RewardSchedule::custom(-1.0, UncleReward::Zero, NephewReward::Zero, 0, None);
    }
}
