use std::error::Error;
use std::fmt;

use crate::block::BlockId;

/// Error raised by [`crate::BlockTree`] operations.
///
/// ```
/// use seleth_chain::{BlockTree, MinerId, ChainError};
/// let mut tree = BlockTree::new();
/// let bogus = tree.add_block(tree.genesis(), MinerId(0), &[]).unwrap();
/// let err = tree.add_block(bogus, MinerId(0), &[bogus]).unwrap_err();
/// assert!(matches!(err, ChainError::SelfReference { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// The referenced parent block does not exist in the tree.
    UnknownParent {
        /// The id that was passed as parent.
        parent: BlockId,
    },
    /// An uncle reference points at a block not in the tree.
    UnknownUncle {
        /// The id that was passed as an uncle reference.
        uncle: BlockId,
    },
    /// A block attempted to reference its own parent (or itself) as an
    /// uncle; uncles must be *stale* relatives, never ancestors.
    SelfReference {
        /// The offending reference.
        uncle: BlockId,
    },
    /// The tree is full (more than `u32::MAX` blocks).
    Full,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownParent { parent } => {
                write!(f, "parent block {parent} is not in the tree")
            }
            ChainError::UnknownUncle { uncle } => {
                write!(f, "referenced uncle {uncle} is not in the tree")
            }
            ChainError::SelfReference { uncle } => {
                write!(f, "block cannot reference {uncle}: an uncle must not be the block itself or its parent")
            }
            ChainError::Full => write!(f, "block tree is full"),
        }
    }
}

impl Error for ChainError {}
