//! Fork-choice rules: selecting a main chain from a block tree.
//!
//! The paper (Section II-B, footnote 2) notes that although Ethereum claims
//! the GHOST heaviest-subtree rule, in practice it applies the longest-chain
//! rule; both are provided here. Ties are resolved by a [`TieBreak`] policy —
//! the uniform tie-breaking defense of Eyal & Sirer corresponds to honest
//! miners splitting between equal branches, which the simulator models with
//! its `γ` parameter at mining time rather than here.

use crate::block::BlockId;
use crate::tree::BlockTree;

/// Deterministic policy for choosing among equal-score candidate heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TieBreak {
    /// Prefer the block that was inserted into the tree first (oldest id).
    /// This matches the "first received wins" behaviour of real clients under
    /// instantaneous broadcast.
    #[default]
    FirstSeen,
    /// Prefer the block inserted last (useful for adversarial analyses).
    LastSeen,
}

/// Pick the head block by the longest-chain rule.
///
/// Returns the leaf of maximal height; among equal-height leaves the
/// [`TieBreak`] policy decides.
///
/// ```
/// use seleth_chain::{BlockTree, MinerId, forkchoice::{longest_chain_head, TieBreak}};
/// let mut t = BlockTree::new();
/// let a = t.add_block(t.genesis(), MinerId(0), &[]).unwrap();
/// let b = t.add_block(a, MinerId(0), &[]).unwrap();
/// let c = t.add_block(a, MinerId(1), &[]).unwrap();
/// assert_eq!(longest_chain_head(&t, TieBreak::FirstSeen), b);
/// assert_eq!(longest_chain_head(&t, TieBreak::LastSeen), c);
/// ```
pub fn longest_chain_head(tree: &BlockTree, tie: TieBreak) -> BlockId {
    let mut best = tree.genesis();
    let mut best_height = 0u64;
    for block in tree.iter() {
        let better = match block.height().cmp(&best_height) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => match tie {
                TieBreak::FirstSeen => false, // earlier id already kept
                TieBreak::LastSeen => true,
            },
            std::cmp::Ordering::Less => false,
        };
        if better {
            best = block.id();
            best_height = block.height();
        }
    }
    best
}

/// Pick the head block by the GHOST (heaviest observed subtree) rule.
///
/// Starting from genesis, repeatedly descend into the child whose subtree
/// contains the most blocks; [`TieBreak`] resolves equal subtree weights.
///
/// ```
/// use seleth_chain::{BlockTree, MinerId, forkchoice::{ghost_head, longest_chain_head, TieBreak}};
/// let mut t = BlockTree::new();
/// let a = t.add_block(t.genesis(), MinerId(0), &[]).unwrap();
/// // A heavy but short branch...
/// let b = t.add_block(a, MinerId(0), &[]).unwrap();
/// let c1 = t.add_block(b, MinerId(0), &[]).unwrap();
/// let _c2 = t.add_block(b, MinerId(0), &[]).unwrap();
/// let _c3 = t.add_block(b, MinerId(0), &[]).unwrap();
/// // ...beats a longer, lighter one under GHOST (but not under longest-chain).
/// let d = t.add_block(a, MinerId(1), &[]).unwrap();
/// let e = t.add_block(d, MinerId(1), &[]).unwrap();
/// let f = t.add_block(e, MinerId(1), &[]).unwrap();
/// assert_eq!(ghost_head(&t, TieBreak::FirstSeen), c1);
/// assert_eq!(longest_chain_head(&t, TieBreak::FirstSeen), f);
/// ```
pub fn ghost_head(tree: &BlockTree, tie: TieBreak) -> BlockId {
    let mut cur = tree.genesis();
    loop {
        let children = tree.children(cur);
        if children.is_empty() {
            return cur;
        }
        let mut best = children[0];
        let mut best_weight = tree.subtree_size(best);
        for &child in &children[1..] {
            let w = tree.subtree_size(child);
            let better = match w.cmp(&best_weight) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => tie == TieBreak::LastSeen,
                std::cmp::Ordering::Less => false,
            };
            if better {
                best = child;
                best_weight = w;
            }
        }
        cur = best;
    }
}

/// The full main chain (genesis → head) under the longest-chain rule.
pub fn longest_chain(tree: &BlockTree, tie: TieBreak) -> Vec<BlockId> {
    tree.path_from_genesis(longest_chain_head(tree, tie))
}

/// The full main chain (genesis → head) under the GHOST rule.
pub fn ghost_chain(tree: &BlockTree, tie: TieBreak) -> Vec<BlockId> {
    tree.path_from_genesis(ghost_head(tree, tie))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MinerId;

    #[test]
    fn single_chain_trivial() {
        let mut t = BlockTree::new();
        let m = MinerId(0);
        let mut tip = t.genesis();
        for _ in 0..5 {
            tip = t.add_block(tip, m, &[]).unwrap();
        }
        assert_eq!(longest_chain_head(&t, TieBreak::FirstSeen), tip);
        assert_eq!(ghost_head(&t, TieBreak::FirstSeen), tip);
        assert_eq!(longest_chain(&t, TieBreak::FirstSeen).len(), 6);
    }

    #[test]
    fn longest_beats_heaviest_under_longest_rule() {
        let mut t = BlockTree::new();
        let m = MinerId(0);
        let a = t.add_block(t.genesis(), m, &[]).unwrap();
        // Heavy bushy branch of height 2.
        let b = t.add_block(a, m, &[]).unwrap();
        t.add_block(b, m, &[]).unwrap();
        t.add_block(b, m, &[]).unwrap();
        t.add_block(b, m, &[]).unwrap();
        // Light branch of height 4.
        let d = t.add_block(a, m, &[]).unwrap();
        let e = t.add_block(d, m, &[]).unwrap();
        let f = t.add_block(e, m, &[]).unwrap();
        let g = t.add_block(f, m, &[]).unwrap();
        assert_eq!(longest_chain_head(&t, TieBreak::FirstSeen), g);
        // GHOST descends into the bushy branch instead.
        assert_eq!(t.height(ghost_head(&t, TieBreak::FirstSeen)), 3);
    }

    #[test]
    fn tie_break_policies_differ() {
        let mut t = BlockTree::new();
        let a = t.add_block(t.genesis(), MinerId(0), &[]).unwrap();
        let b = t.add_block(t.genesis(), MinerId(1), &[]).unwrap();
        assert_eq!(longest_chain_head(&t, TieBreak::FirstSeen), a);
        assert_eq!(longest_chain_head(&t, TieBreak::LastSeen), b);
        assert_eq!(ghost_head(&t, TieBreak::FirstSeen), a);
        assert_eq!(ghost_head(&t, TieBreak::LastSeen), b);
    }

    #[test]
    fn genesis_only_tree() {
        let t = BlockTree::new();
        assert_eq!(longest_chain_head(&t, TieBreak::FirstSeen), t.genesis());
        assert_eq!(ghost_head(&t, TieBreak::FirstSeen), t.genesis());
        assert_eq!(longest_chain(&t, TieBreak::FirstSeen), vec![t.genesis()]);
    }
}
