use serde::{Deserialize, Serialize};

use crate::block::{Block, BlockId, MinerId};
use crate::error::ChainError;

/// An append-only tree of blocks rooted at a genesis block.
///
/// The tree is the "view of all blocks" each client observes in the paper's
/// Section II-B: forks appear as multiple children of a block, and a main
/// chain is chosen from the tree by a fork-choice rule
/// ([`crate::forkchoice`]).
///
/// Blocks are stored in an arena indexed by [`BlockId`]; the genesis block is
/// created by [`BlockTree::new`] with a reserved miner id (`u32::MAX`) so
/// that it never appears in reward accounting.
///
/// ```
/// use seleth_chain::{BlockTree, MinerId};
/// let mut tree = BlockTree::new();
/// let g = tree.genesis();
/// let a = tree.add_block(g, MinerId(7), &[]).unwrap();
/// let b = tree.add_block(a, MinerId(8), &[]).unwrap();
/// assert_eq!(tree.height(b), 2);
/// assert!(tree.is_ancestor(g, b));
/// assert!(!tree.is_ancestor(b, a));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockTree {
    blocks: Vec<Block>,
    children: Vec<Vec<BlockId>>,
}

/// Miner id reserved for the genesis block.
pub(crate) const GENESIS_MINER: MinerId = MinerId(u32::MAX);

impl BlockTree {
    /// Create a tree containing only the genesis block.
    pub fn new() -> Self {
        let genesis = Block {
            id: BlockId(0),
            parent: None,
            height: 0,
            miner: GENESIS_MINER,
            uncle_refs: Vec::new(),
        };
        BlockTree {
            blocks: vec![genesis],
            children: vec![Vec::new()],
        }
    }

    /// Id of the genesis block (always the same value for every tree).
    pub fn genesis(&self) -> BlockId {
        BlockId(0)
    }

    /// Drop every block except genesis, keeping the arena's allocations.
    ///
    /// Lets long-running drivers (e.g. `seleth-sim`'s multi-run workers)
    /// recycle one tree across many simulations instead of reallocating the
    /// arena per run.
    pub fn reset(&mut self) {
        self.blocks.truncate(1);
        self.children.truncate(1);
        self.children[0].clear();
    }

    /// Total number of blocks, including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `false` always (a tree always contains genesis); provided for
    /// API completeness alongside [`BlockTree::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Append a block on `parent`, mined by `miner`, referencing
    /// `uncle_refs` as uncles.
    ///
    /// Reference *validity* (distance bounds, main-chain membership of the
    /// uncle's parent) is not checked here — it cannot be, since the main
    /// chain is only decided later; [`crate::classify`] and
    /// [`crate::accounting`] validate references when rewards are computed.
    /// Structural sanity is checked.
    ///
    /// # Errors
    ///
    /// - [`ChainError::UnknownParent`] if `parent` is not in the tree.
    /// - [`ChainError::UnknownUncle`] if a reference is not in the tree.
    /// - [`ChainError::SelfReference`] if a reference equals `parent`.
    /// - [`ChainError::Full`] if the arena is exhausted.
    pub fn add_block(
        &mut self,
        parent: BlockId,
        miner: MinerId,
        uncle_refs: &[BlockId],
    ) -> Result<BlockId, ChainError> {
        if !self.contains(parent) {
            return Err(ChainError::UnknownParent { parent });
        }
        for &u in uncle_refs {
            if !self.contains(u) {
                return Err(ChainError::UnknownUncle { uncle: u });
            }
            if u == parent {
                return Err(ChainError::SelfReference { uncle: u });
            }
        }
        let id = BlockId(u32::try_from(self.blocks.len()).map_err(|_| ChainError::Full)?);
        let height = self.blocks[parent.index()].height + 1;
        self.blocks.push(Block {
            id,
            parent: Some(parent),
            height,
            miner,
            uncle_refs: uncle_refs.to_vec(),
        });
        self.children.push(Vec::new());
        self.children[parent.index()].push(id);
        Ok(id)
    }

    /// `true` if `id` is a block in this tree.
    pub fn contains(&self, id: BlockId) -> bool {
        id.index() < self.blocks.len()
    }

    /// Borrow the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree; use [`BlockTree::get`] for a
    /// fallible lookup.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Borrow the block with the given id, or `None` if absent.
    pub fn get(&self, id: BlockId) -> Option<&Block> {
        self.blocks.get(id.index())
    }

    /// Height of a block (genesis = 0).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree.
    pub fn height(&self, id: BlockId) -> u64 {
        self.block(id).height
    }

    /// Children of a block, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree.
    pub fn children(&self, id: BlockId) -> &[BlockId] {
        &self.children[id.index()]
    }

    /// Iterate all blocks in insertion (id) order, genesis first.
    pub fn iter(&self) -> impl Iterator<Item = &Block> + '_ {
        self.blocks.iter()
    }

    /// `true` if `ancestor` lies on the path from `descendant` to genesis
    /// (a block is its own ancestor).
    ///
    /// # Panics
    ///
    /// Panics if either id is not in the tree.
    pub fn is_ancestor(&self, ancestor: BlockId, descendant: BlockId) -> bool {
        let target_height = self.height(ancestor);
        let mut cur = descendant;
        while self.height(cur) > target_height {
            cur = self
                .block(cur)
                .parent
                .expect("non-genesis block has a parent");
        }
        cur == ancestor
    }

    /// The ancestor of `id` at exactly `height`, or `None` if `height`
    /// exceeds the block's own height.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree.
    pub fn ancestor_at(&self, id: BlockId, height: u64) -> Option<BlockId> {
        if height > self.height(id) {
            return None;
        }
        let mut cur = id;
        while self.height(cur) > height {
            cur = self
                .block(cur)
                .parent
                .expect("non-genesis block has a parent");
        }
        Some(cur)
    }

    /// Path from genesis to `id`, inclusive on both ends.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree.
    pub fn path_from_genesis(&self, id: BlockId) -> Vec<BlockId> {
        let mut path = Vec::with_capacity(self.height(id) as usize + 1);
        let mut cur = Some(id);
        while let Some(b) = cur {
            path.push(b);
            cur = self.block(b).parent;
        }
        path.reverse();
        path
    }

    /// Lowest common ancestor of two blocks.
    ///
    /// # Panics
    ///
    /// Panics if either id is not in the tree.
    pub fn common_ancestor(&self, a: BlockId, b: BlockId) -> BlockId {
        let (mut x, mut y) = (a, b);
        while self.height(x) > self.height(y) {
            x = self
                .block(x)
                .parent
                .expect("non-genesis block has a parent");
        }
        while self.height(y) > self.height(x) {
            y = self
                .block(y)
                .parent
                .expect("non-genesis block has a parent");
        }
        while x != y {
            x = self
                .block(x)
                .parent
                .expect("non-genesis block has a parent");
            y = self
                .block(y)
                .parent
                .expect("non-genesis block has a parent");
        }
        x
    }

    /// All leaf blocks (no children).
    pub fn leaves(&self) -> Vec<BlockId> {
        self.children
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_empty())
            .map(|(i, _)| BlockId(i as u32))
            .collect()
    }

    /// Maximum height present in the tree.
    pub fn max_height(&self) -> u64 {
        self.blocks.iter().map(|b| b.height).max().unwrap_or(0)
    }

    /// Number of blocks in the subtree rooted at `id` (including `id`).
    ///
    /// Used by the GHOST fork-choice rule.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree.
    pub fn subtree_size(&self, id: BlockId) -> usize {
        let mut count = 0;
        let mut stack = vec![id];
        while let Some(b) = stack.pop() {
            count += 1;
            stack.extend_from_slice(self.children(b));
        }
        count
    }
}

impl Default for BlockTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a small fixture:
    /// ```text
    /// g - a - b - c
    ///      \
    ///       d - e
    /// ```
    fn fixture() -> (BlockTree, [BlockId; 5]) {
        let mut t = BlockTree::new();
        let m = MinerId(1);
        let a = t.add_block(t.genesis(), m, &[]).unwrap();
        let b = t.add_block(a, m, &[]).unwrap();
        let c = t.add_block(b, m, &[]).unwrap();
        let d = t.add_block(a, m, &[]).unwrap();
        let e = t.add_block(d, m, &[]).unwrap();
        (t, [a, b, c, d, e])
    }

    #[test]
    fn heights_follow_parents() {
        let (t, [a, b, c, d, e]) = fixture();
        assert_eq!(t.height(t.genesis()), 0);
        assert_eq!(t.height(a), 1);
        assert_eq!(t.height(b), 2);
        assert_eq!(t.height(c), 3);
        assert_eq!(t.height(d), 2);
        assert_eq!(t.height(e), 3);
    }

    #[test]
    fn ancestry_queries() {
        let (t, [a, b, c, d, e]) = fixture();
        assert!(t.is_ancestor(a, c));
        assert!(t.is_ancestor(a, e));
        assert!(!t.is_ancestor(b, e));
        assert!(t.is_ancestor(c, c));
        assert_eq!(t.common_ancestor(c, e), a);
        assert_eq!(t.common_ancestor(b, c), b);
        assert_eq!(t.ancestor_at(e, 1), Some(a));
        assert_eq!(t.ancestor_at(e, 2), Some(d));
        assert_eq!(t.ancestor_at(a, 5), None);
    }

    #[test]
    fn path_and_leaves() {
        let (t, [a, b, c, _d, e]) = fixture();
        assert_eq!(t.path_from_genesis(c), vec![t.genesis(), a, b, c]);
        let mut leaves = t.leaves();
        leaves.sort();
        assert_eq!(leaves, vec![c, e]);
    }

    #[test]
    fn subtree_sizes() {
        let (t, [a, _b, _c, d, _e]) = fixture();
        assert_eq!(t.subtree_size(t.genesis()), 6);
        assert_eq!(t.subtree_size(a), 5);
        assert_eq!(t.subtree_size(d), 2);
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut t = BlockTree::new();
        let err = t.add_block(BlockId(42), MinerId(0), &[]).unwrap_err();
        assert_eq!(
            err,
            ChainError::UnknownParent {
                parent: BlockId(42)
            }
        );
    }

    #[test]
    fn unknown_uncle_rejected() {
        let mut t = BlockTree::new();
        let err = t
            .add_block(t.genesis(), MinerId(0), &[BlockId(9)])
            .unwrap_err();
        assert_eq!(err, ChainError::UnknownUncle { uncle: BlockId(9) });
    }

    #[test]
    fn parent_as_uncle_rejected() {
        let (mut t, [a, ..]) = fixture();
        let err = t.add_block(a, MinerId(0), &[a]).unwrap_err();
        assert_eq!(err, ChainError::SelfReference { uncle: a });
    }

    #[test]
    fn children_in_insertion_order() {
        let (t, [a, b, _c, d, _e]) = fixture();
        assert_eq!(t.children(a), &[b, d]);
    }

    #[test]
    fn iter_visits_all_blocks() {
        let (t, _) = fixture();
        assert_eq!(t.iter().count(), 6);
        assert!(t.iter().next().unwrap().is_genesis());
    }
}
