//! Block classification: regular, uncle, and plain stale blocks.
//!
//! Section III-B of the paper partitions blocks by their relation to the
//! system main chain (Fig. 3):
//!
//! - a **regular** block is on the main chain;
//! - an **uncle** block is a stale block whose parent is a regular block and
//!   which is referenced by a later regular block (its **nephew**) within the
//!   maximum reference distance (6 in Ethereum);
//! - everything else is **stale** and earns nothing.
//!
//! The *reference distance* between an uncle and its nephew is the height
//! difference `height(nephew) − height(uncle)`; it determines the uncle
//! reward via `Ku(d)`.

use std::collections::{HashMap, HashSet};

use crate::block::BlockId;
use crate::tree::BlockTree;

/// The classification of one block relative to a main chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockClass {
    /// On the main chain; earns the static reward.
    Regular,
    /// Stale, direct child of the main chain, referenced by `nephew`.
    Uncle {
        /// The regular block whose header references this uncle.
        nephew: BlockId,
        /// `height(nephew) − height(uncle)`, in `1..=max_distance`.
        distance: u64,
    },
    /// Stale and unrewarded (never referenced, or invalid as an uncle).
    Stale,
}

/// One accepted uncle reference, in main-chain order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UncleEvent {
    /// The uncle block.
    pub uncle: BlockId,
    /// The referencing regular block.
    pub nephew: BlockId,
    /// Reference distance in heights.
    pub distance: u64,
}

/// Classify every block of `tree` against `main_chain` (genesis → head,
/// as produced by [`crate::forkchoice`]).
///
/// Reference validity follows Ethereum's rules, restricted to what the
/// paper's model needs:
///
/// - only references appearing in *main-chain* block headers count;
/// - the referenced block must not itself be on the main chain;
/// - its parent must be on the main chain (uncles are "direct children of
///   the system main chain");
/// - `1 ≤ distance ≤ max_distance`;
/// - each uncle is rewarded at most once (the earliest reference wins).
///
/// Genesis is classified as [`BlockClass::Regular`].
///
/// # Panics
///
/// Panics if `main_chain` contains ids that are not in the tree.
pub fn classify(
    tree: &BlockTree,
    main_chain: &[BlockId],
    max_distance: u64,
) -> HashMap<BlockId, BlockClass> {
    let mut classes: HashMap<BlockId, BlockClass> = HashMap::with_capacity(tree.len());
    let on_chain: HashSet<BlockId> = main_chain.iter().copied().collect();
    for block in tree.iter() {
        let class = if on_chain.contains(&block.id()) {
            BlockClass::Regular
        } else {
            BlockClass::Stale
        };
        classes.insert(block.id(), class);
    }
    for ev in uncle_events(tree, main_chain, max_distance) {
        classes.insert(
            ev.uncle,
            BlockClass::Uncle {
                nephew: ev.nephew,
                distance: ev.distance,
            },
        );
    }
    classes
}

/// The accepted uncle references, walking the main chain from genesis to
/// head (so "earliest reference wins" is by construction).
///
/// # Panics
///
/// Panics if `main_chain` contains ids that are not in the tree.
pub fn uncle_events(
    tree: &BlockTree,
    main_chain: &[BlockId],
    max_distance: u64,
) -> Vec<UncleEvent> {
    uncle_events_with_cap(tree, main_chain, max_distance, None)
}

/// Like [`uncle_events`], additionally enforcing a per-nephew cap on
/// accepted references (`Some(2)` for real Ethereum; `None` matches the
/// paper's unlimited-references assumption).
///
/// # Panics
///
/// Panics if `main_chain` contains ids that are not in the tree.
pub fn uncle_events_with_cap(
    tree: &BlockTree,
    main_chain: &[BlockId],
    max_distance: u64,
    cap: Option<usize>,
) -> Vec<UncleEvent> {
    let on_chain: HashSet<BlockId> = main_chain.iter().copied().collect();
    let mut referenced: HashSet<BlockId> = HashSet::new();
    let mut events = Vec::new();
    for &nephew in main_chain {
        let nephew_height = tree.height(nephew);
        let mut accepted = 0usize;
        // Clone refs out to keep the borrow checker happy without an
        // unnecessary tree API; headers carry at most a handful of refs.
        let refs: Vec<BlockId> = tree.block(nephew).uncle_refs().to_vec();
        for uncle in refs {
            if cap.is_some_and(|c| accepted >= c) {
                break;
            }
            if referenced.contains(&uncle) || on_chain.contains(&uncle) {
                continue;
            }
            let ub = tree.block(uncle);
            let Some(parent) = ub.parent() else { continue };
            if !on_chain.contains(&parent) {
                continue;
            }
            let uncle_height = ub.height();
            if uncle_height >= nephew_height {
                continue;
            }
            let distance = nephew_height - uncle_height;
            if distance > max_distance {
                continue;
            }
            referenced.insert(uncle);
            accepted += 1;
            events.push(UncleEvent {
                uncle,
                nephew,
                distance,
            });
        }
    }
    events
}

/// Count blocks per class (excluding genesis): `(regular, uncle, stale)`.
pub fn class_counts(classes: &HashMap<BlockId, BlockClass>) -> (usize, usize, usize) {
    let mut counts = (0usize, 0usize, 0usize);
    for (&id, class) in classes {
        if id.index() == 0 {
            continue; // genesis mints no reward
        }
        match class {
            BlockClass::Regular => counts.0 += 1,
            BlockClass::Uncle { .. } => counts.1 += 1,
            BlockClass::Stale => counts.2 += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MinerId;

    /// Reconstruct the paper's Fig. 3 tree:
    ///
    /// ```text
    /// height: 1    2    3    4    5    6    7    8
    ///         A -  B2 - C1 - D1 - E1 - F1 - G1 - H1   (main chain)
    ///          \   |\
    ///           \  | C2 (child of B1: stale, not uncle)
    ///            B1, B3 (uncles, referenced by C1, distance 1)
    ///         D2 (child of C1, sibling of D1; uncle, referenced by F1, distance 2)
    /// ```
    ///
    /// Matches the paper: regular = {A,B2,C1,D1,E1,F1,G1,H1}, stale =
    /// {B1,B3,C2,D2}, uncles = {B1,B3,D2}, nephews = {C1,F1}.
    fn fig3() -> (BlockTree, Vec<BlockId>, [BlockId; 4]) {
        let m = MinerId(0);
        let mut t = BlockTree::new();
        let a = t.add_block(t.genesis(), m, &[]).unwrap();
        let b1 = t.add_block(a, m, &[]).unwrap();
        let b2 = t.add_block(a, m, &[]).unwrap();
        let b3 = t.add_block(a, m, &[]).unwrap();
        let c2 = t.add_block(b1, m, &[]).unwrap();
        let c1 = t.add_block(b2, m, &[b1, b3]).unwrap();
        let d1 = t.add_block(c1, m, &[]).unwrap();
        let d2 = t.add_block(c1, m, &[]).unwrap();
        let e1 = t.add_block(d1, m, &[]).unwrap();
        let f1 = t.add_block(e1, m, &[d2]).unwrap();
        let g1 = t.add_block(f1, m, &[]).unwrap();
        let h1 = t.add_block(g1, m, &[]).unwrap();
        let chain = vec![t.genesis(), a, b2, c1, d1, e1, f1, g1, h1];
        (t, chain, [b1, b3, d2, c2])
    }

    #[test]
    fn fig3_classification_matches_paper() {
        let (t, chain, [b1, b3, d2, c2]) = fig3();
        let classes = classify(&t, &chain, 6);
        for &r in &chain[1..] {
            assert_eq!(classes[&r], BlockClass::Regular);
        }
        assert!(
            matches!(classes[&b1], BlockClass::Uncle { distance: 1, .. }),
            "B1 should be an uncle at distance 1"
        );
        assert!(matches!(
            classes[&b3],
            BlockClass::Uncle { distance: 1, .. }
        ));
        assert!(
            matches!(classes[&d2], BlockClass::Uncle { distance: 2, .. }),
            "D2 should be an uncle at distance 2, got {:?}",
            classes[&d2]
        );
        assert_eq!(
            classes[&c2],
            BlockClass::Stale,
            "C2's parent is stale; not an uncle"
        );
        let (regular, uncle, stale) = class_counts(&classes);
        assert_eq!((regular, uncle, stale), (8, 3, 1));
    }

    #[test]
    fn uncle_event_ordering_and_nephews() {
        let (t, chain, [b1, b3, d2, _]) = fig3();
        let events = uncle_events(&t, &chain, 6);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].uncle, b1);
        assert_eq!(events[1].uncle, b3);
        assert_eq!(events[2].uncle, d2);
        assert_eq!(events[2].distance, 2);
        // Nephews are C1 (twice) and F1.
        assert_eq!(events[0].nephew, events[1].nephew);
        assert_ne!(events[0].nephew, events[2].nephew);
    }

    #[test]
    fn double_reference_rewarded_once() {
        let m = MinerId(0);
        let mut t = BlockTree::new();
        let a = t.add_block(t.genesis(), m, &[]).unwrap();
        let b1 = t.add_block(a, m, &[]).unwrap();
        let b2 = t.add_block(a, m, &[]).unwrap();
        let c = t.add_block(b2, m, &[b1]).unwrap();
        let d = t.add_block(c, m, &[b1]).unwrap(); // second reference: ignored
        let chain = vec![t.genesis(), a, b2, c, d];
        let events = uncle_events(&t, &chain, 6);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].nephew, c);
    }

    #[test]
    fn distance_beyond_max_not_rewarded() {
        let m = MinerId(0);
        let mut t = BlockTree::new();
        let a = t.add_block(t.genesis(), m, &[]).unwrap();
        let stale = t.add_block(a, m, &[]).unwrap();
        let mut tip = t.add_block(a, m, &[]).unwrap();
        for _ in 0..6 {
            tip = t.add_block(tip, m, &[]).unwrap();
        }
        // tip is now at height 8; stale at height 2 → distance 7 > 6.
        let nephew = t.add_block(tip, m, &[stale]).unwrap();
        let chain = t.path_from_genesis(nephew);
        assert!(uncle_events(&t, &chain, 6).is_empty());
        let classes = classify(&t, &chain, 6);
        assert_eq!(classes[&stale], BlockClass::Stale);
    }

    #[test]
    fn reference_from_stale_block_ignored() {
        let m = MinerId(0);
        let mut t = BlockTree::new();
        let a = t.add_block(t.genesis(), m, &[]).unwrap();
        let u = t.add_block(a, m, &[]).unwrap();
        let b = t.add_block(a, m, &[]).unwrap();
        // A stale block references u — but it is not on the main chain.
        let _stale_nephew = t.add_block(u, m, &[b]).unwrap();
        let c = t.add_block(b, m, &[]).unwrap();
        let d = t.add_block(c, m, &[]).unwrap();
        let chain = vec![t.genesis(), a, b, c, d];
        let events = uncle_events(&t, &chain, 6);
        assert!(events.is_empty());
    }

    #[test]
    fn main_chain_block_never_an_uncle() {
        let m = MinerId(0);
        let mut t = BlockTree::new();
        let a = t.add_block(t.genesis(), m, &[]).unwrap();
        let b = t.add_block(a, m, &[]).unwrap();
        // c references its own grandparent (on-chain): invalid.
        let c = t.add_block(b, m, &[a]).unwrap();
        let chain = vec![t.genesis(), a, b, c];
        assert!(uncle_events(&t, &chain, 6).is_empty());
    }
}
