use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a block within a [`crate::BlockTree`].
///
/// Ids are dense arena indices assigned in insertion order; the genesis block
/// is always id 0. They stand in for the Keccak-256 hashes of real Ethereum
/// headers — the analysis never needs actual hashing, only identity and
/// parent links.
///
/// ```
/// use seleth_chain::BlockTree;
/// let tree = BlockTree::new();
/// assert_eq!(tree.genesis().index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The dense arena index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of a miner (or mining pool).
///
/// The simulator conventionally gives the selfish pool id 0 and honest
/// miners ids 1..n, but this crate attaches no meaning to the value.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MinerId(pub u32);

impl fmt::Display for MinerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "miner{}", self.0)
    }
}

/// A block in the tree: header-level data only (the study is
/// transaction-agnostic; gas fees are ignored as in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub(crate) id: BlockId,
    pub(crate) parent: Option<BlockId>,
    pub(crate) height: u64,
    pub(crate) miner: MinerId,
    pub(crate) uncle_refs: Vec<BlockId>,
}

impl Block {
    /// This block's id.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Parent id; `None` only for the genesis block.
    pub fn parent(&self) -> Option<BlockId> {
        self.parent
    }

    /// Height above genesis (genesis is 0).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The miner that produced this block.
    pub fn miner(&self) -> MinerId {
        self.miner
    }

    /// Uncle blocks referenced by this block's header.
    pub fn uncle_refs(&self) -> &[BlockId] {
        &self.uncle_refs
    }

    /// `true` for the genesis block.
    pub fn is_genesis(&self) -> bool {
        self.parent.is_none()
    }
}
