//! Property-based tests of the blockchain substrate on randomly grown
//! trees: structural invariants, fork-choice sanity, classification
//! partitioning, and accounting conservation.

use proptest::prelude::*;

use seleth_chain::accounting;
use seleth_chain::classify::{self, BlockClass};
use seleth_chain::forkchoice::{self, TieBreak};
use seleth_chain::{BlockId, BlockTree, MinerId, RewardSchedule};

/// Grow a random tree: each step attaches a block to a uniformly chosen
/// existing block, with random miner and random (possibly invalid)
/// uncle references — the validity filters are part of what we test.
fn random_tree(choices: &[(u8, u8, u8)]) -> BlockTree {
    let mut tree = BlockTree::new();
    let mut ids: Vec<BlockId> = vec![tree.genesis()];
    for &(parent_pick, miner, ref_pick) in choices {
        let parent = ids[parent_pick as usize % ids.len()];
        let candidate = ids[ref_pick as usize % ids.len()];
        let refs: Vec<BlockId> = if candidate != parent {
            vec![candidate]
        } else {
            Vec::new()
        };
        let id = tree
            .add_block(parent, MinerId(u32::from(miner % 5)), &refs)
            .expect("structurally valid");
        ids.push(id);
    }
    tree
}

fn tree_strategy() -> impl Strategy<Value = BlockTree> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..120)
        .prop_map(|choices| random_tree(&choices))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Heights, parents and ancestry are mutually consistent.
    #[test]
    fn tree_structure_invariants(tree in tree_strategy()) {
        for block in tree.iter() {
            match block.parent() {
                None => prop_assert_eq!(block.height(), 0),
                Some(p) => {
                    prop_assert_eq!(block.height(), tree.height(p) + 1);
                    prop_assert!(tree.is_ancestor(p, block.id()));
                    prop_assert!(tree.children(p).contains(&block.id()));
                }
            }
        }
        // Subtree of genesis covers everything.
        prop_assert_eq!(tree.subtree_size(tree.genesis()), tree.len());
    }

    /// The longest chain is a real chain ending at maximal height, and the
    /// GHOST chain is a real chain too.
    #[test]
    fn fork_choice_chains_are_chains(tree in tree_strategy()) {
        for chain in [
            forkchoice::longest_chain(&tree, TieBreak::FirstSeen),
            forkchoice::ghost_chain(&tree, TieBreak::FirstSeen),
        ] {
            prop_assert_eq!(chain[0], tree.genesis());
            for w in chain.windows(2) {
                prop_assert_eq!(tree.block(w[1]).parent(), Some(w[0]));
            }
        }
        let longest = forkchoice::longest_chain(&tree, TieBreak::FirstSeen);
        prop_assert_eq!(
            tree.height(*longest.last().unwrap()),
            tree.max_height()
        );
    }

    /// Classification partitions all non-genesis blocks, and every uncle's
    /// parent lies on the main chain with a distance within bounds.
    #[test]
    fn classification_partitions(tree in tree_strategy()) {
        let chain = forkchoice::longest_chain(&tree, TieBreak::FirstSeen);
        let classes = classify::classify(&tree, &chain, 6);
        prop_assert_eq!(classes.len(), tree.len());
        let on_chain: std::collections::HashSet<_> = chain.iter().copied().collect();
        for (&id, class) in &classes {
            match *class {
                BlockClass::Regular => prop_assert!(on_chain.contains(&id)),
                BlockClass::Stale => prop_assert!(!on_chain.contains(&id)),
                BlockClass::Uncle { nephew, distance } => {
                    prop_assert!(!on_chain.contains(&id));
                    prop_assert!(on_chain.contains(&nephew));
                    let parent = tree.block(id).parent().expect("uncles are not genesis");
                    prop_assert!(on_chain.contains(&parent));
                    prop_assert!((1..=6).contains(&distance));
                    prop_assert_eq!(
                        tree.height(nephew) - tree.height(id),
                        distance
                    );
                }
            }
        }
    }

    /// Accounting conserves rewards: per-miner totals sum to the report
    /// total; block counts sum to the tree size minus genesis; each uncle
    /// pays exactly Ku + Kn.
    #[test]
    fn accounting_conserves(tree in tree_strategy()) {
        let chain = forkchoice::longest_chain(&tree, TieBreak::FirstSeen);
        let schedule = RewardSchedule::ethereum();
        let report = accounting::account(&tree, &chain, &schedule);
        prop_assert_eq!(report.block_count() as usize, tree.len() - 1);
        let by_miner: f64 = report.per_miner.values().map(|m| m.total()).sum();
        prop_assert!((by_miner - report.total_reward()).abs() < 1e-9);

        // Recompute the expected total from the classification directly.
        let events = classify::uncle_events(&tree, &chain, 6);
        let expected: f64 = (chain.len() - 1) as f64
            + events
                .iter()
                .map(|e| schedule.uncle_reward(e.distance) + schedule.nephew_reward(e.distance))
                .sum::<f64>();
        prop_assert!((report.total_reward() - expected).abs() < 1e-9);
    }

    /// A stricter uncle cap never increases any miner's reward.
    #[test]
    fn caps_are_monotone(tree in tree_strategy()) {
        let chain = forkchoice::longest_chain(&tree, TieBreak::FirstSeen);
        let unlimited = accounting::account(&tree, &chain, &RewardSchedule::ethereum());
        let capped1 = accounting::account(
            &tree,
            &chain,
            &RewardSchedule::ethereum().with_max_uncles_per_block(Some(1)),
        );
        prop_assert!(capped1.total_reward() <= unlimited.total_reward() + 1e-9);
        prop_assert!(capped1.uncle_count <= unlimited.uncle_count);
        // Static rewards are untouched by the cap.
        for (id, m) in &capped1.per_miner {
            prop_assert_eq!(m.static_reward, unlimited.miner(*id).static_reward);
        }
    }

    /// Tie-break policy changes the head only among equal-height leaves.
    #[test]
    fn tie_break_consistent(tree in tree_strategy()) {
        let first = forkchoice::longest_chain_head(&tree, TieBreak::FirstSeen);
        let last = forkchoice::longest_chain_head(&tree, TieBreak::LastSeen);
        prop_assert_eq!(tree.height(first), tree.height(last));
        prop_assert!(first <= last, "FirstSeen picks the earliest id");
    }
}
