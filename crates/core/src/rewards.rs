//! Probabilistic reward tracking per state transition (Appendix B of the
//! paper, Cases 1–12).
//!
//! Each transition of the Markov chain mints exactly one new block — the
//! *target block*. Its eventual fate (regular / uncle / plain stale), the
//! reference distance if it becomes an uncle, and who collects the matching
//! nephew reward can all be determined *in expectation* at minting time;
//! that is the paper's key analytical device. [`case_outcome`] encodes the
//! twelve cases; [`crate::revenue`] folds them over the stationary
//! distribution.

use seleth_chain::RewardSchedule;

use crate::chain_model::{Case, Transition};
use crate::params::ModelParams;

/// The expected fate of a transition's target block.
///
/// Probabilities refer to the block minted *by this transition*:
///
/// - with probability `p_regular` it ends on the main chain and earns the
///   static reward `Ks`;
/// - with probability `p_uncle` it becomes an uncle at distance
///   `uncle_distance`, earning `Ku(d)` for its miner and `Kn(d)` for the
///   referencing nephew;
/// - with the remaining probability it is plain stale and earns nothing.
///
/// `pool_share` is the probability that the *target block's miner* is the
/// selfish pool (1 for pool-mined transitions, 0 for honest ones, `α` for
/// the shared race-resolution Case 5). `p_nephew_honest` is the probability,
/// conditioned on the block becoming an uncle, that the nephew reward is
/// collected by an honest miner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseOutcome {
    /// Probability the target block becomes a regular block.
    pub p_regular: f64,
    /// Probability the target block becomes a referenced uncle.
    pub p_uncle: f64,
    /// Reference distance if it becomes an uncle (0 when `p_uncle == 0`).
    pub uncle_distance: u64,
    /// Probability the target block's rewards belong to the pool.
    pub pool_share: f64,
    /// P(honest miner collects the nephew reward | target becomes uncle).
    pub p_nephew_honest: f64,
}

impl CaseOutcome {
    /// Probability the block ends up plain stale.
    pub fn p_stale(&self) -> f64 {
        (1.0 - self.p_regular - self.p_uncle).max(0.0)
    }
}

/// Probability that honest miners collect the nephew reward of an uncle
/// created at lead distance `d` (Cases 7–10 of Appendix B):
/// honest miners must push the state back to `(0,0)` while the pool mines
/// nothing (`β^{d−2}` steps), then win the post-consensus race for the
/// referencing block (`β(1 + αβ(1−γ))`).
pub fn nephew_honest_probability(alpha: f64, gamma: f64, d: u64) -> f64 {
    debug_assert!(d >= 2);
    let beta = 1.0 - alpha;
    beta.powi(d as i32 - 1) * (1.0 + alpha * beta * (1.0 - gamma))
}

/// The Appendix-B outcome for one transition, under `params`' reward
/// schedule (distances beyond the schedule's maximum make the block plain
/// stale: it can never be referenced).
///
/// # Panics
///
/// Panics (debug builds) if the transition's case is inconsistent with its
/// source state; transitions produced by
/// [`crate::chain_model::transitions`] are always consistent.
pub fn case_outcome(t: &Transition, params: &ModelParams) -> CaseOutcome {
    let alpha = params.alpha();
    let beta = params.beta();
    let gamma = params.gamma();
    let max_d = params.schedule().max_uncle_distance();

    // Helper for the honest-uncle cases 7-10: uncle at distance `d` with
    // certainty, unless the protocol forbids references that far.
    let honest_uncle = |d: u64| {
        if d <= max_d {
            CaseOutcome {
                p_regular: 0.0,
                p_uncle: 1.0,
                uncle_distance: d,
                pool_share: 0.0,
                p_nephew_honest: nephew_honest_probability(alpha, gamma, d),
            }
        } else {
            STALE_HONEST
        }
    };

    match t.case {
        // Case 1: honest block on consensus; regular.
        Case::HonestOnConsensus => CaseOutcome {
            p_regular: 1.0,
            p_uncle: 0.0,
            uncle_distance: 0,
            pool_share: 0.0,
            p_nephew_honest: 0.0,
        },
        // Case 2: the pool's first withheld block. Regular w.p.
        // α + αβ + β²γ; uncle at distance 1 w.p. β²(1−γ), in which case an
        // honest block is the nephew.
        Case::PoolFirstWithhold => {
            let p_uncle = if 1 <= max_d {
                beta * beta * (1.0 - gamma)
            } else {
                0.0
            };
            CaseOutcome {
                p_regular: alpha + alpha * beta + beta * beta * gamma,
                p_uncle,
                uncle_distance: 1,
                pool_share: 1.0,
                p_nephew_honest: 1.0,
            }
        }
        // Case 3 and Case 6: pool block behind a safe lead; regular w.p. 1
        // (Lemma 1).
        Case::PoolSecondWithhold | Case::PoolExtendLead => CaseOutcome {
            p_regular: 1.0,
            p_uncle: 0.0,
            uncle_distance: 0,
            pool_share: 1.0,
            p_nephew_honest: 0.0,
        },
        // Case 4: honest block that ties the pool's published block.
        // Regular w.p. β(1−γ); uncle at distance 1 w.p. α + βγ. The nephew
        // is the pool w.p. α (subcase 1) and honest w.p. βγ (subcase 2).
        Case::HonestTie => {
            let p_uncle_raw = alpha + beta * gamma;
            let p_uncle = if 1 <= max_d { p_uncle_raw } else { 0.0 };
            CaseOutcome {
                p_regular: beta * (1.0 - gamma),
                p_uncle,
                uncle_distance: 1,
                pool_share: 0.0,
                p_nephew_honest: if p_uncle_raw > 0.0 {
                    beta * gamma / p_uncle_raw
                } else {
                    0.0
                },
            }
        }
        // Case 5: the race resolution block is regular whoever mines it;
        // the pool mined it w.p. α.
        Case::RaceResolution => CaseOutcome {
            p_regular: 1.0,
            p_uncle: 0.0,
            uncle_distance: 0,
            pool_share: alpha,
            p_nephew_honest: 0.0,
        },
        // Cases 7-10: honest block that becomes an uncle with certainty at
        // distance Ls − Lh of the source state.
        Case::HonestOnPrefix => honest_uncle((t.from.ls - t.from.lh) as u64),
        Case::HonestOnPrefixClose | Case::HonestAtLeadTwo => honest_uncle(2),
        Case::HonestFirstFork => honest_uncle(t.from.ls as u64),
        // Cases 11-12: stale with certainty (the parent is itself stale).
        Case::HonestExtendPublic | Case::HonestExtendPublicClose => STALE_HONEST,
    }
}

const STALE_HONEST: CaseOutcome = CaseOutcome {
    p_regular: 0.0,
    p_uncle: 0.0,
    uncle_distance: 0,
    pool_share: 0.0,
    p_nephew_honest: 0.0,
};

/// Expected uncle reward of the target block (to its miner) and nephew
/// reward split, in `Ks` units: returns
/// `(pool_uncle, honest_uncle, pool_nephew, honest_nephew)`.
pub fn expected_uncle_rewards(
    outcome: &CaseOutcome,
    schedule: &RewardSchedule,
) -> (f64, f64, f64, f64) {
    if outcome.p_uncle == 0.0 {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let ku = schedule.uncle_reward(outcome.uncle_distance);
    let kn = schedule.nephew_reward(outcome.uncle_distance);
    let pool_uncle = outcome.p_uncle * outcome.pool_share * ku;
    let honest_uncle = outcome.p_uncle * (1.0 - outcome.pool_share) * ku;
    let honest_nephew = outcome.p_uncle * outcome.p_nephew_honest * kn;
    let pool_nephew = outcome.p_uncle * (1.0 - outcome.p_nephew_honest) * kn;
    (pool_uncle, honest_uncle, pool_nephew, honest_nephew)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_model::transitions;
    use crate::state::State;
    use seleth_chain::RewardSchedule;

    fn params(alpha: f64, gamma: f64) -> ModelParams {
        ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), 30).unwrap()
    }

    fn find(params: &ModelParams, from: State, case: Case) -> Transition {
        transitions(params)
            .into_iter()
            .find(|t| t.from == from && t.case == case)
            .expect("transition present")
    }

    #[test]
    fn fate_probabilities_form_distributions() {
        let p = params(0.35, 0.6);
        for t in transitions(&p) {
            let o = case_outcome(&t, &p);
            assert!((0.0..=1.0).contains(&o.p_regular), "{t:?}");
            assert!((0.0..=1.0).contains(&o.p_uncle));
            assert!(o.p_regular + o.p_uncle <= 1.0 + 1e-12);
            assert!((0.0..=1.0).contains(&o.pool_share));
            assert!((0.0..=1.0).contains(&o.p_nephew_honest));
        }
    }

    #[test]
    fn case2_matches_appendix() {
        let p = params(0.3, 0.5);
        let t = find(&p, State::new(0, 0), Case::PoolFirstWithhold);
        let o = case_outcome(&t, &p);
        let (a, b, g) = (0.3, 0.7, 0.5);
        assert!((o.p_regular - (a + a * b + b * b * g)).abs() < 1e-12);
        assert!((o.p_uncle - b * b * (1.0 - g)).abs() < 1e-12);
        assert!(
            (o.p_regular + o.p_uncle - 1.0).abs() < 1e-12,
            "case 2 fates exhaust"
        );
        assert_eq!(o.uncle_distance, 1);
        assert_eq!(o.pool_share, 1.0);
        assert_eq!(o.p_nephew_honest, 1.0);
    }

    #[test]
    fn case4_matches_appendix() {
        let p = params(0.3, 0.5);
        let t = find(&p, State::new(1, 0), Case::HonestTie);
        let o = case_outcome(&t, &p);
        let (a, b, g) = (0.3, 0.7, 0.5);
        assert!((o.p_regular - b * (1.0 - g)).abs() < 1e-12);
        assert!((o.p_uncle - (a + b * g)).abs() < 1e-12);
        assert!((o.p_regular + o.p_uncle - 1.0).abs() < 1e-12);
        // Nephew: pool w.p. α, honest w.p. βγ (normalized by p_uncle).
        assert!((o.p_nephew_honest - (b * g) / (a + b * g)).abs() < 1e-12);
    }

    #[test]
    fn case7_distance_is_lead() {
        let p = params(0.3, 0.5);
        let t = find(&p, State::new(5, 1), Case::HonestOnPrefix);
        let o = case_outcome(&t, &p);
        assert_eq!(o.uncle_distance, 4);
        assert_eq!(o.p_uncle, 1.0);
        assert_eq!(o.pool_share, 0.0);
        let want = 0.7f64.powi(3) * (1.0 + 0.3 * 0.7 * 0.5);
        assert!((o.p_nephew_honest - want).abs() < 1e-12);
    }

    #[test]
    fn case10_distance_is_full_lead() {
        let p = params(0.3, 0.5);
        let t = find(&p, State::new(4, 0), Case::HonestFirstFork);
        let o = case_outcome(&t, &p);
        assert_eq!(o.uncle_distance, 4);
        assert!((o.p_nephew_honest - nephew_honest_probability(0.3, 0.5, 4)).abs() < 1e-15);
    }

    #[test]
    fn distances_beyond_protocol_max_are_stale() {
        let p = params(0.3, 0.5);
        // From (8,0): distance 8 > 6 → plain stale.
        let t = find(&p, State::new(8, 0), Case::HonestFirstFork);
        let o = case_outcome(&t, &p);
        assert_eq!(o.p_uncle, 0.0);
        assert_eq!(o.p_stale(), 1.0);
    }

    #[test]
    fn bitcoin_schedule_never_creates_uncles() {
        let p = ModelParams::with_truncation(0.3, 0.5, RewardSchedule::bitcoin(), 30).unwrap();
        for t in transitions(&p) {
            let o = case_outcome(&t, &p);
            assert_eq!(o.p_uncle, 0.0, "{t:?}");
        }
    }

    #[test]
    fn race_resolution_splits_by_hash_power() {
        let p = params(0.4, 0.5);
        let t = find(&p, State::new(1, 1), Case::RaceResolution);
        let o = case_outcome(&t, &p);
        assert_eq!(o.p_regular, 1.0);
        assert_eq!(o.pool_share, 0.4);
    }

    #[test]
    fn expected_rewards_use_schedule() {
        let p = params(0.3, 0.5);
        let t = find(&p, State::new(3, 0), Case::HonestFirstFork);
        let o = case_outcome(&t, &p);
        let (pu, hu, pn, hn) = expected_uncle_rewards(&o, p.schedule());
        assert_eq!(pu, 0.0);
        assert!((hu - 5.0 / 8.0).abs() < 1e-12, "Ku(3) = 5/8 to honest");
        let ph = nephew_honest_probability(0.3, 0.5, 3);
        assert!((hn - ph / 32.0).abs() < 1e-12);
        assert!((pn - (1.0 - ph) / 32.0).abs() < 1e-12);
    }
}
