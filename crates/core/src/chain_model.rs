//! The 2-dimensional Markov process of Fig. 7: state space and transition
//! rates (Section IV-C of the paper).
//!
//! Each transition corresponds to one new block being mined (by the pool at
//! rate `α`, by honest miners at rate `β = 1 − α` after the paper's time
//! re-scaling). The total exit rate of every state is therefore `1`, so the
//! embedded jump chain has the same stationary distribution as the
//! continuous-time process; we build it as a DTMC.
//!
//! Every transition is tagged with the Appendix-B *case* that analyses the
//! fate of the block minted by that transition, so the reward analysis
//! ([`crate::rewards`]) can consume the exact same enumeration.

use seleth_markov::{ChainBuilder, Dtmc};

use crate::params::ModelParams;
use crate::state::State;

/// The Appendix-B case describing the target block of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Case {
    /// Case 1: `(0,0) → (0,0)`, rate `β`. Honest block on consensus;
    /// regular.
    HonestOnConsensus,
    /// Case 2: `(0,0) → (1,0)`, rate `α`. Pool withholds its first block.
    PoolFirstWithhold,
    /// Case 3: `(1,0) → (2,0)`, rate `α`. Pool extends its private lead to 2.
    PoolSecondWithhold,
    /// Case 4: `(1,0) → (1,1)`, rate `β`. Honest block ties the pool's
    /// published block.
    HonestTie,
    /// Case 5: `(1,1) → (0,0)`, rate `1`. Whoever mines next resolves the
    /// race; the new block is regular.
    RaceResolution,
    /// Case 6: `(i,j) → (i+1,j)`, rate `α`, for `i ≥ 2`. Pool extends a
    /// safe lead; the block is regular with probability 1 (Lemma 1).
    PoolExtendLead,
    /// Case 7: `(i,j) → (i−j,1)`, rate `βγ`, for `i−j ≥ 3`, `j ≥ 1`.
    /// Honest block on the published prefix of the private branch; it
    /// becomes an uncle at distance `i − j`.
    HonestOnPrefix,
    /// Case 8: `(i,j) → (0,0)`, rate `βγ`, for `i−j = 2`, `j ≥ 1`. Honest
    /// block on the prefix forces full publication; uncle at distance 2.
    HonestOnPrefixClose,
    /// Case 9: `(2,0) → (0,0)`, rate `β`. Honest block forces publication
    /// of the 2-block private branch; uncle at distance 2.
    HonestAtLeadTwo,
    /// Case 10: `(i,0) → (i,1)`, rate `β`, for `i ≥ 3`. First honest fork
    /// against a long private branch; uncle at distance `i`.
    HonestFirstFork,
    /// Case 11: `(i,j) → (i,j+1)`, rate `β(1−γ)`, for `i−j ≥ 3`, `j ≥ 1`.
    /// Honest block extends the honest public branch; plain stale.
    HonestExtendPublic,
    /// Case 12: `(i,j) → (0,0)`, rate `β(1−γ)`, for `i−j = 2`, `j ≥ 1`.
    /// As Case 8 but off the prefix; plain stale.
    HonestExtendPublicClose,
}

/// One transition of the model: `from → to` at `rate`, minting a block
/// analysed by `case`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Source state.
    pub from: State,
    /// Destination state.
    pub to: State,
    /// Transition rate (probability of this jump, since exit rates are 1).
    pub rate: f64,
    /// Appendix-B case of the target block.
    pub case: Case,
}

/// Enumerate the reachable (truncated) state space: `(0,0)`, `(1,0)`,
/// `(1,1)` and all `(i,j)` with `2 + j ≤ i ≤ truncation`.
pub fn states(truncation: u32) -> Vec<State> {
    let mut v = vec![State::new(0, 0), State::new(1, 0), State::new(1, 1)];
    for i in 2..=truncation {
        for j in 0..=(i - 2) {
            v.push(State::new(i, j));
        }
    }
    v
}

/// Enumerate every transition of the truncated model.
///
/// At the truncation boundary `i = truncation` the pool-extend transition
/// (Case 6) is redirected to a self-loop so the chain stays stochastic; the
/// stationary mass there is `O(α^truncation)` and negligible for
/// `α ≤ 0.45`, `truncation ≥ 60` (Remark 3 of the paper).
pub fn transitions(params: &ModelParams) -> Vec<Transition> {
    let alpha = params.alpha();
    let beta = params.beta();
    let gamma = params.gamma();
    let n = params.truncation();
    let mut out = Vec::new();
    let mut push = |from: State, to: State, rate: f64, case: Case| {
        if rate > 0.0 {
            out.push(Transition {
                from,
                to,
                rate,
                case,
            });
        }
    };

    let s00 = State::new(0, 0);
    let s10 = State::new(1, 0);
    let s11 = State::new(1, 1);

    // Cases 1–5: the small states.
    push(s00, s00, beta, Case::HonestOnConsensus);
    push(s00, s10, alpha, Case::PoolFirstWithhold);
    push(s10, State::new(2, 0), alpha, Case::PoolSecondWithhold);
    push(s10, s11, beta, Case::HonestTie);
    push(s11, s00, 1.0, Case::RaceResolution);

    for i in 2..=n {
        for j in 0..=(i - 2) {
            let s = State::new(i, j);
            // Case 6: pool extends (self-loop at the truncation boundary).
            let extended = if i < n { State::new(i + 1, j) } else { s };
            push(s, extended, alpha, Case::PoolExtendLead);

            let lead = i - j;
            if j == 0 {
                if lead == 2 {
                    // Case 9.
                    push(s, s00, beta, Case::HonestAtLeadTwo);
                } else {
                    // Case 10 (i ≥ 3).
                    push(s, State::new(i, 1), beta, Case::HonestFirstFork);
                }
            } else if lead == 2 {
                // Cases 8 and 12 share the jump to (0,0) but differ in the
                // block's fate; keep them separate for the reward analysis.
                push(s, s00, beta * gamma, Case::HonestOnPrefixClose);
                push(s, s00, beta * (1.0 - gamma), Case::HonestExtendPublicClose);
            } else {
                // Case 7: new fork point after publishing; lead shrinks.
                push(s, State::new(lead, 1), beta * gamma, Case::HonestOnPrefix);
                // Case 11: public branch grows.
                push(
                    s,
                    State::new(i, j + 1),
                    beta * (1.0 - gamma),
                    Case::HonestExtendPublic,
                );
            }
        }
    }
    out
}

/// Build the embedded DTMC of the truncated model.
///
/// Self-loops and parallel edges (Cases 8 + 12) are merged by the builder;
/// the [`Case`] tags are only needed for reward analysis and are not part of
/// the chain itself.
pub fn build_dtmc(params: &ModelParams) -> Dtmc<State> {
    let mut b = ChainBuilder::new();
    // Pre-intern in canonical order so dense indices follow `states()`.
    for s in states(params.truncation()) {
        b.intern(s);
    }
    for t in transitions(params) {
        b.add_rate(t.from, t.to, t.rate);
    }
    b.build_dtmc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seleth_chain::RewardSchedule;
    use std::collections::HashMap;

    fn params(alpha: f64, gamma: f64, n: u32) -> ModelParams {
        ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), n).unwrap()
    }

    #[test]
    fn state_count_matches_formula() {
        // 3 + sum_{i=2}^{N} (i-1)
        let n = 10u32;
        let expected = 3 + (2..=n).map(|i| i - 1).sum::<u32>() as usize;
        assert_eq!(states(n).len(), expected);
    }

    #[test]
    fn all_states_valid() {
        for s in states(30) {
            assert!(s.is_valid(), "{s} invalid");
        }
    }

    #[test]
    fn rates_out_of_each_state_sum_to_one() {
        let p = params(0.3, 0.5, 40);
        let mut out: HashMap<State, f64> = HashMap::new();
        for t in transitions(&p) {
            *out.entry(t.from).or_insert(0.0) += t.rate;
        }
        for s in states(40) {
            let total = out.get(&s).copied().unwrap_or(0.0);
            assert!(
                (total - 1.0).abs() < 1e-12,
                "state {s} exits at rate {total}"
            );
        }
    }

    #[test]
    fn transitions_stay_in_state_space() {
        let p = params(0.45, 0.9, 25);
        let valid: std::collections::HashSet<State> = states(25).into_iter().collect();
        for t in transitions(&p) {
            assert!(valid.contains(&t.from), "{} not in space", t.from);
            assert!(valid.contains(&t.to), "{} not in space", t.to);
        }
    }

    #[test]
    fn specific_rates_match_paper() {
        let p = params(0.3, 0.5, 30);
        let ts = transitions(&p);
        let rate = |from: State, to: State, case: Case| {
            ts.iter()
                .find(|t| t.from == from && t.to == to && t.case == case)
                .map(|t| t.rate)
                .unwrap_or(0.0)
        };
        let (a, b, g) = (0.3, 0.7, 0.5);
        assert_eq!(
            rate(State::new(0, 0), State::new(0, 0), Case::HonestOnConsensus),
            b
        );
        assert_eq!(
            rate(State::new(0, 0), State::new(1, 0), Case::PoolFirstWithhold),
            a
        );
        assert_eq!(
            rate(State::new(1, 1), State::new(0, 0), Case::RaceResolution),
            1.0
        );
        assert_eq!(
            rate(State::new(2, 0), State::new(0, 0), Case::HonestAtLeadTwo),
            b
        );
        assert_eq!(
            rate(State::new(5, 0), State::new(5, 1), Case::HonestFirstFork),
            b
        );
        // (5,1): lead 4 ≥ 3 → cases 7 and 11.
        assert_eq!(
            rate(State::new(5, 1), State::new(4, 1), Case::HonestOnPrefix),
            b * g
        );
        assert_eq!(
            rate(State::new(5, 1), State::new(5, 2), Case::HonestExtendPublic),
            b * (1.0 - g)
        );
        // (3,1): lead 2 → cases 8 and 12 to (0,0).
        assert_eq!(
            rate(
                State::new(3, 1),
                State::new(0, 0),
                Case::HonestOnPrefixClose
            ),
            b * g
        );
        assert_eq!(
            rate(
                State::new(3, 1),
                State::new(0, 0),
                Case::HonestExtendPublicClose
            ),
            b * (1.0 - g)
        );
        assert_eq!(
            rate(State::new(3, 1), State::new(4, 1), Case::PoolExtendLead),
            a
        );
    }

    #[test]
    fn truncation_boundary_self_loops() {
        let p = params(0.3, 0.5, 10);
        let ts = transitions(&p);
        let boundary: Vec<_> = ts
            .iter()
            .filter(|t| t.from.ls == 10 && t.case == Case::PoolExtendLead)
            .collect();
        assert!(!boundary.is_empty());
        for t in boundary {
            assert_eq!(t.from, t.to, "pool-extend at the boundary must self-loop");
        }
    }

    #[test]
    fn gamma_zero_has_no_prefix_mining() {
        let p = params(0.3, 0.0, 20);
        assert!(transitions(&p)
            .iter()
            .all(|t| !matches!(t.case, Case::HonestOnPrefix | Case::HonestOnPrefixClose)));
    }

    #[test]
    fn dtmc_is_well_formed() {
        let p = params(0.35, 0.5, 30);
        let d = build_dtmc(&p);
        assert_eq!(d.len(), states(30).len());
        // Spot-check a merged row: (3,1) → (0,0) merges cases 8 + 12.
        assert!((d.prob(&State::new(3, 1), &State::new(0, 0)) - 0.65).abs() < 1e-12);
    }
}
