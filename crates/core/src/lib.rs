//! Analysis of selfish mining in Ethereum — a faithful implementation of
//! *Selfish Mining in Ethereum* (Jianyu Niu & Chen Feng, ICDCS 2019,
//! arXiv:1901.04620).
//!
//! The paper models an Eyal–Sirer-style selfish mining pool in Ethereum as a
//! 2-dimensional Markov process over `(Ls, Lh)` — the private branch length
//! seen by the pool and the public branch length seen by honest miners — and
//! tracks Ethereum's three reward types (static, uncle, nephew)
//! *probabilistically* per state transition. This crate implements:
//!
//! - [`ModelParams`] / [`State`] / [`chain_model`]: the Markov process of
//!   Fig. 7 with its eleven transition-rate families (Section IV-C);
//! - [`stationary`]: the numerical stationary distribution (via
//!   `seleth-markov`) and the paper's closed forms — `π₀₀`, `πᵢ₀`, `π₁₁` and
//!   the general `πᵢⱼ` built on the multiple-summation function `f(x,y,z)`
//!   (Eq. (2), Appendix A);
//! - [`rewards`]: the per-transition expected-reward analysis of
//!   Appendix B (Cases 1–12);
//! - [`revenue`]: long-term revenue rates `r_b^s, r_b^h, r_u^s, r_u^h,
//!   r_n^s, r_n^h` (Eqs. (3)–(9)), relative share `R_s` (Eq. (10)) and
//!   absolute revenues `U_s`, `U_h` under the two difficulty-adjustment
//!   scenarios of Section IV-E-2;
//! - [`threshold`]: the profitability threshold `α*` (Section IV-E-3);
//! - [`distances`]: the honest miners' uncle reference-distance
//!   distribution (Table II);
//! - [`bitcoin`]: the Eyal–Sirer Bitcoin baseline (1-D model, closed-form
//!   revenue and the `(1−γ)/(3−2γ)` threshold) used in Fig. 10.
//!
//! # Quickstart
//!
//! ```
//! use seleth_core::{Analysis, ModelParams, Scenario};
//! use seleth_chain::RewardSchedule;
//!
//! # fn main() -> Result<(), seleth_core::AnalysisError> {
//! // A pool with 30% hash power, γ = 0.5, Ethereum Byzantium rewards.
//! let params = ModelParams::new(0.30, 0.5, RewardSchedule::ethereum())?;
//! let analysis = Analysis::new(&params)?;
//! let revenue = analysis.revenue();
//! let us = revenue.absolute_pool(Scenario::RegularRate);
//! assert!(us > 0.30, "at α=0.3 selfish mining beats honest mining");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never a panic, on
// untrusted input; invariant violations use `expect` with a message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod analysis;
pub mod bitcoin;
pub mod chain_model;
pub mod cycles;
pub mod distances;
mod error;
mod params;
pub mod revenue;
pub mod rewards;
mod state;
pub mod stationary;
pub mod summation;
pub mod threshold;

pub use analysis::Analysis;
pub use error::AnalysisError;
pub use params::ModelParams;
pub use revenue::{RevenueBreakdown, Scenario};
pub use state::State;
