//! Profitability threshold `α*` (Section IV-E-3): the smallest hash-power
//! fraction at which the pool's absolute revenue `U_s(α)` reaches the
//! honest-mining baseline `α`.

use seleth_chain::RewardSchedule;

use crate::error::AnalysisError;
use crate::params::ModelParams;
use crate::revenue::{revenue_from_distribution, Scenario};
use crate::stationary;

/// Options for the threshold search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdOptions {
    /// Step of the initial coarse scan over `α`.
    pub scan_step: f64,
    /// Absolute tolerance on the returned `α*`.
    pub tolerance: f64,
    /// State-space truncation used for each solve.
    pub truncation: u32,
    /// Upper end of the search range (exclusive; must be `< 0.5`).
    pub max_alpha: f64,
}

impl Default for ThresholdOptions {
    fn default() -> Self {
        ThresholdOptions {
            scan_step: 0.01,
            tolerance: 1e-4,
            truncation: 150,
            max_alpha: 0.499,
        }
    }
}

/// Excess revenue `U_s(α) − α`; positive means selfish mining beats honest
/// mining at that hash power.
///
/// # Errors
///
/// Propagates solver failures.
pub fn excess_revenue(
    alpha: f64,
    gamma: f64,
    schedule: &RewardSchedule,
    scenario: Scenario,
    truncation: u32,
) -> Result<f64, AnalysisError> {
    let params = ModelParams::with_truncation(alpha, gamma, schedule.clone(), truncation)?;
    let dist = stationary::solve(&params)?;
    let revenue = revenue_from_distribution(&params, &dist);
    Ok(revenue.absolute_pool(scenario) - alpha)
}

/// Find the profitability threshold `α*` for the given `γ`, reward
/// schedule and difficulty scenario.
///
/// Returns `Ok(None)` if selfish mining is unprofitable across the whole
/// search range (`α* ≥ 0.5` would mean a 51% attack is needed anyway), and
/// `Ok(Some(0.0))` when it is profitable for arbitrarily small pools (the
/// `γ = 1` regime of Fig. 10).
///
/// The search scans `α` coarsely for the first sign change of
/// `U_s(α) − α`, then bisects.
///
/// # Errors
///
/// Propagates solver failures.
///
/// ```
/// use seleth_core::threshold::{profitability_threshold, ThresholdOptions};
/// use seleth_core::Scenario;
/// use seleth_chain::RewardSchedule;
///
/// # fn main() -> Result<(), seleth_core::AnalysisError> {
/// let opts = ThresholdOptions { truncation: 80, ..Default::default() };
/// let t = profitability_threshold(0.5, &RewardSchedule::fixed_uncle(0.5),
///                                 Scenario::RegularRate, opts)?
///     .expect("profitable below 50%");
/// assert!((t - 0.163).abs() < 0.005, "paper: α* ≈ 0.163, got {t}");
/// # Ok(())
/// # }
/// ```
pub fn profitability_threshold(
    gamma: f64,
    schedule: &RewardSchedule,
    scenario: Scenario,
    opts: ThresholdOptions,
) -> Result<Option<f64>, AnalysisError> {
    let g = |alpha: f64| excess_revenue(alpha, gamma, schedule, scenario, opts.truncation);

    // Coarse scan for the first α with positive excess.
    let mut lo = opts.scan_step.min(1e-3);
    if g(lo)? >= 0.0 {
        // Profitable essentially from zero hash power.
        return Ok(Some(0.0));
    }
    let mut hi = None;
    let mut a = opts.scan_step;
    while a < opts.max_alpha {
        if g(a)? >= 0.0 {
            hi = Some(a);
            break;
        }
        lo = a;
        a += opts.scan_step;
    }
    let Some(mut hi) = hi else {
        return Ok(None);
    };

    // Bisection refine.
    while hi - lo > opts.tolerance {
        let mid = 0.5 * (lo + hi);
        if g(mid)? >= 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(0.5 * (lo + hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ThresholdOptions {
        ThresholdOptions {
            truncation: 100,
            ..Default::default()
        }
    }

    #[test]
    fn section6_scenario1_thresholds() {
        // γ = 0.5: Ku(·) gives α* ≈ 0.054; fixed Ku = 4/8 gives ≈ 0.163.
        let t_eth = profitability_threshold(
            0.5,
            &RewardSchedule::ethereum(),
            Scenario::RegularRate,
            opts(),
        )
        .unwrap()
        .unwrap();
        assert!((t_eth - 0.054).abs() < 0.005, "Ethereum Ku(·): got {t_eth}");

        let t_fixed = profitability_threshold(
            0.5,
            &RewardSchedule::fixed_uncle(0.5),
            Scenario::RegularRate,
            opts(),
        )
        .unwrap()
        .unwrap();
        assert!((t_fixed - 0.163).abs() < 0.005, "fixed 4/8: got {t_fixed}");
    }

    #[test]
    fn section6_scenario2_thresholds() {
        // γ = 0.5: Ku(·) gives α* ≈ 0.270; fixed Ku = 4/8 gives ≈ 0.356.
        let t_eth = profitability_threshold(
            0.5,
            &RewardSchedule::ethereum(),
            Scenario::RegularPlusUncleRate,
            opts(),
        )
        .unwrap()
        .unwrap();
        assert!((t_eth - 0.270).abs() < 0.01, "Ethereum Ku(·): got {t_eth}");

        let t_fixed = profitability_threshold(
            0.5,
            &RewardSchedule::fixed_uncle(0.5),
            Scenario::RegularPlusUncleRate,
            opts(),
        )
        .unwrap()
        .unwrap();
        assert!((t_fixed - 0.356).abs() < 0.01, "fixed 4/8: got {t_fixed}");
    }

    #[test]
    fn bitcoin_schedule_threshold_matches_eyal_sirer() {
        // With static-only rewards, our generic threshold solver must land
        // on the Eyal-Sirer closed form (1-γ)/(3-2γ).
        for &gamma in &[0.0, 0.25, 0.5, 0.75] {
            let got = profitability_threshold(
                gamma,
                &RewardSchedule::bitcoin(),
                Scenario::RegularRate,
                opts(),
            )
            .unwrap()
            .unwrap();
            let want = crate::bitcoin::eyal_sirer_threshold(gamma);
            assert!(
                (got - want).abs() < 2e-3,
                "gamma={gamma}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn no_threshold_reported_when_unprofitable_everywhere() {
        // A punitive schedule: no uncle rewards plus a scan capped below
        // the Bitcoin threshold finds no crossing.
        let opts = ThresholdOptions {
            max_alpha: 0.2,
            truncation: 80,
            ..Default::default()
        };
        let t =
            profitability_threshold(0.0, &RewardSchedule::bitcoin(), Scenario::RegularRate, opts)
                .unwrap();
        assert_eq!(t, None, "no profitable alpha below 0.2 at gamma=0");
    }

    #[test]
    fn excess_revenue_signs() {
        let sched = RewardSchedule::fixed_uncle(0.5);
        let below = excess_revenue(0.10, 0.5, &sched, Scenario::RegularRate, 80).unwrap();
        let above = excess_revenue(0.25, 0.5, &sched, Scenario::RegularRate, 80).unwrap();
        assert!(below < 0.0, "losing below threshold: {below}");
        assert!(above > 0.0, "winning above threshold: {above}");
    }

    #[test]
    fn gamma_one_always_profitable() {
        let t = profitability_threshold(
            1.0,
            &RewardSchedule::ethereum(),
            Scenario::RegularRate,
            opts(),
        )
        .unwrap()
        .unwrap();
        assert!(
            t < 0.011,
            "γ=1 should be profitable from ~0 hash power, got {t}"
        );
    }

    #[test]
    fn threshold_decreases_with_gamma() {
        let mut prev = f64::INFINITY;
        for &gamma in &[0.0, 0.25, 0.5, 0.75] {
            let t = profitability_threshold(
                gamma,
                &RewardSchedule::ethereum(),
                Scenario::RegularRate,
                opts(),
            )
            .unwrap()
            .unwrap();
            assert!(t < prev, "threshold should fall as γ grows");
            prev = t;
        }
    }

    #[test]
    fn ethereum_scenario1_below_bitcoin_everywhere() {
        // Fig. 10: "the hash power thresholds of Ethereum in scenario 1 are
        // always lower than Bitcoin".
        for &gamma in &[0.0, 0.3, 0.6, 0.9] {
            let eth = profitability_threshold(
                gamma,
                &RewardSchedule::ethereum(),
                Scenario::RegularRate,
                opts(),
            )
            .unwrap()
            .unwrap();
            let btc = crate::bitcoin::eyal_sirer_threshold(gamma);
            assert!(
                eth < btc,
                "γ={gamma}: Ethereum {eth} should be below Bitcoin {btc}"
            );
        }
    }
}
