use serde::{Deserialize, Serialize};
use std::fmt;

/// A state `(Ls, Lh)` of the paper's 2-dimensional Markov process.
///
/// `Ls` is the length of the selfish pool's private branch, `Lh` the common
/// length of the public branches seen by honest miners (all public branches
/// have equal length under the paper's Algorithm 1). The reachable state
/// space is `(0,0)`, `(1,0)`, `(1,1)`, and `(i,j)` with `i − j ≥ 2`,
/// `j ≥ 0` (Section IV-B).
///
/// ```
/// use seleth_core::State;
/// let s = State::new(4, 1);
/// assert_eq!(s.lead(), 3);
/// assert!(s.is_valid());
/// assert!(!State::new(2, 2).is_valid());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct State {
    /// Private branch length `Ls`.
    pub ls: u32,
    /// Public branch length `Lh`.
    pub lh: u32,
}

impl State {
    /// The reset state `(0, 0)` where everyone mines on consensus.
    pub const START: State = State { ls: 0, lh: 0 };

    /// Construct a state (not necessarily valid; see [`State::is_valid`]).
    pub const fn new(ls: u32, lh: u32) -> Self {
        State { ls, lh }
    }

    /// The pool's advantage `Ls − Lh` (saturating; invalid states where
    /// `Lh > Ls` report 0).
    pub fn lead(&self) -> u32 {
        self.ls.saturating_sub(self.lh)
    }

    /// `true` if this state is in the reachable state space of the model:
    /// `(0,0)`, `(1,0)`, `(1,1)`, or `i − j ≥ 2`.
    pub fn is_valid(&self) -> bool {
        matches!((self.ls, self.lh), (0, 0) | (1, 0) | (1, 1)) || (self.ls >= self.lh + 2)
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.ls, self.lh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_matches_paper_state_space() {
        assert!(State::new(0, 0).is_valid());
        assert!(State::new(1, 0).is_valid());
        assert!(State::new(1, 1).is_valid());
        assert!(State::new(2, 0).is_valid());
        assert!(State::new(5, 3).is_valid());
        assert!(!State::new(2, 1).is_valid()); // resolved immediately to (0,0)
        assert!(!State::new(0, 1).is_valid());
        assert!(!State::new(3, 2).is_valid());
    }

    #[test]
    fn lead_saturates() {
        assert_eq!(State::new(5, 2).lead(), 3);
        assert_eq!(State::new(0, 0).lead(), 0);
        assert_eq!(State::new(1, 1).lead(), 0);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(State::new(4, 1).to_string(), "(4, 1)");
    }
}
