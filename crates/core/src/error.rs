use std::error::Error;
use std::fmt;

use seleth_markov::SolveError;

/// Error raised when constructing or solving the selfish-mining model.
///
/// ```
/// use seleth_core::ModelParams;
/// use seleth_chain::RewardSchedule;
/// let err = ModelParams::new(0.6, 0.5, RewardSchedule::ethereum()).unwrap_err();
/// assert!(err.to_string().contains("alpha"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// `α` must lie in `[0, 0.5)`: with half or more of the hash power the
    /// chain is transient (the pool's lead grows without bound) and no
    /// stationary distribution exists.
    InvalidAlpha {
        /// The rejected value.
        alpha: f64,
    },
    /// `γ` must lie in `[0, 1]`.
    InvalidGamma {
        /// The rejected value.
        gamma: f64,
    },
    /// The truncation level must be at least 3 to contain the non-trivial
    /// states of the model.
    InvalidTruncation {
        /// The rejected value.
        truncation: u32,
    },
    /// The underlying linear-algebra solve failed.
    Solve(SolveError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::InvalidAlpha { alpha } => {
                write!(f, "alpha must be in [0, 0.5), got {alpha}")
            }
            AnalysisError::InvalidGamma { gamma } => {
                write!(f, "gamma must be in [0, 1], got {gamma}")
            }
            AnalysisError::InvalidTruncation { truncation } => {
                write!(f, "truncation must be at least 3, got {truncation}")
            }
            AnalysisError::Solve(e) => write!(f, "stationary solve failed: {e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for AnalysisError {
    fn from(e: SolveError) -> Self {
        AnalysisError::Solve(e)
    }
}
