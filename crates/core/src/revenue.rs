//! Long-term revenue analysis (Section IV-E): folding the per-transition
//! reward outcomes of Appendix B over the stationary distribution.

use serde::{Deserialize, Serialize};

use seleth_markov::Distribution;

use crate::chain_model::transitions;
use crate::params::ModelParams;
use crate::rewards::{case_outcome, expected_uncle_rewards};
use crate::state::State;

pub use seleth_chain::Scenario;

/// Revenue rates per reward type for one side (pool or honest miners),
/// in units of `Ks` per unit time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SideRevenue {
    /// Static (regular-block) reward rate: `r_b` of the paper.
    pub static_reward: f64,
    /// Uncle reward rate: `r_u`.
    pub uncle_reward: f64,
    /// Nephew reward rate: `r_n`.
    pub nephew_reward: f64,
}

impl SideRevenue {
    /// Total revenue rate across all reward types.
    pub fn total(&self) -> f64 {
        self.static_reward + self.uncle_reward + self.nephew_reward
    }
}

/// Complete long-term revenue breakdown of the model.
///
/// The six reward rates correspond to the paper's
/// `r_b^s, r_b^h, r_u^s, r_u^h, r_n^s, r_n^h` (Eqs. (3)–(9)); block-type
/// rates support the Scenario 1/2 normalizations and consistency checks
/// (regular + uncle + stale = 1, the total block production rate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevenueBreakdown {
    /// Selfish pool revenue rates.
    pub pool: SideRevenue,
    /// Honest miners' combined revenue rates.
    pub honest: SideRevenue,
    /// Rate of regular-block creation (equals `r_b^s + r_b^h` when
    /// `Ks = 1`).
    pub regular_rate: f64,
    /// Rate of uncle-block creation (blocks that end up referenced).
    pub uncle_rate: f64,
    /// Rate of plain-stale-block creation.
    pub stale_rate: f64,
    /// The pool hash power `α` the breakdown was computed for.
    pub alpha: f64,
}

impl RevenueBreakdown {
    /// Total revenue rate `r_total` of Eq. (10).
    pub fn total(&self) -> f64 {
        self.pool.total() + self.honest.total()
    }

    /// The pool's *relative* share `R_s` of Eq. (10).
    pub fn relative_pool_share(&self) -> f64 {
        let total = self.total();
        if total > 0.0 {
            self.pool.total() / total
        } else {
            0.0
        }
    }

    /// The divisor used for absolute revenue under `scenario`.
    pub fn normalization(&self, scenario: Scenario) -> f64 {
        match scenario {
            Scenario::RegularRate => self.regular_rate,
            Scenario::RegularPlusUncleRate => self.regular_rate + self.uncle_rate,
        }
    }

    /// The pool's long-term absolute revenue `U_s` (Eq. (11)), i.e. revenue
    /// per time unit after difficulty re-scaling. Honest mining would earn
    /// exactly `α`, so `U_s > α` means selfish mining is profitable.
    pub fn absolute_pool(&self, scenario: Scenario) -> f64 {
        self.pool.total() / self.normalization(scenario)
    }

    /// Honest miners' long-term absolute revenue `U_h` (Eq. (12)).
    pub fn absolute_honest(&self, scenario: Scenario) -> f64 {
        self.honest.total() / self.normalization(scenario)
    }

    /// System-wide absolute revenue (the "Total" series of Fig. 9); equal
    /// to 1 when nobody mines selfishly.
    pub fn absolute_total(&self, scenario: Scenario) -> f64 {
        self.total() / self.normalization(scenario)
    }
}

/// Fold the Appendix-B reward outcomes over a stationary distribution.
///
/// `dist` must be the stationary distribution of the chain built from the
/// same `params` (see [`crate::stationary::solve`]); [`crate::Analysis`]
/// packages the two together.
pub fn revenue_from_distribution(
    params: &ModelParams,
    dist: &Distribution<State>,
) -> RevenueBreakdown {
    let schedule = params.schedule();
    let ks = schedule.static_reward();
    let mut out = RevenueBreakdown {
        pool: SideRevenue::default(),
        honest: SideRevenue::default(),
        regular_rate: 0.0,
        uncle_rate: 0.0,
        stale_rate: 0.0,
        alpha: params.alpha(),
    };
    for t in transitions(params) {
        let flow = dist.prob(&t.from) * t.rate;
        if flow == 0.0 {
            continue;
        }
        let o = case_outcome(&t, params);
        out.regular_rate += flow * o.p_regular;
        out.uncle_rate += flow * o.p_uncle;
        out.stale_rate += flow * o.p_stale();

        out.pool.static_reward += flow * o.p_regular * o.pool_share * ks;
        out.honest.static_reward += flow * o.p_regular * (1.0 - o.pool_share) * ks;

        let (pu, hu, pn, hn) = expected_uncle_rewards(&o, schedule);
        out.pool.uncle_reward += flow * pu;
        out.honest.uncle_reward += flow * hu;
        out.pool.nephew_reward += flow * pn;
        out.honest.nephew_reward += flow * hn;
    }
    out
}

/// Closed-form expressions for the static and pool-uncle revenue rates,
/// used to validate the transition-folding computation.
pub mod closed_form {
    use crate::stationary::{pi00, pi11, pi_i0};

    /// Eq. (3): the pool's static reward rate
    /// `r_b^s = α − αβ²(1−γ)π₀₀`.
    pub fn pool_static(alpha: f64, gamma: f64) -> f64 {
        let beta = 1.0 - alpha;
        alpha - alpha * beta * beta * (1.0 - gamma) * pi00(alpha)
    }

    /// Eq. (4): the honest static reward rate
    /// `r_b^h = β(π₀₀ + π₁₁) + β²(1−γ)π₁₀`.
    pub fn honest_static(alpha: f64, gamma: f64) -> f64 {
        let beta = 1.0 - alpha;
        beta * (pi00(alpha) + pi11(alpha)) + beta * beta * (1.0 - gamma) * pi_i0(alpha, 1)
    }

    /// Eq. (5): the pool's uncle reward rate
    /// `r_u^s = αβ²(1−γ) Ku(1) π₀₀`.
    pub fn pool_uncle(alpha: f64, gamma: f64, ku1: f64) -> f64 {
        let beta = 1.0 - alpha;
        alpha * beta * beta * (1.0 - gamma) * ku1 * pi00(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary;
    use seleth_chain::RewardSchedule;

    fn breakdown(alpha: f64, gamma: f64, schedule: RewardSchedule) -> RevenueBreakdown {
        let p = ModelParams::with_truncation(alpha, gamma, schedule, 150).unwrap();
        let dist = stationary::solve(&p).unwrap();
        revenue_from_distribution(&p, &dist)
    }

    #[test]
    fn block_rates_partition_unity() {
        for &(a, g) in &[(0.1, 0.5), (0.3, 0.5), (0.45, 0.0), (0.4, 1.0)] {
            let r = breakdown(a, g, RewardSchedule::ethereum());
            let total = r.regular_rate + r.uncle_rate + r.stale_rate;
            assert!(
                (total - 1.0).abs() < 1e-9,
                "alpha={a} gamma={g}: rates sum {total}"
            );
        }
    }

    #[test]
    fn static_rates_match_closed_forms() {
        for &(a, g) in &[(0.05, 0.3), (0.2, 0.5), (0.35, 0.8), (0.45, 0.5)] {
            let r = breakdown(a, g, RewardSchedule::ethereum());
            let want_pool = closed_form::pool_static(a, g);
            let want_honest = closed_form::honest_static(a, g);
            assert!(
                (r.pool.static_reward - want_pool).abs() < 1e-9,
                "pool static alpha={a} gamma={g}: got {}, want {want_pool}",
                r.pool.static_reward
            );
            assert!(
                (r.honest.static_reward - want_honest).abs() < 1e-9,
                "honest static alpha={a} gamma={g}: got {}, want {want_honest}",
                r.honest.static_reward
            );
        }
    }

    #[test]
    fn pool_uncle_matches_eq5() {
        for &(a, g) in &[(0.1, 0.0), (0.3, 0.5), (0.45, 0.9)] {
            let r = breakdown(a, g, RewardSchedule::ethereum());
            let want = closed_form::pool_uncle(a, g, 7.0 / 8.0);
            assert!(
                (r.pool.uncle_reward - want).abs() < 1e-9,
                "alpha={a} gamma={g}: got {}, want {want}",
                r.pool.uncle_reward
            );
        }
    }

    #[test]
    fn pool_uncles_always_distance_one() {
        // Remark 5: the pool's uncles are always referenced at distance 1,
        // so its uncle revenue under Ku(·) equals that under fixed 7/8.
        let eth = breakdown(0.35, 0.5, RewardSchedule::ethereum());
        let fixed = breakdown(0.35, 0.5, RewardSchedule::fixed_uncle(7.0 / 8.0));
        assert!((eth.pool.uncle_reward - fixed.pool.uncle_reward).abs() < 1e-12);
    }

    #[test]
    fn bitcoin_schedule_drops_uncle_revenue() {
        let r = breakdown(0.3, 0.5, RewardSchedule::bitcoin());
        assert_eq!(r.pool.uncle_reward, 0.0);
        assert_eq!(r.honest.uncle_reward, 0.0);
        assert_eq!(r.pool.nephew_reward, 0.0);
        assert_eq!(r.honest.nephew_reward, 0.0);
        assert_eq!(r.uncle_rate, 0.0);
        // Static rates unchanged by the schedule.
        assert!((r.pool.static_reward - closed_form::pool_static(0.3, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn relative_and_absolute_coincide_in_bitcoin() {
        // Section IV-E-2: absolute == relative when there are no uncles.
        let r = breakdown(0.3, 0.5, RewardSchedule::bitcoin());
        let rel = r.relative_pool_share();
        let abs1 = r.absolute_pool(Scenario::RegularRate);
        let abs2 = r.absolute_pool(Scenario::RegularPlusUncleRate);
        assert!((rel - abs1).abs() < 1e-12);
        assert!((abs1 - abs2).abs() < 1e-12);
    }

    #[test]
    fn honest_mining_earns_alpha_at_alpha_zero_limit() {
        let r = breakdown(0.0, 0.5, RewardSchedule::ethereum());
        assert!((r.honest.total() - 1.0).abs() < 1e-12);
        assert_eq!(r.pool.total(), 0.0);
        assert!((r.absolute_total(Scenario::RegularRate) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scenario2_normalization_is_larger() {
        let r = breakdown(0.4, 0.5, RewardSchedule::ethereum());
        assert!(r.uncle_rate > 0.0);
        assert!(
            r.absolute_pool(Scenario::RegularPlusUncleRate)
                < r.absolute_pool(Scenario::RegularRate)
        );
    }

    #[test]
    fn fig8_threshold_behaviour_at_ku_half() {
        // Fig. 8: with γ=0.5, Ku=4/8, selfish mining beats honest mining
        // above α ≈ 0.163 and loses below.
        let sched = RewardSchedule::fixed_uncle(0.5);
        let below = breakdown(0.14, 0.5, sched.clone());
        assert!(below.absolute_pool(Scenario::RegularRate) < 0.14);
        let above = breakdown(0.19, 0.5, sched);
        assert!(above.absolute_pool(Scenario::RegularRate) > 0.19);
    }
}
