use serde::{Deserialize, Serialize};

use seleth_chain::RewardSchedule;

use crate::error::AnalysisError;

/// Default truncation level for the infinite state space, as used in the
/// paper's numerical evaluation ("we only consider the states `(i, j)` with
/// `i` and `j` less than 200", Section V-A footnote).
pub const DEFAULT_TRUNCATION: u32 = 200;

/// Parameters of the selfish-mining model.
///
/// - `alpha`: fraction of total hash power controlled by the selfish pool;
/// - `gamma`: fraction of honest miners that mine on the pool's branch when
///   they observe a tie (the pool's communication capability, Section IV-A);
/// - `schedule`: the reward schedule (`Ks`, `Ku(·)`, `Kn(·)`);
/// - `truncation`: maximum private-branch length kept in the state space.
///
/// ```
/// use seleth_core::ModelParams;
/// use seleth_chain::RewardSchedule;
/// let p = ModelParams::new(0.3, 0.5, RewardSchedule::ethereum()).unwrap();
/// assert_eq!(p.beta(), 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    alpha: f64,
    gamma: f64,
    schedule: RewardSchedule,
    truncation: u32,
}

impl ModelParams {
    /// Create parameters with the default truncation level.
    ///
    /// # Errors
    ///
    /// - [`AnalysisError::InvalidAlpha`] unless `0 ≤ alpha < 0.5`;
    /// - [`AnalysisError::InvalidGamma`] unless `0 ≤ gamma ≤ 1`.
    pub fn new(alpha: f64, gamma: f64, schedule: RewardSchedule) -> Result<Self, AnalysisError> {
        Self::with_truncation(alpha, gamma, schedule, DEFAULT_TRUNCATION)
    }

    /// Create parameters with an explicit truncation level (the paper uses
    /// 200; lower values trade accuracy for speed — see the `solver`
    /// benchmark for the ablation).
    ///
    /// # Errors
    ///
    /// As [`ModelParams::new`], plus [`AnalysisError::InvalidTruncation`]
    /// if `truncation < 3`.
    pub fn with_truncation(
        alpha: f64,
        gamma: f64,
        schedule: RewardSchedule,
        truncation: u32,
    ) -> Result<Self, AnalysisError> {
        if !alpha.is_finite() || !(0.0..0.5).contains(&alpha) {
            return Err(AnalysisError::InvalidAlpha { alpha });
        }
        if !gamma.is_finite() || !(0.0..=1.0).contains(&gamma) {
            return Err(AnalysisError::InvalidGamma { gamma });
        }
        if truncation < 3 {
            return Err(AnalysisError::InvalidTruncation { truncation });
        }
        Ok(ModelParams {
            alpha,
            gamma,
            schedule,
            truncation,
        })
    }

    /// Pool hash-power fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Honest hash-power fraction `β = 1 − α`.
    pub fn beta(&self) -> f64 {
        1.0 - self.alpha
    }

    /// Tie-breaking / communication parameter `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The reward schedule.
    pub fn schedule(&self) -> &RewardSchedule {
        &self.schedule
    }

    /// State-space truncation level.
    pub fn truncation(&self) -> u32 {
        self.truncation
    }

    /// A copy with a different `α` (convenient for sweeps).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::InvalidAlpha`] unless `0 ≤ alpha < 0.5`.
    pub fn with_alpha(&self, alpha: f64) -> Result<Self, AnalysisError> {
        Self::with_truncation(alpha, self.gamma, self.schedule.clone(), self.truncation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_bounds() {
        let s = RewardSchedule::ethereum;
        assert!(ModelParams::new(0.0, 0.0, s()).is_ok());
        assert!(ModelParams::new(0.499, 1.0, s()).is_ok());
        assert!(matches!(
            ModelParams::new(0.5, 0.5, s()),
            Err(AnalysisError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            ModelParams::new(-0.1, 0.5, s()),
            Err(AnalysisError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            ModelParams::new(0.3, 1.5, s()),
            Err(AnalysisError::InvalidGamma { .. })
        ));
        assert!(matches!(
            ModelParams::new(0.3, f64::NAN, s()),
            Err(AnalysisError::InvalidGamma { .. })
        ));
        assert!(matches!(
            ModelParams::with_truncation(0.3, 0.5, s(), 2),
            Err(AnalysisError::InvalidTruncation { .. })
        ));
    }

    #[test]
    fn with_alpha_preserves_rest() {
        let p = ModelParams::with_truncation(0.3, 0.7, RewardSchedule::bitcoin(), 50).unwrap();
        let q = p.with_alpha(0.1).unwrap();
        assert_eq!(q.alpha(), 0.1);
        assert_eq!(q.gamma(), 0.7);
        assert_eq!(q.truncation(), 50);
        assert_eq!(q.schedule(), &RewardSchedule::bitcoin());
    }
}
