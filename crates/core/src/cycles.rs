//! Attack-cycle statistics: what one "epoch" of the attack looks like.
//!
//! The chain regenerates every time it returns to `(0,0)` (all miners back
//! on consensus). Renewal theory then turns per-transition rates into
//! per-cycle quantities: a cycle lasts `1/π₀₀` block events on average, of
//! which `regular_rate/π₀₀` end on the main chain, and so on. These are
//! the operational numbers an attacker (or defender) actually experiences:
//! how long a withholding episode lasts, how many blocks it burns, how
//! deep reorganizations get.

use serde::{Deserialize, Serialize};

use seleth_markov::hitting::HittingOptions;

use crate::chain_model;
use crate::error::AnalysisError;
use crate::params::ModelParams;
use crate::revenue::RevenueBreakdown;
use crate::state::State;
use crate::stationary;

/// Per-cycle (consensus-to-consensus) statistics of the attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Expected number of block events per cycle (`1/π₀₀`).
    pub expected_length: f64,
    /// Same quantity computed independently from first-passage analysis
    /// (Kac's formula); agreement with `expected_length` certifies the
    /// solve.
    pub expected_length_via_hitting: f64,
    /// Expected regular (main-chain) blocks per cycle.
    pub regular_blocks: f64,
    /// Expected uncle blocks per cycle.
    pub uncle_blocks: f64,
    /// Expected plain-stale blocks per cycle.
    pub stale_blocks: f64,
    /// Expected pool revenue per cycle (in `Ks` units).
    pub pool_revenue: f64,
    /// Expected honest revenue per cycle.
    pub honest_revenue: f64,
    /// Probability that a cycle involves any withholding at all (the first
    /// event is a pool block): `α`.
    pub attack_probability: f64,
}

/// Compute cycle statistics for the model.
///
/// # Errors
///
/// Propagates solver failures from the stationary and first-passage
/// computations.
pub fn cycle_stats(params: &ModelParams) -> Result<CycleStats, AnalysisError> {
    let dist = stationary::solve(params)?;
    let revenue = crate::revenue::revenue_from_distribution(params, &dist);
    let pi00 = dist.prob(&State::START);
    let cycle = 1.0 / pi00;

    let dtmc = chain_model::build_dtmc(params);
    let via_hitting = dtmc
        .expected_return_time(&State::START, HittingOptions::default())
        .map_err(AnalysisError::from)?;

    Ok(from_parts(&revenue, cycle, via_hitting, params.alpha()))
}

fn from_parts(revenue: &RevenueBreakdown, cycle: f64, via_hitting: f64, alpha: f64) -> CycleStats {
    CycleStats {
        expected_length: cycle,
        expected_length_via_hitting: via_hitting,
        regular_blocks: revenue.regular_rate * cycle,
        uncle_blocks: revenue.uncle_rate * cycle,
        stale_blocks: revenue.stale_rate * cycle,
        pool_revenue: revenue.pool.total() * cycle,
        honest_revenue: revenue.honest.total() * cycle,
        attack_probability: alpha,
    }
}

impl CycleStats {
    /// Blocks per cycle across all types (equals `expected_length`).
    pub fn total_blocks(&self) -> f64 {
        self.regular_blocks + self.uncle_blocks + self.stale_blocks
    }

    /// Fraction of produced blocks wasted (uncle + stale) per cycle — the
    /// system-wide efficiency cost of the attack.
    pub fn waste_fraction(&self) -> f64 {
        (self.uncle_blocks + self.stale_blocks) / self.total_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seleth_chain::RewardSchedule;

    fn stats(alpha: f64, gamma: f64) -> CycleStats {
        let p =
            ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), 120).unwrap();
        cycle_stats(&p).unwrap()
    }

    #[test]
    fn kac_formula_agreement() {
        // Two fully independent computations of the cycle length: the
        // stationary distribution (1/π₀₀) and first-passage analysis.
        for &(a, g) in &[(0.1, 0.5), (0.3, 0.5), (0.42, 0.2)] {
            let s = stats(a, g);
            assert!(
                (s.expected_length - s.expected_length_via_hitting).abs() < 1e-6,
                "alpha={a} gamma={g}: {} vs {}",
                s.expected_length,
                s.expected_length_via_hitting
            );
        }
    }

    #[test]
    fn cycle_blocks_partition() {
        let s = stats(0.35, 0.5);
        assert!((s.total_blocks() - s.expected_length).abs() < 1e-9);
        assert!(s.waste_fraction() > 0.0 && s.waste_fraction() < 1.0);
    }

    #[test]
    fn no_attack_means_unit_cycles() {
        let s = stats(0.0, 0.5);
        assert!((s.expected_length - 1.0).abs() < 1e-12);
        assert!(s.waste_fraction().abs() < 1e-12);
        assert!((s.honest_revenue - 1.0).abs() < 1e-12);
        assert!(s.pool_revenue.abs() < 1e-12);
    }

    #[test]
    fn cycles_lengthen_with_hash_power() {
        let mut prev = 0.0;
        for &a in &[0.1, 0.2, 0.3, 0.4, 0.45] {
            let len = stats(a, 0.5).expected_length;
            assert!(len > prev, "cycle length must grow with alpha");
            prev = len;
        }
    }

    #[test]
    fn waste_grows_with_attack_size() {
        assert!(stats(0.45, 0.5).waste_fraction() > stats(0.15, 0.5).waste_fraction());
    }

    #[test]
    fn revenue_per_cycle_consistent_with_rates() {
        let p = ModelParams::with_truncation(0.3, 0.5, RewardSchedule::ethereum(), 120).unwrap();
        let s = cycle_stats(&p).unwrap();
        let dist = stationary::solve(&p).unwrap();
        let r = crate::revenue::revenue_from_distribution(&p, &dist);
        assert!(((s.pool_revenue / s.expected_length) - r.pool.total()).abs() < 1e-12);
    }
}
