//! The Eyal–Sirer Bitcoin baseline ("Majority is not Enough", 2014/2018),
//! used by the paper's Fig. 10 comparison.
//!
//! In Bitcoin there are no uncle or nephew rewards, so the pool's absolute
//! revenue equals its *relative* share of static rewards. Both the original
//! closed form and a derivation through this crate's 2-D model with a
//! Bitcoin reward schedule are provided; they agree (Remark 4 of the paper:
//! restricted to static rewards, the Ethereum analysis reproduces
//! Eyal–Sirer).

use seleth_chain::RewardSchedule;

use crate::error::AnalysisError;
use crate::params::ModelParams;
use crate::revenue::revenue_from_distribution;
use crate::stationary;

/// Eyal & Sirer's closed-form relative pool revenue:
///
/// ```text
/// R = (α(1−α)²(4α + γ(1−2α)) − α³) / (1 − α(1 + (2−α)α))
/// ```
///
/// ```
/// use seleth_core::bitcoin::eyal_sirer_revenue;
/// // At the γ=0 threshold α=1/3 the pool earns exactly its fair share.
/// let r = eyal_sirer_revenue(1.0 / 3.0, 0.0);
/// assert!((r - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn eyal_sirer_revenue(alpha: f64, gamma: f64) -> f64 {
    let a = alpha;
    let num = a * (1.0 - a).powi(2) * (4.0 * a + gamma * (1.0 - 2.0 * a)) - a.powi(3);
    let den = 1.0 - a * (1.0 + (2.0 - a) * a);
    num / den
}

/// Eyal & Sirer's closed-form profitability threshold
/// `α* = (1 − γ) / (3 − 2γ)`.
///
/// ```
/// use seleth_core::bitcoin::eyal_sirer_threshold;
/// assert!((eyal_sirer_threshold(0.0) - 1.0 / 3.0).abs() < 1e-12);
/// assert!((eyal_sirer_threshold(0.5) - 0.25).abs() < 1e-12);
/// assert_eq!(eyal_sirer_threshold(1.0), 0.0);
/// ```
pub fn eyal_sirer_threshold(gamma: f64) -> f64 {
    (1.0 - gamma) / (3.0 - 2.0 * gamma)
}

/// The pool's relative revenue in Bitcoin computed through this crate's
/// Markov model with a static-rewards-only schedule.
///
/// # Errors
///
/// Propagates solver failures.
pub fn model_revenue(alpha: f64, gamma: f64, truncation: u32) -> Result<f64, AnalysisError> {
    let params = ModelParams::with_truncation(alpha, gamma, RewardSchedule::bitcoin(), truncation)?;
    let dist = stationary::solve(&params)?;
    Ok(revenue_from_distribution(&params, &dist).relative_pool_share())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_model() {
        // Remark 4: the 2-D analysis restricted to static rewards equals
        // the 1-D Eyal–Sirer result.
        for &(alpha, gamma) in &[
            (0.1, 0.0),
            (0.25, 0.5),
            (0.33, 0.5),
            (0.4, 0.9),
            (0.45, 0.25),
        ] {
            let want = eyal_sirer_revenue(alpha, gamma);
            let got = model_revenue(alpha, gamma, 150).unwrap();
            assert!(
                (got - want).abs() < 1e-8,
                "alpha={alpha} gamma={gamma}: model {got}, closed form {want}"
            );
        }
    }

    #[test]
    fn threshold_endpoints() {
        assert!((eyal_sirer_threshold(0.0) - 1.0 / 3.0).abs() < 1e-15);
        assert!((eyal_sirer_threshold(0.5) - 0.25).abs() < 1e-15);
        assert!(eyal_sirer_threshold(1.0).abs() < 1e-15);
    }

    #[test]
    fn revenue_crosses_fair_share_at_threshold() {
        for &gamma in &[0.0, 0.25, 0.5, 0.75] {
            let t = eyal_sirer_threshold(gamma);
            assert!(eyal_sirer_revenue(t - 0.01, gamma) < t - 0.01);
            assert!(eyal_sirer_revenue(t + 0.01, gamma) > t + 0.01);
        }
    }

    #[test]
    fn majority_pool_dominates() {
        // Approaching α = 0.5 the pool collects almost everything.
        assert!(eyal_sirer_revenue(0.49, 0.5) > 0.9);
    }

    #[test]
    fn honest_small_pool_loses_by_withholding() {
        // Below threshold the pool earns less than its fair share.
        let r = eyal_sirer_revenue(0.1, 0.0);
        assert!(r < 0.1);
        assert!(r >= 0.0 || r.abs() < 0.05); // small losses, not nonsense
    }
}
