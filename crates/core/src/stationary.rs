//! Stationary distribution of the selfish-mining chain: numerical solution
//! and the paper's closed forms (Section IV-C, Eq. (2)).

use seleth_markov::{Distribution, SolveMethod, SolveOptions};

use crate::chain_model;
use crate::error::AnalysisError;
use crate::params::ModelParams;
use crate::state::State;
use crate::summation::f;

/// Solve the truncated chain numerically.
///
/// Gauss–Seidel is the default for this banded chain (it converges in a few
/// hundred sweeps where power iteration needs tens of thousands); pass a
/// different [`SolveOptions`] to cross-check methods.
///
/// # Errors
///
/// Propagates [`AnalysisError::Solve`] from the underlying solver.
pub fn solve(params: &ModelParams) -> Result<Distribution<State>, AnalysisError> {
    solve_with(params, default_options())
}

/// [`solve`] with explicit solver options.
///
/// # Errors
///
/// Propagates [`AnalysisError::Solve`] from the underlying solver.
pub fn solve_with(
    params: &ModelParams,
    opts: SolveOptions,
) -> Result<Distribution<State>, AnalysisError> {
    let dtmc = chain_model::build_dtmc(params);
    Ok(dtmc.stationary(opts)?)
}

/// Default solver options used by [`solve`].
pub fn default_options() -> SolveOptions {
    SolveOptions {
        method: SolveMethod::GaussSeidel,
        tolerance: 1e-13,
        max_iterations: 100_000,
        // The truncated chain is irreducible by construction; skip the BFS.
        check_irreducible: false,
    }
}

/// Closed form for `π₀₀` (Eq. (2)):
/// `π₀₀ = (1 − 2α) / (2α³ − 4α² + 1)`.
///
/// ```
/// use seleth_core::stationary::pi00;
/// assert!((pi00(0.0) - 1.0).abs() < 1e-12);
/// assert!(pi00(0.4) > 0.0 && pi00(0.4) < 1.0);
/// ```
pub fn pi00(alpha: f64) -> f64 {
    (1.0 - 2.0 * alpha) / (2.0 * alpha.powi(3) - 4.0 * alpha.powi(2) + 1.0)
}

/// Closed form for `π_{i,0} = αⁱ π₀₀` (Eq. (2)), `i ≥ 1`.
pub fn pi_i0(alpha: f64, i: u32) -> f64 {
    alpha.powi(i as i32) * pi00(alpha)
}

/// Closed form for `π_{1,1} = (α − α²) π₀₀` (Eq. (2)).
pub fn pi11(alpha: f64) -> f64 {
    (alpha - alpha * alpha) * pi00(alpha)
}

/// The paper's general closed form for `π_{i,j}`, `i ≥ j + 2`, `j ≥ 1`
/// (Eq. (2)), built on the multiple-summation function
/// [`crate::summation::f`]:
///
/// ```text
/// π_{i,j} = αⁱ (1−α)ʲ (1−γ)ʲ f(i,j,j) π₀₀
///         + α^{i−j} γ (1−γ)^{j−1} (1/(1−α)^{i−j−1} − 1) π₀₀
///         − γ (1−γ)^{j−1} Σ_{k=1}^{j} α^{i−k} (1−α)^{j−k} f(i,j,j−k) π₀₀
/// ```
///
/// Returns the closed forms for `(0,0)`, `(i,0)` and `(1,1)` when those
/// states are requested, and 0 for states outside the model's state space.
pub fn pi_closed_form(alpha: f64, gamma: f64, state: State) -> f64 {
    let State { ls: i, lh: j } = state;
    match (i, j) {
        (0, 0) => pi00(alpha),
        (1, 1) => pi11(alpha),
        (_, 0) => pi_i0(alpha, i),
        _ if i >= j + 2 => {
            let p0 = pi00(alpha);
            let (a, b, g) = (alpha, 1.0 - alpha, gamma);
            let (i64i, j64) = (i as i64, j as i64);
            let term1 =
                a.powi(i as i32) * b.powi(j as i32) * (1.0 - g).powi(j as i32) * f(i64i, j64, j64);
            let term2 = a.powi((i - j) as i32)
                * g
                * (1.0 - g).powi(j as i32 - 1)
                * (1.0 / b.powi((i - j) as i32 - 1) - 1.0);
            let mut term3 = 0.0;
            for k in 1..=j64 {
                term3 +=
                    a.powi((i64i - k) as i32) * b.powi((j64 - k) as i32) * f(i64i, j64, j64 - k);
            }
            term3 *= g * (1.0 - g).powi(j as i32 - 1);
            (term1 + term2 - term3) * p0
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seleth_chain::RewardSchedule;

    fn params(alpha: f64, gamma: f64) -> ModelParams {
        ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), 120).unwrap()
    }

    #[test]
    fn pi00_reference_values() {
        // alpha = 0.3: (1 - 0.6) / (0.054 - 0.36 + 1) = 0.4 / 0.694
        assert!((pi00(0.3) - 0.4 / 0.694).abs() < 1e-12);
        // Monotonically decreasing in alpha (Remark 2).
        let mut prev = pi00(0.0);
        for k in 1..50 {
            let v = pi00(k as f64 * 0.01);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn numeric_matches_pi00_pi10_pi11() {
        for &(alpha, gamma) in &[(0.1, 0.5), (0.3, 0.5), (0.4, 0.2), (0.45, 0.9)] {
            let dist = solve(&params(alpha, gamma)).unwrap();
            let got00 = dist.prob(&State::new(0, 0));
            assert!(
                (got00 - pi00(alpha)).abs() < 1e-9,
                "pi00 alpha={alpha} gamma={gamma}: got {got00}, want {}",
                pi00(alpha)
            );
            for i in 1..=8 {
                let got = dist.prob(&State::new(i, 0));
                assert!(
                    (got - pi_i0(alpha, i)).abs() < 1e-9,
                    "pi_{i}0 alpha={alpha}: got {got}, want {}",
                    pi_i0(alpha, i)
                );
            }
            let got11 = dist.prob(&State::new(1, 1));
            assert!((got11 - pi11(alpha)).abs() < 1e-9);
        }
    }

    #[test]
    fn numeric_matches_general_closed_form() {
        for &(alpha, gamma) in &[(0.25, 0.0), (0.3, 0.5), (0.4, 1.0), (0.45, 0.3)] {
            let dist = solve(&params(alpha, gamma)).unwrap();
            for i in 3..=12u32 {
                for j in 1..=(i - 2) {
                    let s = State::new(i, j);
                    let want = pi_closed_form(alpha, gamma, s);
                    let got = dist.prob(&s);
                    assert!(
                        (got - want).abs() < 1e-9,
                        "pi({i},{j}) alpha={alpha} gamma={gamma}: numeric {got}, closed {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let dist = solve(&params(0.4, 0.5)).unwrap();
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn geometric_decay_allows_truncation() {
        // Remark 3: pi_{i,0} < 1e-6 for i >= 15 at alpha = 0.4.
        assert!(pi_i0(0.4, 15) < 1e-5);
        assert!(pi_i0(0.4, 20) < 1e-7);
    }

    #[test]
    fn alpha_zero_degenerates_to_all_honest() {
        let dist = solve(&params(0.0, 0.5)).unwrap();
        assert!((dist.prob(&State::new(0, 0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solver_methods_agree() {
        let p = ModelParams::with_truncation(0.35, 0.6, RewardSchedule::ethereum(), 40).unwrap();
        let gs = solve_with(&p, default_options()).unwrap();
        let power = solve_with(
            &p,
            SolveOptions {
                method: SolveMethod::PowerIteration,
                tolerance: 1e-13,
                max_iterations: 2_000_000,
                check_irreducible: false,
            },
        )
        .unwrap();
        assert!(gs.l1_distance(&power) < 1e-7);
    }
}
