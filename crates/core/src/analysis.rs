use seleth_markov::Distribution;

use crate::distances::{self, DistanceDistribution};
use crate::error::AnalysisError;
use crate::params::ModelParams;
use crate::revenue::{revenue_from_distribution, RevenueBreakdown};
use crate::state::State;
use crate::stationary;

/// A solved instance of the selfish-mining model: parameters plus the
/// stationary distribution, with derived quantities computed on demand.
///
/// ```
/// use seleth_core::{Analysis, ModelParams, State};
/// use seleth_chain::RewardSchedule;
///
/// # fn main() -> Result<(), seleth_core::AnalysisError> {
/// let params = ModelParams::new(0.3, 0.5, RewardSchedule::ethereum())?;
/// let analysis = Analysis::new(&params)?;
/// // π₀₀ from the solved chain matches the paper's closed form.
/// let pi00 = analysis.pi(State::new(0, 0));
/// assert!((pi00 - 0.4 / 0.694).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Analysis {
    params: ModelParams,
    dist: Distribution<State>,
}

impl Analysis {
    /// Solve the chain for `params`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures as [`AnalysisError::Solve`].
    pub fn new(params: &ModelParams) -> Result<Self, AnalysisError> {
        let dist = stationary::solve(params)?;
        Ok(Analysis {
            params: params.clone(),
            dist,
        })
    }

    /// The parameters this analysis was solved for.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The stationary distribution over `(Ls, Lh)` states.
    pub fn stationary(&self) -> &Distribution<State> {
        &self.dist
    }

    /// Stationary probability of one state (0 for states outside the
    /// truncated space).
    pub fn pi(&self, state: State) -> f64 {
        self.dist.prob(&state)
    }

    /// The long-term revenue breakdown (Eqs. (3)–(12)).
    pub fn revenue(&self) -> RevenueBreakdown {
        revenue_from_distribution(&self.params, &self.dist)
    }

    /// The honest miners' uncle reference-distance distribution (Table II).
    pub fn honest_uncle_distances(&self) -> DistanceDistribution {
        distances::honest_uncle_distances(&self.params, &self.dist)
    }

    /// Expected private-branch length `E[Ls]` in steady state — a measure
    /// of how much inventory the pool holds.
    pub fn expected_private_length(&self) -> f64 {
        self.dist.expect(|s| f64::from(s.ls))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seleth_chain::RewardSchedule;

    #[test]
    fn analysis_bundles_consistently() {
        let p = ModelParams::with_truncation(0.3, 0.5, RewardSchedule::ethereum(), 80).unwrap();
        let a = Analysis::new(&p).unwrap();
        assert_eq!(a.params(), &p);
        let total: f64 = a.stationary().iter().map(|(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert!(a.expected_private_length() > 0.0);
    }

    #[test]
    fn more_hash_power_means_longer_private_branch() {
        let mut prev = 0.0;
        for &alpha in &[0.1, 0.2, 0.3, 0.4] {
            let p =
                ModelParams::with_truncation(alpha, 0.5, RewardSchedule::ethereum(), 80).unwrap();
            let len = Analysis::new(&p).unwrap().expected_private_length();
            assert!(len > prev, "E[Ls] should grow with alpha");
            prev = len;
        }
    }
}
