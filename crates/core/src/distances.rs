//! Reference-distance distribution of honest miners' uncle blocks
//! (Table II of the paper).
//!
//! The pool's uncles are *always* referenced at distance 1 (Remark 5); the
//! honest miners' uncles span distances `1..=6` with a distribution that
//! shifts to longer distances as `α` grows — the observation motivating the
//! Section VI reward redesign.

use serde::{Deserialize, Serialize};

use seleth_markov::Distribution;

use crate::chain_model::transitions;
use crate::params::ModelParams;
use crate::rewards::case_outcome;
use crate::state::State;

/// A probability distribution over uncle reference distances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceDistribution {
    /// `pmf[d − 1]` = probability an honest uncle is referenced at
    /// distance `d`.
    pmf: Vec<f64>,
}

impl DistanceDistribution {
    /// Build from unnormalized per-distance masses.
    ///
    /// # Panics
    ///
    /// Panics if any mass is negative or not finite.
    pub fn from_masses(masses: Vec<f64>) -> Self {
        assert!(
            masses.iter().all(|m| m.is_finite() && *m >= 0.0),
            "distance masses must be finite and non-negative"
        );
        let total: f64 = masses.iter().sum();
        let pmf = if total > 0.0 {
            masses.into_iter().map(|m| m / total).collect()
        } else {
            masses
        };
        DistanceDistribution { pmf }
    }

    /// Probability of distance `d` (1-based; 0 outside the support).
    pub fn prob(&self, d: u64) -> f64 {
        if d == 0 {
            return 0.0;
        }
        self.pmf.get(d as usize - 1).copied().unwrap_or(0.0)
    }

    /// The probability mass function, index `d − 1`.
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// Expected reference distance (the "Expectation" row of Table II).
    pub fn expectation(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum()
    }

    /// Largest distance with nonzero probability (0 for an empty
    /// distribution).
    pub fn max_distance(&self) -> u64 {
        self.pmf
            .iter()
            .rposition(|&p| p > 0.0)
            .map_or(0, |i| i as u64 + 1)
    }
}

/// Compute the honest miners' uncle-distance distribution from the
/// stationary distribution: the per-distance uncle creation *flows* of the
/// Appendix-B cases (4, 7, 8, 9, 10), normalized.
pub fn honest_uncle_distances(
    params: &ModelParams,
    dist: &Distribution<State>,
) -> DistanceDistribution {
    let max_d = params.schedule().max_uncle_distance().max(1) as usize;
    let mut masses = vec![0.0; max_d];
    for t in transitions(params) {
        let o = case_outcome(&t, params);
        if o.p_uncle == 0.0 || o.pool_share > 0.0 {
            continue; // not an honest uncle
        }
        let flow = dist.prob(&t.from) * t.rate * o.p_uncle;
        let d = o.uncle_distance as usize;
        if (1..=max_d).contains(&d) {
            masses[d - 1] += flow;
        }
    }
    DistanceDistribution::from_masses(masses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary;
    use seleth_chain::RewardSchedule;

    fn distances(alpha: f64, gamma: f64) -> DistanceDistribution {
        let p =
            ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), 150).unwrap();
        let dist = stationary::solve(&p).unwrap();
        honest_uncle_distances(&p, &dist)
    }

    #[test]
    fn table2_alpha_03() {
        // Paper Table II, γ = 0.5, α = 0.3 (3 decimal places).
        let d = distances(0.3, 0.5);
        let expected = [0.527, 0.295, 0.111, 0.043, 0.017, 0.007];
        for (i, &want) in expected.iter().enumerate() {
            let got = d.prob(i as u64 + 1);
            assert!(
                (got - want).abs() < 2e-3,
                "P(d={}) = {got:.4}, paper says {want}",
                i + 1
            );
        }
        assert!(
            (d.expectation() - 1.75).abs() < 0.01,
            "expectation {}",
            d.expectation()
        );
    }

    #[test]
    fn table2_alpha_045() {
        // Paper Table II, γ = 0.5, α = 0.45.
        let d = distances(0.45, 0.5);
        let expected = [0.284, 0.249, 0.171, 0.125, 0.096, 0.075];
        for (i, &want) in expected.iter().enumerate() {
            let got = d.prob(i as u64 + 1);
            assert!(
                (got - want).abs() < 2e-3,
                "P(d={}) = {got:.4}, paper says {want}",
                i + 1
            );
        }
        assert!(
            (d.expectation() - 2.72).abs() < 0.02,
            "expectation {}",
            d.expectation()
        );
    }

    #[test]
    fn expectation_grows_with_alpha() {
        // Section VI: "with the increase of α, the average referencing
        // distance of honest miners' blocks [is] increasing".
        let mut prev = 0.0;
        for &a in &[0.1, 0.2, 0.3, 0.4, 0.45] {
            let e = distances(a, 0.5).expectation();
            assert!(e > prev, "expectation at alpha={a} should exceed {prev}");
            prev = e;
        }
    }

    #[test]
    fn pmf_is_normalized() {
        let d = distances(0.35, 0.5);
        let total: f64 = d.pmf().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(d.max_distance(), 6);
    }

    #[test]
    fn helpers_behave() {
        let d = DistanceDistribution::from_masses(vec![2.0, 1.0, 1.0]);
        assert_eq!(d.prob(1), 0.5);
        assert_eq!(d.prob(4), 0.0);
        assert_eq!(d.prob(0), 0.0);
        assert_eq!(d.expectation(), 0.5 + 2.0 * 0.25 + 3.0 * 0.25);
        assert_eq!(d.max_distance(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mass_panics() {
        DistanceDistribution::from_masses(vec![1.0, -0.5]);
    }
}
