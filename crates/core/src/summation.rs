//! The multiple-summation function `f(x, y, z)` of Appendix A.
//!
//! `f(x, y, z)` is the `z`-fold nested sum
//!
//! ```text
//! f(x,y,z) = Σ_{s_z = y+2}^{x}  Σ_{s_{z−1} = y+1}^{s_z} … Σ_{s_1 = y−z+3}^{s_2} 1
//! ```
//!
//! for `z ≥ 1`, `x ≥ y + 2`, and `0` otherwise. It appears in the closed
//! form of the stationary probabilities `π_{i,j}` (Eq. (2) of the paper).
//!
//! The implementation runs the recurrence bottom-up with prefix sums:
//! `O(z · (x − y))` time instead of the exponential literal nesting.

/// Evaluate `f(x, y, z)` (Appendix A).
///
/// Inputs are `i64` so callers can form expressions like `f(i, j, j - k)`
/// without underflow gymnastics; any `z ≤ 0` or `x < y + 2` returns 0.
///
/// ```
/// use seleth_core::summation::f;
/// // Example 1 of the paper: f(x, y, 1) = x − y − 1.
/// assert_eq!(f(10, 3, 1), 6.0);
/// // Example 2: f(x, y, 2) = (x − y − 1)(x − y + 2)/2.
/// assert_eq!(f(10, 3, 2), (6 * 9 / 2) as f64);
/// ```
pub fn f(x: i64, y: i64, z: i64) -> f64 {
    if z < 1 || x < y + 2 {
        return 0.0;
    }
    // Level m ∈ 1..=z has index s_m with lower bound L(m) = y − z + m + 2
    // and upper bound s_{m+1} (or x for m = z).
    //
    // Define g_m(u) = number of valid (s_1, …, s_m) with s_m ≤ u.
    // Then g_0 ≡ 1 and g_m(u) = Σ_{s = L(m)}^{u} g_{m−1}(s),
    // and f = g_z(x).
    //
    // We tabulate g over the index range [y − z + 2, x] (one below the
    // smallest lower bound, so prefix sums are easy).
    let lo = y - z + 2;
    let width = (x - lo + 1) as usize;
    let mut g = vec![1.0f64; width]; // g_0
    for m in 1..=z {
        let lower = y - z + m + 2;
        let mut next = vec![0.0f64; width];
        let mut acc = 0.0;
        for (idx, item) in next.iter_mut().enumerate() {
            let s = lo + idx as i64;
            if s >= lower {
                acc += g[idx];
            }
            *item = acc;
        }
        g = next;
    }
    g[width - 1]
}

/// Literal (exponential) evaluation of the nested sums, used to validate
/// the fast implementation in tests. Only sensible for small inputs.
pub fn f_naive(x: i64, y: i64, z: i64) -> f64 {
    if z < 1 || x < y + 2 {
        return 0.0;
    }
    fn rec(level: i64, z: i64, y: i64, upper: i64) -> f64 {
        if level == 0 {
            return 1.0;
        }
        let lower = y - z + level + 2;
        let mut total = 0.0;
        let mut s = lower;
        while s <= upper {
            total += rec(level - 1, z, y, s);
            s += 1;
        }
        total
    }
    rec(z, z, y, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_of_appendix_a() {
        for (x, y) in [(5i64, 0i64), (7, 2), (10, 8), (4, 2)] {
            assert_eq!(f(x, y, 1), (x - y - 1) as f64, "f({x},{y},1)");
        }
    }

    #[test]
    fn example_2_of_appendix_a() {
        for (x, y) in [(5i64, 0i64), (7, 2), (12, 3)] {
            let expected = ((x - y - 1) * (x - y + 2)) as f64 / 2.0;
            assert_eq!(f(x, y, 2), expected, "f({x},{y},2)");
        }
    }

    #[test]
    fn out_of_domain_is_zero() {
        assert_eq!(f(5, 4, 1), 0.0); // x < y + 2
        assert_eq!(f(5, 0, 0), 0.0); // z < 1
        assert_eq!(f(5, 0, -3), 0.0);
        assert_eq!(f(1, 0, 2), 0.0);
    }

    #[test]
    fn fast_matches_naive() {
        for x in 2..=12i64 {
            for y in 0..=(x - 2) {
                for z in 1..=6i64 {
                    assert_eq!(f(x, y, z), f_naive(x, y, z), "f({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn monotone_in_x() {
        for z in 1..=4i64 {
            let mut prev = 0.0;
            for x in 3..20i64 {
                let v = f(x, 1, z);
                assert!(v >= prev);
                prev = v;
            }
        }
    }
}
