//! Shared replay and reporting helpers for the delay-study bins.
//!
//! `optimal_delay`, `strategy_zoo`'s tournament and `chaos_study` all
//! phrase their measurements the same way: replay a [`DelayConfig`] over
//! `runs` independent seeds, average the strategist's RegularRate-
//! normalized absolute revenue (the quantity comparable to an artifact's
//! ρ*), track the system-wide orphan rate and the mined fraction of the
//! block budget, and gate anchor points against a predicted revenue with
//! a smoke-loosened tolerance. This module is the single implementation
//! of that loop — plus the `--trace` flag convention the telemetry layer
//! adds to every study bin.

use std::path::PathBuf;

use seleth_chain::Scenario;
use seleth_obs::TraceLog;
use seleth_sim::delay::{DelayConfig, DelayCounters, DelaySimulation};

/// Aggregated outcome of replaying one sweep point over several seeds.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-strategist-slot `(mean, std_err)` of RegularRate-normalized
    /// absolute revenue, in miner-slot order.
    pub slots: Vec<(f64, f64)>,
    /// Mean system-wide orphan rate across the runs.
    pub orphan_rate: f64,
    /// Mean fraction of the block budget actually mined (< 1 under
    /// crash churn: thinned slots produce no block).
    pub mined_fraction: f64,
    /// Deterministic engine counters summed across the runs (bit-identical
    /// in any grouping; see `seleth_sim::delay::DelayCounters`).
    pub counters: DelayCounters,
}

impl ReplayOutcome {
    /// Slot 0's mean revenue — the single-strategist reporting key.
    pub fn mean(&self) -> f64 {
        self.slots.first().map_or(0.0, |s| s.0)
    }

    /// Slot 0's standard error.
    pub fn std_err(&self) -> f64 {
        self.slots.first().map_or(0.0, |s| s.1)
    }
}

/// Replay `runs` independently seeded delay configurations and aggregate
/// the revenue-vs-ρ* reporting quantities. `make(k)` builds repetition
/// `k`'s full configuration (simulation seed, fault-plan seed, budgets),
/// so per-run reseeding conventions stay with the caller; `slots` is the
/// number of leading miner slots whose revenue is tracked.
///
/// # Panics
///
/// Panics if `runs` or `slots` is zero — a study point without
/// repetitions or strategists is a harness bug.
pub fn replay_revenue(runs: u64, slots: usize, make: impl Fn(u64) -> DelayConfig) -> ReplayOutcome {
    assert!(runs > 0, "a replay needs at least one run");
    assert!(slots > 0, "a replay tracks at least one miner slot");
    let mut revenues: Vec<Vec<f64>> = vec![Vec::with_capacity(runs as usize); slots];
    let mut orphans = 0.0;
    let mut mined = 0.0;
    let mut counters = DelayCounters::default();
    for k in 0..runs {
        let config = make(k);
        let blocks = config.blocks();
        let report = DelaySimulation::new(config).run();
        for (slot, samples) in revenues.iter_mut().enumerate() {
            // An artifact's ρ* is a RegularRate-normalized revenue;
            // measure the same quantity (identical to the plain revenue
            // share under the Bitcoin schedule).
            samples.push(report.absolute_revenue(slot, Scenario::RegularRate));
        }
        orphans += report.orphan_rate();
        mined += report.report.block_count() as f64 / blocks.max(1) as f64;
        counters.merge(&report.counters);
    }
    ReplayOutcome {
        slots: revenues
            .iter()
            .map(|samples| crate::mean_stderr(samples))
            .collect(),
        orphan_rate: orphans / runs as f64,
        mined_fraction: mined / runs as f64,
        counters,
    }
}

/// The anchor-gate tolerance every gated study point uses: three standard
/// errors or 1% absolute on full budgets, loosened to four standard
/// errors or 5% under `--smoke`'s tiny budgets.
pub fn gate_tolerance(smoke: bool, std_err: f64) -> f64 {
    if smoke {
        (4.0 * std_err).max(0.05)
    } else {
        (3.0 * std_err).max(0.01)
    }
}

/// Parse the study bins' `--trace <path>` flag from the process
/// arguments: when present, the bin records span events into a
/// [`TraceLog`] and dumps them as JSON lines at `path` on exit.
pub fn trace_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = a.strip_prefix("--trace=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Write a recorded trace as JSON lines if `--trace` asked for one,
/// printing the destination; quietly does nothing without the flag.
///
/// # Panics
///
/// Panics when the trace file cannot be written — study bins have no
/// recovery path and a loud failure beats a silently missing trace.
pub fn write_trace(log: &TraceLog, path: Option<&PathBuf>) {
    if let Some(path) = path {
        log.write_jsonl(path).expect("write trace file");
        println!("wrote trace ({} spans) to {}", log.len(), path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_a_hand_rolled_loop() {
        let make = |k: u64| {
            DelayConfig::builder()
                .shares(vec![0.4, 0.6])
                .delay(4.0)
                .blocks(4_000)
                .seed(100 + k)
                .build()
                .expect("valid config")
        };
        let out = replay_revenue(3, 1, make);
        let mut revenues = Vec::new();
        for k in 0..3 {
            let report = DelaySimulation::new(make(k)).run();
            revenues.push(report.absolute_revenue(0, Scenario::RegularRate));
        }
        let (mean, std_err) = crate::mean_stderr(&revenues);
        assert_eq!(out.slots, vec![(mean, std_err)]);
        assert!((0.0..=1.0).contains(&out.orphan_rate));
        assert!((out.mined_fraction - 1.0).abs() < 1e-12, "no churn");
        assert_eq!(out.counters.mining_events, 12_000);
    }

    #[test]
    fn tolerance_floors_match_the_gates() {
        assert_eq!(gate_tolerance(false, 0.0), 0.01);
        assert_eq!(gate_tolerance(true, 0.0), 0.05);
        assert_eq!(gate_tolerance(false, 0.02), 0.06);
        assert_eq!(gate_tolerance(true, 0.02), 0.08);
    }
}
