//! Table I: mining reward types in Ethereum vs Bitcoin.
//!
//! Structural rather than numerical — the table catalogs which reward types
//! each chain pays and why. Values are read off the implemented
//! [`RewardSchedule`]s so the table is backed by code, not prose.

use seleth_chain::RewardSchedule;

fn main() {
    let eth = RewardSchedule::ethereum();
    let btc = RewardSchedule::bitcoin();
    let mark = |b: bool| if b { "X" } else { "-" };

    println!("Table I: mining rewards in Ethereum and Bitcoin");
    println!(
        "{:<18} {:>8} {:>8}  Purpose",
        "Reward", "Ethereum", "Bitcoin"
    );
    println!(
        "{:<18} {:>8} {:>8}  compensate miners' mining cost",
        "Static reward",
        mark(eth.static_reward() > 0.0),
        mark(btc.static_reward() > 0.0)
    );
    println!(
        "{:<18} {:>8} {:>8}  reduce centralization trend of mining",
        "Uncle reward",
        mark((1..=6).any(|d| eth.uncle_reward(d) > 0.0)),
        mark((1..=6).any(|d| btc.uncle_reward(d) > 0.0))
    );
    println!(
        "{:<18} {:>8} {:>8}  encourage miners to reference uncles",
        "Nephew reward",
        mark((1..=6).any(|d| eth.nephew_reward(d) > 0.0)),
        mark((1..=6).any(|d| btc.nephew_reward(d) > 0.0))
    );
    println!(
        "{:<18} {:>8} {:>8}  execution; ignored by the analysis (dwarfed by block rewards)",
        "Transaction fee", "X", "X"
    );

    println!("\nEthereum uncle reward schedule Ku(d) (fractions of Ks, Eq. (7)):");
    for d in 1..=7u64 {
        println!(
            "  d = {d}: Ku = {:.4}  Kn = {:.4}",
            eth.uncle_reward(d),
            eth.nephew_reward(d)
        );
    }

    let rows: Vec<Vec<String>> = (1..=7u64)
        .map(|d| {
            vec![
                d.to_string(),
                format!("{:.6}", eth.uncle_reward(d)),
                format!("{:.6}", eth.nephew_reward(d)),
                format!("{:.6}", btc.uncle_reward(d)),
                format!("{:.6}", btc.nephew_reward(d)),
            ]
        })
        .collect();
    let path = seleth_bench::write_csv(
        "table1_reward_schedule.csv",
        &["distance", "eth_ku", "eth_kn", "btc_ku", "btc_kn"],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
