//! Optimal-under-delay: how far does ρ* degrade when the MDP's world
//! model breaks?
//!
//! The MDP derives its optimal withholding strategies — and their
//! predicted revenue ρ* — in a zero-delay two-player world. This
//! experiment replays the exported policy artifacts in the regime the MDP
//! cannot model: the propagation-delay simulator
//! (`seleth_sim::delay`), where honest miners keep extending a branch
//! until they *hear* the strategist's override, and where the honest hash
//! power is split across many concurrent pools (the paper's Fig. 6
//! landscape) instead of one aggregate opponent.
//!
//! Sweep: delay ∈ {0, 2, 6, 12} s (13 s mean block interval, so up to a
//! ~0.9 delay/interval ratio) × the saved Bitcoin/Ethereum artifacts
//! under `results/policies/` × two share splits — a duopoly
//! (strategist vs one honest pool, the MDP's own world) and the 2018
//! pool landscape (`seleth_sim::pools::shares_with_strategist`).
//!
//! The zero-delay duopoly limit is **gated** for Bitcoin-model
//! artifacts: measured revenue must reproduce the PR 2 playback numbers
//! (the artifact's recorded ρ*) within 3 standard errors or 1% absolute,
//! exit code 1 otherwise. Ethereum-model artifacts are informational,
//! exactly as in `optimal_sim` (their lowering projects away the
//! published-prefix distance).
//!
//! Output: `results/delay_study.json` — one series per (artifact, split)
//! with a revenue-vs-ρ* degradation curve over the delay sweep — plus a
//! human-readable table on stdout. Missing artifacts are solved on the
//! fly and saved, so the experiment is self-contained on a fresh
//! checkout.
//!
//! Environment knobs: `SELETH_RUNS` (6), `SELETH_BLOCKS` (40 000),
//! `SELETH_MDP_LEN` (30), `SELETH_RESULTS`, `SELETH_POLICIES`. Pass
//! `--smoke` for the CI gate: one Bitcoin artifact, the duopoly split,
//! two delay points, small budgets, loosened zero-delay tolerance.

use std::fmt::Write as _;

use seleth_bench::json_f64;
use seleth_bench::report::{gate_tolerance, replay_revenue, trace_arg, write_trace};
use seleth_chain::RewardSchedule;
use seleth_mdp::{PolicyTable, RewardModel};
use seleth_obs::{NoopRecorder, Recorder, Stopwatch, Telemetry, TelemetryShard, TraceLog};
use seleth_sim::delay::DelayConfig;
use seleth_sim::pools;

/// Mean block interval for every run (Ethereum-like, seconds).
const INTERVAL: f64 = 13.0;
const SEED: u64 = 31_337;

struct Artifact {
    /// File stem under the policies directory.
    name: &'static str,
    alpha: f64,
    gamma: f64,
    rewards: RewardModel,
    /// Whether the zero-delay duopoly point is gated against ρ*.
    gated: bool,
}

const ARTIFACTS: &[Artifact] = &[
    Artifact {
        name: "bitcoin_a020_g050",
        alpha: 0.20,
        gamma: 0.5,
        rewards: RewardModel::Bitcoin,
        gated: true,
    },
    Artifact {
        name: "bitcoin_a035_g000",
        alpha: 0.35,
        gamma: 0.0,
        rewards: RewardModel::Bitcoin,
        gated: true,
    },
    Artifact {
        name: "bitcoin_a040_g050",
        alpha: 0.40,
        gamma: 0.5,
        rewards: RewardModel::Bitcoin,
        gated: true,
    },
    Artifact {
        name: "ethereum_a030_g050",
        alpha: 0.30,
        gamma: 0.5,
        rewards: RewardModel::EthereumApprox,
        gated: false,
    },
];

/// Load a committed artifact, or solve and save it when absent (fresh
/// checkouts and scratch `SELETH_POLICIES` directories stay
/// self-contained).
fn load_or_solve(spec: &Artifact, max_len: u32) -> PolicyTable {
    seleth_bench::load_or_solve_policy(spec.name, spec.alpha, spec.gamma, spec.rewards, max_len)
}

struct Point {
    delay: f64,
    mean: f64,
    std_err: f64,
    orphan_rate: f64,
}

/// One evaluated sweep point: an artifact replayed at one delay under a
/// fixed share split, through the shared replay loop. The run's
/// deterministic engine counters are folded into the worker's telemetry
/// shard.
fn eval_point(
    table: &PolicyTable,
    spec: &Artifact,
    shares: &[f64],
    delay: f64,
    runs: u64,
    blocks: u64,
    shard: &mut TelemetryShard,
) -> Point {
    let schedule = match spec.rewards {
        RewardModel::Bitcoin => RewardSchedule::bitcoin(),
        RewardModel::EthereumApprox => RewardSchedule::ethereum(),
    };
    let config = DelayConfig::builder()
        .shares(shares.to_vec())
        .policy(0, table.clone())
        .tie_gamma(spec.gamma)
        .delay(delay)
        .interval(INTERVAL)
        .schedule(schedule)
        .blocks(blocks)
        .seed(SEED)
        .build()
        .expect("valid delay config");
    let outcome = replay_revenue(runs, 1, |k| config.with_seed(SEED + k));
    outcome.counters.record_into(shard);
    shard.add("study.runs", runs);
    Point {
        delay,
        mean: outcome.mean(),
        std_err: outcome.std_err(),
        orphan_rate: outcome.orphan_rate,
    }
}

/// One degradation curve: an artifact replayed over the delay sweep under
/// a fixed share split, sweep points in parallel through the shared
/// work-queue helper (the same scheduler the zoo tournament uses; results
/// are bit-identical for every thread count). Returns the points plus the
/// workers' telemetry shards.
fn sweep_series(
    table: &PolicyTable,
    spec: &Artifact,
    shares: &[f64],
    delays: &[f64],
    runs: u64,
    blocks: u64,
    recorder: &dyn Recorder,
) -> (Vec<Point>, Vec<TelemetryShard>) {
    seleth_bench::par_map_traced(delays, 0, recorder, |&delay, shard| {
        eval_point(table, spec, shares, delay, runs, blocks, shard)
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = if trace_path.is_some() {
        &trace
    } else {
        &NoopRecorder
    };
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let runs = seleth_bench::env_u64("SELETH_RUNS", if smoke { 3 } else { 6 });
    let blocks = seleth_bench::env_u64("SELETH_BLOCKS", if smoke { 10_000 } else { 40_000 });
    let max_len = u32::try_from(seleth_bench::env_u64("SELETH_MDP_LEN", 30)).unwrap_or(30);
    let delays: &[f64] = if smoke {
        &[0.0, 6.0]
    } else {
        &[0.0, 2.0, 6.0, 12.0]
    };
    let artifacts: &[Artifact] = if smoke { &ARTIFACTS[1..2] } else { ARTIFACTS };

    println!(
        "Optimal policies under propagation delay \
         ({runs} runs x {blocks} blocks per point, {INTERVAL}s interval{})\n",
        if smoke { ", SMOKE" } else { "" }
    );
    println!(
        "{:>20} {:>9} {:>9} {:>8} {:>10} {:>9} {:>10} {:>8}",
        "artifact", "split", "delay[s]", "rho_mdp", "us_delay", "std_err", "vs_rho", "orphans"
    );

    let mut failed = false;
    let mut series_json = Vec::new();
    for spec in artifacts {
        let load = Stopwatch::start();
        let table = load_or_solve(spec, max_len);
        telemetry.add_phase("load_policies", load.elapsed_ns());
        let rho = table.predicted_revenue();
        let splits: &[(&str, Vec<f64>)] = &[
            ("duopoly", vec![spec.alpha, 1.0 - spec.alpha]),
            ("pools2018", pools::shares_with_strategist(spec.alpha)),
        ];
        let splits = if smoke { &splits[..1] } else { splits };

        for (split_name, shares) in splits {
            let sweep = Stopwatch::start();
            let (points, shards) =
                sweep_series(&table, spec, shares, delays, runs, blocks, recorder);
            telemetry.add_phase("sweep", sweep.elapsed_ns());
            for shard in &shards {
                telemetry.fold_shard(shard);
            }
            for p in &points {
                println!(
                    "{:>20} {:>9} {:>9.1} {:>8.5} {:>10.5} {:>9.5} {:>+10.5} {:>8.4}",
                    spec.name,
                    split_name,
                    p.delay,
                    rho,
                    p.mean,
                    p.std_err,
                    p.mean - rho,
                    p.orphan_rate
                );
            }

            // The zero-delay duopoly limit must reproduce the PR 2
            // playback numbers for gated (Bitcoin-model) artifacts.
            if spec.gated && *split_name == "duopoly" {
                let zero = &points[0];
                assert!(zero.delay == 0.0, "sweep starts at the zero-delay limit");
                let diff = (zero.mean - rho).abs();
                let tolerance = gate_tolerance(smoke, zero.std_err);
                if diff > tolerance {
                    eprintln!(
                        "FAIL {}: zero-delay revenue {:.5} vs rho* {rho:.5} \
                         exceeds tolerance {tolerance:.5}",
                        spec.name, zero.mean
                    );
                    failed = true;
                }
            }

            let mut s = String::new();
            let _ = write!(
                s,
                "    {{\n      \"artifact\": \"{}\",\n      \"model\": \"{}\",\n      \
                 \"split\": \"{split_name}\",\n      \"alpha\": {},\n      \
                 \"gamma\": {},\n      \"rho_star\": {},\n      \"gated\": {},\n      \
                 \"shares\": [{}],\n      \"points\": [\n",
                spec.name,
                match spec.rewards {
                    RewardModel::Bitcoin => "bitcoin",
                    RewardModel::EthereumApprox => "ethereum_approx",
                },
                json_f64(spec.alpha),
                json_f64(spec.gamma),
                json_f64(rho),
                spec.gated && *split_name == "duopoly",
                shares
                    .iter()
                    .map(|v| json_f64(*v))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            let point_lines: Vec<String> = points
                .iter()
                .map(|p| {
                    format!(
                        "        {{\"delay\": {}, \"revenue\": {}, \"std_err\": {}, \
                         \"vs_rho_star\": {}, \"orphan_rate\": {}}}",
                        json_f64(p.delay),
                        json_f64(p.mean),
                        json_f64(p.std_err),
                        json_f64(p.mean - rho),
                        json_f64(p.orphan_rate)
                    )
                })
                .collect();
            s.push_str(&point_lines.join(",\n"));
            s.push_str("\n      ]\n    }");
            series_json.push(s);
        }
    }

    telemetry.wall_ns = wall.elapsed_ns();
    telemetry.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
    let json = format!(
        "{{\n  \"kind\": \"seleth-delay-study\",\n  \"format\": 1,\n  \
         \"interval\": {},\n  \"runs\": {runs},\n  \"blocks\": {blocks},\n  \
         \"series\": [\n{}\n  ],\n  \"telemetry\": {}\n}}\n",
        json_f64(INTERVAL),
        series_json.join(",\n"),
        telemetry.to_json(2)
    );
    let out_name = if smoke {
        "delay_study_smoke.json"
    } else {
        "delay_study.json"
    };
    let path = seleth_bench::write_text(out_name, &json);

    println!("\nReading: 'vs_rho' is measured strategist revenue share minus the");
    println!("artifact's predicted rho*. At delay 0 (duopoly) it is statistical noise —");
    println!("the gate below enforces that. As delay/interval grows, honest miners");
    println!("race the strategist's overrides and the optimal-under-zero-delay policy");
    println!("bleeds its edge; 'orphans' tracks the systemic cost.");
    println!("wrote {}", path.display());
    write_trace(&trace, trace_path.as_ref());

    if failed {
        eprintln!("FAIL: a gated zero-delay point disagrees with its PR 2 prediction");
        std::process::exit(1);
    }
    println!("all gated zero-delay points reproduce their PR 2 playback numbers");
}
