//! Extension experiment (paper Section VIII, future work): alternative
//! pool strategies under Ethereum rewards.
//!
//! Compares, by simulation, the absolute revenue of the paper's Algorithm 1
//! against an honest pool (baseline: `U_s = α` exactly) and Lead-Stubborn
//! mining (Nayak et al.) with uncle/nephew rewards in force. The question
//! the paper leaves open: once uncle rewards subsidize orphaned blocks,
//! does stubbornness pay off earlier than in Bitcoin?

use seleth_chain::Scenario;
use seleth_sim::{multi, PoolStrategy, SimConfig};

fn main() {
    let gamma = 0.5;
    let runs: u64 = std::env::var("SELETH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let blocks: u64 = std::env::var("SELETH_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let scenario = Scenario::RegularRate;

    println!("Strategy comparison (γ = {gamma}, Ethereum Ku(·), {runs} runs × {blocks} blocks)\n");
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>8} {:>10} {:>8} {:>12}",
        "alpha", "honest", "±", "selfish", "±", "stubborn", "±", "best"
    );

    let mut rows = Vec::new();
    for alpha in seleth_bench::sweep(0.05, 0.45, 0.05) {
        let mut us = Vec::new();
        // The honest pool is *simulated* like the others (its analytic
        // value is exactly α, which makes the column self-validating).
        for strategy in [
            PoolStrategy::Honest,
            PoolStrategy::Selfish,
            PoolStrategy::LeadStubborn,
        ] {
            let config = SimConfig::builder()
                .alpha(alpha)
                .gamma(gamma)
                .strategy(strategy)
                .blocks(blocks)
                .n_honest(999)
                .seed(90_000)
                .build()
                .expect("valid config");
            let reports = multi::run_many(&config, runs);
            us.push(multi::mean_absolute_pool(&reports, scenario));
        }
        let (honest, selfish, stubborn) = (us[0], us[1], us[2]);
        let best = if honest.mean >= selfish.mean.max(stubborn.mean) {
            "honest"
        } else if selfish.mean >= stubborn.mean {
            "selfish"
        } else {
            "stubborn"
        };
        println!(
            "{alpha:>6.2} {:>10.4} {:>8.4} {:>10.4} {:>8.4} {:>10.4} {:>8.4} {best:>12}",
            honest.mean,
            honest.std_dev,
            selfish.mean,
            selfish.std_dev,
            stubborn.mean,
            stubborn.std_dev
        );
        rows.push(seleth_bench::cells(&[
            alpha,
            honest.mean,
            honest.std_dev,
            selfish.mean,
            selfish.std_dev,
            stubborn.mean,
            stubborn.std_dev,
        ]));
    }

    let path = seleth_bench::write_csv(
        "strategies_comparison.csv",
        &[
            "alpha",
            "honest_us",
            "honest_std",
            "selfish_us",
            "selfish_std",
            "stubborn_us",
            "stubborn_std",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
