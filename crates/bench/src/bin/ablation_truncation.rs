//! Ablation (DESIGN.md #1): truncation level vs stationary accuracy.
//!
//! The paper truncates the infinite state space at `i, j < 200` and notes
//! the approximation "turns out to be accurate when α ≤ 0.45". This
//! ablation quantifies that claim: the error in `π₀₀` against the exact
//! closed form, per truncation level, across the (α, γ) plane.
//!
//! Finding: at γ = 0.5 (the paper's operating point) N = 150 is already
//! exact to 1e-12, but in the slow-mixing corner γ → 0, α → 0.5 the lead
//! performs a nearly unbiased random walk, excursions lengthen, and even
//! N = 400 leaves ~1e-3 error — worth knowing before trusting γ = 0
//! curves at high α.

use seleth_chain::RewardSchedule;
use seleth_core::{stationary, ModelParams, State};

fn main() {
    println!("Truncation ablation: |pi00(numeric, N) - pi00(closed form)|\n");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "alpha", "gamma", "N=100", "N=150", "N=250", "N=400"
    );
    let mut rows = Vec::new();
    for &(alpha, gamma) in &[
        (0.30, 0.0),
        (0.30, 0.5),
        (0.40, 0.0),
        (0.40, 0.5),
        (0.45, 0.0),
        (0.45, 0.5),
        (0.465, 0.0),
    ] {
        let mut errors = Vec::new();
        for &n in &[100u32, 150, 250, 400] {
            let p = ModelParams::with_truncation(alpha, gamma, RewardSchedule::ethereum(), n)
                .expect("valid");
            let d = stationary::solve(&p).expect("solve");
            errors.push((d.prob(&State::new(0, 0)) - stationary::pi00(alpha)).abs());
        }
        println!(
            "{alpha:>6.3} {gamma:>6.2} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            errors[0], errors[1], errors[2], errors[3]
        );
        rows.push(seleth_bench::cells(&[
            alpha, gamma, errors[0], errors[1], errors[2], errors[3],
        ]));
    }
    let path = seleth_bench::write_csv(
        "ablation_truncation.csv",
        &[
            "alpha", "gamma", "err_n100", "err_n150", "err_n250", "err_n400",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
