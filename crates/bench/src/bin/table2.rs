//! Table II: distribution of honest miners' uncle blocks over referencing
//! distances (γ = 0.5, α ∈ {0.3, 0.45}), analysis vs simulation.
//!
//! Paper values — α = 0.3: [.527 .295 .111 .043 .017 .007], mean 1.75;
//! α = 0.45: [.284 .249 .171 .125 .096 .075], mean 2.72.

use seleth_chain::RewardSchedule;
use seleth_core::{Analysis, ModelParams};
use seleth_sim::{multi, SimConfig};

fn main() {
    let gamma = 0.5;
    let runs: u64 = std::env::var("SELETH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let blocks: u64 = std::env::var("SELETH_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    println!("Table II: honest uncle reference distances (γ = {gamma})\n");
    let mut rows = Vec::new();
    for &alpha in &[0.3, 0.45] {
        let params = ModelParams::new(alpha, gamma, RewardSchedule::ethereum()).expect("valid");
        let analysis = Analysis::new(&params).expect("solve");
        let theory = analysis.honest_uncle_distances();

        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(gamma)
            .blocks(blocks)
            .n_honest(999)
            .seed(22_000)
            .build()
            .expect("valid config");
        let reports = multi::run_many(&config, runs);
        let sim = multi::mean_honest_distance_distribution(&reports);
        let sim_expect = multi::summarize(&reports, |r| r.honest_distance_expectation());

        println!("α = {alpha}");
        println!("{:>10} {:>10} {:>10}", "distance", "theory", "simulation");
        for d in 1..=6u64 {
            let s = sim.get(d as usize - 1).copied().unwrap_or(0.0);
            println!("{d:>10} {:>10.3} {s:>10.3}", theory.prob(d));
            rows.push(seleth_bench::cells(&[alpha, d as f64, theory.prob(d), s]));
        }
        println!(
            "{:>10} {:>10.3} {:>10.3} (±{:.3})\n",
            "mean",
            theory.expectation(),
            sim_expect.mean,
            sim_expect.std_dev
        );
    }
    let path = seleth_bench::write_csv(
        "table2_uncle_distances.csv",
        &["alpha", "distance", "theory", "simulation"],
        &rows,
    );
    println!("wrote {}", path.display());
}
