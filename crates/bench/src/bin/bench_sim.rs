//! Simulator performance tracker: times the Monte-Carlo engine and writes
//! `BENCH_sim.json` into the results directory — the sim-side counterpart
//! of `BENCH_solver.json`, recording the throughput trajectory PR over PR.
//!
//! Measured (wall-clock, best of `SELETH_BENCH_REPS` repetitions,
//! default 3):
//!
//! - `single_run_blocks_per_sec`: one selfish-mining run of
//!   `SELETH_BENCH_BLOCKS` blocks (default 200 000) on one engine —
//!   the per-worker hot-path rate;
//! - `policy_run_blocks_per_sec`: the same budget replaying an exported
//!   optimal-policy table, pricing the playback executor against the
//!   hand-coded strategy;
//! - `policy4_run_blocks_per_sec`: the same policy broadcast over the
//!   `match_d` axis as a four-axis table — identical decisions, identical
//!   dynamics — isolating the strided 4-D lookup against the classic
//!   3-D fast path. **Gated**: the four-axis rate must stay within 10%
//!   of the classic rate (exit code 1 otherwise);
//! - `noop_overhead_ratio`: a fresh-engine single run through the
//!   telemetry-instrumented `run_many_recorded` path (no-op recorder)
//!   against the same run without instrumentation, interleaved per
//!   repetition so host drift cancels and gated on the best *paired*
//!   per-repetition ratio. **Gated**: the instrumented path must keep
//!   ≥ 95% of the plain throughput (exit code 1 otherwise) — the
//!   "no-op compiles to nothing" contract, bounded below by same-code
//!   host jitter;
//! - `recorder_disabled_ratio`: the same run with a capacity-0 (disabled)
//!   flight recorder attached, measured and gated the same paired way.
//!   **Gated**: ≥ 95% of the plain throughput — the disabled recorder is
//!   one branch per would-be event;
//! - `run_many` scaling: `SELETH_BENCH_RUNS` runs (default 16) of
//!   `blocks / 4` blocks each across worker counts 1/2/4/8, with the
//!   parallel speedup relative to one worker and, per worker count, each
//!   worker's tasks claimed, busy fraction and queue wait
//!   (`run_many_tN_workers`).
//!
//! The JSON carries the shared `"host"` fingerprint block and ends with a
//! `"telemetry"` block (phases, merged worker shards, deterministic
//! scheduler counters); `--trace <path>` dumps per-run span events as
//! JSON lines. Every run also appends one snapshot row (git sha, host,
//! headline metrics) to `BENCH_history.jsonl` — the ledger behind
//! `perf_report --trend`.
//!
//! Usage: `cargo run --release -p seleth-bench --bin bench_sim`.

use std::fmt::Write as _;
use std::time::Instant;

use seleth_bench::report::{trace_arg, write_trace};
use seleth_mdp::{Fork, MdpConfig, PolicyTable, RewardModel, StateSpace};
use seleth_obs::{
    EventLog, NoopRecorder, Recorder, Stopwatch, Telemetry, TelemetryShard, TraceLog,
};
use seleth_sim::{multi, SimConfig, Simulation};

/// One-line JSON array of per-worker stats for a `run_many` measurement
/// lasting `wall_s` seconds.
fn workers_json(shards: &[TelemetryShard], wall_s: f64) -> String {
    let rows: Vec<String> = shards
        .iter()
        .map(|s| {
            let busy_fraction = if wall_s > 0.0 {
                s.busy_ns as f64 / 1.0e9 / wall_s
            } else {
                0.0
            };
            format!(
                "{{\"worker\": {}, \"tasks\": {}, \"busy_ms\": {:.3}, \
                 \"queue_wait_ms\": {:.3}, \"busy_fraction\": {busy_fraction:.4}}}",
                s.worker,
                s.tasks,
                s.busy_ns as f64 / 1.0e6,
                s.queue_wait_ns as f64 / 1.0e6
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

// Keeps the value from the fastest repetition, so per-worker timing in
// the returned value lines up with the reported wall time.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
            out = Some(value);
        }
    }
    (best, out.expect("at least one repetition"))
}

fn main() {
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = if trace_path.is_some() {
        &trace
    } else {
        &NoopRecorder
    };
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let reps = usize::try_from(seleth_bench::env_u64("SELETH_BENCH_REPS", 3)).unwrap_or(3);
    let blocks = seleth_bench::env_u64("SELETH_BENCH_BLOCKS", 200_000);
    let runs = seleth_bench::env_u64("SELETH_BENCH_RUNS", 16);

    let base = SimConfig::builder()
        .alpha(0.35)
        .gamma(0.5)
        .n_honest(999)
        .blocks(blocks)
        .seed(4242)
        .build()
        .expect("valid config");

    // --- Single-run throughput (engine reuse, like a run_many worker) ---
    let mut engine = Simulation::new(base.clone());
    let (single_s, _) = best_of(reps, || {
        engine.reset(base.clone());
        engine.run_in_place().pool.total()
    });
    let single_rate = blocks as f64 / single_s;
    telemetry.add_phase("single_run", (single_s * 1e9) as u64);
    println!(
        "single_run          {blocks} blocks: {:.1} ms ({:.2} Mblocks/s)",
        single_s * 1e3,
        single_rate / 1e6
    );

    // --- Overhead ratios on the same budget ---
    // Three variants of the identical workload, *interleaved* per
    // repetition so slow drift of the host (thermal, noisy neighbors)
    // hits all sides equally — the committed `noop_overhead_ratio` had
    // been jittering past its own gate when the two sides were timed in
    // separate blocks. Each repetition yields a *paired* ratio (plain
    // time over variant time from the same pass), and the gate judges
    // the best pair: on a noisy shared host even two identical plain
    // runs disagree by several percent per pair, so "at least one pair
    // shows the variant at full speed" is the strongest claim the
    // hardware can certify. A fresh engine per repetition on every side,
    // so the only difference is the instrumentation under test: the
    // `run_many_recorded` scheduler with a no-op recorder, and a
    // *disabled* flight recorder attached to the plain engine (capacity
    // 0 — the single-branch path every production run keeps).
    let overhead_reps = reps.max(10);
    let mut noop_ratio = 0.0f64;
    let mut recorder_disabled_ratio = 0.0f64;
    for _ in 0..overhead_reps {
        let start = Instant::now();
        let mut sim = Simulation::new(base.clone());
        let plain_total = sim.run_in_place().pool.total();
        let plain_s = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let noop_reports = multi::run_many_recorded(&base, 1, 1, &NoopRecorder).0;
        noop_ratio = noop_ratio.max(plain_s / start.elapsed().as_secs_f64());
        assert_eq!(
            noop_reports[0].pool.total(),
            plain_total,
            "instrumentation must not change simulation results"
        );

        let start = Instant::now();
        let mut sim = Simulation::new(base.clone());
        sim.attach_events(std::sync::Arc::new(EventLog::disabled()));
        let disabled_total = sim.run_in_place().pool.total();
        recorder_disabled_ratio =
            recorder_disabled_ratio.max(plain_s / start.elapsed().as_secs_f64());
        assert_eq!(
            disabled_total, plain_total,
            "a disabled flight recorder must not change simulation results"
        );
    }
    telemetry.set_gauge("bench.noop_overhead_ratio", noop_ratio);
    println!(
        "noop_overhead       instrumented at {noop_ratio:.3}x of plain throughput \
         (best pair, gate: >= 0.95)"
    );
    telemetry.set_gauge("bench.recorder_disabled_ratio", recorder_disabled_ratio);
    println!(
        "recorder_disabled   disabled flight recorder at {recorder_disabled_ratio:.3}x \
         of plain throughput (best pair, gate: >= 0.95)"
    );

    // --- Policy-playback throughput on the same block budget ---
    let mdp = MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).with_max_len(30);
    let table = PolicyTable::from_solution(&mdp, &mdp.solve().expect("mdp solve"));
    // The same policy broadcast over the match_d axis: a four-axis table
    // prescribing identical actions on every distance slice, so the two
    // playback runs make identical decisions (checked below) and any rate
    // difference is pure lookup cost.
    let wide_table = PolicyTable::from_fn(
        table.alpha(),
        table.gamma(),
        table.rewards(),
        table.scenario(),
        StateSpace::ethereum(table.max_len()),
        table.predicted_revenue(),
        |a, h, fork: Fork, _| table.action(a, h, fork, 0).expect("in region"),
    );
    let policy_config = SimConfig::builder()
        .alpha(0.35)
        .gamma(0.5)
        .n_honest(999)
        .blocks(blocks)
        .seed(4242)
        .policy(table)
        .build()
        .expect("valid config");
    let mut engine = Simulation::new(policy_config.clone());
    let (policy_s, policy_total) = best_of(reps, || {
        engine.reset(policy_config.clone());
        engine.run_in_place().pool.total()
    });
    let policy_rate = blocks as f64 / policy_s;
    telemetry.add_phase("policy_run", (policy_s * 1e9) as u64);
    println!(
        "policy_run          {blocks} blocks: {:.1} ms ({:.2} Mblocks/s, {:.2}x of selfish)",
        policy_s * 1e3,
        policy_rate / 1e6,
        policy_rate / single_rate
    );

    // --- Four-axis (match_d) playback on the identical workload ---
    let policy4_config = SimConfig::builder()
        .alpha(0.35)
        .gamma(0.5)
        .n_honest(999)
        .blocks(blocks)
        .seed(4242)
        .policy(wide_table)
        .build()
        .expect("valid config");
    let mut engine = Simulation::new(policy4_config.clone());
    let (policy4_s, policy4_total) = best_of(reps, || {
        engine.reset(policy4_config.clone());
        engine.run_in_place().pool.total()
    });
    assert_eq!(
        policy_total, policy4_total,
        "broadcast four-axis table must replay identically"
    );
    let policy4_rate = blocks as f64 / policy4_s;
    let policy4_ratio = policy4_rate / policy_rate;
    telemetry.add_phase("policy4_run", (policy4_s * 1e9) as u64);
    println!(
        "policy4_run         {blocks} blocks: {:.1} ms ({:.2} Mblocks/s, {:.2}x of 3-axis)",
        policy4_s * 1e3,
        policy4_rate / 1e6,
        policy4_ratio
    );

    // --- run_many scaling across worker counts ---
    let many_blocks = (blocks / 4).max(1);
    let many_config = SimConfig::builder()
        .alpha(0.35)
        .gamma(0.5)
        .n_honest(999)
        .blocks(many_blocks)
        .seed(999)
        .build()
        .expect("valid config");
    let thread_counts = [1usize, 2, 4, 8];
    let many = Stopwatch::start();
    let mut scaling = Vec::new();
    for &threads in &thread_counts {
        let (s, (reports, shards)) = best_of(reps, || {
            multi::run_many_recorded(&many_config, runs, threads, recorder)
        });
        assert_eq!(reports.len(), usize::try_from(runs).unwrap_or(usize::MAX));
        let rate = (many_blocks * runs) as f64 / s;
        println!(
            "run_many            {runs} x {many_blocks} blocks, {threads} threads: \
             {:.1} ms ({:.2} Mblocks/s)",
            s * 1e3,
            rate / 1e6
        );
        scaling.push((threads, s, shards));
    }
    telemetry.add_phase("run_many", many.elapsed_ns());
    if let Some((_, _, shards)) = scaling.last() {
        for shard in shards {
            telemetry.fold_shard(shard);
        }
    }
    let speedup_max = scaling[0].1
        / scaling
            .iter()
            .map(|(_, s, _)| *s)
            .fold(f64::INFINITY, f64::min);
    // The speedup number only measures the scheduler when the host can
    // actually run workers concurrently. On a single-core host (the
    // current CI box) every worker time-slices one CPU, ≈1.0x is the
    // *expected* healthy reading, and the field must not be misread as a
    // scheduler regression — so it is annotated with a validity flag tied
    // to the recorded `host.available_parallelism` gauge.
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup_valid = host_parallelism > 1;
    if speedup_valid {
        println!("run_many_speedup    best {speedup_max:.2}x over 1 thread");
    } else {
        println!(
            "run_many_speedup    best {speedup_max:.2}x over 1 thread \
             (NOT meaningful: host has 1 CPU; workers time-slice it)"
        );
    }

    // --- Emit BENCH_sim.json ---
    let mut json = String::from("{\n");
    let mut field = |key: &str, value: String| {
        let _ = writeln!(json, "  \"{key}\": {value},");
    };
    field("blocks", blocks.to_string());
    field("single_run_ms", format!("{:.3}", single_s * 1e3));
    field("single_run_blocks_per_sec", format!("{single_rate:.0}"));
    field("policy_run_ms", format!("{:.3}", policy_s * 1e3));
    field("policy_run_blocks_per_sec", format!("{policy_rate:.0}"));
    field("policy4_run_ms", format!("{:.3}", policy4_s * 1e3));
    field("policy4_run_blocks_per_sec", format!("{policy4_rate:.0}"));
    field("policy4_vs_policy3", format!("{policy4_ratio:.3}"));
    field("noop_overhead_ratio", format!("{noop_ratio:.4}"));
    field(
        "recorder_disabled_ratio",
        format!("{recorder_disabled_ratio:.4}"),
    );
    field("host", seleth_bench::host_fingerprint_json());
    field("many_runs", runs.to_string());
    field("many_blocks_per_run", many_blocks.to_string());
    for (threads, s, shards) in &scaling {
        field(
            &format!("run_many_t{threads}_ms"),
            format!("{:.3}", s * 1e3),
        );
        field(
            &format!("run_many_t{threads}_workers"),
            workers_json(shards, *s),
        );
    }
    field("run_many_speedup_max", format!("{speedup_max:.3}"));
    field("run_many_speedup_valid", speedup_valid.to_string());
    field("reps", reps.to_string());
    telemetry.wall_ns = wall.elapsed_ns();
    telemetry.threads = host_parallelism;
    telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
    // Trailing field without comma.
    let _ = write!(json, "  \"telemetry\": {}\n}}\n", telemetry.to_json(2));

    let dir = seleth_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join("BENCH_sim.json");
    std::fs::write(&path, json).expect("write BENCH_sim.json");
    println!("wrote {}", path.display());
    let ledger = seleth_bench::append_history_row(
        "bench_sim",
        &[
            ("single_run_blocks_per_sec", single_rate),
            ("policy_run_blocks_per_sec", policy_rate),
            ("policy4_run_blocks_per_sec", policy4_rate),
            ("noop_overhead_ratio", noop_ratio),
            ("recorder_disabled_ratio", recorder_disabled_ratio),
        ],
    );
    println!("appended history row to {}", ledger.display());
    write_trace(&trace, trace_path.as_ref());

    // The four-axis lookup is the only new cost on the playback hot path;
    // hold it to within 10% of the classic fast path.
    if policy4_ratio < 0.9 {
        eprintln!(
            "FAIL: four-axis playback at {policy4_ratio:.3}x of the 3-axis rate \
             (gate: >= 0.9)"
        );
        std::process::exit(1);
    }
    // The no-op recorder must keep its "compiles to nothing" promise on the
    // single-run hot path. 0.95, not 1.0: the paired measurement bounds
    // the claim by the host's own same-code run-to-run jitter.
    if noop_ratio < 0.95 {
        eprintln!(
            "FAIL: no-op instrumentation at {noop_ratio:.3}x of the plain rate \
             (gate: >= 0.95)"
        );
        std::process::exit(1);
    }
    // A *disabled* flight recorder is one branch per would-be event; hold
    // it to ≥ 95% of the plain rate so attaching-but-not-enabling a log
    // stays free.
    if recorder_disabled_ratio < 0.95 {
        eprintln!(
            "FAIL: disabled flight recorder at {recorder_disabled_ratio:.3}x of the \
             plain rate (gate: >= 0.95)"
        );
        std::process::exit(1);
    }
}
