//! Solver performance tracker: times the hot numeric kernels and writes
//! `BENCH_solver.json` into the results directory so the perf trajectory
//! is recorded PR over PR.
//!
//! Measured (all wall-clock, best of `SELETH_BENCH_REPS` repetitions,
//! default 3):
//!
//! - `csr_spmv_ns`: one `π ← π P` product on the paper's chain at
//!   truncation 200 (the stationary solvers' inner loop);
//! - `stationary_solve_ms`: a full Gauss–Seidel stationary solve at
//!   truncation 200;
//! - `mdp_solve_ms`: the single-expansion, warm-started Dinkelbach solve
//!   at the default truncation of [`MdpConfig::new`];
//! - `mdp_solve_reexpand_ms`: the legacy behaviour (re-expansion and a
//!   cold-started value function per ρ candidate) on the same MDP;
//! - `mdp_expansion_reuse_speedup`: the ratio of the two — the
//!   acceptance gate for the single-expansion layout is ≥ 2×;
//! - `mdp_scaling`: cold solve times at truncation 60 / 120 / 200 (one
//!   repetition each) — the tiled-sweep scaling record behind the
//!   truncation-200 delay-aware artifacts.
//!
//! The JSON carries the shared `"host"` fingerprint block (identical to
//! `BENCH_sim.json`'s, including `available_parallelism`) and ends with a
//! `"telemetry"` block carrying the Dinkelbach solver's instrumentation
//! (bisection count, sweeps per ρ iterate, warm-start hit rate, final
//! residual); `--trace <path>` dumps one span per benchmark section as
//! JSON lines. Every run also appends one snapshot row (git sha, host,
//! headline metrics) to `BENCH_history.jsonl` — the ledger behind
//! `perf_report --trend`.
//!
//! Usage: `cargo run --release -p seleth-bench --bin bench_solver`.
//! Set `SELETH_MDP_LEN` to override the MDP truncation (the default of 60
//! takes a few minutes of total runtime; CI smoke runs use e.g. 16).

use std::fmt::Write as _;
use std::time::Instant;

use seleth_bench::report::{trace_arg, write_trace};
use seleth_chain::RewardSchedule;
use seleth_core::{stationary, ModelParams};
use seleth_mdp::{MdpConfig, RewardModel};
use seleth_obs::{NoopRecorder, Recorder, Stopwatch, Telemetry, TraceLog};

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("at least one repetition"))
}

fn main() {
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = if trace_path.is_some() {
        &trace
    } else {
        &NoopRecorder
    };
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let reps: usize = std::env::var("SELETH_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mdp_len: u32 = std::env::var("SELETH_MDP_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).max_len);

    // --- CSR SpMV on the paper's chain at truncation 200 ---
    let params = ModelParams::with_truncation(0.4, 0.5, RewardSchedule::ethereum(), 200)
        .expect("valid params");
    let dtmc = seleth_core::chain_model::build_dtmc(&params);
    let matrix = dtmc.matrix();
    let n = matrix.n_rows();
    let pi = vec![1.0 / n as f64; n];
    let mut out = vec![0.0; n];
    // Batch to get above timer resolution.
    let spmv_batch = 1_000;
    let span_start = recorder.now_ns();
    let (spmv_batch_s, _) = best_of(reps, || {
        for _ in 0..spmv_batch {
            matrix.left_mul_vec(&pi, &mut out);
        }
        out[0]
    });
    if recorder.enabled() {
        recorder.span("csr_spmv", 0, span_start, recorder.now_ns());
    }
    telemetry.add_phase("csr_spmv", (spmv_batch_s * 1e9) as u64);
    let csr_spmv_ns = spmv_batch_s / spmv_batch as f64 * 1e9;
    println!(
        "csr_spmv            {n} states, {} nnz: {csr_spmv_ns:.0} ns/product",
        matrix.nnz()
    );

    // --- Full stationary solve ---
    let span_start = recorder.now_ns();
    let (stationary_s, _) = best_of(reps, || stationary::solve(&params).expect("solve"));
    if recorder.enabled() {
        recorder.span("stationary_solve", 0, span_start, recorder.now_ns());
    }
    telemetry.add_phase("stationary_solve", (stationary_s * 1e9) as u64);
    println!(
        "stationary_solve    truncation 200: {:.2} ms",
        stationary_s * 1e3
    );

    // --- MDP: single expansion + warm start vs legacy re-expansion ---
    let config = MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).with_max_len(mdp_len);
    let span_start = recorder.now_ns();
    let (fast_s, fast) = best_of(reps, || config.solve().expect("mdp solve"));
    if recorder.enabled() {
        recorder.span("mdp_solve", 0, span_start, recorder.now_ns());
    }
    telemetry.add_phase("mdp_solve", (fast_s * 1e9) as u64);
    let stats = &fast.stats;
    telemetry.add("solver.bisections", stats.bisection_steps as u64);
    telemetry.add(
        "solver.sweeps",
        stats.sweeps_per_iterate.iter().map(|&s| s as u64).sum(),
    );
    telemetry.add("solver.warm_start_hits", stats.warm_start_hits as u64);
    for &sweeps in &stats.sweeps_per_iterate {
        telemetry.observe("solver.sweeps_per_iterate", sweeps as u64);
    }
    telemetry.set_gauge("solver.warm_start_hit_rate", stats.warm_start_hit_rate());
    telemetry.set_gauge(
        "solver.final_residual",
        stats.residuals.last().copied().unwrap_or(0.0),
    );
    let span_start = recorder.now_ns();
    let (slow_s, slow) = best_of(reps, || config.solve_reexpanding().expect("mdp solve"));
    if recorder.enabled() {
        recorder.span("mdp_solve_reexpand", 0, span_start, recorder.now_ns());
    }
    telemetry.add_phase("mdp_solve_reexpand", (slow_s * 1e9) as u64);
    assert!(
        (fast.revenue - slow.revenue).abs() < 1e-9,
        "solvers disagree: {} vs {}",
        fast.revenue,
        slow.revenue
    );
    let speedup = slow_s / fast_s;
    println!(
        "mdp_solve           len {mdp_len}: {:.2} ms single-expansion ({} sweeps) \
         vs {:.2} ms re-expanding ({} sweeps) → {speedup:.2}x",
        fast_s * 1e3,
        fast.iterations,
        slow_s * 1e3,
        slow.iterations
    );

    // --- MDP truncation scaling: the tiled Bellman layout at 200+ ---
    // One cold solve per truncation (single repetition: the large solves
    // dominate the bin's runtime), recording the wall-clock growth of the
    // flat layout up to the delay-study truncation of 200.
    let mut scaling_rows = Vec::new();
    for &truncation in &[60u32, 120, 200] {
        let config = MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).with_max_len(truncation);
        let span_start = recorder.now_ns();
        let (solve_s, solution) = best_of(1, || config.solve().expect("mdp solve"));
        if recorder.enabled() {
            recorder.span("mdp_scaling", 0, span_start, recorder.now_ns());
        }
        telemetry.add_phase("mdp_scaling", (solve_s * 1e9) as u64);
        println!(
            "mdp_scaling         len {truncation}: {:.1} ms ({} sweeps, ρ* {:.5})",
            solve_s * 1e3,
            solution.iterations,
            solution.revenue
        );
        scaling_rows.push(format!(
            "{{\"truncation\": {truncation}, \"solve_ms\": {:.3}, \"sweeps\": {}, \
             \"revenue\": {:.9}}}",
            solve_s * 1e3,
            solution.iterations,
            solution.revenue
        ));
    }

    // --- Emit BENCH_solver.json ---
    let mut json = String::from("{\n");
    let mut field = |key: &str, value: String| {
        let _ = writeln!(json, "  \"{key}\": {value},");
    };
    field("truncation", "200".into());
    field("csr_states", n.to_string());
    field("csr_nnz", matrix.nnz().to_string());
    field("csr_spmv_ns", format!("{csr_spmv_ns:.1}"));
    field("stationary_solve_ms", format!("{:.3}", stationary_s * 1e3));
    field("mdp_max_len", mdp_len.to_string());
    field("mdp_solve_ms", format!("{:.3}", fast_s * 1e3));
    field("mdp_solve_sweeps", fast.iterations.to_string());
    field("mdp_solve_reexpand_ms", format!("{:.3}", slow_s * 1e3));
    field("mdp_solve_reexpand_sweeps", slow.iterations.to_string());
    field("mdp_expansion_reuse_speedup", format!("{speedup:.3}"));
    field(
        "mdp_scaling",
        format!("[\n    {}\n  ]", scaling_rows.join(",\n    ")),
    );
    field("reps", reps.to_string());
    field("revenue_check", format!("{:.9}", fast.revenue));
    field("host", seleth_bench::host_fingerprint_json());
    telemetry.wall_ns = wall.elapsed_ns();
    telemetry.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
    // Trailing field without comma.
    let _ = write!(json, "  \"telemetry\": {}\n}}\n", telemetry.to_json(2));

    let dir = seleth_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join("BENCH_solver.json");
    std::fs::write(&path, json).expect("write BENCH_solver.json");
    println!("wrote {}", path.display());
    let ledger = seleth_bench::append_history_row(
        "bench_solver",
        &[
            ("csr_spmv_ns", csr_spmv_ns),
            ("stationary_solve_ms", stationary_s * 1e3),
            ("mdp_solve_ms", fast_s * 1e3),
            ("mdp_expansion_reuse_speedup", speedup),
        ],
    );
    println!("appended history row to {}", ledger.display());
    write_trace(&trace, trace_path.as_ref());

    if speedup < 2.0 {
        eprintln!("WARNING: single-expansion speedup {speedup:.2}x below the 2x acceptance gate");
        std::process::exit(1);
    }
}
