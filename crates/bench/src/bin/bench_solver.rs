//! Solver performance tracker: times the hot numeric kernels and writes
//! `BENCH_solver.json` into the results directory so the perf trajectory
//! is recorded PR over PR.
//!
//! Measured (all wall-clock, best of `SELETH_BENCH_REPS` repetitions,
//! default 3):
//!
//! - `csr_spmv_ns`: one `π ← π P` product on the paper's chain at
//!   truncation 200 (the stationary solvers' inner loop);
//! - `stationary_solve_ms`: a full Gauss–Seidel stationary solve at
//!   truncation 200;
//! - `mdp_solve_ms`: the single-expansion, warm-started Dinkelbach solve
//!   at the default truncation of [`MdpConfig::new`];
//! - `mdp_solve_reexpand_ms`: the legacy behaviour (re-expansion and a
//!   cold-started value function per ρ candidate) on the same MDP;
//! - `mdp_expansion_reuse_speedup`: the ratio of the two — the
//!   acceptance gate for the single-expansion layout is ≥ 2×.
//!
//! Usage: `cargo run --release -p seleth-bench --bin bench_solver`.
//! Set `SELETH_MDP_LEN` to override the MDP truncation (the default of 60
//! takes a few minutes of total runtime; CI smoke runs use e.g. 16).

use std::fmt::Write as _;
use std::time::Instant;

use seleth_chain::RewardSchedule;
use seleth_core::{stationary, ModelParams};
use seleth_mdp::{MdpConfig, RewardModel};

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("at least one repetition"))
}

fn main() {
    let reps: usize = std::env::var("SELETH_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mdp_len: u32 = std::env::var("SELETH_MDP_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).max_len);

    // --- CSR SpMV on the paper's chain at truncation 200 ---
    let params = ModelParams::with_truncation(0.4, 0.5, RewardSchedule::ethereum(), 200)
        .expect("valid params");
    let dtmc = seleth_core::chain_model::build_dtmc(&params);
    let matrix = dtmc.matrix();
    let n = matrix.n_rows();
    let pi = vec![1.0 / n as f64; n];
    let mut out = vec![0.0; n];
    // Batch to get above timer resolution.
    let spmv_batch = 1_000;
    let (spmv_batch_s, _) = best_of(reps, || {
        for _ in 0..spmv_batch {
            matrix.left_mul_vec(&pi, &mut out);
        }
        out[0]
    });
    let csr_spmv_ns = spmv_batch_s / spmv_batch as f64 * 1e9;
    println!(
        "csr_spmv            {n} states, {} nnz: {csr_spmv_ns:.0} ns/product",
        matrix.nnz()
    );

    // --- Full stationary solve ---
    let (stationary_s, _) = best_of(reps, || stationary::solve(&params).expect("solve"));
    println!(
        "stationary_solve    truncation 200: {:.2} ms",
        stationary_s * 1e3
    );

    // --- MDP: single expansion + warm start vs legacy re-expansion ---
    let config = MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).with_max_len(mdp_len);
    let (fast_s, fast) = best_of(reps, || config.solve().expect("mdp solve"));
    let (slow_s, slow) = best_of(reps, || config.solve_reexpanding().expect("mdp solve"));
    assert!(
        (fast.revenue - slow.revenue).abs() < 1e-9,
        "solvers disagree: {} vs {}",
        fast.revenue,
        slow.revenue
    );
    let speedup = slow_s / fast_s;
    println!(
        "mdp_solve           len {mdp_len}: {:.2} ms single-expansion ({} sweeps) \
         vs {:.2} ms re-expanding ({} sweeps) → {speedup:.2}x",
        fast_s * 1e3,
        fast.iterations,
        slow_s * 1e3,
        slow.iterations
    );

    // --- Emit BENCH_solver.json ---
    let mut json = String::from("{\n");
    let mut field = |key: &str, value: String| {
        let _ = writeln!(json, "  \"{key}\": {value},");
    };
    field("truncation", "200".into());
    field("csr_states", n.to_string());
    field("csr_nnz", matrix.nnz().to_string());
    field("csr_spmv_ns", format!("{csr_spmv_ns:.1}"));
    field("stationary_solve_ms", format!("{:.3}", stationary_s * 1e3));
    field("mdp_max_len", mdp_len.to_string());
    field("mdp_solve_ms", format!("{:.3}", fast_s * 1e3));
    field("mdp_solve_sweeps", fast.iterations.to_string());
    field("mdp_solve_reexpand_ms", format!("{:.3}", slow_s * 1e3));
    field("mdp_solve_reexpand_sweeps", slow.iterations.to_string());
    field("mdp_expansion_reuse_speedup", format!("{speedup:.3}"));
    field("reps", reps.to_string());
    // Trailing field without comma.
    let _ = write!(json, "  \"revenue_check\": {:.9}\n}}\n", fast.revenue);

    let dir = seleth_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join("BENCH_solver.json");
    std::fs::write(&path, json).expect("write BENCH_solver.json");
    println!("wrote {}", path.display());

    if speedup < 2.0 {
        eprintln!("WARNING: single-expansion speedup {speedup:.2}x below the 2x acceptance gate");
        std::process::exit(1);
    }
}
