//! Fig. 9: impact of the uncle reward value on the pool's, honest miners'
//! and total revenue (γ = 0.5, scenario 1).
//!
//! Sweeps `Ku ∈ {2/8, 4/8, 7/8, Ku(·)}` as in the paper. The headline
//! observations to verify: total revenue grows with α and reaches ≈ 135%
//! at `Ku = 7/8, α = 0.45`; the Ethereum `Ku(·)` schedule behaves like
//! `Ku = 7/8` for the *pool* (its uncles always sit at distance 1) but
//! drifts from `7/8`-like to `4/8`-like for honest miners as α grows.

use seleth_chain::{RewardSchedule, Scenario};
use seleth_core::{Analysis, ModelParams};

fn schedules() -> Vec<(&'static str, RewardSchedule)> {
    vec![
        ("Ku=2/8", RewardSchedule::fixed_uncle_unbounded(0.25)),
        ("Ku=4/8", RewardSchedule::fixed_uncle_unbounded(0.5)),
        ("Ku=7/8", RewardSchedule::fixed_uncle_unbounded(0.875)),
        ("Ku(.)", RewardSchedule::ethereum()),
    ]
}

fn main() {
    let gamma = 0.5;
    let scenario = Scenario::RegularRate;
    println!("Fig. 9: revenue under different uncle rewards (γ = {gamma}, scenario 1)\n");

    let mut rows = Vec::new();
    let labels = schedules();
    print!("{:>6}", "alpha");
    for (name, _) in &labels {
        print!(" | {name:>7} {:>7} {:>7}", "", "");
    }
    println!();
    print!("{:>6}", "");
    for _ in &labels {
        print!(" | {:>7} {:>7} {:>7}", "Us", "Uh", "total");
    }
    println!();

    for alpha in seleth_bench::sweep(0.0, 0.45, 0.025) {
        let mut row = vec![alpha];
        print!("{alpha:>6.3}");
        for (_, schedule) in &labels {
            let params = ModelParams::new(alpha, gamma, schedule.clone()).expect("valid");
            let rev = Analysis::new(&params).expect("solve").revenue();
            let us = rev.absolute_pool(scenario);
            let uh = rev.absolute_honest(scenario);
            let total = rev.absolute_total(scenario);
            print!(" | {us:>7.4} {uh:>7.4} {total:>7.4}");
            row.extend([us, uh, total]);
        }
        println!();
        rows.push(seleth_bench::cells(&row));
    }

    let header = [
        "alpha",
        "us_2_8",
        "uh_2_8",
        "total_2_8",
        "us_4_8",
        "uh_4_8",
        "total_4_8",
        "us_7_8",
        "uh_7_8",
        "total_7_8",
        "us_eth",
        "uh_eth",
        "total_eth",
    ];
    let path = seleth_bench::write_csv("fig9_uncle_reward_sweep.csv", &header, &rows);

    // Headline anchor: total revenue at Ku = 7/8, α = 0.45.
    let params =
        ModelParams::new(0.45, gamma, RewardSchedule::fixed_uncle_unbounded(0.875)).expect("valid");
    let total = Analysis::new(&params)
        .expect("solve")
        .revenue()
        .absolute_total(scenario);
    println!("\nPaper anchor: total revenue at Ku=7/8, α=0.45 ≈ 1.35; measured {total:.3}");
    println!("wrote {}", path.display());
}
