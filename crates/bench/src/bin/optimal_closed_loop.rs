//! Closed-loop delay study: does solving *on* the race-window kernel
//! recover the revenue the zero-delay optimum bleeds under delay?
//!
//! `optimal_delay` measured the open-loop gap: artifacts solved in the
//! MDP's zero-delay world model lose revenue when replayed in the
//! propagation-delay simulator. This experiment closes the loop — the
//! delay-aware artifacts are solved on the kernel that folds each
//! release's orphan/loss probability into the transition rows
//! ([`seleth_mdp::MdpConfig::with_delay_ratio`]), at truncation 200 so the
//! boundary's forced resolution stays far from the operating region —
//! and replays them head-to-head against the zero-delay baseline in the
//! same duopoly delay simulator.
//!
//! Sweep: each aware artifact (`bitcoin_a040_g050_d6`, solved at
//! delay/interval = 6/13, and `bitcoin_a040_g050_d12`, at 12/13) and the
//! committed zero-delay baseline `bitcoin_a040_g050` are replayed at
//! delay ∈ {0, 6, 12} s (13 s mean interval). **Gated**: at its design
//! delay, an aware artifact's measured revenue must not fall below the
//! baseline's by more than 3 standard errors or 1% absolute (4σ / 5% in
//! smoke), exit code 1 otherwise — the "delay-aware solving pays for
//! itself" acceptance gate.
//!
//! Output: `results/optimal_closed_loop.json` — one series per artifact
//! with aware-vs-baseline revenue at every delay point — plus a
//! human-readable table on stdout. Missing artifacts are solved on the
//! fly and saved, so the experiment is self-contained on a fresh
//! checkout (the truncation-200 solves take minutes each; see
//! `BENCH_solver.json`'s `mdp_scaling` rows).
//!
//! Environment knobs: `SELETH_RUNS` (8), `SELETH_BLOCKS` (30 000),
//! `SELETH_MDP_LEN` (200, the aware artifacts' truncation),
//! `SELETH_RESULTS`, `SELETH_POLICIES`. Pass `--smoke` for the CI gate:
//! the 6 s artifact only, its design delay only, small replay budgets,
//! loosened tolerance (the committed artifacts are read via
//! `SELETH_POLICIES`, so no solve happens in CI).

use std::fmt::Write as _;

use seleth_bench::json_f64;
use seleth_bench::report::{gate_tolerance, replay_revenue, trace_arg, write_trace};
use seleth_chain::RewardSchedule;
use seleth_mdp::{PolicyTable, RewardModel};
use seleth_obs::{NoopRecorder, Recorder, Stopwatch, Telemetry, TelemetryShard, TraceLog};
use seleth_sim::delay::DelayConfig;

/// Mean block interval for every run (Ethereum-like, seconds).
const INTERVAL: f64 = 13.0;
const SEED: u64 = 31_337;
/// The duopoly the artifacts were solved for.
const ALPHA: f64 = 0.40;
const GAMMA: f64 = 0.5;
/// The committed zero-delay baseline's truncation (PR 2 artifact).
const BASE_LEN: u32 = 30;
/// File stem of the zero-delay baseline artifact.
const BASE_NAME: &str = "bitcoin_a040_g050";

/// One delay-aware artifact: solved at `delay_seconds / INTERVAL` on the
/// race-window kernel, gated against the baseline at `delay_seconds`.
struct AwareSpec {
    name: &'static str,
    delay_seconds: f64,
}

const AWARE: &[AwareSpec] = &[
    AwareSpec {
        name: "bitcoin_a040_g050_d6",
        delay_seconds: 6.0,
    },
    AwareSpec {
        name: "bitcoin_a040_g050_d12",
        delay_seconds: 12.0,
    },
];

struct Point {
    delay: f64,
    mean: f64,
    std_err: f64,
    orphan_rate: f64,
}

/// Replay `table` in the duopoly delay simulator at one delay, through
/// the shared replay loop. The run's deterministic engine counters are
/// folded into the worker's telemetry shard.
fn eval_point(
    table: &PolicyTable,
    delay: f64,
    runs: u64,
    blocks: u64,
    shard: &mut TelemetryShard,
) -> Point {
    let config = DelayConfig::builder()
        .shares(vec![ALPHA, 1.0 - ALPHA])
        .policy(0, table.clone())
        .tie_gamma(GAMMA)
        .delay(delay)
        .interval(INTERVAL)
        .schedule(RewardSchedule::bitcoin())
        .blocks(blocks)
        .seed(SEED)
        .build()
        .expect("valid delay config");
    let outcome = replay_revenue(runs, 1, |k| config.with_seed(SEED + k));
    outcome.counters.record_into(shard);
    shard.add("study.runs", runs);
    Point {
        delay,
        mean: outcome.mean(),
        std_err: outcome.std_err(),
        orphan_rate: outcome.orphan_rate,
    }
}

/// One table replayed over the delay sweep, sweep points in parallel
/// through the shared work-queue helper (bit-identical for every thread
/// count). Returns the points plus the workers' telemetry shards.
fn sweep_table(
    table: &PolicyTable,
    delays: &[f64],
    runs: u64,
    blocks: u64,
    recorder: &dyn Recorder,
) -> (Vec<Point>, Vec<TelemetryShard>) {
    seleth_bench::par_map_traced(delays, 0, recorder, |&delay, shard| {
        eval_point(table, delay, runs, blocks, shard)
    })
}

fn point_at(points: &[Point], delay: f64) -> &Point {
    points
        .iter()
        .find(|p| p.delay == delay)
        .expect("sweep covers the gated delay")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = if trace_path.is_some() {
        &trace
    } else {
        &NoopRecorder
    };
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let runs = seleth_bench::env_u64("SELETH_RUNS", if smoke { 3 } else { 8 });
    let blocks = seleth_bench::env_u64("SELETH_BLOCKS", if smoke { 10_000 } else { 30_000 });
    let aware_len = u32::try_from(seleth_bench::env_u64("SELETH_MDP_LEN", 200)).unwrap_or(200);
    let specs: &[AwareSpec] = if smoke { &AWARE[..1] } else { AWARE };

    println!(
        "Closed-loop delay study: race-window artifacts vs the zero-delay \
         optimum\n({runs} runs x {blocks} blocks per point, {INTERVAL}s interval{})\n",
        if smoke { ", SMOKE" } else { "" }
    );

    let load = Stopwatch::start();
    let base =
        seleth_bench::load_or_solve_policy(BASE_NAME, ALPHA, GAMMA, RewardModel::Bitcoin, BASE_LEN);
    telemetry.add_phase("load_policies", load.elapsed_ns());
    let delays: Vec<f64> = if smoke {
        vec![specs[0].delay_seconds]
    } else {
        vec![0.0, 6.0, 12.0]
    };
    let sweep = Stopwatch::start();
    let (base_points, shards) = sweep_table(&base, &delays, runs, blocks, recorder);
    telemetry.add_phase("sweep", sweep.elapsed_ns());
    for shard in &shards {
        telemetry.fold_shard(shard);
    }

    println!(
        "{:>24} {:>9} {:>8} {:>10} {:>9} {:>10} {:>8}",
        "artifact", "delay[s]", "rho_mdp", "us_delay", "std_err", "vs_base", "orphans"
    );
    for p in &base_points {
        println!(
            "{:>24} {:>9.1} {:>8.5} {:>10.5} {:>9.5} {:>10} {:>8.4}",
            BASE_NAME,
            p.delay,
            base.predicted_revenue(),
            p.mean,
            p.std_err,
            "-",
            p.orphan_rate
        );
    }

    let mut failed = false;
    let mut series_json = Vec::new();
    for spec in specs {
        let load = Stopwatch::start();
        let aware = seleth_bench::load_or_solve_policy_delay(
            spec.name,
            ALPHA,
            GAMMA,
            RewardModel::Bitcoin,
            aware_len,
            spec.delay_seconds / INTERVAL,
        );
        telemetry.add_phase("load_policies", load.elapsed_ns());
        let sweep = Stopwatch::start();
        let (points, shards) = sweep_table(&aware, &delays, runs, blocks, recorder);
        telemetry.add_phase("sweep", sweep.elapsed_ns());
        for shard in &shards {
            telemetry.fold_shard(shard);
        }
        for p in &points {
            let b = point_at(&base_points, p.delay);
            println!(
                "{:>24} {:>9.1} {:>8.5} {:>10.5} {:>9.5} {:>+10.5} {:>8.4}",
                spec.name,
                p.delay,
                aware.predicted_revenue(),
                p.mean,
                p.std_err,
                p.mean - b.mean,
                p.orphan_rate
            );
        }

        // The acceptance gate: at its design delay, the aware artifact
        // must not trail the zero-delay baseline.
        let a = point_at(&points, spec.delay_seconds);
        let b = point_at(&base_points, spec.delay_seconds);
        let combined_err = a.std_err.hypot(b.std_err);
        let tolerance = gate_tolerance(smoke, combined_err);
        if a.mean < b.mean - tolerance {
            eprintln!(
                "FAIL {}: {:.5} at {}s trails the zero-delay baseline {:.5} \
                 beyond tolerance {tolerance:.5}",
                spec.name, a.mean, spec.delay_seconds, b.mean
            );
            failed = true;
        }

        let mut s = String::new();
        let _ = write!(
            s,
            "    {{\n      \"artifact\": \"{}\",\n      \"baseline\": \"{BASE_NAME}\",\n      \
             \"alpha\": {},\n      \"gamma\": {},\n      \"delay_ratio\": {},\n      \
             \"design_delay\": {},\n      \"rho_star\": {},\n      \
             \"baseline_rho_star\": {},\n      \"truncation\": {},\n      \"points\": [\n",
            spec.name,
            json_f64(ALPHA),
            json_f64(GAMMA),
            json_f64(aware.delay()),
            json_f64(spec.delay_seconds),
            json_f64(aware.predicted_revenue()),
            json_f64(base.predicted_revenue()),
            aware.max_len(),
        );
        let point_lines: Vec<String> = points
            .iter()
            .map(|p| {
                let b = point_at(&base_points, p.delay);
                format!(
                    "        {{\"delay\": {}, \"revenue\": {}, \"std_err\": {}, \
                     \"baseline_revenue\": {}, \"baseline_std_err\": {}, \
                     \"vs_baseline\": {}, \"orphan_rate\": {}}}",
                    json_f64(p.delay),
                    json_f64(p.mean),
                    json_f64(p.std_err),
                    json_f64(b.mean),
                    json_f64(b.std_err),
                    json_f64(p.mean - b.mean),
                    json_f64(p.orphan_rate)
                )
            })
            .collect();
        s.push_str(&point_lines.join(",\n"));
        s.push_str("\n      ]\n    }");
        series_json.push(s);
    }

    telemetry.wall_ns = wall.elapsed_ns();
    telemetry.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
    let json = format!(
        "{{\n  \"kind\": \"seleth-closed-loop-study\",\n  \"format\": 1,\n  \
         \"interval\": {},\n  \"runs\": {runs},\n  \"blocks\": {blocks},\n  \
         \"series\": [\n{}\n  ],\n  \"telemetry\": {}\n}}\n",
        json_f64(INTERVAL),
        series_json.join(",\n"),
        telemetry.to_json(2)
    );
    let out_name = if smoke {
        "optimal_closed_loop_smoke.json"
    } else {
        "optimal_closed_loop.json"
    };
    let path = seleth_bench::write_text(out_name, &json);

    println!("\nReading: 'vs_base' is the aware artifact's measured revenue minus the");
    println!("zero-delay optimum's at the same simulated delay. At the design delay the");
    println!("gate below enforces the aware policy recovers (at least) the baseline;");
    println!("at delay 0 the aware policy may trail — it prices in races that never");
    println!("happen there.");
    println!("wrote {}", path.display());
    write_trace(&trace, trace_path.as_ref());

    if failed {
        eprintln!(
            "FAIL: a delay-aware artifact trails the zero-delay baseline at its design delay"
        );
        std::process::exit(1);
    }
    println!("all delay-aware artifacts hold their gate at their design delay");
}
