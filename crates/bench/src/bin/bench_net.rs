//! Gossip-layer performance tracker: times the `seleth-net` propagation
//! hot paths and writes `BENCH_net.json` into the results directory —
//! the network-side counterpart of `BENCH_sim.json`.
//!
//! Measured (wall-clock, best of `SELETH_BENCH_REPS` repetitions,
//! default 3):
//!
//! - `static_propagate_per_sec`: [`seleth_net::Topology::propagate`] on a
//!   static 16-miner complete graph — the cached all-pairs row copy every
//!   graph-mode block release pays;
//! - `dynamic_propagate_per_sec`: the same call on a lossy
//!   uniform-latency graph, where every block re-runs the per-edge draw
//!   chain plus the deterministic Dijkstra sweep;
//! - `graph_sim_blocks_per_sec`: a full `DelaySimulation` run in graph
//!   mode on the complete/uniform-equivalent topology, against
//!   `uniform_sim_blocks_per_sec` for the same workload on the classic
//!   uniform engine. The two runs are bit-identical in results (asserted),
//!   so `graph_vs_uniform_ratio` prices exactly the gossip layer.
//!   **Gated**: graph mode must keep ≥ 25% of the uniform throughput
//!   (exit code 1 otherwise) — the static-plan row copy plus per-view
//!   queues may cost, but not an order of magnitude.
//!
//! Every run appends one snapshot row (git sha, host, headline metrics)
//! to `BENCH_history.jsonl`, the ledger behind `perf_report --trend`.
//!
//! Usage: `cargo run --release -p seleth-bench --bin bench_net`.

use std::fmt::Write as _;
use std::time::Instant;

use seleth_bench::report::{trace_arg, write_trace};
use seleth_chain::RewardSchedule;
use seleth_net::{Latency, Topology};
use seleth_obs::{Stopwatch, Telemetry, TraceLog};
use seleth_sim::delay::{DelayConfig, DelaySimulation};

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
            out = Some(value);
        }
    }
    (best, out.expect("at least one repetition"))
}

fn main() {
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let reps = usize::try_from(seleth_bench::env_u64("SELETH_BENCH_REPS", 3)).unwrap_or(3);
    let calls = seleth_bench::env_u64("SELETH_BENCH_CALLS", 200_000);
    let blocks = seleth_bench::env_u64("SELETH_BENCH_BLOCKS", 200_000);
    const MINERS: usize = 16;

    // --- Static hot path: cached all-pairs row per release ---
    let static_topo = Topology::complete(MINERS, 6.0).expect("complete is valid");
    assert!(static_topo.is_static(), "fixed lossless graphs precompile");
    let (static_s, checksum) = best_of(reps, || {
        let mut acc = 0.0f64;
        for b in 0..calls {
            let p = static_topo.propagate(usize::try_from(b).unwrap_or(0) % MINERS, b);
            acc += p.arrival[(b as usize + 1) % MINERS];
        }
        acc
    });
    assert!(checksum.is_finite());
    let static_rate = calls as f64 / static_s;
    telemetry.add_phase("static_propagate", (static_s * 1e9) as u64);
    println!(
        "static_propagate    {calls} calls x {MINERS} miners: {:.1} ms ({:.2} Mcalls/s)",
        static_s * 1e3,
        static_rate / 1e6
    );

    // --- Dynamic hot path: per-block draws + Dijkstra per release ---
    let dynamic_topo = {
        let mut b = Topology::builder();
        let first = b.miners(MINERS);
        b.seed(7);
        for i in first..MINERS {
            for j in (i + 1)..MINERS {
                b.link(i, j, 4.0);
            }
        }
        // One lossy, jittered edge per miner keeps the graph off the
        // static fast path without changing its diameter.
        for i in first..MINERS {
            let j = (i + 1) % MINERS;
            b.edge_spec(seleth_net::Link {
                from: i,
                to: j,
                latency: Latency::Uniform { lo: 1.0, hi: 3.0 },
                loss: 0.05,
                shortcut: false,
            });
        }
        b.build().expect("dynamic graph is valid")
    };
    assert!(!dynamic_topo.is_static(), "draws force the dynamic path");
    let dyn_calls = (calls / 20).max(1);
    let (dynamic_s, checksum) = best_of(reps, || {
        let mut acc = 0.0f64;
        for b in 0..dyn_calls {
            let p = dynamic_topo.propagate(usize::try_from(b).unwrap_or(0) % MINERS, b);
            acc += p.arrival[(b as usize + 1) % MINERS];
        }
        acc
    });
    assert!(checksum.is_finite());
    let dynamic_rate = dyn_calls as f64 / dynamic_s;
    telemetry.add_phase("dynamic_propagate", (dynamic_s * 1e9) as u64);
    println!(
        "dynamic_propagate   {dyn_calls} calls x {MINERS} miners: {:.1} ms ({:.2} kcalls/s)",
        dynamic_s * 1e3,
        dynamic_rate / 1e3
    );

    // --- Full graph-mode simulation vs the uniform engine ---
    let sim_config = |graph: bool| {
        let mut b = DelayConfig::builder();
        b.shares(vec![0.25; 4])
            .delay(6.0)
            .blocks(blocks)
            .seed(4242)
            .schedule(RewardSchedule::ethereum());
        if graph {
            b.topology(Topology::complete(4, 6.0).expect("complete is valid"));
        }
        b.build().expect("valid config")
    };
    let (uniform_s, uniform_total) = best_of(reps, || {
        DelaySimulation::new(sim_config(false))
            .run()
            .report
            .total_reward()
    });
    let (graph_s, graph_total) = best_of(reps, || {
        DelaySimulation::new(sim_config(true))
            .run()
            .report
            .total_reward()
    });
    assert_eq!(
        uniform_total.to_bits(),
        graph_total.to_bits(),
        "graph mode must replay the uniform engine bit-for-bit"
    );
    let uniform_rate = blocks as f64 / uniform_s;
    let graph_rate = blocks as f64 / graph_s;
    let graph_ratio = graph_rate / uniform_rate;
    telemetry.add_phase("uniform_sim", (uniform_s * 1e9) as u64);
    telemetry.add_phase("graph_sim", (graph_s * 1e9) as u64);
    telemetry.set_gauge("bench.graph_vs_uniform_ratio", graph_ratio);
    println!(
        "uniform_sim         {blocks} blocks: {:.1} ms ({:.2} Mblocks/s)",
        uniform_s * 1e3,
        uniform_rate / 1e6
    );
    println!(
        "graph_sim           {blocks} blocks: {:.1} ms ({:.2} Mblocks/s, {graph_ratio:.2}x \
         of uniform, gate: >= 0.25)",
        graph_s * 1e3,
        graph_rate / 1e6
    );

    // --- Emit BENCH_net.json ---
    let mut json = String::from("{\n");
    let mut field = |key: &str, value: String| {
        let _ = writeln!(json, "  \"{key}\": {value},");
    };
    field("miners", MINERS.to_string());
    field("calls", calls.to_string());
    field("static_propagate_ms", format!("{:.3}", static_s * 1e3));
    field("static_propagate_per_sec", format!("{static_rate:.0}"));
    field("dynamic_calls", dyn_calls.to_string());
    field("dynamic_propagate_ms", format!("{:.3}", dynamic_s * 1e3));
    field("dynamic_propagate_per_sec", format!("{dynamic_rate:.0}"));
    field("sim_blocks", blocks.to_string());
    field("uniform_sim_blocks_per_sec", format!("{uniform_rate:.0}"));
    field("graph_sim_blocks_per_sec", format!("{graph_rate:.0}"));
    field("graph_vs_uniform_ratio", format!("{graph_ratio:.3}"));
    field("reps", reps.to_string());
    field("host", seleth_bench::host_fingerprint_json());
    telemetry.wall_ns = wall.elapsed_ns();
    telemetry.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
    let _ = write!(json, "  \"telemetry\": {}\n}}\n", telemetry.to_json(2));

    let dir = seleth_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join("BENCH_net.json");
    std::fs::write(&path, json).expect("write BENCH_net.json");
    println!("wrote {}", path.display());
    let ledger = seleth_bench::append_history_row(
        "bench_net",
        &[
            ("static_propagate_per_sec", static_rate),
            ("dynamic_propagate_per_sec", dynamic_rate),
            ("graph_sim_blocks_per_sec", graph_rate),
            ("graph_vs_uniform_ratio", graph_ratio),
        ],
    );
    println!("appended history row to {}", ledger.display());
    write_trace(&trace, trace_path.as_ref());

    // The gossip layer's overhead on the bit-identical workload: the
    // static row copy, per-view pending queues, and counter upkeep. Keep
    // it within 4x of the uniform engine.
    if graph_ratio < 0.25 {
        eprintln!(
            "FAIL: graph-mode simulation at {graph_ratio:.3}x of the uniform \
             engine (gate: >= 0.25)"
        );
        std::process::exit(1);
    }
}
