//! Extension experiment: *optimal* selfish mining (MDP) vs the paper's
//! Algorithm 1, under Bitcoin and Ethereum rewards.
//!
//! The paper's conclusion leaves "the design of new mining strategies as
//! future work"; this experiment quantifies the gap. For each α (γ = 0.5):
//! the Algorithm-1 absolute revenue (the paper's analysis), the optimal
//! Bitcoin-MDP revenue (Sapirshtein et al.), and the optimal
//! Ethereum-MDP revenue under the first-order uncle-reward model.

use seleth_chain::{RewardSchedule, Scenario};
use seleth_core::{Analysis, ModelParams};
use seleth_mdp::{MdpConfig, RewardModel};

fn main() {
    let gamma = 0.5;
    let max_len: u32 = std::env::var("SELETH_MDP_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    println!("Optimal strategies vs Algorithm 1 (γ = {gamma}, scenario 1, MDP len {max_len})\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "alpha", "honest", "alg1_eth", "opt_btc", "opt_eth", "opt_gain"
    );

    let mut rows = Vec::new();
    for alpha in seleth_bench::sweep(0.05, 0.45, 0.05) {
        let params = ModelParams::new(alpha, gamma, RewardSchedule::ethereum()).expect("valid");
        let alg1 = Analysis::new(&params)
            .expect("solve")
            .revenue()
            .absolute_pool(Scenario::RegularRate);

        let opt_btc = MdpConfig::new(alpha, gamma, RewardModel::Bitcoin)
            .with_max_len(max_len)
            .solve()
            .expect("mdp")
            .revenue;
        let opt_eth = MdpConfig::new(alpha, gamma, RewardModel::EthereumApprox)
            .with_max_len(max_len)
            .solve()
            .expect("mdp")
            .revenue;

        println!(
            "{alpha:>6.2} {alpha:>8.2} {alg1:>10.4} {opt_btc:>10.4} {opt_eth:>12.4} {:>11.1}%",
            (opt_eth / alg1.max(1e-9) - 1.0) * 100.0
        );
        rows.push(seleth_bench::cells(&[alpha, alg1, opt_btc, opt_eth]));
    }

    let path = seleth_bench::write_csv(
        "optimal_strategies.csv",
        &[
            "alpha",
            "alg1_ethereum",
            "optimal_bitcoin",
            "optimal_ethereum",
        ],
        &rows,
    );
    println!("\nReading: at low α the optimum coincides with Algorithm 1 to within the");
    println!("MDP's documented first-order nephew attribution (~0.3%), confirming the");
    println!("paper's strategy is near-optimal there; above α ≈ 0.25 the optimal policy");
    println!("beats Algorithm 1 by up to ~11%. opt_eth ≥ opt_btc everywhere: the paper's");
    println!("headline (uncle rewards subsidize attacks) holds under optimal play too.");
    println!("Note: the Ethereum MDP is a lower bound on the true optimum (see seleth-mdp).");
    println!("wrote {}", path.display());
}
