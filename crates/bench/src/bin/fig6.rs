//! Fig. 6: hash-power shares of the top Ethereum mining pools (2018-09),
//! with the profitability thresholds they individually cross.

use seleth_chain::{RewardSchedule, Scenario};
use seleth_core::threshold::{profitability_threshold, ThresholdOptions};
use seleth_sim::pools::{combined_top_share, concentration_index, TOP_POOLS_2018};

fn main() {
    println!("Fig. 6: top Ethereum mining pools by hash power (2018-09)");
    for p in TOP_POOLS_2018 {
        let bar = "#".repeat((p.share * 100.0).round() as usize);
        println!("  {:<14} {:>6.2}%  {bar}", p.name, p.share * 100.0);
    }
    println!("  top-2 combined: {:.1}%", combined_top_share(2) * 100.0);
    println!("  top-5 combined: {:.1}%", combined_top_share(5) * 100.0);
    println!("  HHI concentration index: {:.3}", concentration_index());

    let opts = ThresholdOptions::default();
    let t1 = profitability_threshold(
        0.5,
        &RewardSchedule::ethereum(),
        Scenario::RegularRate,
        opts,
    )
    .expect("solver")
    .expect("profitable");
    let t2 = profitability_threshold(
        0.5,
        &RewardSchedule::ethereum(),
        Scenario::RegularPlusUncleRate,
        opts,
    )
    .expect("solver")
    .expect("profitable");
    println!("\nProfitability thresholds at γ = 0.5 (Ethereum Ku(·)):");
    println!("  scenario 1 (pre-EIP100): α* = {t1:.3}");
    println!("  scenario 2 (EIP100):     α* = {t2:.3}");
    println!("\nPools whose solo hash power already exceeds the thresholds:");
    for p in TOP_POOLS_2018.iter().filter(|p| p.name != "Others") {
        println!(
            "  {:<14} scenario1: {}  scenario2: {}",
            p.name,
            if p.share > t1 { "YES" } else { "no" },
            if p.share > t2 { "YES" } else { "no" },
        );
    }

    let rows: Vec<Vec<String>> = TOP_POOLS_2018
        .iter()
        .map(|p| vec![p.name.to_string(), format!("{:.4}", p.share)])
        .collect();
    let path = seleth_bench::write_csv("fig6_pool_shares.csv", &["pool", "share"], &rows);
    println!("\nwrote {}", path.display());
}
