//! Section VI: the redesigned uncle reward function.
//!
//! The paper proposes flattening `Ku(·)` to a fixed `4/8` (since the pool's
//! uncles always claim the maximum `7/8` at distance 1 while honest uncles
//! drift to longer distances), and reports the resulting threshold
//! increases at γ = 0.5: scenario 1 from 0.054 to 0.163, scenario 2 from
//! 0.270 to 0.356.
//!
//! Also runs two ablations the analysis abstracts away:
//! the real protocol's two-uncles-per-block cap, and the sensitivity of
//! the threshold to the fixed `Ku` level.

use seleth_chain::{RewardSchedule, Scenario};
use seleth_core::threshold::{profitability_threshold, ThresholdOptions};
use seleth_sim::{multi, SimConfig};

fn threshold(gamma: f64, schedule: &RewardSchedule, scenario: Scenario) -> f64 {
    profitability_threshold(gamma, schedule, scenario, ThresholdOptions::default())
        .expect("solver")
        .map_or(f64::NAN, |t| t)
}

fn main() {
    let gamma = 0.5;
    println!("Section VI: reward-function redesign (γ = {gamma})\n");

    let eth = RewardSchedule::ethereum();
    let flat = RewardSchedule::fixed_uncle(0.5);
    let mut rows = Vec::new();
    println!(
        "{:<22} {:>12} {:>12}",
        "schedule", "scenario 1", "scenario 2"
    );
    for (name, schedule) in [("Ku(.) (Byzantium)", &eth), ("fixed Ku = 4/8", &flat)] {
        let t1 = threshold(gamma, schedule, Scenario::RegularRate);
        let t2 = threshold(gamma, schedule, Scenario::RegularPlusUncleRate);
        println!("{name:<22} {t1:>12.3} {t2:>12.3}");
        rows.push(vec![
            name.to_string(),
            format!("{t1:.4}"),
            format!("{t2:.4}"),
        ]);
    }
    println!("paper:                 0.054→0.163   0.270→0.356\n");

    // Sensitivity: threshold vs the fixed Ku level.
    println!("Threshold sensitivity to the fixed Ku level (scenario 1):");
    for ku8 in 0..=7u32 {
        let ku = ku8 as f64 / 8.0;
        let t = threshold(
            gamma,
            &RewardSchedule::fixed_uncle(ku),
            Scenario::RegularRate,
        );
        println!("  Ku = {ku8}/8: α* = {t:.3}");
        rows.push(vec![
            format!("fixed {ku8}/8"),
            format!("{t:.4}"),
            String::new(),
        ]);
    }

    // Ablation: the paper assumes unlimited uncle references per block;
    // real Ethereum caps at 2. Measure the pool's simulated revenue both
    // ways at α = 0.3.
    println!("\nAblation: two-uncles-per-block cap (α = 0.3, simulation):");
    for (name, schedule) in [
        ("unlimited refs", RewardSchedule::ethereum()),
        ("cap = 2", RewardSchedule::ethereum_capped()),
    ] {
        let config = SimConfig::builder()
            .alpha(0.3)
            .gamma(gamma)
            .schedule(schedule)
            .blocks(100_000)
            .seed(60_000)
            .build()
            .expect("valid");
        let reports = multi::run_many(&config, 6);
        let us = multi::mean_absolute_pool(&reports, Scenario::RegularRate);
        let uh = multi::mean_absolute_honest(&reports, Scenario::RegularRate);
        println!(
            "  {name:<15} Us = {:.4} ± {:.4}   Uh = {:.4} ± {:.4}",
            us.mean, us.std_dev, uh.mean, uh.std_dev
        );
    }

    let path = seleth_bench::write_csv(
        "discussion_thresholds.csv",
        &["schedule", "scenario1", "scenario2"],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
