//! Fig. 10: profitability threshold `α*` as a function of the network
//! capability `γ`, comparing Bitcoin (Eyal–Sirer) against Ethereum under
//! both difficulty-adjustment scenarios (with the real `Ku(·)` schedule).
//!
//! Shape to verify against the paper: Ethereum scenario 1 sits strictly
//! below Bitcoin for all γ; scenario 2 rises *above* Bitcoin for
//! γ ≳ 0.39; all curves fall to 0 at γ = 1.

use seleth_chain::{RewardSchedule, Scenario};
use seleth_core::bitcoin;
use seleth_core::threshold::{profitability_threshold, ThresholdOptions};

fn main() {
    let schedule = RewardSchedule::ethereum();
    let opts = ThresholdOptions {
        scan_step: 0.005,
        ..Default::default()
    };

    println!("Fig. 10: profitability threshold α* vs γ\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "gamma", "bitcoin(E&S)", "eth_scenario1", "eth_scenario2"
    );

    let mut rows = Vec::new();
    let mut crossover: Option<f64> = None;
    let mut prev: Option<(f64, f64)> = None; // (gamma, s2 - btc)
    for gamma in seleth_bench::sweep(0.0, 1.0, 0.05) {
        let btc = bitcoin::eyal_sirer_threshold(gamma);
        let s1 = profitability_threshold(gamma, &schedule, Scenario::RegularRate, opts)
            .expect("solver")
            .unwrap_or(f64::NAN);
        let s2 = profitability_threshold(gamma, &schedule, Scenario::RegularPlusUncleRate, opts)
            .expect("solver")
            .unwrap_or(f64::NAN);
        println!("{gamma:>6.2} {btc:>14.4} {s1:>14.4} {s2:>14.4}");
        rows.push(seleth_bench::cells(&[gamma, btc, s1, s2]));

        let diff = s2 - btc;
        if let Some((pg, pd)) = prev {
            if pd < 0.0 && diff >= 0.0 && crossover.is_none() {
                // Linear interpolation of the sign change.
                crossover = Some(pg + 0.05 * pd.abs() / (pd.abs() + diff.abs()));
            }
        }
        prev = Some((gamma, diff));
    }

    let path = seleth_bench::write_csv(
        "fig10_thresholds.csv",
        &["gamma", "bitcoin", "eth_scenario1", "eth_scenario2"],
        &rows,
    );
    match crossover {
        Some(g) => println!("\nScenario 2 crosses above Bitcoin near γ ≈ {g:.2} (paper: γ ≈ 0.39)"),
        None => println!("\nScenario 2 never crosses Bitcoin in the sweep (unexpected)"),
    }
    println!("wrote {}", path.display());
}
