//! Fig. 7 / Eq. (2): stationary-distribution self-check.
//!
//! Cross-validates three independent computations of the stationary
//! distribution of the 2-D Markov process — the numeric Gauss–Seidel
//! solve, the paper's closed forms, and the empirical state frequencies of
//! a long simulation run — and prints the visit mass of the leading states.

use seleth_core::{stationary, Analysis, ModelParams, State};
use seleth_sim::{SimConfig, Simulation};

fn main() {
    let gamma = 0.5;
    println!("Stationary distribution checks (γ = {gamma})\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "alpha", "pi00_closed", "pi00_numeric", "pi00_sim", "maxdiff_ij"
    );

    let mut rows = Vec::new();
    for &alpha in &[0.1, 0.2, 0.3, 0.4, 0.45] {
        let params = ModelParams::new(alpha, gamma, seleth_chain::RewardSchedule::ethereum())
            .expect("valid params");
        let analysis = Analysis::new(&params).expect("solve");
        let closed = stationary::pi00(alpha);
        let numeric = analysis.pi(State::new(0, 0));

        // Empirical: frequency of (0,0) over a 200k-block run.
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(gamma)
            .blocks(200_000)
            .seed(2024)
            .build()
            .expect("valid config");
        let report = Simulation::new(config).run();
        let empirical = report.state_frequency(0, 0);

        // Worst closed-form vs numeric deviation over a grid of (i, j).
        let mut maxdiff = 0.0f64;
        for i in 2..=15u32 {
            for j in 0..=(i - 2) {
                let s = State::new(i, j);
                let d = (analysis.pi(s) - stationary::pi_closed_form(alpha, gamma, s)).abs();
                maxdiff = maxdiff.max(d);
            }
        }

        println!("{alpha:>6.2} {closed:>12.6} {numeric:>12.6} {empirical:>12.6} {maxdiff:>12.2e}");
        rows.push(seleth_bench::cells(&[
            alpha, closed, numeric, empirical, maxdiff,
        ]));
    }
    let path = seleth_bench::write_csv(
        "stationary_check.csv",
        &[
            "alpha",
            "pi00_closed",
            "pi00_numeric",
            "pi00_sim",
            "max_closed_vs_numeric",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
}
