//! Render a human-readable performance profile from study telemetry, and
//! gate the perf trajectory against the `BENCH_history.jsonl` ledger.
//!
//! Every study bin appends a `"telemetry"` block to its JSON output
//! (phases, per-worker utilization, deterministic counters, gauges,
//! histograms); `perf_report` turns those blocks back into a terminal
//! report via [`seleth_obs::render_profile`].
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p seleth-bench --bin perf_report [FILE ...]
//! cargo run --release -p seleth-bench --bin perf_report -- --trend [--smoke]
//! ```
//!
//! Without arguments, every known study JSON found in the results
//! directory (`SELETH_RESULTS` or `results/`) is rendered; pre-telemetry
//! artifacts degrade to a header plus a "(no telemetry block recorded)"
//! note. Exit code 1 if any rendered file is unreadable or not valid
//! JSON.
//!
//! `--trend` switches to the perf-trajectory gate: the latest
//! `BENCH_history.jsonl` row per bench bin is compared against the most
//! recent earlier row from a comparable host (same `os`/`arch`/
//! `available_parallelism` fingerprint), metric by metric, with a
//! noise-aware band (`SELETH_TREND_BAND`, default 1.5×: timings may grow
//! — and rates shrink — by up to 50% before the gate trips, absorbing
//! shared-runner jitter while catching real 2× cliffs). Exit code 1 on
//! any regression. `--smoke` additionally tolerates a missing or
//! single-row ledger (the first run on a fresh checkout is *seeding* the
//! trajectory, not regressing it); without `--smoke` a missing ledger is
//! an error so CI cannot silently skip the gate.

use std::path::PathBuf;

/// Study JSONs probed in the results directory when no files are named.
const DEFAULT_STUDIES: [&str; 9] = [
    "BENCH_sim.json",
    "BENCH_solver.json",
    "BENCH_net.json",
    "optimal_sim.json",
    "delay_study.json",
    "optimal_closed_loop.json",
    "zoo_study.json",
    "chaos_study.json",
    "topology_study.json",
];

/// The noise band for `--trend`: `SELETH_TREND_BAND` (a factor > 1.0)
/// when set and parsable, else 1.5.
fn trend_band() -> f64 {
    std::env::var("SELETH_TREND_BAND")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|b| b.is_finite() && *b > 1.0)
        .unwrap_or(1.5)
}

/// The `--trend` mode: walk the history ledger, compare the latest row
/// per bin against its comparable-host baseline, exit 1 on regression.
fn run_trend(smoke: bool) -> ! {
    let path = seleth_bench::results_dir().join("BENCH_history.jsonl");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if smoke => {
            println!(
                "trend: no ledger at {} ({e}); first run seeds the trajectory — pass",
                path.display()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!(
                "FAIL: read {}: {e} (run the bench bins first)",
                path.display()
            );
            std::process::exit(1);
        }
    };
    let rows = match seleth_obs::parse_history(&text) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("FAIL: parse {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let report = seleth_obs::evaluate_trend(&rows, trend_band());
    print!("{}", report.rendered);
    if report.passed() {
        std::process::exit(0);
    }
    for r in &report.regressions {
        eprintln!("FAIL: {r}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--trend") {
        let smoke = args.iter().any(|a| a == "--smoke");
        run_trend(smoke);
    }
    let named: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
    let paths = if named.is_empty() {
        let dir = seleth_bench::results_dir();
        let found: Vec<PathBuf> = DEFAULT_STUDIES
            .iter()
            .map(|name| dir.join(name))
            .filter(|p| p.is_file())
            .collect();
        if found.is_empty() {
            eprintln!("no study JSONs under {} and none named", dir.display());
            std::process::exit(1);
        }
        found
    } else {
        named
    };

    let mut failed = false;
    for path in &paths {
        let name = path.file_name().map_or_else(
            || path.display().to_string(),
            |n| n.to_string_lossy().into(),
        );
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("FAIL: read {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        match seleth_obs::render_profile(&name, &text) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("FAIL: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
