//! Render a human-readable performance profile from study telemetry.
//!
//! Every study bin appends a `"telemetry"` block to its JSON output
//! (phases, per-worker utilization, deterministic counters, gauges,
//! histograms); `perf_report` turns those blocks back into a terminal
//! report via [`seleth_obs::render_profile`].
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p seleth-bench --bin perf_report [FILE ...]
//! ```
//!
//! Without arguments, every known study JSON found in the results
//! directory (`SELETH_RESULTS` or `results/`) is rendered; pre-telemetry
//! artifacts degrade to a header plus a "(no telemetry block recorded)"
//! note. Exit code 1 if any rendered file is unreadable or not valid
//! JSON.

use std::path::PathBuf;

/// Study JSONs probed in the results directory when no files are named.
const DEFAULT_STUDIES: [&str; 7] = [
    "BENCH_sim.json",
    "BENCH_solver.json",
    "optimal_sim.json",
    "delay_study.json",
    "optimal_closed_loop.json",
    "zoo_study.json",
    "chaos_study.json",
];

fn main() {
    let named: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let paths = if named.is_empty() {
        let dir = seleth_bench::results_dir();
        let found: Vec<PathBuf> = DEFAULT_STUDIES
            .iter()
            .map(|name| dir.join(name))
            .filter(|p| p.is_file())
            .collect();
        if found.is_empty() {
            eprintln!("no study JSONs under {} and none named", dir.display());
            std::process::exit(1);
        }
        found
    } else {
        named
    };

    let mut failed = false;
    for path in &paths {
        let name = path.file_name().map_or_else(
            || path.display().to_string(),
            |n| n.to_string_lossy().into(),
        );
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("FAIL: read {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        match seleth_obs::render_profile(&name, &text) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("FAIL: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
