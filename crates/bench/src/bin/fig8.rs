//! Fig. 8: long-term absolute revenue of the selfish pool and honest
//! miners, theory vs simulation, for γ = 0.5 and fixed `Ku = 4/8`.
//!
//! Reproduces the paper's setup exactly: `n = 1000` miners, the pool
//! controlling up to 45% of them, 10 independent runs of 100,000 blocks per
//! point, scenario-1 normalization. The honest-mining baseline is the line
//! `U = α`; the paper's headline observation is the crossing at
//! `α* ≈ 0.163` and the mild losses below it (uncle rewards subsidize the
//! attack's failures).

use seleth_chain::{RewardSchedule, Scenario};
use seleth_core::{Analysis, ModelParams};
use seleth_sim::{multi, SimConfig};

fn main() {
    let gamma = 0.5;
    let schedule = RewardSchedule::fixed_uncle_unbounded(0.5); // Ku = 4/8 Ks, any distance
    let scenario = Scenario::RegularRate;
    let runs: u64 = std::env::var("SELETH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let blocks: u64 = std::env::var("SELETH_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    println!("Fig. 8: revenue vs α (γ = {gamma}, Ku = 4/8, {runs} runs × {blocks} blocks)\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "alpha", "honest", "Us_theory", "Us_sim", "±", "Uh_theory", "Uh_sim", "±"
    );

    let mut rows = Vec::new();
    for alpha in seleth_bench::sweep(0.0, 0.45, 0.025) {
        let params = ModelParams::new(alpha, gamma, schedule.clone()).expect("alpha below 0.5");
        let analysis = Analysis::new(&params).expect("solve");
        let rev = analysis.revenue();
        let us_t = rev.absolute_pool(scenario);
        let uh_t = rev.absolute_honest(scenario);

        let (us_s, uh_s) = if alpha == 0.0 {
            // Degenerate: no pool; the theory values are exact.
            (
                multi::Summary {
                    mean: 0.0,
                    std_dev: 0.0,
                },
                multi::Summary {
                    mean: 1.0,
                    std_dev: 0.0,
                },
            )
        } else {
            let config = SimConfig::builder()
                .alpha(alpha)
                .gamma(gamma)
                .schedule(schedule.clone())
                .n_honest(999)
                .blocks(blocks)
                .seed(8_000)
                .build()
                .expect("valid config");
            let reports = multi::run_many(&config, runs);
            (
                multi::mean_absolute_pool(&reports, scenario),
                multi::mean_absolute_honest(&reports, scenario),
            )
        };

        println!(
            "{alpha:>6.3} {alpha:>8.3} {us_t:>10.4} {:>10.4} {:>8.4} {uh_t:>10.4} {:>10.4} {:>8.4}",
            us_s.mean, us_s.std_dev, uh_s.mean, uh_s.std_dev
        );
        rows.push(seleth_bench::cells(&[
            alpha,
            us_t,
            us_s.mean,
            us_s.std_dev,
            uh_t,
            uh_s.mean,
            uh_s.std_dev,
        ]));
    }

    let path = seleth_bench::write_csv(
        "fig8_revenue_vs_alpha.csv",
        &[
            "alpha",
            "us_theory",
            "us_sim",
            "us_std",
            "uh_theory",
            "uh_sim",
            "uh_std",
        ],
        &rows,
    );
    println!("\nPaper anchors: crossing Us = α at α ≈ 0.163; small losses below it.");
    println!("wrote {}", path.display());
}
