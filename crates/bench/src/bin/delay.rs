//! Extension experiment: uncle rewards as centralization medicine.
//!
//! The premise the paper inherits from Ethereum's design rationale
//! (Section VI): under propagation delay, a large miner orphans fewer of
//! its own blocks and earns a super-proportional share; paying uncles
//! compresses that edge. This experiment measures the big miner's
//! *advantage* (revenue share ÷ hash share) across delays, under Bitcoin
//! vs Ethereum reward schedules, in an all-honest network — no attack at
//! all.

use seleth_chain::RewardSchedule;
use seleth_sim::delay::{DelayConfig, DelaySimulation};

fn run(delay: f64, schedule: RewardSchedule, seed: u64) -> seleth_sim::delay::DelayReport {
    let config = DelayConfig::builder()
        // One 30% miner against seven 10% miners (2018-Ethermine-like).
        .shares(vec![0.3, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1])
        .delay(delay)
        .interval(13.0)
        .blocks(200_000)
        .seed(seed)
        .schedule(schedule)
        .build()
        .expect("valid config");
    DelaySimulation::new(config).run()
}

fn main() {
    println!("Uncle rewards vs centralization (all-honest network, 13s blocks)\n");
    println!(
        "{:>9} {:>12} {:>14} {:>14} {:>12}",
        "delay[s]", "orphan_rate", "adv30_bitcoin", "adv30_ethereum", "compression"
    );

    let mut rows = Vec::new();
    for &delay in &[0.0, 2.0, 4.0, 6.0, 9.0, 13.0] {
        let btc = run(delay, RewardSchedule::bitcoin(), 77);
        let eth = run(delay, RewardSchedule::ethereum(), 77);
        let adv_btc = btc.advantage(0);
        let adv_eth = eth.advantage(0);
        let compression = if adv_btc > 1.0 {
            (adv_btc - adv_eth) / (adv_btc - 1.0) * 100.0
        } else {
            0.0
        };
        println!(
            "{delay:>9.1} {:>12.4} {adv_btc:>14.4} {adv_eth:>14.4} {compression:>11.1}%",
            btc.orphan_rate()
        );
        rows.push(seleth_bench::cells(&[
            delay,
            btc.orphan_rate(),
            adv_btc,
            adv_eth,
        ]));
    }

    let path = seleth_bench::write_csv(
        "delay_centralization.csv",
        &[
            "delay",
            "orphan_rate",
            "advantage_bitcoin",
            "advantage_ethereum",
        ],
        &rows,
    );
    println!("\nReading: 'advantage' is the 30% miner's revenue share over its hash");
    println!("share (1.0 = fair). Without uncle rewards the advantage grows with the");
    println!("delay; Ethereum's uncle rewards claw most of it back — the economic");
    println!("reason the rewards exist, and the security trade-off the paper analyses.");
    println!("wrote {}", path.display());
}
