//! Cross-validation experiment: solve the MDP, export the optimal policy
//! as an artifact, replay it through the Monte-Carlo simulator, and
//! compare measured revenue against the predicted ρ*.
//!
//! Every point — the Bitcoin grid *and* the Ethereum-model point — is
//! **gated**: simulated mean revenue must match ρ* within 3 standard
//! errors *and* 1% absolute (exit code 1 otherwise) — the
//! executable-artifact analogue of `tests/policy_playback.rs`. The
//! Ethereum point exports a four-axis (`match_d`-aware) format-2
//! artifact, so its replay is the exact optimum, not a projection (see
//! `seleth_mdp::policy`).
//!
//! Artifacts land in `results/policies/` (see the README's "Policy
//! subsystem" section for the format); the comparison table is written to
//! `results/optimal_sim.csv` and, with solver/simulator telemetry, to
//! `results/optimal_sim.json`. `--trace <path>` additionally dumps span
//! events as JSON lines. Environment knobs: `SELETH_RUNS` (8),
//! `SELETH_BLOCKS` (50 000), `SELETH_MDP_LEN` (30), `SELETH_RESULTS`,
//! `SELETH_POLICIES` (artifact directory override).
//!
//! With `--audit` the binary instead verifies the committed artifact set
//! (no solving, no simulation, no network): every `*.json` under the
//! policies directory must parse, pass the
//! [`PolicyTable::is_legal_everywhere`] audit, and re-save
//! byte-identically; exit code 1 otherwise. This is the CI compat gate
//! for the artifact format.

use seleth_bench::json_f64;
use seleth_bench::report::{trace_arg, write_trace};
use seleth_chain::{RewardSchedule, Scenario};
use seleth_mdp::{MdpConfig, PolicyTable, RewardModel};
use seleth_obs::{NoopRecorder, Recorder, Stopwatch, Telemetry, TraceLog};
use seleth_sim::{multi, SimConfig};

struct Point {
    alpha: f64,
    gamma: f64,
    rewards: RewardModel,
    /// Whether the 3σ/1% agreement gate applies.
    gated: bool,
}

/// `--audit`: load every artifact in the policies directory, audit its
/// legality and its byte-identical re-save, and exit non-zero on any
/// unreadable, illegal or unstable table.
fn audit_artifacts() -> ! {
    let dir = seleth_bench::policies_dir();
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read policies dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().and_then(|e| e.to_str()) == Some("json")).then_some(path)
        })
        .collect();
    paths.sort();
    println!("Artifact-compat audit over {}\n", dir.display());
    let mut failed = false;
    for path in &paths {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                println!("{name:>32}  FAIL (unreadable: {e})");
                failed = true;
                continue;
            }
        };
        match PolicyTable::from_json(&text) {
            Err(e) => {
                println!("{name:>32}  FAIL (parse: {e})");
                failed = true;
            }
            Ok(table) => {
                let legal = table.is_legal_everywhere();
                let stable = table.to_json() == text;
                let dims: Vec<String> = table
                    .state_space()
                    .dims()
                    .into_iter()
                    .map(|(n, s)| format!("{n}:{s}"))
                    .collect();
                let verdict = if legal && stable { "ok" } else { "FAIL" };
                failed |= !(legal && stable);
                println!(
                    "{name:>32}  {verdict} (legal: {legal}, byte-identical: {stable}, \
                     dims [{}])",
                    dims.join(", ")
                );
            }
        }
    }
    if paths.is_empty() {
        eprintln!("FAIL: no artifacts found under {}", dir.display());
        failed = true;
    }
    if failed {
        eprintln!("\nFAIL: the committed artifact set is not replayable");
        std::process::exit(1);
    }
    println!("\nall {} artifacts legal and byte-stable", paths.len());
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|arg| arg == "--audit") {
        audit_artifacts();
    }
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = if trace_path.is_some() {
        &trace
    } else {
        &NoopRecorder
    };
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let runs = seleth_bench::env_u64("SELETH_RUNS", 8);
    let blocks = seleth_bench::env_u64("SELETH_BLOCKS", 50_000);
    let max_len = u32::try_from(seleth_bench::env_u64("SELETH_MDP_LEN", 30)).unwrap_or(30);

    // One point below the γ = 0.5 profitability threshold (optimal play is
    // honest, ρ* = α), two above, plus the Ethereum-model point — gated
    // like the rest since the four-axis lowering made its replay exact.
    let points = [
        Point {
            alpha: 0.20,
            gamma: 0.5,
            rewards: RewardModel::Bitcoin,
            gated: true,
        },
        Point {
            alpha: 0.35,
            gamma: 0.0,
            rewards: RewardModel::Bitcoin,
            gated: true,
        },
        Point {
            alpha: 0.40,
            gamma: 0.5,
            rewards: RewardModel::Bitcoin,
            gated: true,
        },
        Point {
            alpha: 0.30,
            gamma: 0.5,
            rewards: RewardModel::EthereumApprox,
            gated: true,
        },
    ];

    println!(
        "Optimal-policy playback: MDP rho* vs simulation \
         ({runs} runs x {blocks} blocks, MDP len {max_len})\n"
    );
    println!(
        "{:>6} {:>6} {:>9} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "alpha", "gamma", "model", "rho_mdp", "us_sim", "std_err", "sigmas", "verdict"
    );

    let policies_dir = seleth_bench::policies_dir();
    let mut rows = Vec::new();
    let mut point_rows = Vec::new();
    let mut failed = false;
    let mut solve_ns = 0u64;
    let mut sim_ns = 0u64;
    let mut warm_rates = Vec::new();
    for p in &points {
        let config = MdpConfig::new(p.alpha, p.gamma, p.rewards).with_max_len(max_len);
        let solving = Stopwatch::start();
        let solution = config.solve().expect("mdp solve");
        solve_ns += solving.elapsed_ns();
        let stats = &solution.stats;
        telemetry.add("solver.bisections", stats.bisection_steps as u64);
        telemetry.add(
            "solver.sweeps",
            stats.sweeps_per_iterate.iter().map(|&s| s as u64).sum(),
        );
        for &sweeps in &stats.sweeps_per_iterate {
            telemetry.observe("solver.sweeps_per_iterate", sweeps as u64);
        }
        telemetry.add("solver.warm_start_hits", stats.warm_start_hits as u64);
        warm_rates.push(stats.warm_start_hit_rate());
        let table = PolicyTable::from_solution(&config, &solution);

        // The artifact is the product under test: save, reload, replay the
        // loaded copy.
        let (model, schedule) = match p.rewards {
            RewardModel::Bitcoin => ("bitcoin", RewardSchedule::bitcoin()),
            RewardModel::EthereumApprox => ("ethereum", RewardSchedule::ethereum()),
        };
        let path = policies_dir.join(format!(
            "{model}_a{:03.0}_g{:03.0}.json",
            p.alpha * 100.0,
            p.gamma * 100.0
        ));
        table.save(&path).expect("save policy artifact");
        let loaded = PolicyTable::load(&path).expect("reload policy artifact");
        assert_eq!(table, loaded, "artifact round-trip must be lossless");

        let sim_config = SimConfig::builder()
            .alpha(p.alpha)
            .gamma(p.gamma)
            .schedule(schedule)
            .blocks(blocks)
            .n_honest(100)
            .seed(31_337)
            .policy(loaded)
            .build()
            .expect("valid sim config");
        let simulating = Stopwatch::start();
        let (reports, shards) = multi::run_many_recorded(&sim_config, runs, 0, recorder);
        sim_ns += simulating.elapsed_ns();
        for shard in &shards {
            telemetry.fold_shard(shard);
        }
        let us = multi::mean_absolute_pool(&reports, Scenario::RegularRate);
        let std_err = us.std_dev / (runs as f64).sqrt();
        let diff = (us.mean - solution.revenue).abs();
        let sigmas = if std_err > 0.0 { diff / std_err } else { 0.0 };

        let verdict = if !p.gated {
            "info"
        } else if diff <= 3.0 * std_err && diff <= 0.01 {
            "ok"
        } else {
            failed = true;
            "FAIL"
        };
        println!(
            "{:>6.2} {:>6.2} {model:>9} {:>10.5} {:>10.5} {:>9.5} {sigmas:>8.2} {verdict:>8}",
            p.alpha, p.gamma, solution.revenue, us.mean, std_err
        );
        let mut row = seleth_bench::cells(&[p.alpha, p.gamma, solution.revenue, us.mean, std_err]);
        row.insert(2, model.to_string());
        row.push(verdict.to_string());
        rows.push(row);
        point_rows.push(format!(
            "    {{\"alpha\": {}, \"gamma\": {}, \"model\": \"{model}\", \"rho_mdp\": {}, \
             \"us_sim\": {}, \"std_err\": {}, \"verdict\": \"{verdict}\"}}",
            json_f64(p.alpha),
            json_f64(p.gamma),
            json_f64(solution.revenue),
            json_f64(us.mean),
            json_f64(std_err)
        ));
    }

    let csv = seleth_bench::write_csv(
        "optimal_sim.csv",
        &[
            "alpha", "gamma", "model", "rho_mdp", "us_sim", "std_err", "verdict",
        ],
        &rows,
    );
    telemetry.add_phase("solve", solve_ns);
    telemetry.add_phase("simulate", sim_ns);
    telemetry.wall_ns = wall.elapsed_ns();
    telemetry.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
    telemetry.set_gauge(
        "solver.warm_start_hit_rate",
        warm_rates.iter().sum::<f64>() / warm_rates.len().max(1) as f64,
    );
    let json = format!(
        "{{\n  \"kind\": \"seleth-optimal-sim\",\n  \"format\": 1,\n  \
         \"runs\": {runs},\n  \"blocks\": {blocks},\n  \"mdp_len\": {max_len},\n  \
         \"points\": [\n{}\n  ],\n  \"telemetry\": {}\n}}\n",
        point_rows.join(",\n"),
        telemetry.to_json(2)
    );
    let json_path = seleth_bench::write_text("optimal_sim.json", &json);
    println!("\npolicies under {}", policies_dir.display());
    println!("wrote {}", csv.display());
    println!("wrote {}", json_path.display());
    write_trace(&trace, trace_path.as_ref());

    if failed {
        eprintln!("FAIL: a gated point disagrees with its MDP prediction");
        std::process::exit(1);
    }
    println!("all gated points agree within 3 standard errors and 1% absolute");
}
