//! Experiment harness for the reproduction of *Selfish Mining in Ethereum*
//! (Niu & Feng, ICDCS 2019).
//!
//! Each table and figure of the paper's evaluation has a dedicated binary
//! (run with `cargo run --release -p seleth-bench --bin <name>`):
//!
//! | Binary       | Reproduces |
//! |--------------|------------|
//! | `table1`     | Table I — reward types in Ethereum vs Bitcoin |
//! | `fig6`       | Fig. 6 — mining-pool hash-power shares (2018-09) |
//! | `stationary` | Fig. 7 / Eq. (2) — stationary-distribution self-check |
//! | `fig8`       | Fig. 8 — absolute revenue vs α, theory + simulation |
//! | `fig9`       | Fig. 9 — revenue under different uncle rewards |
//! | `fig10`      | Fig. 10 — profitability thresholds vs γ |
//! | `table2`     | Table II — honest uncle reference distances |
//! | `discussion` | Section VI — redesigned reward function thresholds |
//!
//! Extension experiments beyond the paper:
//!
//! | Binary        | What it studies |
//! |---------------|-----------------|
//! | `strategies`  | Honest vs Algorithm 1 vs Lead-Stubborn, all simulated |
//! | `optimal`     | MDP-optimal revenue vs Algorithm 1 (Bitcoin + Ethereum) |
//! | `optimal_sim` | Exported optimal policies replayed in the simulator, gated vs ρ* |
//! | `delay`       | Propagation-delay sensitivity of the simulator (all honest) |
//! | `optimal_delay` | Optimal artifacts replayed *under delay*: ρ* degradation study (`delay_study.json`) |
//! | `optimal_closed_loop` | Race-window (delay-aware) artifacts vs the zero-delay optimum under delay, gated (`optimal_closed_loop.json`) |
//! | `strategy_zoo` | Hand-written strategy families vs the optimum, incl. multi-strategist matchups (`zoo_study.json`; lives in `seleth-zoo`) |
//! | `chaos_study` | Strategic replay under injected faults: loss × churn × partition grid (`chaos_study.json`; lives in `seleth-zoo`) |
//! | `ablation_truncation` | Model-truncation bias ablation |
//! | `bench_solver` | Perf trajectory of the numeric kernels (`BENCH_solver.json`) |
//! | `bench_sim`   | Simulator throughput trajectory (`BENCH_sim.json`) |
//!
//! Binaries print the same rows/series the paper reports and write CSV
//! files under `results/` (override with `SELETH_RESULTS`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never a panic, on
// untrusted input; invariant violations use `expect` with a message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use seleth_obs::{Recorder, Stopwatch, TelemetryShard};

pub mod report;

/// Directory where experiment CSVs are written: `$SELETH_RESULTS` if set,
/// else `./results` relative to the current directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("SELETH_RESULTS").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Directory holding exported policy artifacts: `$SELETH_POLICIES` if
/// set, else `policies/` inside [`results_dir`]. The override lets CI
/// redirect experiment *output* to a scratch directory while still
/// replaying the committed artifacts.
pub fn policies_dir() -> PathBuf {
    std::env::var_os("SELETH_POLICIES")
        .map_or_else(|| results_dir().join("policies"), PathBuf::from)
}

/// Load a policy artifact `<name>.json` from [`policies_dir`], or solve
/// it at `(alpha, gamma, rewards, max_len)` and save it when absent —
/// so experiment bins stay self-contained on fresh checkouts and scratch
/// `SELETH_POLICIES` directories. A cached file whose metadata disagrees
/// with the request (e.g. a committed default-truncation artifact under
/// a `SELETH_MDP_LEN` override — the truncation is not in the filename)
/// is re-solved rather than silently returned mislabeled; the existing
/// file is left untouched (only missing artifacts are written, so a
/// knob override can never clobber the committed set).
///
/// # Panics
///
/// Panics when the solve or the save fails: experiment binaries have no
/// recovery path.
pub fn load_or_solve_policy(
    name: &str,
    alpha: f64,
    gamma: f64,
    rewards: seleth_mdp::RewardModel,
    max_len: u32,
) -> seleth_mdp::PolicyTable {
    load_or_solve_policy_delay(name, alpha, gamma, rewards, max_len, 0.0)
}

/// [`load_or_solve_policy`] for delay-aware artifacts: the solve runs on
/// the race-window kernel at `delay_ratio` (propagation delay / mean
/// block interval; `0.0` is exactly the classic kernel) and a cached
/// file must additionally match the requested ratio to be returned.
///
/// # Panics
///
/// As [`load_or_solve_policy`].
pub fn load_or_solve_policy_delay(
    name: &str,
    alpha: f64,
    gamma: f64,
    rewards: seleth_mdp::RewardModel,
    max_len: u32,
    delay_ratio: f64,
) -> seleth_mdp::PolicyTable {
    let path = policies_dir().join(format!("{name}.json"));
    let mut save_solved = true;
    if let Ok(table) = seleth_mdp::PolicyTable::load(&path) {
        if table.alpha() == alpha
            && table.gamma() == gamma
            && table.rewards() == rewards
            && table.max_len() == max_len
            && table.delay() == delay_ratio
        {
            return table;
        }
        eprintln!("  (artifact {name} metadata disagrees with the request; re-solving)");
        save_solved = false;
    } else {
        eprintln!("  (artifact {name} missing; solving)");
    }
    let config = seleth_mdp::MdpConfig::new(alpha, gamma, rewards)
        .with_max_len(max_len)
        .with_delay_ratio(delay_ratio);
    let solution = config.solve().expect("mdp solve");
    let table = seleth_mdp::PolicyTable::from_solution(&config, &solution);
    if save_solved {
        table.save(&path).expect("save policy artifact");
    }
    table
}

/// Shortest-round-trip float formatting for hand-rolled JSON output (the
/// vendored serde is marker-only), matching the policy-artifact format.
pub fn json_f64(v: f64) -> String {
    format!("{v}")
}

/// The host fingerprint block shared by every perf artifact: both bench
/// bins embed it as their `"host"` field and [`append_history_row`] stamps
/// it into every ledger row, so the trend gate can restrict comparisons to
/// rows from a comparable machine (`os`/`arch`/`available_parallelism` —
/// the axes that move the headline numbers).
pub fn host_fingerprint_json() -> String {
    format!(
        "{{\"os\": \"{}\", \"arch\": \"{}\", \"available_parallelism\": {}}}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    )
}

/// The current git commit sha, read by hand from `.git/HEAD` (following
/// one `ref:` indirection, with a `packed-refs` fallback) — no subprocess,
/// so the bins stay runnable in minimal containers. Walks up from the
/// current directory to find the repository root; `"unknown"` outside a
/// checkout.
pub fn git_sha() -> String {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(text) = fs::read_to_string(&head) {
            let text = text.trim();
            let Some(refname) = text.strip_prefix("ref: ") else {
                return text.to_string(); // detached HEAD: the sha itself
            };
            let refname = refname.trim();
            if let Ok(sha) = fs::read_to_string(dir.join(".git").join(refname)) {
                return sha.trim().to_string();
            }
            if let Ok(packed) = fs::read_to_string(dir.join(".git").join("packed-refs")) {
                for line in packed.lines() {
                    if let Some(sha) = line.strip_suffix(refname) {
                        return sha.trim().to_string();
                    }
                }
            }
            return "unknown".to_string();
        }
        if !dir.pop() {
            return "unknown".to_string();
        }
    }
}

/// Append one perf-trajectory snapshot row for `bin` to
/// `BENCH_history.jsonl` in [`results_dir`]: git sha, Unix timestamp, the
/// [`host_fingerprint_json`] block and the headline `metrics`. One row per
/// bench run — the ledger the `perf_report --trend` gate walks.
///
/// # Panics
///
/// Panics on I/O failure: experiment binaries have no recovery path.
pub fn append_history_row(bin: &str, metrics: &[(&str, f64)]) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join("BENCH_history.jsonl");
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let metrics_json: Vec<String> = metrics
        .iter()
        .map(|(k, v)| format!("\"{k}\": {}", json_f64(*v)))
        .collect();
    let row = format!(
        "{{\"bin\": \"{bin}\", \"git_sha\": \"{}\", \"unix_time\": {unix_time}, \
         \"host\": {}, \"metrics\": {{{}}}}}\n",
        git_sha(),
        host_fingerprint_json(),
        metrics_json.join(", ")
    );
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open BENCH_history.jsonl");
    file.write_all(row.as_bytes()).expect("append history row");
    path
}

/// Write a text file (e.g. hand-rolled JSON) into [`results_dir`],
/// creating the directory if needed.
///
/// # Panics
///
/// Panics on I/O failure: experiment binaries have no recovery path and a
/// loud failure beats silently missing output.
pub fn write_text(name: &str, contents: &str) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(name);
    fs::write(&path, contents).expect("write results file");
    path
}

/// Write a CSV file into [`results_dir`], creating the directory if needed.
///
/// # Panics
///
/// Panics on I/O failure: experiment binaries have no recovery path and a
/// loud failure beats silently missing output.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(name);
    let mut file = fs::File::create(&path).expect("create CSV file");
    writeln!(file, "{}", header.join(",")).expect("write CSV header");
    for row in rows {
        writeln!(file, "{}", row.join(",")).expect("write CSV row");
    }
    path
}

/// Evaluate `f` over `items` in parallel with a shared work queue,
/// returning results in input order.
///
/// This is the sweep-point analogue of `seleth_sim::multi::run_many`'s
/// scheduler: workers pull item indices from an atomic counter (no
/// up-front chunking, so heterogeneous cell costs stay load-balanced) and
/// the output is collected by index. As long as `f` is a pure function of
/// its item, the result is bit-identical for every thread count —
/// experiment sweeps parallelized through this helper cannot drift when
/// the host's core count changes. `threads = 0` uses
/// `available_parallelism`.
///
/// # Panics
///
/// Panics if a worker panics (i.e. `f` itself panicked).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    if items.is_empty() {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(items.len())
    .max(1);
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= items.len() {
                            break;
                        }
                        produced.push((k, f(&items[k])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (k, r) in handle.join().expect("par_map worker panicked") {
                results[k] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// [`par_map`] with per-worker telemetry: each worker carries a
/// [`TelemetryShard`] that `f` can fold domain counters into, and the
/// scheduler itself records tasks claimed, busy time and queue-wait time
/// per worker. Results are bit-identical to [`par_map`] at any thread
/// count; shard *counter totals* merge to the same values in any worker
/// grouping (wall-clock fields are measurements, not deterministic).
///
/// When `recorder.enabled()`, one `"task"` span per item is emitted so a
/// `--trace` run can reconstruct the schedule.
///
/// # Panics
///
/// Panics if a worker panics (i.e. `f` itself panicked).
pub fn par_map_traced<T, R, F>(
    items: &[T],
    threads: usize,
    recorder: &dyn Recorder,
    f: F,
) -> (Vec<R>, Vec<TelemetryShard>)
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut TelemetryShard) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    if items.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(items.len())
    .max(1);

    let next = AtomicUsize::new(0);
    let work = |worker: usize, next: &AtomicUsize| {
        let mut shard = TelemetryShard::new(worker);
        let mut produced: Vec<(usize, R)> = Vec::new();
        loop {
            let idle = Stopwatch::start();
            let k = next.fetch_add(1, Ordering::Relaxed);
            shard.queue_wait_ns += idle.elapsed_ns();
            if k >= items.len() {
                break;
            }
            let busy = Stopwatch::start();
            let started = recorder.now_ns();
            produced.push((k, f(&items[k], &mut shard)));
            shard.busy_ns += busy.elapsed_ns();
            shard.tasks += 1;
            if recorder.enabled() {
                recorder.span("task", worker, started, recorder.now_ns());
            }
        }
        (produced, shard)
    };

    if threads == 1 {
        let (produced, shard) = work(0, &next);
        let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (k, r) in produced {
            results[k] = Some(r);
        }
        return (
            results
                .into_iter()
                .map(|r| r.expect("all slots filled"))
                .collect(),
            vec![shard],
        );
    }

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut shards = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let work = &work;
                scope.spawn(move || work(worker, next))
            })
            .collect();
        for handle in handles {
            let (produced, shard) = handle.join().expect("par_map worker panicked");
            for (k, r) in produced {
                results[k] = Some(r);
            }
            shards.push(shard);
        }
    });
    (
        results
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect(),
        shards,
    )
}

/// Read an integer experiment knob from the environment, falling back to
/// `default` when unset or unparsable.
pub fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Inclusive floating-point range with a fixed step, robust to rounding
/// (e.g. `sweep(0.0, 0.45, 0.025)` yields 19 points ending exactly at 0.45).
pub fn sweep(start: f64, end: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "step must be positive");
    let n = ((end - start) / step).round() as usize;
    (0..=n).map(|k| start + k as f64 * step).collect()
}

/// Render a row of f64 cells to CSV strings with 6 significant digits.
pub fn cells(values: &[f64]) -> Vec<String> {
    values.iter().map(|v| format!("{v:.6}")).collect()
}

/// Sample mean and standard error of the mean — the `(mean, std_err)`
/// pair every multi-run experiment gate is phrased in. Zero standard
/// error for fewer than two samples.
pub fn mean_stderr(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = if values.len() > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_endpoints_exact() {
        let s = sweep(0.0, 0.45, 0.025);
        assert_eq!(s.len(), 19);
        assert_eq!(s[0], 0.0);
        assert!((s[18] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn sweep_single_point() {
        assert_eq!(sweep(0.5, 0.5, 0.1), vec![0.5]);
    }

    #[test]
    fn mean_stderr_matches_hand_computation() {
        assert_eq!(mean_stderr(&[]), (0.0, 0.0));
        assert_eq!(mean_stderr(&[3.0]), (3.0, 0.0));
        let (mean, se) = mean_stderr(&[1.0, 2.0, 3.0, 4.0]);
        assert!((mean - 2.5).abs() < 1e-12);
        // Sample variance 5/3; standard error sqrt(5/12).
        assert!((se - (5.0f64 / 12.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn par_map_preserves_order_and_thread_invariance() {
        let items: Vec<u64> = (0..23).collect();
        let reference: Vec<u64> = items.iter().map(|v| v * v).collect();
        for threads in [0, 1, 2, 7, 64] {
            let out = par_map(&items, threads, |v| v * v);
            assert_eq!(out, reference, "threads={threads}");
        }
        assert_eq!(par_map::<u64, u64, _>(&[], 4, |v| *v), Vec::<u64>::new());
    }

    #[test]
    fn par_map_traced_is_thread_invariant_and_counts_work() {
        let items: Vec<u64> = (0..17).collect();
        let reference: Vec<u64> = items.iter().map(|v| v * 3).collect();
        for threads in [1, 2, 8] {
            let (out, shards) =
                par_map_traced(&items, threads, &seleth_obs::NoopRecorder, |v, shard| {
                    shard.add("item.sum", *v);
                    v * 3
                });
            assert_eq!(out, reference, "threads={threads}");
            assert_eq!(shards.iter().map(|s| s.tasks).sum::<u64>(), 17);
            // Counter totals are bit-identical in any worker grouping.
            assert_eq!(
                shards.iter().map(|s| s.counter("item.sum")).sum::<u64>(),
                items.iter().sum::<u64>(),
                "threads={threads}"
            );
        }
        let trace = seleth_obs::TraceLog::new();
        let (_, shards) = par_map_traced(&items, 2, &trace, |v, _| *v);
        assert_eq!(trace.len(), items.len(), "one span per task");
        assert!(shards.iter().all(|s| s.tasks == 0 || s.busy_ns > 0));
    }

    /// Serializes the tests that mutate `SELETH_*` environment variables.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn text_files_land_in_results() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("seleth-bench-text-test");
        std::env::set_var("SELETH_RESULTS", &dir);
        let path = write_text("t.json", "{\"ok\": true}\n");
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "{\"ok\": true}\n");
        // Policies default to a subdirectory of the results dir...
        assert_eq!(policies_dir(), dir.join("policies"));
        // ...unless explicitly redirected.
        std::env::set_var("SELETH_POLICIES", "/tmp/elsewhere");
        assert_eq!(policies_dir(), PathBuf::from("/tmp/elsewhere"));
        std::env::remove_var("SELETH_POLICIES");
        std::env::remove_var("SELETH_RESULTS");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn history_rows_round_trip_through_the_trend_parser() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("seleth-bench-history-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("SELETH_RESULTS", &dir);
        let path = append_history_row(
            "bench_sim",
            &[
                ("single_run_blocks_per_sec", 1.0e6),
                ("single_run_ms", 200.0),
            ],
        );
        append_history_row(
            "bench_sim",
            &[
                ("single_run_blocks_per_sec", 1.05e6),
                ("single_run_ms", 190.0),
            ],
        );
        std::env::remove_var("SELETH_RESULTS");
        let text = std::fs::read_to_string(&path).unwrap();
        let rows = seleth_obs::parse_history(&text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].bin, "bench_sim");
        // Both rows carry this host's fingerprint, so they are comparable.
        assert_eq!(rows[0].host, rows[1].host);
        assert!(rows[0].host.contains(std::env::consts::ARCH));
        let report = seleth_obs::evaluate_trend(&rows, 1.5);
        assert!(report.passed(), "{}", report.rendered);
        assert_eq!(
            report.compared, 2,
            "both metrics of the bench_sim pair compare"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn git_sha_reads_this_checkout() {
        let sha = git_sha();
        // This test runs inside the repository, so a real sha is expected:
        // 40 hex characters, stable across two reads.
        assert_eq!(sha.len(), 40, "sha: {sha}");
        assert!(sha.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(sha, git_sha());
    }

    #[test]
    fn csv_roundtrip() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("seleth-bench-test");
        std::env::set_var("SELETH_RESULTS", &dir);
        let path = write_csv(
            "t.csv",
            &["a", "b"],
            &[cells(&[1.0, 2.0]), cells(&[3.5, 4.25])],
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("3.500000,4.250000"));
        std::env::remove_var("SELETH_RESULTS");
    }
}
