//! Solver benchmarks and the truncation/method ablation called out in
//! DESIGN.md: how expensive is the stationary solve at the paper's
//! truncation level (200), and how do Gauss–Seidel and power iteration
//! compare on this banded chain?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use seleth_chain::RewardSchedule;
use seleth_core::{stationary, ModelParams, State};
use seleth_markov::{SolveMethod, SolveOptions};

fn params(truncation: u32) -> ModelParams {
    ModelParams::with_truncation(0.4, 0.5, RewardSchedule::ethereum(), truncation)
        .expect("valid params")
}

fn bench_truncation(c: &mut Criterion) {
    let mut group = c.benchmark_group("stationary_truncation");
    for &n in &[50u32, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = params(n);
            b.iter(|| stationary::solve(black_box(&p)).expect("solve"));
        });
    }
    group.finish();
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("stationary_method");
    let p = params(80);
    for (name, method) in [
        ("gauss_seidel", SolveMethod::GaussSeidel),
        ("power", SolveMethod::PowerIteration),
    ] {
        let opts = SolveOptions {
            method,
            tolerance: 1e-12,
            max_iterations: 5_000_000,
            check_irreducible: false,
        };
        group.bench_function(name, |b| {
            b.iter(|| stationary::solve_with(black_box(&p), opts).expect("solve"));
        });
    }
    group.finish();
}

fn bench_closed_form(c: &mut Criterion) {
    c.bench_function("pi_closed_form_grid_15", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 2..=15u32 {
                for j in 0..=(i - 2) {
                    acc += stationary::pi_closed_form(
                        black_box(0.4),
                        black_box(0.5),
                        State::new(i, j),
                    );
                }
            }
            acc
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_truncation, bench_methods, bench_closed_form
);
criterion_main!(benches);
