//! End-to-end benchmarks of the building blocks behind each experiment:
//! a full revenue evaluation (the Fig. 8/9 per-point cost), a threshold
//! solve (the Fig. 10 per-point cost), and the Table II distance
//! computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use seleth_chain::{RewardSchedule, Scenario};
use seleth_core::threshold::{profitability_threshold, ThresholdOptions};
use seleth_core::{Analysis, ModelParams};

fn bench_revenue_point(c: &mut Criterion) {
    let params = ModelParams::with_truncation(0.4, 0.5, RewardSchedule::ethereum(), 150)
        .expect("valid params");
    c.bench_function("revenue_breakdown_point", |b| {
        b.iter(|| {
            let analysis = Analysis::new(black_box(&params)).expect("solve");
            analysis.revenue().absolute_pool(Scenario::RegularRate)
        });
    });
}

fn bench_threshold_point(c: &mut Criterion) {
    let opts = ThresholdOptions {
        truncation: 80,
        tolerance: 1e-3,
        ..Default::default()
    };
    c.bench_function("threshold_point_gamma_0_5", |b| {
        b.iter(|| {
            profitability_threshold(
                black_box(0.5),
                &RewardSchedule::ethereum(),
                Scenario::RegularRate,
                opts,
            )
            .expect("solver")
        });
    });
}

fn bench_distance_distribution(c: &mut Criterion) {
    let params = ModelParams::with_truncation(0.45, 0.5, RewardSchedule::ethereum(), 150)
        .expect("valid params");
    let analysis = Analysis::new(&params).expect("solve");
    c.bench_function("table2_distance_distribution", |b| {
        b.iter(|| black_box(&analysis).honest_uncle_distances().expectation());
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_revenue_point, bench_threshold_point, bench_distance_distribution
);
criterion_main!(benches);
