//! Benchmarks for the two numeric kernels the paper's headline numbers
//! funnel through: the CSR SpMV at the heart of the stationary solvers and
//! the Dinkelbach MDP solve.
//!
//! The MDP comparison pits the single-expansion solver (the transition
//! table is flattened once per solve and re-weighted per ρ candidate)
//! against the legacy behaviour of re-expanding the table on every ρ
//! iterate; the single-expansion path must win by ≥ 2× (tracked in
//! `BENCH_solver.json`, see the `bench_solver` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use seleth_chain::RewardSchedule;
use seleth_core::ModelParams;
use seleth_mdp::{MdpConfig, RewardModel};

fn bench_csr_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_spmv");
    for &truncation in &[100u32, 200] {
        let params = ModelParams::with_truncation(0.4, 0.5, RewardSchedule::ethereum(), truncation)
            .expect("valid params");
        let dtmc = seleth_core::chain_model::build_dtmc(&params);
        let matrix = dtmc.matrix().clone();
        let n = matrix.n_rows();
        let pi = vec![1.0 / n as f64; n];
        let mut out = vec![0.0; n];
        group.throughput(Throughput::Elements(matrix.nnz() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(truncation),
            &truncation,
            |b, _| {
                b.iter(|| {
                    matrix.left_mul_vec(black_box(&pi), &mut out);
                    black_box(out[0])
                });
            },
        );
    }
    group.finish();
}

fn bench_mdp_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdp_solve");
    for (name, rewards) in [
        ("bitcoin", RewardModel::Bitcoin),
        ("ethereum", RewardModel::EthereumApprox),
    ] {
        group.bench_function(name, |b| {
            let config = MdpConfig::new(0.35, 0.5, rewards).with_max_len(20);
            b.iter(|| black_box(&config).solve().expect("mdp solve"));
        });
    }
    group.finish();
}

fn bench_mdp_expansion_reuse(c: &mut Criterion) {
    // Head-to-head: one expansion per solve vs one expansion per ρ iterate.
    let mut group = c.benchmark_group("mdp_expansion");
    let config = MdpConfig::new(0.35, 0.5, RewardModel::Bitcoin).with_max_len(20);
    group.bench_function("single_expansion", |b| {
        b.iter(|| black_box(&config).solve().expect("mdp solve"));
    });
    group.bench_function("reexpand_per_rho", |b| {
        b.iter(|| black_box(&config).solve_reexpanding().expect("mdp solve"));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_csr_spmv, bench_mdp_solve, bench_mdp_expansion_reuse
);
criterion_main!(benches);
