//! Simulator throughput benchmarks and the uncle-cap ablation from
//! DESIGN.md: blocks/second of the tree-backed engine under the paper's
//! unlimited-references assumption, the real protocol's cap of two, and
//! the Bitcoin schedule (no referencing at all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use seleth_chain::RewardSchedule;
use seleth_sim::{SimConfig, Simulation};

const BLOCKS: u64 = 20_000;

fn config(schedule: RewardSchedule, alpha: f64) -> SimConfig {
    SimConfig::builder()
        .alpha(alpha)
        .gamma(0.5)
        .schedule(schedule)
        .blocks(BLOCKS)
        .n_honest(999)
        .seed(5)
        .build()
        .expect("valid config")
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_20k_blocks");
    group.throughput(Throughput::Elements(BLOCKS));
    for (name, schedule) in [
        ("ethereum_unlimited", RewardSchedule::ethereum()),
        ("ethereum_cap2", RewardSchedule::ethereum_capped()),
        ("bitcoin", RewardSchedule::bitcoin()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| Simulation::new(black_box(config(schedule.clone(), 0.35))).run());
        });
    }
    group.finish();
}

fn bench_alpha_levels(c: &mut Criterion) {
    // Higher α → longer private branches → more strategy bookkeeping.
    let mut group = c.benchmark_group("simulate_alpha");
    group.throughput(Throughput::Elements(BLOCKS));
    for &alpha in &[0.0, 0.25, 0.45] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            b.iter(|| Simulation::new(black_box(config(RewardSchedule::ethereum(), alpha))).run());
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedules, bench_alpha_levels
);
criterion_main!(benches);
