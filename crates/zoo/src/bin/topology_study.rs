//! Topology study: where an attacker sits in the peer graph changes what
//! withholding pays.
//!
//! The delay engine's uniform model gives every miner the same `delay`-
//! second view lag — the paper's Section V propagation model. Real gossip
//! networks are graphs: blocks radiate from the producer along peer links,
//! so a well-connected miner hears (and is heard) sooner than a peripheral
//! one. This study swaps in `seleth-net` topologies via
//! [`seleth_sim::delay::PropagationModel::Graph`] and asks two questions:
//!
//! 1. **Position**: at a *fixed mean pairwise latency*, does moving the
//!    strategist from the hub of a star to its rim change its revenue?
//!    (`hub_attacker` vs `leaf_attacker` — the gated spread.)
//! 2. **Relay networks**: does overlaying a compact-relay shortcut on a
//!    clustered graph (the real-world fast-relay story) claw back the
//!    orphan rate the clusters' slow bridge creates?
//!    (`clustered` vs `relay_shortcut`.)
//!
//! Shapes at mean latency [`DELAY`]: `uniform` (the PR 3 engine, anchor),
//! `complete` (every pair at `DELAY` — **gated bit-identical** to
//! `uniform`: the graph path must fold to the exact same arithmetic),
//! `hub_attacker` / `leaf_attacker` stars (strategist spoke near/far),
//! `ring`, `clustered` two-cluster with a slow bridge, and
//! `relay_shortcut` (the same clustered graph plus a fast lossless
//! shortcut — its *lower* effective mean latency is the relay advantage,
//! reported as `mean_latency` per cell). Sweep over the saved
//! `bitcoin_a040_g050` artifact plus the SM1 family × two splits (4 and
//! 8 miners). Every per-edge draw comes from the topology's own
//! counter-based hash stream, so the study is bit-reproducible at any
//! thread count.
//!
//! Output: `results/topology_study.json` — one series per (strategy,
//! split) with one entry per shape (revenue, its IEEE-754 bit pattern in
//! hex for the bit-identity gates, orphan rate, gossip counters) plus a
//! `gates` block the tier-1 suite re-checks from the committed file.
//!
//! Environment knobs: `SELETH_RUNS` (4), `SELETH_BLOCKS` (30 000),
//! `SELETH_MDP_LEN` (30), `SELETH_RESULTS`, `SELETH_POLICIES`. Pass
//! `--smoke` for the CI gate: artifact only, 4-miner split, reduced shape
//! set, small budgets, loosened spread tolerance.

use std::fmt::Write as _;

use seleth_bench::json_f64;
use seleth_bench::report::{gate_tolerance, replay_revenue, trace_arg, write_trace};
use seleth_chain::RewardSchedule;
use seleth_mdp::{PolicyTable, RewardModel};
use seleth_net::Topology;
use seleth_obs::{NoopRecorder, Recorder, Stopwatch, Telemetry, TelemetryShard, TraceLog};
use seleth_sim::delay::DelayConfig;
use seleth_zoo::Family;

/// Mean block interval for every run (Ethereum-like, seconds).
const INTERVAL: f64 = 13.0;
/// Target mean pairwise latency of every shaped cell — the same
/// delay/interval ≈ 0.46 regime the delay and chaos studies probe.
const DELAY: f64 = 6.0;
const SEED: u64 = 48_879;

/// Near/far spoke latencies of the attacker-position stars, before
/// rescaling to the common mean.
const SPOKE_NEAR: f64 = 1.0;
const SPOKE_FAR: f64 = 8.0;

/// Intra-cluster and bridge latencies of the clustered shapes, before
/// rescaling. The bridge dominates cross-cluster paths until the
/// shortcut overlay bypasses it.
const INTRA: f64 = 1.0;
const BRIDGE: f64 = 16.0;

struct Strategy {
    name: String,
    table: PolicyTable,
    alpha: f64,
    gamma: f64,
    /// Predicted zero-delay revenue (ρ* for the solved artifact, the
    /// family's closed form otherwise) — reporting reference only.
    rho: f64,
}

/// One swept cell: a named shape, compiled per miner count.
struct ShapeSpec {
    name: &'static str,
    /// `None` is the uniform delay engine (no topology) — the anchor the
    /// complete graph must reproduce bitwise.
    topology: Option<Topology>,
}

/// Star with the strategist's spoke at `miner0`, everyone else at
/// `others`, rescaled to the common mean pairwise latency.
fn star(n: usize, miner0: f64, others: f64) -> Topology {
    let mut spokes = vec![others; n];
    spokes[0] = miner0;
    Topology::star_relay(&spokes)
        .and_then(|t| t.scaled_to_mean(DELAY))
        .expect("star shapes are valid")
}

/// Two equal clusters joined by one slow bridge, rescaled to the common
/// mean; with `shortcut`, the *rescaled* graph additionally gets a fast
/// lossless relay link between the clusters' last members, so its
/// effective mean drops below [`DELAY`] — that drop is the measured
/// relay-network advantage.
fn clustered(n: usize, shortcut: bool) -> Topology {
    let a = n / 2;
    let base = Topology::two_clusters(a, n - a, INTRA, BRIDGE)
        .and_then(|t| t.scaled_to_mean(DELAY))
        .expect("clustered shapes are valid");
    if !shortcut {
        return base;
    }
    let fast = base
        .links()
        .iter()
        .map(|l| match l.latency {
            seleth_net::Latency::Fixed(v) => v,
            seleth_net::Latency::Uniform { lo, .. } => lo,
        })
        .fold(f64::INFINITY, f64::min);
    let mut b = Topology::builder();
    b.miners(n);
    b.seed(base.seed());
    for link in base.links() {
        b.edge_spec(*link);
    }
    b.shortcut(a - 1, n - 1, fast);
    b.build().expect("shortcut overlay is valid")
}

/// The shape sweep for an `n`-miner split.
fn shapes(n: usize, smoke: bool) -> Vec<ShapeSpec> {
    let mut all = vec![
        ShapeSpec {
            name: "uniform",
            topology: None,
        },
        ShapeSpec {
            name: "complete",
            topology: Some(Topology::complete(n, DELAY).expect("complete is valid")),
        },
        ShapeSpec {
            name: "hub_attacker",
            topology: Some(star(n, SPOKE_NEAR, SPOKE_FAR)),
        },
        ShapeSpec {
            name: "leaf_attacker",
            topology: Some(star(n, SPOKE_FAR, SPOKE_NEAR)),
        },
    ];
    if !smoke {
        all.push(ShapeSpec {
            name: "ring",
            topology: Some(
                Topology::ring(n, 1.0)
                    .and_then(|t| t.scaled_to_mean(DELAY))
                    .expect("ring is valid"),
            ),
        });
        all.push(ShapeSpec {
            name: "clustered",
            topology: Some(clustered(n, false)),
        });
        all.push(ShapeSpec {
            name: "relay_shortcut",
            topology: Some(clustered(n, true)),
        });
    }
    all
}

struct CellResult {
    mean: f64,
    std_err: f64,
    orphan_rate: f64,
    mean_latency: f64,
    gossip_sends: u64,
    gossip_dedup_drops: u64,
    relay_hops: u64,
}

fn eval_cell(
    strategy: &Strategy,
    shares: &[f64],
    shape: &ShapeSpec,
    runs: u64,
    blocks: u64,
    shard: &mut TelemetryShard,
) -> CellResult {
    let outcome = replay_revenue(runs, 1, |k| {
        let mut b = DelayConfig::builder();
        b.shares(shares.to_vec())
            .policy(0, strategy.table.clone())
            .tie_gamma(strategy.gamma)
            .delay(DELAY)
            .interval(INTERVAL)
            .schedule(RewardSchedule::bitcoin())
            .blocks(blocks)
            .seed(SEED + k);
        if let Some(t) = &shape.topology {
            b.topology(t.clone());
        }
        b.build().expect("valid topology config")
    });
    outcome.counters.record_into(shard);
    shard.add("study.runs", runs);
    CellResult {
        mean: outcome.mean(),
        std_err: outcome.std_err(),
        orphan_rate: outcome.orphan_rate,
        mean_latency: shape
            .topology
            .as_ref()
            .map_or(DELAY, Topology::nominal_mean_latency),
        gossip_sends: outcome.counters.gossip_sends,
        gossip_dedup_drops: outcome.counters.gossip_dedup_drops,
        relay_hops: outcome.counters.gossip_hops_2
            + outcome.counters.gossip_hops_3
            + outcome.counters.gossip_hops_4_plus,
    }
}

fn hex_bits(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = if trace_path.is_some() {
        &trace
    } else {
        &NoopRecorder
    };
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let runs = seleth_bench::env_u64("SELETH_RUNS", if smoke { 2 } else { 4 });
    let blocks = seleth_bench::env_u64("SELETH_BLOCKS", if smoke { 6_000 } else { 30_000 });
    let max_len = u32::try_from(seleth_bench::env_u64("SELETH_MDP_LEN", 30)).unwrap_or(30);

    let artifact = seleth_bench::load_or_solve_policy(
        "bitcoin_a040_g050",
        0.40,
        0.5,
        RewardModel::Bitcoin,
        max_len,
    );
    let rho_star = artifact.predicted_revenue();
    let mut strategies = vec![Strategy {
        name: "bitcoin_a040_g050".into(),
        table: artifact,
        alpha: 0.40,
        gamma: 0.5,
        rho: rho_star,
    }];
    if !smoke {
        let family = Family::Sm1;
        strategies.push(Strategy {
            name: family.id(),
            table: family.table(0.35, 0.5, max_len),
            alpha: 0.35,
            gamma: 0.5,
            rho: family.predicted_revenue(0.35, 0.5),
        });
    }

    println!(
        "Topology study: attacker position in the peer graph \
         ({runs} runs x {blocks} blocks per cell, {INTERVAL}s interval, \
         {DELAY}s mean latency{})\n",
        if smoke { ", SMOKE" } else { "" }
    );
    println!(
        "{:>20} {:>7} {:>16} {:>9} {:>9} {:>+9} {:>8} {:>8}",
        "strategy", "split", "shape", "revenue", "std_err", "vs_rho", "orphans", "latency"
    );

    let mut failed = false;
    let mut series_json = Vec::new();
    let mut gates_json = Vec::new();
    for strategy in &strategies {
        let splits: &[(&str, usize)] = &[("quad", 4), ("octet", 8)];
        let splits = if smoke { &splits[..1] } else { splits };

        for &(split_name, miners) in splits {
            let rest = (1.0 - strategy.alpha) / (miners - 1) as f64;
            let mut shares = vec![rest; miners];
            shares[0] = strategy.alpha;
            let cells = shapes(miners, smoke);

            // Shapes in parallel through the shared work-queue helper;
            // every per-edge draw hashes off the topology seed, so the
            // sweep is bit-identical at any thread count.
            let sweep = Stopwatch::start();
            let (results, shards) =
                seleth_bench::par_map_traced(&cells, 0, recorder, |shape, shard| {
                    eval_cell(strategy, &shares, shape, runs, blocks, shard)
                });
            telemetry.add_phase("sweep", sweep.elapsed_ns());
            for shard in &shards {
                telemetry.fold_shard(shard);
            }
            for (shape, r) in cells.iter().zip(&results) {
                println!(
                    "{:>20} {:>7} {:>16} {:>9.5} {:>9.5} {:>+9.5} {:>8.4} {:>8.3}",
                    strategy.name,
                    split_name,
                    shape.name,
                    r.mean,
                    r.std_err,
                    r.mean - strategy.rho,
                    r.orphan_rate,
                    r.mean_latency
                );
            }

            let find = |name: &str| {
                cells
                    .iter()
                    .position(|c| c.name == name)
                    .map(|i| &results[i])
            };

            // Gate 1: the complete graph at uniform latency must fold to
            // the exact arithmetic of the uniform engine — bit-identical
            // revenue and orphan rate, not merely close.
            let (uniform, complete) = (
                find("uniform").expect("uniform cell always swept"),
                find("complete").expect("complete cell always swept"),
            );
            let bit_identical = uniform.mean.to_bits() == complete.mean.to_bits()
                && uniform.orphan_rate.to_bits() == complete.orphan_rate.to_bits();
            if !bit_identical {
                eprintln!(
                    "FAIL {}/{split_name}: complete-graph revenue {} != uniform {}",
                    strategy.name,
                    hex_bits(complete.mean),
                    hex_bits(uniform.mean)
                );
                failed = true;
            }

            // Gate 2: at the same mean latency, the hub-attacker must out-
            // earn the leaf-attacker (position pays). Smoke budgets only
            // get the loosened noise allowance.
            let (hub, leaf) = (
                find("hub_attacker").expect("hub cell always swept"),
                find("leaf_attacker").expect("leaf cell always swept"),
            );
            let spread = hub.mean - leaf.mean;
            let noise = (hub.std_err * hub.std_err + leaf.std_err * leaf.std_err).sqrt();
            let floor = if smoke {
                -gate_tolerance(true, noise)
            } else {
                0.0
            };
            if spread <= floor {
                eprintln!(
                    "FAIL {}/{split_name}: hub-vs-leaf revenue spread {spread:.5} \
                     is not positive (noise {noise:.5})",
                    strategy.name
                );
                failed = true;
            }

            gates_json.push(format!(
                "    {{\"strategy\": \"{}\", \"split\": \"{split_name}\", \
                 \"bit_identical\": {bit_identical}, \
                 \"uniform_revenue_bits\": \"{}\", \"complete_revenue_bits\": \"{}\", \
                 \"hub_leaf_spread\": {}, \"spread_noise\": {}}}",
                strategy.name,
                hex_bits(uniform.mean),
                hex_bits(complete.mean),
                json_f64(spread),
                json_f64(noise)
            ));

            let mut s = String::new();
            let _ = write!(
                s,
                "    {{\n      \"strategy\": \"{}\",\n      \
                 \"split\": \"{split_name}\",\n      \"miners\": {miners},\n      \
                 \"alpha\": {},\n      \"gamma\": {},\n      \"rho_star\": {},\n      \
                 \"cells\": [\n",
                strategy.name,
                json_f64(strategy.alpha),
                json_f64(strategy.gamma),
                json_f64(strategy.rho),
            );
            let cell_lines: Vec<String> = cells
                .iter()
                .zip(&results)
                .map(|(shape, r)| {
                    format!(
                        "        {{\"shape\": \"{}\", \"mean_latency\": {}, \
                         \"revenue\": {}, \"revenue_bits\": \"{}\", \"std_err\": {}, \
                         \"vs_rho_star\": {}, \"orphan_rate\": {}, \
                         \"gossip_sends\": {}, \"gossip_dedup_drops\": {}, \
                         \"relay_hops\": {}}}",
                        shape.name,
                        json_f64(r.mean_latency),
                        json_f64(r.mean),
                        hex_bits(r.mean),
                        json_f64(r.std_err),
                        json_f64(r.mean - strategy.rho),
                        json_f64(r.orphan_rate),
                        r.gossip_sends,
                        r.gossip_dedup_drops,
                        r.relay_hops
                    )
                })
                .collect();
            s.push_str(&cell_lines.join(",\n"));
            s.push_str("\n      ]\n    }");
            series_json.push(s);
        }
    }

    let json = format!(
        "{{\n  \"kind\": \"seleth-topology-study\",\n  \"format\": 1,\n  \
         \"interval\": {},\n  \"mean_latency\": {},\n  \"runs\": {runs},\n  \
         \"blocks\": {blocks},\n  \"seed\": {SEED},\n  \
         \"gates\": [\n{}\n  ],\n  \
         \"series\": [\n{}\n  ],\n  \"telemetry\": {}\n}}\n",
        json_f64(INTERVAL),
        json_f64(DELAY),
        gates_json.join(",\n"),
        series_json.join(",\n"),
        {
            telemetry.wall_ns = wall.elapsed_ns();
            telemetry.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
            telemetry.to_json(2)
        }
    );
    let out_name = if smoke {
        "topology_study_smoke.json"
    } else {
        "topology_study.json"
    };
    let path = seleth_bench::write_text(out_name, &json);

    println!("\nReading: 'complete' must equal 'uniform' to the bit — the graph");
    println!("engine folds a complete graph at uniform latency into the exact");
    println!("arithmetic of the PR 3 delay engine. The hub/leaf pair isolates");
    println!("attacker position at a fixed mean pairwise latency: the spread is");
    println!("the well-connected attacker's edge. 'relay_shortcut' keeps the");
    println!("clustered graph's links and overlays one fast relay link — its");
    println!("lower 'latency' column is the relay-network advantage.");
    println!("wrote {}", path.display());
    write_trace(&trace, trace_path.as_ref());

    if failed {
        eprintln!("FAIL: a topology gate did not hold");
        std::process::exit(1);
    }
    println!("all topology gates hold: complete==uniform bitwise, hub beats leaf");
}
