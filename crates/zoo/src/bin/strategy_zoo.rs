//! The strategy-zoo tournament: every hand-written family, the MDP
//! optimum, and multi-strategist matchups, ranked under one harness.
//!
//! Sweep: strategy (6 family representatives + the solved artifact at
//! each `(α, γ)` point) × share split (duopoly, 2018 pool landscape) ×
//! propagation delay, plus two-strategist **matchup** cells (SM1 vs SM1,
//! and the optimal artifact vs SM1, in one delay-simulator run each).
//! All cells are evaluated through `seleth_zoo::Tournament`, in parallel
//! across sweep points via the shared `seleth_bench::par_map` work queue.
//!
//! Gates (exit code 1 on failure):
//!
//! - **SM1 closed form**: the zero-delay duopoly replay of the SM1 family
//!   must reproduce the Eyal–Sirer closed-form revenue at every `(α, γ)`
//!   point within 3 standard errors or 1% absolute.
//! - **Optimum dominates**: the solved artifact's zero-delay duopoly
//!   revenue must be ≥ every hand-written family's at the same `(α, γ)`,
//!   within combined Monte-Carlo noise. Applies to families scored under
//!   the artifact's own (Bitcoin) schedule; uncle-aware families replay
//!   under the Ethereum schedule — where the Bitcoin ρ* is *not* an
//!   upper bound (they measurably beat it, e.g. 0.397 vs 0.371 at
//!   α = 0.35, γ = 0: the paper's uncle-subsidy headline inside the
//!   zoo) — and are instead gated below the **Ethereum-model** optimum
//!   ρ* at the same point.
//!
//! Family tables are generated at truncation `SELETH_ZOO_LEN` (default
//! 64): SM1-family replays are *truncation-sensitive* at `γ = 0` —
//! without γβ rebases an epoch's `(a, h)` walk goes deep, and a boundary
//! forced-adopt abandons a large private lead (truncation 30 measurably
//! undershoots the closed form; 60+ converges).
//!
//! Output: `results/zoo_study.json` (`zoo_study_smoke.json` with
//! `--smoke`) — every cell with per-strategist revenue vs prediction,
//! standard error, orphan rate, and a rank within its
//! (point, split, delay) group — plus ranked tables on stdout.
//!
//! Environment knobs: `SELETH_RUNS` (8), `SELETH_BLOCKS` (30 000),
//! `SELETH_MDP_LEN` (30, artifact solves), `SELETH_ZOO_LEN` (64, family
//! tables), `SELETH_RESULTS`, `SELETH_POLICIES`. `--smoke` shrinks the
//! grid to one point, the duopoly split, and small budgets for CI.

use std::fmt::Write as _;

use seleth_bench::json_f64;
use seleth_bench::report::{gate_tolerance, trace_arg, write_trace};
use seleth_mdp::{MdpConfig, PolicyTable, RewardModel};
use seleth_obs::{NoopRecorder, Recorder, Stopwatch, Telemetry, TraceLog};
use seleth_sim::pools;
use seleth_zoo::{
    sm1_closed_form, Cell, CellResult, Family, StrategyRegistry, Tournament, TournamentConfig,
};

const INTERVAL: f64 = 13.0;
const SEED: u64 = 90_210;

/// One `(α, γ)` evaluation point, anchored to a committed artifact.
struct Point {
    artifact: &'static str,
    alpha: f64,
    gamma: f64,
}

const POINTS: &[Point] = &[
    Point {
        artifact: "bitcoin_a020_g050",
        alpha: 0.20,
        gamma: 0.5,
    },
    Point {
        artifact: "bitcoin_a035_g000",
        alpha: 0.35,
        gamma: 0.0,
    },
    Point {
        artifact: "bitcoin_a040_g050",
        alpha: 0.40,
        gamma: 0.5,
    },
];

/// Load a committed artifact, or solve and save it when absent (fresh
/// checkouts stay self-contained) — the shared bin helper; every grid
/// point is a Bitcoin-model artifact.
fn load_or_solve(name: &str, alpha: f64, gamma: f64, max_len: u32) -> PolicyTable {
    seleth_bench::load_or_solve_policy(name, alpha, gamma, RewardModel::Bitcoin, max_len)
}

/// Grid metadata parallel to the tournament's cell list.
struct Meta {
    point: &'static str,
    alpha: f64,
    gamma: f64,
    split: &'static str,
    kind: &'static str,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = if trace_path.is_some() {
        &trace
    } else {
        &NoopRecorder
    };
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let runs = seleth_bench::env_u64("SELETH_RUNS", if smoke { 3 } else { 8 });
    let blocks = seleth_bench::env_u64("SELETH_BLOCKS", if smoke { 8_000 } else { 30_000 });
    let mdp_len = u32::try_from(seleth_bench::env_u64("SELETH_MDP_LEN", 30)).unwrap_or(30);
    let zoo_len = u32::try_from(seleth_bench::env_u64("SELETH_ZOO_LEN", 64)).unwrap_or(64);
    let delays: &[f64] = if smoke { &[0.0, 6.0] } else { &[0.0, 2.0, 6.0] };
    let points: &[Point] = if smoke { &POINTS[1..2] } else { POINTS };

    println!(
        "Strategy zoo tournament ({runs} runs x {blocks} blocks per cell, \
         {INTERVAL}s interval, family truncation {zoo_len}{})\n",
        if smoke { ", SMOKE" } else { "" }
    );

    // ------------------------------------------------------------------
    // Registry: family representatives + the solved artifact per point.
    // ------------------------------------------------------------------
    let families = Family::representatives();
    let mut registry = StrategyRegistry::new();
    // Per point: (family, registry index) pairs plus the artifact index.
    let mut lineups: Vec<(Vec<(Family, usize)>, usize)> = Vec::new();
    for p in points {
        let fam_idx: Vec<(Family, usize)> = families
            .iter()
            .map(|&f| (f, registry.register_family(f, p.alpha, p.gamma, zoo_len)))
            .collect();
        let artifact = load_or_solve(p.artifact, p.alpha, p.gamma, mdp_len);
        let art_idx = registry.register_artifact(p.artifact, artifact);
        lineups.push((fam_idx, art_idx));
    }
    // SM1 at α = 0.30 for the matchup cells (shares differ from the
    // per-point α, so it gets its own registry entries — one per matchup
    // γ, so each cell's recorded prediction is the closed form at the γ
    // actually played).
    let sm1_030_g050 = registry.register_family(Family::Sm1, 0.30, 0.5, zoo_len);
    let sm1_030_g000 = registry.register_family(Family::Sm1, 0.30, 0.0, zoo_len);

    // ------------------------------------------------------------------
    // Grid: single-strategist cells + matchups, with parallel metadata.
    // ------------------------------------------------------------------
    let config = TournamentConfig {
        interval: INTERVAL,
        runs,
        blocks,
        seed: SEED,
        threads: 0,
    };
    let mut tournament = Tournament::new(&registry, config);
    let mut metas: Vec<Meta> = Vec::new();
    for (p, (fam_idx, art_idx)) in points.iter().zip(&lineups) {
        let contestants: Vec<usize> = fam_idx
            .iter()
            .map(|&(_, idx)| idx)
            .chain(std::iter::once(*art_idx))
            .collect();
        let splits: &[(&'static str, Vec<f64>)] = &[
            ("duopoly", vec![p.alpha, 1.0 - p.alpha]),
            ("pools2018", pools::shares_with_strategist(p.alpha)),
        ];
        let splits = if smoke { &splits[..1] } else { splits };
        for idx in contestants {
            for (split, shares) in splits {
                for &delay in delays {
                    tournament.add_cell(Cell::single(*split, idx, shares.clone(), p.gamma, delay));
                    metas.push(Meta {
                        point: p.artifact,
                        alpha: p.alpha,
                        gamma: p.gamma,
                        split,
                        kind: "single",
                    });
                }
            }
        }
    }
    // Matchups: two strategists attacking each other in one run. The
    // smoke grid keeps one cell so CI exercises the multi-strategist path.
    let matchup_delays: &[f64] = if smoke { &delays[..1] } else { &[0.0, 6.0] };
    for &delay in matchup_delays {
        if !smoke {
            // SM1 vs SM1: two 30% attackers over a 40% honest remainder.
            tournament.add_cell(Cell::matchup(
                "matchup",
                (sm1_030_g050, 0.30),
                (sm1_030_g050, 0.30),
                0.5,
                delay,
            ));
            metas.push(Meta {
                point: "sm1_vs_sm1",
                alpha: 0.30,
                gamma: 0.5,
                split: "matchup",
                kind: "matchup",
            });
        }
        // The α = 0.35 optimal artifact vs a 30% SM1 rival, at the
        // artifact's own γ = 0 (the SM1 prediction is the γ = 0 closed
        // form accordingly).
        let a035_idx = points
            .iter()
            .position(|p| p.artifact == "bitcoin_a035_g000")
            .map(|i| lineups[i].1)
            .expect("a035 point is always in the grid");
        tournament.add_cell(Cell::matchup(
            "matchup",
            (a035_idx, 0.35),
            (sm1_030_g000, 0.30),
            0.0,
            delay,
        ));
        metas.push(Meta {
            point: "optimal_a035_vs_sm1",
            alpha: 0.35,
            gamma: 0.0,
            split: "matchup",
            kind: "matchup",
        });
    }

    // ------------------------------------------------------------------
    // Run (parallel across cells) and rank within (point, split, delay).
    // ------------------------------------------------------------------
    let sweep = Stopwatch::start();
    let (results, shards) = tournament.run_traced(recorder);
    telemetry.add_phase("tournament", sweep.elapsed_ns());
    for shard in &shards {
        telemetry.fold_shard(shard);
    }
    assert_eq!(results.len(), metas.len(), "meta list tracks the grid");
    let mut rank: Vec<usize> = vec![0; results.len()];
    {
        let mut groups: std::collections::BTreeMap<String, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, m) in metas.iter().enumerate() {
            if m.kind == "single" {
                groups
                    .entry(format!("{}|{}|{}", m.point, m.split, results[i].delay))
                    .or_default()
                    .push(i);
            }
        }
        for indices in groups.values() {
            let mut sorted = indices.clone();
            sorted.sort_by(|&x, &y| {
                results[y]
                    .lead_revenue()
                    .total_cmp(&results[x].lead_revenue())
            });
            for (r, &i) in sorted.iter().enumerate() {
                rank[i] = r + 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Ranked stdout tables.
    // ------------------------------------------------------------------
    println!(
        "{:>20} {:>9} {:>6} {:>26} {:>5} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "point",
        "split",
        "delay",
        "strategy",
        "rank",
        "predict",
        "revenue",
        "std_err",
        "vs_pred",
        "orphans"
    );
    let mut order: Vec<usize> = (0..results.len()).collect();
    order.sort_by_key(|&i| {
        (
            metas[i].kind == "matchup", // singles first
            metas[i].point,
            metas[i].split,
            (results[i].delay * 10.0) as u64,
            rank[i],
        )
    });
    for &i in &order {
        let (m, r) = (&metas[i], &results[i]);
        for s in &r.strategists {
            println!(
                "{:>20} {:>9} {:>6.1} {:>26} {:>5} {:>9.5} {:>9.5} {:>9.5} {:>+9.5} {:>8.4}",
                m.point,
                m.split,
                r.delay,
                format!("{} ({:.2})", s.name, s.share),
                if m.kind == "single" {
                    rank[i].to_string()
                } else {
                    "-".into()
                },
                s.predicted,
                s.revenue,
                s.std_err,
                s.revenue - s.predicted,
                r.orphan_rate,
            );
        }
    }

    // ------------------------------------------------------------------
    // Gates.
    // ------------------------------------------------------------------
    let mut failed = false;
    let zero_duopoly = |name: &str, point: &str| -> Option<&CellResult> {
        metas.iter().zip(&results).find_map(|(m, r)| {
            (m.kind == "single"
                && m.point == point
                && m.split == "duopoly"
                && r.delay == 0.0
                && r.strategists[0].name == name)
                .then_some(r)
        })
    };
    for p in points {
        // Gate 1: SM1 vs the Eyal–Sirer closed form.
        let sm1 = zero_duopoly("sm1", p.artifact).expect("sm1 zero-delay duopoly cell");
        let cf = sm1_closed_form(p.alpha, p.gamma);
        let (mean, se) = (sm1.lead_revenue(), sm1.strategists[0].std_err);
        let tol = gate_tolerance(smoke, se);
        if (mean - cf).abs() > tol {
            eprintln!(
                "FAIL sm1@{}: zero-delay revenue {mean:.5} vs closed form {cf:.5} \
                 exceeds tolerance {tol:.5}",
                p.artifact
            );
            failed = true;
        }
        // Gate 2: the optimum dominates every hand-written family *scored
        // under the same reward schedule*. Tournament cells follow the
        // lead strategist's reward model, so uncle-aware families replay
        // under the Ethereum schedule, where a Bitcoin-model ρ* is not an
        // upper bound (the paper's headline — uncle rewards make the
        // chain more attackable — showing up inside the zoo); they get
        // their own Ethereum-model bound in gate 3.
        let opt = zero_duopoly(p.artifact, p.artifact).expect("artifact zero-delay duopoly cell");
        for family in families.iter().filter(|f| !f.is_uncle_aware()) {
            let fam =
                zero_duopoly(&family.id(), p.artifact).expect("family zero-delay duopoly cell");
            let combined =
                (opt.strategists[0].std_err.powi(2) + fam.strategists[0].std_err.powi(2)).sqrt();
            let tol = if smoke {
                (4.0 * combined).max(0.05)
            } else {
                (3.0 * combined).max(0.005)
            };
            if opt.lead_revenue() < fam.lead_revenue() - tol {
                eprintln!(
                    "FAIL {}@{}: family revenue {:.5} beats the optimal artifact's {:.5} \
                     beyond tolerance {tol:.5}",
                    family.id(),
                    p.artifact,
                    fam.lead_revenue(),
                    opt.lead_revenue()
                );
                failed = true;
            }
        }
        // Gate 3: uncle-aware families stay below the *Ethereum-model*
        // optimum ρ* at their point — the correct upper bound for an
        // Ethereum-schedule replay. The tolerance is additive: a 1%
        // absolute model-gap allowance (the documented first-order gap
        // between the MDP's reward model and the simulator's real uncle
        // accounting) *plus* the Monte-Carlo noise of the measurement —
        // two independent slop sources, so they sum rather than max.
        if families.iter().any(Family::is_uncle_aware) {
            let eth_rho = MdpConfig::new(p.alpha, p.gamma, RewardModel::EthereumApprox)
                .with_max_len(mdp_len)
                .solve()
                .expect("ethereum mdp solve")
                .revenue;
            for family in families.iter().filter(|f| f.is_uncle_aware()) {
                let fam =
                    zero_duopoly(&family.id(), p.artifact).expect("family zero-delay duopoly cell");
                let se = fam.strategists[0].std_err;
                let tol = if smoke {
                    0.05 + 4.0 * se
                } else {
                    0.01 + 3.0 * se
                };
                if fam.lead_revenue() > eth_rho + tol {
                    eprintln!(
                        "FAIL {}@{}: family revenue {:.5} beats the Ethereum-model optimum \
                         {eth_rho:.5} beyond tolerance {tol:.5}",
                        family.id(),
                        p.artifact,
                        fam.lead_revenue(),
                    );
                    failed = true;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // JSON artifact.
    // ------------------------------------------------------------------
    let mut cells_json: Vec<String> = Vec::new();
    for &i in &order {
        let (m, r) = (&metas[i], &results[i]);
        let mut s = String::new();
        let _ = write!(
            s,
            "    {{\n      \"point\": \"{}\",\n      \"kind\": \"{}\",\n      \
             \"split\": \"{}\",\n      \"alpha\": {},\n      \"gamma\": {},\n      \
             \"delay\": {},\n",
            m.point,
            m.kind,
            m.split,
            json_f64(m.alpha),
            json_f64(m.gamma),
            json_f64(r.delay),
        );
        if m.kind == "single" {
            let _ = writeln!(s, "      \"rank\": {},", rank[i]);
        }
        let _ = write!(
            s,
            "      \"orphan_rate\": {},\n      \"strategists\": [\n",
            json_f64(r.orphan_rate)
        );
        let lines: Vec<String> = r
            .strategists
            .iter()
            .map(|st| {
                format!(
                    "        {{\"name\": \"{}\", \"family\": \"{}\", \"share\": {}, \
                     \"predicted\": {}, \"revenue\": {}, \"std_err\": {}, \
                     \"vs_predicted\": {}}}",
                    st.name,
                    st.family,
                    json_f64(st.share),
                    json_f64(st.predicted),
                    json_f64(st.revenue),
                    json_f64(st.std_err),
                    json_f64(st.revenue - st.predicted),
                )
            })
            .collect();
        s.push_str(&lines.join(",\n"));
        s.push_str("\n      ]\n    }");
        cells_json.push(s);
    }
    telemetry.wall_ns = wall.elapsed_ns();
    telemetry.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
    let json = format!(
        "{{\n  \"kind\": \"seleth-zoo-study\",\n  \"format\": 1,\n  \
         \"interval\": {},\n  \"runs\": {runs},\n  \"blocks\": {blocks},\n  \
         \"family_truncation\": {zoo_len},\n  \"cells\": [\n{}\n  ],\n  \
         \"telemetry\": {}\n}}\n",
        json_f64(INTERVAL),
        cells_json.join(",\n"),
        telemetry.to_json(2)
    );
    let out_name = if smoke {
        "zoo_study_smoke.json"
    } else {
        "zoo_study.json"
    };
    let path = seleth_bench::write_text(out_name, &json);

    println!("\nReading: within each (point, split, delay) group, 'rank' orders the");
    println!("strategies by measured revenue (RegularRate normalization, the same");
    println!("quantity as an artifact's rho*). 'vs_pred' compares against each");
    println!("strategy's own prediction: closed form for SM1, rho* for the MDP");
    println!("artifact, the fair share alpha elsewhere. Matchup cells field two");
    println!("strategists in one run; their revenues are per-miner.");
    println!("wrote {}", path.display());
    write_trace(&trace, trace_path.as_ref());

    if failed {
        eprintln!("FAIL: a zoo gate disagrees with its prediction");
        std::process::exit(1);
    }
    println!("all gates hold: SM1 reproduces its closed form; the optimum dominates the zoo");
}
