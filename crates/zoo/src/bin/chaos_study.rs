//! Chaos study: does the withholding advantage survive a faulty network?
//!
//! PR 3's delay study showed propagation delay *bleeding* the optimal
//! artifact's edge — a graceful degradation, not a collapse. This
//! experiment asks the same question about the rest of the failure
//! spectrum, using the deterministic fault-injection layer
//! (`seleth_sim::faults`): per-link message **loss** (re-gossiped with
//! capped exponential backoff), miner **crash/recovery churn** (hash
//! power thins out; strategists resync via the forced-adopt path on
//! rejoin), and timed network **partitions** that heal.
//!
//! Sweep: the full loss-rate × churn × partition grid at a 6 s delay —
//! loss ∈ {0, 0.1, 0.25}, churn off/on, partitions off/on — plus the
//! zero-delay zero-fault anchor cell, over three strategists (the saved
//! `bitcoin_a040_g050` optimal artifact and the zoo's SM1 and
//! lead-stubborn families) × two share splits (duopoly and the 2018 pool
//! landscape). Every fault schedule is a pure function of the plan seed,
//! so the whole study is bit-reproducible at any thread count.
//!
//! The zero-delay zero-fault duopoly cell is **gated** for the solved
//! artifact: measured revenue must reproduce the artifact's recorded ρ*
//! within 3 standard errors or 1% absolute (exit code 1 otherwise) —
//! the same anchor the delay study gates, proving the fault layer's
//! zero-fault path changed nothing.
//!
//! Output: `results/chaos_study.json` — one series per (strategy, split)
//! with one entry per grid cell — plus a human-readable table on stdout.
//!
//! Environment knobs: `SELETH_RUNS` (4), `SELETH_BLOCKS` (30 000),
//! `SELETH_MDP_LEN` (30), `SELETH_FAULT_SEED` (90 210), `SELETH_RESULTS`,
//! `SELETH_POLICIES`. Pass `--smoke` for the CI gate: the artifact only,
//! duopoly split, a reduced grid, small budgets, loosened tolerance.

use std::fmt::Write as _;

use seleth_bench::json_f64;
use seleth_bench::report::{gate_tolerance, replay_revenue, trace_arg, write_trace};
use seleth_chain::RewardSchedule;
use seleth_mdp::{PolicyTable, RewardModel};
use seleth_obs::{NoopRecorder, Recorder, Stopwatch, Telemetry, TelemetryShard, TraceLog};
use seleth_sim::delay::DelayConfig;
use seleth_sim::{pools, FaultPlan};
use seleth_zoo::Family;

/// Mean block interval for every run (Ethereum-like, seconds).
const INTERVAL: f64 = 13.0;
/// Propagation delay of every fault-grid cell (delay/interval ≈ 0.46,
/// the regime where PR 3 measured a sizeable but graceful degradation).
const DELAY: f64 = 6.0;
const SEED: u64 = 57_005;

/// Crash/recovery churn of the `churn` cells: miners are down ~13% of
/// the time in many short outages (mean 5 min down per ~38 min up).
const CHURN_UPTIME: f64 = 2_300.0;
const CHURN_DOWNTIME: f64 = 345.0;

/// Partition cadence of the `partition` cells: a 2-group split opens
/// every `PARTITION_EVERY` seconds and heals after `PARTITION_LEN`.
const PARTITION_EVERY: f64 = 40_000.0;
const PARTITION_LEN: f64 = 4_000.0;

struct Strategy {
    name: String,
    table: PolicyTable,
    alpha: f64,
    gamma: f64,
    /// Predicted revenue of the strategy at the anchor cell (ρ* for the
    /// solved artifact, the family's closed form otherwise).
    rho: f64,
    /// Whether the zero-delay zero-fault duopoly cell is gated against
    /// `rho`.
    gated: bool,
}

/// One grid cell: a delay plus a fault plan.
struct CellSpec {
    name: &'static str,
    delay: f64,
    loss: f64,
    churn: bool,
    partition: bool,
}

impl CellSpec {
    fn zero_fault(&self) -> bool {
        self.loss == 0.0 && !self.churn && !self.partition
    }

    /// Compile the cell into a fault plan for `miners` participants.
    /// Partition windows cover the whole mining horizon; the group split
    /// alternates miners (the strategist always lands in group 0).
    fn plan(&self, miners: usize, horizon: f64, fault_seed: u64) -> FaultPlan {
        let mut b = FaultPlan::builder();
        b.seed(fault_seed).loss(self.loss);
        if self.churn {
            b.churn(CHURN_UPTIME, CHURN_DOWNTIME);
        }
        if self.partition {
            let groups: Vec<usize> = (0..miners).map(|i| i % 2).collect();
            let mut start = PARTITION_EVERY;
            while start < horizon {
                b.partition(start, start + PARTITION_LEN, groups.clone());
                start += PARTITION_EVERY;
            }
        }
        b.build().expect("grid cells are valid plans")
    }
}

/// The full grid: the zero-delay anchor, then loss × churn × partition
/// at the study delay.
fn grid() -> Vec<CellSpec> {
    let mut cells = vec![CellSpec {
        name: "anchor_delay0",
        delay: 0.0,
        loss: 0.0,
        churn: false,
        partition: false,
    }];
    let names = [
        ["baseline", "partition", "churn", "churn_partition"],
        [
            "loss10",
            "loss10_partition",
            "loss10_churn",
            "loss10_churn_partition",
        ],
        [
            "loss25",
            "loss25_partition",
            "loss25_churn",
            "loss25_churn_partition",
        ],
    ];
    for (li, &loss) in [0.0, 0.10, 0.25].iter().enumerate() {
        for (ci, churn) in [false, true].into_iter().enumerate() {
            for (pi, partition) in [false, true].into_iter().enumerate() {
                cells.push(CellSpec {
                    name: names[li][ci * 2 + pi],
                    delay: DELAY,
                    loss,
                    churn,
                    partition,
                });
            }
        }
    }
    cells
}

struct CellResult {
    mean: f64,
    std_err: f64,
    orphan_rate: f64,
    /// Fraction of the block budget actually mined (< 1 under churn:
    /// crashed slots thin out of the Poisson race).
    mined_fraction: f64,
}

/// One evaluated cell: `runs` independent seeds, fault schedule re-seeded
/// alongside the simulation seed, through the shared replay loop. The
/// runs' deterministic engine counters fold into the worker's telemetry
/// shard.
fn eval_cell(
    strategy: &Strategy,
    shares: &[f64],
    cell: &CellSpec,
    runs: u64,
    blocks: u64,
    fault_seed: u64,
    shard: &mut TelemetryShard,
) -> CellResult {
    // Generous horizon for the partition schedule: mean mining time plus
    // slack (windows beyond the actual end are simply never reached).
    let horizon = 2.0 * blocks as f64 * INTERVAL;
    let plan = cell.plan(shares.len(), horizon, fault_seed);
    let outcome = replay_revenue(runs, 1, |k| {
        DelayConfig::builder()
            .shares(shares.to_vec())
            .policy(0, strategy.table.clone())
            .tie_gamma(strategy.gamma)
            .delay(cell.delay)
            .interval(INTERVAL)
            .schedule(RewardSchedule::bitcoin())
            .blocks(blocks)
            .seed(SEED + k)
            .faults(plan.with_seed(fault_seed + k))
            .build()
            .expect("valid chaos config")
    });
    outcome.counters.record_into(shard);
    shard.add("study.runs", runs);
    CellResult {
        mean: outcome.mean(),
        std_err: outcome.std_err(),
        orphan_rate: outcome.orphan_rate,
        mined_fraction: outcome.mined_fraction,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_path = trace_arg();
    let trace = TraceLog::new();
    let recorder: &dyn Recorder = if trace_path.is_some() {
        &trace
    } else {
        &NoopRecorder
    };
    let wall = Stopwatch::start();
    let mut telemetry = Telemetry::new();
    let runs = seleth_bench::env_u64("SELETH_RUNS", if smoke { 2 } else { 4 });
    let blocks = seleth_bench::env_u64("SELETH_BLOCKS", if smoke { 6_000 } else { 30_000 });
    let max_len = u32::try_from(seleth_bench::env_u64("SELETH_MDP_LEN", 30)).unwrap_or(30);
    let fault_seed = seleth_bench::env_u64("SELETH_FAULT_SEED", 90_210);

    let artifact = seleth_bench::load_or_solve_policy(
        "bitcoin_a040_g050",
        0.40,
        0.5,
        RewardModel::Bitcoin,
        max_len,
    );
    let rho_star = artifact.predicted_revenue();
    let mut strategies = vec![Strategy {
        name: "bitcoin_a040_g050".into(),
        table: artifact,
        alpha: 0.40,
        gamma: 0.5,
        rho: rho_star,
        gated: true,
    }];
    if !smoke {
        for family in [Family::Sm1, Family::LeadStubborn { k: 2 }] {
            strategies.push(Strategy {
                name: family.id(),
                table: family.table(0.35, 0.5, max_len),
                alpha: 0.35,
                gamma: 0.5,
                rho: family.predicted_revenue(0.35, 0.5),
                gated: false,
            });
        }
    }

    let cells = grid();
    let cells: Vec<CellSpec> = if smoke {
        cells
            .into_iter()
            .filter(|c| {
                matches!(
                    c.name,
                    "anchor_delay0" | "baseline" | "loss25" | "churn_partition"
                )
            })
            .collect()
    } else {
        cells
    };

    println!(
        "Chaos study: withholding under loss x churn x partitions \
         ({runs} runs x {blocks} blocks per cell, {INTERVAL}s interval, \
         {DELAY}s delay{})\n",
        if smoke { ", SMOKE" } else { "" }
    );
    println!(
        "{:>20} {:>9} {:>22} {:>9} {:>9} {:>+9} {:>8} {:>7}",
        "strategy", "split", "cell", "revenue", "std_err", "vs_rho", "orphans", "mined"
    );

    let mut failed = false;
    let mut series_json = Vec::new();
    for strategy in &strategies {
        let splits: &[(&str, Vec<f64>)] = &[
            ("duopoly", vec![strategy.alpha, 1.0 - strategy.alpha]),
            ("pools2018", pools::shares_with_strategist(strategy.alpha)),
        ];
        let splits = if smoke { &splits[..1] } else { splits };

        for (split_name, shares) in splits {
            // Grid cells in parallel through the shared work-queue
            // helper; results are bit-identical for every thread count.
            let sweep = Stopwatch::start();
            let (results, shards) =
                seleth_bench::par_map_traced(&cells, 0, recorder, |cell, shard| {
                    eval_cell(strategy, shares, cell, runs, blocks, fault_seed, shard)
                });
            telemetry.add_phase("sweep", sweep.elapsed_ns());
            for shard in &shards {
                telemetry.fold_shard(shard);
            }
            for (cell, r) in cells.iter().zip(&results) {
                println!(
                    "{:>20} {:>9} {:>22} {:>9.5} {:>9.5} {:>+9.5} {:>8.4} {:>7.4}",
                    strategy.name,
                    split_name,
                    cell.name,
                    r.mean,
                    r.std_err,
                    r.mean - strategy.rho,
                    r.orphan_rate,
                    r.mined_fraction
                );
            }

            // The anchor cell must reproduce the artifact's ρ* — the
            // fault layer's zero-fault path is the PR 3 delay engine.
            if strategy.gated && *split_name == "duopoly" {
                let anchor = &results[0];
                assert!(cells[0].zero_fault() && cells[0].delay == 0.0);
                let diff = (anchor.mean - strategy.rho).abs();
                let tolerance = gate_tolerance(smoke, anchor.std_err);
                if diff > tolerance {
                    eprintln!(
                        "FAIL {}: anchor revenue {:.5} vs rho* {:.5} exceeds \
                         tolerance {tolerance:.5}",
                        strategy.name, anchor.mean, strategy.rho
                    );
                    failed = true;
                }
            }

            let mut s = String::new();
            let _ = write!(
                s,
                "    {{\n      \"strategy\": \"{}\",\n      \
                 \"split\": \"{split_name}\",\n      \"alpha\": {},\n      \
                 \"gamma\": {},\n      \"rho_star\": {},\n      \"gated\": {},\n      \
                 \"shares\": [{}],\n      \"cells\": [\n",
                strategy.name,
                json_f64(strategy.alpha),
                json_f64(strategy.gamma),
                json_f64(strategy.rho),
                strategy.gated && *split_name == "duopoly",
                shares
                    .iter()
                    .map(|v| json_f64(*v))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            let cell_lines: Vec<String> = cells
                .iter()
                .zip(&results)
                .map(|(cell, r)| {
                    format!(
                        "        {{\"cell\": \"{}\", \"delay\": {}, \"loss\": {}, \
                         \"churn\": {}, \"partition\": {}, \"revenue\": {}, \
                         \"std_err\": {}, \"vs_rho_star\": {}, \"orphan_rate\": {}, \
                         \"mined_fraction\": {}}}",
                        cell.name,
                        json_f64(cell.delay),
                        json_f64(cell.loss),
                        cell.churn,
                        cell.partition,
                        json_f64(r.mean),
                        json_f64(r.std_err),
                        json_f64(r.mean - strategy.rho),
                        json_f64(r.orphan_rate),
                        json_f64(r.mined_fraction)
                    )
                })
                .collect();
            s.push_str(&cell_lines.join(",\n"));
            s.push_str("\n      ]\n    }");
            series_json.push(s);
        }
    }

    let json = format!(
        "{{\n  \"kind\": \"seleth-chaos-study\",\n  \"format\": 1,\n  \
         \"interval\": {},\n  \"delay\": {},\n  \"runs\": {runs},\n  \
         \"blocks\": {blocks},\n  \"fault_seed\": {fault_seed},\n  \
         \"churn_mean_uptime\": {},\n  \"churn_mean_downtime\": {},\n  \
         \"partition_every\": {},\n  \"partition_len\": {},\n  \
         \"series\": [\n{}\n  ],\n  \"telemetry\": {}\n}}\n",
        json_f64(INTERVAL),
        json_f64(DELAY),
        json_f64(CHURN_UPTIME),
        json_f64(CHURN_DOWNTIME),
        json_f64(PARTITION_EVERY),
        json_f64(PARTITION_LEN),
        series_json.join(",\n"),
        {
            telemetry.wall_ns = wall.elapsed_ns();
            telemetry.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            telemetry.set_gauge("host.available_parallelism", telemetry.threads as f64);
            telemetry.to_json(2)
        }
    );
    let out_name = if smoke {
        "chaos_study_smoke.json"
    } else {
        "chaos_study.json"
    };
    let path = seleth_bench::write_text(out_name, &json);

    println!("\nReading: 'vs_rho' is measured strategist revenue minus the predicted");
    println!("zero-delay optimum. The 'baseline' cell repeats PR 3's graceful delay");
    println!("degradation; the loss cells test whether random message loss amplifies");
    println!("withholding the way systematic delay does, and the churn/partition");
    println!("cells whether the advantage collapses or degrades when the network");
    println!("itself fails. 'mined' < 1 under churn: crashed hash power thins out.");
    println!("wrote {}", path.display());
    write_trace(&trace, trace_path.as_ref());

    if failed {
        eprintln!("FAIL: a gated anchor cell disagrees with its recorded rho*");
        std::process::exit(1);
    }
    println!("all gated anchor cells reproduce their recorded rho*");
}
