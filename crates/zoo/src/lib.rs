//! Strategy zoo: hand-written withholding strategies as first-class,
//! sweepable experiment subjects.
//!
//! The MDP subsystem answers "what is the *optimal* withholding strategy
//! at `(α, γ)`?"; this crate opens the complementary question: how does
//! the whole space of *published hand-written* strategies — honest
//! mining, Eyal–Sirer SM1, the lead-/trail-/equal-fork-stubborn families
//! — compare against the optimum, against each other, and under network
//! conditions (propagation delay, fragmented pools, rival attackers) the
//! closed forms cannot reach?
//!
//! Three layers:
//!
//! - [`families`]: parametric strategy generators. Each [`Family`] lowers
//!   into a legal [`seleth_mdp::PolicyTable`] via `from_fn`, tagged with
//!   a machine-readable family id, so every artifact executor in the
//!   workspace can replay it unchanged. [`sm1_closed_form`] provides the
//!   Eyal–Sirer reference revenue the SM1 replays are gated against.
//! - [`registry`]: the contestant pool — families at chosen `(α, γ)`
//!   points plus solver artifacts loaded from `results/policies/`,
//!   shared behind [`std::sync::Arc`].
//! - [`tournament`]: grid sweeps over family × parameters × delay ×
//!   share-split, including **multi-strategist matchups** (two
//!   table-driven miners attacking each other in one delay-simulator
//!   run), evaluated in parallel across sweep points with
//!   [`seleth_bench::par_map`]'s work queue.
//!
//! The `strategy_zoo` binary drives the full study and writes the ranked
//! `results/zoo_study.json`.
//!
//! # Example
//!
//! ```
//! use seleth_zoo::{Cell, Family, StrategyRegistry, Tournament, TournamentConfig};
//!
//! // SM1 vs the honest baseline in a zero-delay duopoly at α = 0.4.
//! let mut registry = StrategyRegistry::new();
//! let sm1 = registry.register_family(Family::Sm1, 0.4, 0.5, 20);
//! let honest = registry.register_family(Family::Honest, 0.4, 0.5, 20);
//! let config = TournamentConfig { runs: 2, blocks: 8_000, ..Default::default() };
//! let mut tournament = Tournament::new(&registry, config);
//! tournament.add_cell(Cell::single("duopoly", sm1, vec![0.4, 0.6], 0.5, 0.0));
//! tournament.add_cell(Cell::single("duopoly", honest, vec![0.4, 0.6], 0.5, 0.0));
//! let results = tournament.run();
//! // Above the threshold, selfish mining beats honest play.
//! assert!(results[0].lead_revenue() > results[1].lead_revenue());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never a panic, on
// untrusted input; invariant violations use `expect` with a message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod families;
pub mod registry;
pub mod tournament;

pub use families::{canonicalize_boundary, sm1_closed_form, Family};
pub use registry::{RegisteredStrategy, StrategyRegistry, StrategySource};
pub use tournament::{Cell, CellResult, StrategistOutcome, Tournament, TournamentConfig};
