//! Parametric strategy families, lowered into [`PolicyTable`] artifacts.
//!
//! Every published hand-written withholding strategy is a rule over the
//! MDP's state abstraction, which makes [`PolicyTable::from_fn`] — the
//! state-space-generic constructor — the natural compilation target: a
//! family plus its parameters becomes a dense table over an explicit
//! [`StateSpace`], tagged with a machine-readable family id
//! ([`PolicyTable::family`]), and every executor that replays artifacts —
//! the instant-broadcast engine, the propagation-delay simulator, the
//! tournament harness — can play it without new code. Distance-blind
//! families lower to the classic three-axis shape; uncle-aware families
//! lower to the four-axis shape and genuinely condition on the
//! published-prefix reference distance `match_d`.
//!
//! The families, in the MDP's decision order (consulted after every mined
//! or heard block):
//!
//! - [`Family::Honest`] — publish any lead immediately, adopt otherwise;
//!   earns exactly the fair share `α`.
//! - [`Family::Sm1`] — Eyal–Sirer selfish mining (the paper's
//!   Algorithm 1 skeleton): withhold, match when the honest chain draws
//!   level, override when the lead shrinks to one. Its revenue has the
//!   closed form [`sm1_closed_form`].
//! - [`Family::LeadStubborn`] `L_k` — SM1 that refuses to cash in a lead
//!   while the public branch is short: instead of overriding at `a = h+1`
//!   it *matches* (keeping one block hidden) until the honest branch
//!   reaches length `k`. `L_0` is exactly SM1.
//! - [`Family::TrailStubborn`] `T_k` — SM1 that keeps mining up to `k`
//!   blocks behind instead of adopting. `T_0` is exactly SM1.
//! - [`Family::EqualForkStubborn`] — SM1 that stays stubborn about equal
//!   forks: after winning a tie race by mining (`a = h+1` in an active
//!   fork) it keeps the new block private instead of overriding. The
//!   `race` flag is the family's γ-behaviour: whether it publishes
//!   matching prefixes at all — tie races and the deep-lead progressive
//!   reveal — exposing itself to the `tie_gamma` split, or withholds
//!   everything until an override, γ-blind.
//! - [`Family::UncleTrailStubborn`] `T_k^{d ≤ c}` — the uncle-aware
//!   variant over the fourth axis: trail-stubborn `T_k` that, once its
//!   published prefix's reference distance is fixed at `d ≤ cash_d`
//!   (uncle reward `Ku(d)` still rich), *adopts* the moment it falls
//!   behind — cashing the paper's uncle subsidy instead of gambling the
//!   trail — while staying stubborn when no prefix is out or the
//!   distance is poor. With `cash_d = 0` (or when no prefix is ever
//!   published) it is exactly `T_k`.
//!
//! Every generated table prescribes only *legal* actions inside its
//! truncation region ([`PolicyTable::is_legal_everywhere`]), so replays
//! never hit the forced-adopt fallback except at the truncation boundary.

use seleth_chain::Scenario;
use seleth_mdp::{Action, Fork, PolicyTable, RewardModel, StateSpace};

/// A parametric hand-written withholding strategy (see the
/// [module docs](self) for the catalogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Protocol-following baseline: override any lead, adopt otherwise.
    Honest,
    /// Eyal–Sirer selfish mining (SM1).
    Sm1,
    /// Lead-stubborn `L_k`: matches instead of overriding while the
    /// honest branch is shorter than `k`. `L_0` ≡ SM1.
    LeadStubborn {
        /// Honest-branch length below which the family keeps racing.
        k: u32,
    },
    /// Trail-stubborn `T_k`: keeps mining up to `k` blocks behind the
    /// honest chain instead of adopting. `T_0` ≡ SM1.
    TrailStubborn {
        /// Maximum tolerated trail before conceding.
        k: u32,
    },
    /// Equal-fork-stubborn: never overrides out of a won tie race; the
    /// `race` flag decides whether ties are matched at all.
    EqualForkStubborn {
        /// `true`: publish a matching prefix on ties (the γ-exposed
        /// variant); `false`: withhold through ties, γ-blind.
        race: bool,
    },
    /// Uncle-aware trail-stubborn `T_k^{d ≤ cash_d}`: trail-stubborn that
    /// concedes early — adopting as soon as it falls behind — whenever
    /// its published prefix is fixed at a reference distance `d ≤ cash_d`
    /// and the uncle subsidy is therefore still rich. The only family
    /// whose rule reads the fourth (`match_d`) axis; it lowers to a
    /// four-axis table.
    UncleTrailStubborn {
        /// Maximum tolerated trail while no rich prefix is cashable.
        k: u32,
        /// Largest reference distance considered worth cashing.
        cash_d: u8,
    },
}

impl Family {
    /// A representative of each family at sensible parameters — the
    /// default tournament line-up.
    pub fn representatives() -> Vec<Family> {
        vec![
            Family::Honest,
            Family::Sm1,
            Family::LeadStubborn { k: 2 },
            Family::TrailStubborn { k: 1 },
            Family::EqualForkStubborn { race: true },
            Family::UncleTrailStubborn { k: 1, cash_d: 2 },
        ]
    }

    /// Machine-readable family id including parameters (e.g.
    /// `lead_stubborn_l2`); recorded in the lowered table's
    /// [`PolicyTable::family`] metadata and in tournament reports.
    pub fn id(&self) -> String {
        match self {
            Family::Honest => "honest".into(),
            Family::Sm1 => "sm1".into(),
            Family::LeadStubborn { k } => format!("lead_stubborn_l{k}"),
            Family::TrailStubborn { k } => format!("trail_stubborn_t{k}"),
            Family::EqualForkStubborn { race: true } => "equal_fork_stubborn_race".into(),
            Family::EqualForkStubborn { race: false } => "equal_fork_stubborn_hidden".into(),
            Family::UncleTrailStubborn { k, cash_d } => {
                format!("uncle_trail_stubborn_t{k}_d{cash_d}")
            }
        }
    }

    /// `true` when the family's rule reads the published-prefix reference
    /// distance — such families lower to four-axis tables.
    pub fn is_uncle_aware(&self) -> bool {
        matches!(self, Family::UncleTrailStubborn { .. })
    }

    /// The family's prescription in state `(a, h, fork, match_d)`.
    /// Distance-blind families ignore `match_d`.
    ///
    /// Every returned action is legal in its state under
    /// [`PolicyTable::decide`]'s rules: *override* only with `a > h`,
    /// *match* only in a coverable relevant race (`a ≥ h ≥ 1`).
    pub fn action(&self, a: u32, h: u32, fork: Fork, match_d: u8) -> Action {
        match self {
            Family::Honest => {
                if a > h {
                    Action::Override
                } else {
                    Action::Adopt
                }
            }
            Family::Sm1 => sm1_action(a, h, fork),
            Family::LeadStubborn { k } => {
                // The override trigger is softened: with a short honest
                // branch the family ties the race instead (a ≥ h ≥ 1, so
                // the match is legal) and keeps one block hidden.
                if a == h + 1 && h >= 1 && h < *k {
                    if fork == Fork::Relevant {
                        Action::Match
                    } else {
                        Action::Wait
                    }
                } else {
                    sm1_action(a, h, fork)
                }
            }
            Family::TrailStubborn { k } => trail_stubborn_action(a, h, fork, *k),
            Family::EqualForkStubborn { race } => {
                let base = sm1_action(a, h, fork);
                if !*race && base == Action::Match {
                    // γ-blind: never reveal a prefix early — no tie races,
                    // no progressive reveal; only overrides publish.
                    Action::Wait
                } else if a == h + 1 && h >= 1 && fork == Fork::Active {
                    // Won the race by mining — stay stubborn, keep the new
                    // block private instead of overriding.
                    Action::Wait
                } else {
                    base
                }
            }
            Family::UncleTrailStubborn { k, cash_d } => {
                if h > a && (1..=*cash_d).contains(&match_d) {
                    // Behind with a rich published prefix: concede now and
                    // collect Ku(match_d) — the paper's subsidy effect —
                    // instead of gambling the trail away.
                    Action::Adopt
                } else {
                    trail_stubborn_action(a, h, fork, *k)
                }
            }
        }
    }

    /// The family's predicted objective value at `(α, γ)`, recorded in the
    /// lowered table's `revenue` metadata: the fair share `α` for
    /// [`Family::Honest`], the Eyal–Sirer closed form for [`Family::Sm1`],
    /// and — per [`PolicyTable::from_fn`]'s documented convention for
    /// strategies without a prediction — the honest baseline `α` for the
    /// stubborn variants.
    pub fn predicted_revenue(&self, alpha: f64, gamma: f64) -> f64 {
        match self {
            Family::Sm1 => sm1_closed_form(alpha, gamma),
            _ => alpha,
        }
    }

    /// Lower the family into a replayable [`PolicyTable`] artifact for an
    /// attacker of size `alpha` under tie-breaking `gamma`, truncated at
    /// `max_len`, tagged with [`Family::id`]. Distance-blind families
    /// lower to [`StateSpace::classic`]; uncle-aware ones to the
    /// four-axis [`StateSpace::ethereum`] shape (and record the Ethereum
    /// reward model their rule targets). Family actions do not depend on
    /// `(α, γ)` — the parameters are metadata (and the predicted revenue)
    /// only, exactly as for solver artifacts.
    ///
    /// The family rules are written for the unbounded state abstraction;
    /// on the truncation boundary (`a == max_len` or `h == max_len`) the
    /// lowering canonicalizes *wait*/*match* prescriptions to the
    /// solver's boundary rule — *override* with a lead, *adopt*
    /// otherwise — so every generated table passes
    /// [`PolicyTable::is_legal_everywhere`] and replays identically to
    /// what [`PolicyTable::decide`] would force anyway.
    pub fn table(&self, alpha: f64, gamma: f64, max_len: u32) -> PolicyTable {
        let (space, rewards) = if self.is_uncle_aware() {
            (StateSpace::ethereum(max_len), RewardModel::EthereumApprox)
        } else {
            (StateSpace::classic(max_len), RewardModel::Bitcoin)
        };
        PolicyTable::from_fn(
            alpha,
            gamma,
            rewards,
            Scenario::RegularRate,
            space,
            self.predicted_revenue(alpha, gamma),
            |a, h, fork, d| canonicalize_boundary(self.action(a, h, fork, d), a, h, max_len),
        )
        .with_family(self.id())
    }
}

/// Resolve a family prescription on the truncation boundary: the MDP's
/// legal set there is {*override* if `a > h`, *adopt*} — growing either
/// chain would leave the truncated space — so stored *wait*/*match*
/// canonicalize to the best still-legal resolution. Interior states pass
/// through untouched. Public so tests comparing a raw [`Family::action`]
/// against its lowered table can apply the same rule.
pub fn canonicalize_boundary(action: Action, a: u32, h: u32, max_len: u32) -> Action {
    if (a >= max_len || h >= max_len) && matches!(action, Action::Wait | Action::Match) {
        if a > h {
            Action::Override
        } else {
            Action::Adopt
        }
    } else {
        action
    }
}

/// The SM1 core rule shared (and selectively overridden) by the stubborn
/// families.
///
/// Two non-obvious cases make this the *faithful* Eyal–Sirer encoding:
/// the tie (`a = h`) match, and the **progressive reveal** at a
/// comfortable lead — Algorithm 1 publishes its block at the honest
/// chain's height after every honest block ("publish first unpublished
/// block"), which in the MDP alphabet is a *match* from `a ≥ h + 2`
/// (legal: `a ≥ h ≥ 1`). With γ > 0, honest power that lands on the
/// revealed prefix settles those blocks for the pool (the γβ rebase);
/// dropping the reveal (playing *wait* instead) measurably underperforms
/// the closed form — ≈ 0.03 absolute at `α = 0.4, γ = 0.5`.
fn sm1_action(a: u32, h: u32, fork: Fork) -> Action {
    if h > a {
        Action::Adopt
    } else if h == 0 {
        // Nothing public to race; includes (0, 0) and any fresh lead.
        Action::Wait
    } else if a == h + 1 {
        // The near-win: publish everything and settle (lines 15-17 / the
        // pool-mined (2, 1) concession of Algorithm 1).
        Action::Override
    } else if fork == Fork::Relevant {
        // Tie (a = h): publish the matching prefix and race. Comfortable
        // lead (a ≥ h + 2): progressively reveal up to the honest height.
        Action::Match
    } else {
        // The same states mid-race (active fork) or after the pool's own
        // block (irrelevant): the prefix is already out; keep mining.
        Action::Wait
    }
}

/// The trail-stubborn `T_k` rule: concede only when the trail exceeds
/// `k`; otherwise keep mining behind (`h ≤ a + k`) exactly like SM1 would
/// ahead. Shared by [`Family::TrailStubborn`] and the uncle-aware
/// variant's distance-poor slices.
fn trail_stubborn_action(a: u32, h: u32, fork: Fork, k: u32) -> Action {
    if h > a && h <= a + k {
        Action::Wait
    } else {
        sm1_action(a, h, fork)
    }
}

/// Eyal–Sirer's closed-form SM1 relative revenue (Majority is not Enough,
/// Eq. 8):
///
/// ```text
///        α(1−α)²(4α + γ(1−2α)) − α³
/// R  =  ─────────────────────────────
///          1 − α(1 + (2−α)α)
/// ```
///
/// At `γ = 0` the profitability threshold is `α = 1/3`, where `R = α`
/// exactly — the anchor the unit tests pin. The zero-delay duopoly replay
/// of [`Family::Sm1`]'s table must reproduce this value within
/// Monte-Carlo noise (gated in `tests/zoo_study.rs` and the
/// `strategy_zoo` experiment).
pub fn sm1_closed_form(alpha: f64, gamma: f64) -> f64 {
    let a = alpha;
    let num = a * (1.0 - a) * (1.0 - a) * (4.0 * a + gamma * (1.0 - 2.0 * a)) - a * a * a;
    let den = 1.0 - a * (1.0 + (2.0 - a) * a);
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_anchors() {
        // At the γ = 0 threshold α = 1/3 the closed form crosses the fair
        // share exactly.
        let third = 1.0 / 3.0;
        assert!((sm1_closed_form(third, 0.0) - third).abs() < 1e-12);
        // Sapirshtein et al. report SM1 ≈ 0.36650 at α = 0.35, γ = 0
        // (optimal play only adds ≈ 0.004).
        assert!((sm1_closed_form(0.35, 0.0) - 0.366_50).abs() < 1e-4);
        // Below the threshold SM1 loses money; above, it gains.
        assert!(sm1_closed_form(0.25, 0.0) < 0.25);
        assert!(sm1_closed_form(0.40, 0.0) > 0.40);
        // γ strictly helps the attacker.
        assert!(sm1_closed_form(0.30, 0.5) > sm1_closed_form(0.30, 0.0));
    }

    #[test]
    fn family_ids_are_stable() {
        assert_eq!(Family::Honest.id(), "honest");
        assert_eq!(Family::Sm1.id(), "sm1");
        assert_eq!(Family::LeadStubborn { k: 2 }.id(), "lead_stubborn_l2");
        assert_eq!(Family::TrailStubborn { k: 7 }.id(), "trail_stubborn_t7");
        assert_eq!(
            Family::EqualForkStubborn { race: true }.id(),
            "equal_fork_stubborn_race"
        );
        assert_eq!(
            Family::EqualForkStubborn { race: false }.id(),
            "equal_fork_stubborn_hidden"
        );
        assert_eq!(
            Family::UncleTrailStubborn { k: 2, cash_d: 3 }.id(),
            "uncle_trail_stubborn_t2_d3"
        );
    }

    #[test]
    fn zero_parameter_stubborn_variants_reduce_to_sm1() {
        for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
            for a in 0..12 {
                for h in 0..12 {
                    assert_eq!(
                        Family::LeadStubborn { k: 0 }.action(a, h, fork, 0),
                        Family::Sm1.action(a, h, fork, 0),
                        "L_0 at ({a}, {h}, {fork:?})"
                    );
                    assert_eq!(
                        Family::TrailStubborn { k: 0 }.action(a, h, fork, 0),
                        Family::Sm1.action(a, h, fork, 0),
                        "T_0 at ({a}, {h}, {fork:?})"
                    );
                    // With nothing worth cashing the uncle-aware variant
                    // is exactly trail-stubborn, on every distance slice.
                    for d in 0..=7u8 {
                        assert_eq!(
                            Family::UncleTrailStubborn { k: 2, cash_d: 0 }.action(a, h, fork, d),
                            Family::TrailStubborn { k: 2 }.action(a, h, fork, d),
                            "T_2^0 at ({a}, {h}, {fork:?}, {d})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_representatives_lower_to_legal_tables() {
        for family in Family::representatives() {
            for max_len in [1, 4, 12] {
                let table = family.table(0.35, 0.5, max_len);
                assert!(
                    table.is_legal_everywhere(),
                    "{} at truncation {max_len}",
                    family.id()
                );
                assert_eq!(table.family(), family.id());
                assert_eq!(table.alpha(), 0.35);
                assert_eq!(table.gamma(), 0.5);
                assert_eq!(
                    table.state_space().has_match_d(),
                    family.is_uncle_aware(),
                    "{} lowers to the wrong shape",
                    family.id()
                );
            }
        }
    }

    #[test]
    fn sm1_plays_the_textbook_states() {
        let f = Family::Sm1;
        assert_eq!(f.action(0, 0, Fork::Irrelevant, 0), Action::Wait);
        assert_eq!(f.action(1, 0, Fork::Irrelevant, 0), Action::Wait);
        assert_eq!(f.action(0, 1, Fork::Relevant, 0), Action::Adopt);
        assert_eq!(f.action(1, 1, Fork::Relevant, 0), Action::Match);
        assert_eq!(f.action(1, 1, Fork::Active, 0), Action::Wait);
        assert_eq!(f.action(2, 1, Fork::Relevant, 0), Action::Override);
        assert_eq!(f.action(2, 1, Fork::Active, 0), Action::Override);
        // The progressive reveal: at a comfortable lead SM1 keeps its
        // public prefix level with the honest chain.
        assert_eq!(f.action(3, 1, Fork::Relevant, 0), Action::Match);
        assert_eq!(f.action(5, 2, Fork::Relevant, 0), Action::Match);
        // Mid-race / after an own block the prefix is already out.
        assert_eq!(f.action(3, 1, Fork::Active, 0), Action::Wait);
        assert_eq!(f.action(3, 1, Fork::Irrelevant, 0), Action::Wait);
        assert_eq!(f.action(3, 0, Fork::Irrelevant, 0), Action::Wait);
    }

    #[test]
    fn stubborn_variants_deviate_where_advertised() {
        // Lead-stubborn ties short races instead of overriding.
        let lead = Family::LeadStubborn { k: 2 };
        assert_eq!(lead.action(2, 1, Fork::Relevant, 0), Action::Match);
        assert_eq!(lead.action(3, 2, Fork::Relevant, 0), Action::Override);
        // Trail-stubborn tolerates a bounded trail.
        let trail = Family::TrailStubborn { k: 1 };
        assert_eq!(trail.action(1, 2, Fork::Relevant, 0), Action::Wait);
        assert_eq!(trail.action(1, 3, Fork::Relevant, 0), Action::Adopt);
        // Equal-fork-stubborn keeps a won race private...
        let efs = Family::EqualForkStubborn { race: true };
        assert_eq!(efs.action(2, 1, Fork::Active, 0), Action::Wait);
        assert_eq!(efs.action(2, 1, Fork::Relevant, 0), Action::Override);
        // ...and the hidden variant never reveals anything early.
        let hidden = Family::EqualForkStubborn { race: false };
        assert_eq!(hidden.action(1, 1, Fork::Relevant, 0), Action::Wait);
        assert_eq!(hidden.action(4, 2, Fork::Relevant, 0), Action::Wait);
        assert_eq!(hidden.action(2, 1, Fork::Relevant, 0), Action::Override);
    }

    #[test]
    fn uncle_aware_family_reads_the_fourth_axis() {
        let f = Family::UncleTrailStubborn { k: 2, cash_d: 2 };
        // No prefix out (d = 0): stubborn, tolerate the trail.
        assert_eq!(f.action(1, 2, Fork::Relevant, 0), Action::Wait);
        // Rich prefix (d ≤ 2): cash the uncle the moment it is behind.
        assert_eq!(f.action(1, 2, Fork::Relevant, 1), Action::Adopt);
        assert_eq!(f.action(1, 2, Fork::Relevant, 2), Action::Adopt);
        // Poor prefix (d > 2): back to stubborn.
        assert_eq!(f.action(1, 2, Fork::Relevant, 3), Action::Wait);
        // Ahead or level, the distance changes nothing.
        for d in 0..=7u8 {
            assert_eq!(f.action(3, 1, Fork::Relevant, d), Action::Match);
            assert_eq!(f.action(2, 2, Fork::Relevant, d), Action::Match);
        }
        // And the lowered table puts those prescriptions on the right
        // slices.
        let table = f.table(0.3, 0.5, 8);
        assert!(table.state_space().has_match_d());
        assert_eq!(table.decide(1, 2, Fork::Relevant, 0), Action::Wait);
        assert_eq!(table.decide(1, 2, Fork::Relevant, 1), Action::Adopt);
        assert_eq!(table.decide(1, 2, Fork::Relevant, 3), Action::Wait);
    }
}
