//! The tournament harness: sweep grids of strategy cells through the
//! propagation-delay simulator, in parallel.
//!
//! A [`Cell`] is one experiment point: one or more registered strategists
//! (by [`StrategyRegistry`] index) dropped into a share split, at a delay
//! and a tie-breaking γ. Single-strategist cells measure a family against
//! an honest landscape (duopoly or the 2018 pool split); multi-strategist
//! cells are *matchups* — two table-driven miners attacking each other in
//! the same run, each treating the other's releases as foreign chain
//! (`seleth_sim::delay`'s multi-strategist semantics).
//!
//! [`Tournament::run`] evaluates every cell over `runs` seeded
//! repetitions and reports per-strategist mean revenue (RegularRate
//! normalization, the same quantity as an artifact's ρ*), its standard
//! error, and the cell's orphan rate. Cells are independent, so the sweep
//! runs through [`seleth_bench::par_map`]'s work queue: results are
//! bit-identical for every thread count, and heterogeneous cell costs
//! stay load-balanced.

use seleth_bench::report::replay_revenue;
use seleth_chain::RewardSchedule;
use seleth_mdp::RewardModel;
use seleth_sim::delay::{DelayConfig, DelayCounters, MinerStrategy};

use crate::registry::StrategyRegistry;

/// Budgets and timing shared by every cell of a tournament.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentConfig {
    /// Mean block interval in seconds (Ethereum-like 13 s by default).
    pub interval: f64,
    /// Seeded repetitions per cell (standard errors come from these).
    pub runs: u64,
    /// Blocks mined per repetition.
    pub blocks: u64,
    /// Base RNG seed; repetition `k` of every cell uses `seed + k`.
    pub seed: u64,
    /// Worker threads for the cell sweep (`0` = `available_parallelism`).
    pub threads: usize,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            interval: 13.0,
            runs: 5,
            blocks: 30_000,
            seed: 31_337,
            threads: 0,
        }
    }
}

/// One sweep point: strategists, their share split, delay and γ.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Split label carried into reports (e.g. `duopoly`, `pools2018`,
    /// `matchup`).
    pub label: String,
    /// Registry indices of the strategists, occupying miner slots
    /// `0..n`; the remaining share entries are honest miners.
    pub strategists: Vec<usize>,
    /// Full hash-share vector (strategists first, honest landscape after;
    /// must be a probability distribution).
    pub shares: Vec<f64>,
    /// Fraction of honest power joining a strategist's side in tie races.
    pub tie_gamma: f64,
    /// Propagation delay in seconds.
    pub delay: f64,
}

impl Cell {
    /// A single-strategist cell: the strategist's share first, the honest
    /// landscape after it.
    pub fn single(
        label: impl Into<String>,
        strategist: usize,
        shares: Vec<f64>,
        tie_gamma: f64,
        delay: f64,
    ) -> Self {
        Cell {
            label: label.into(),
            strategists: vec![strategist],
            shares,
            tie_gamma,
            delay,
        }
    }

    /// A two-strategist matchup: `a` and `b` with explicit shares, the
    /// remaining hash power as one aggregate honest miner (dropped when
    /// the two strategists already exhaust the distribution).
    pub fn matchup(
        label: impl Into<String>,
        a: (usize, f64),
        b: (usize, f64),
        tie_gamma: f64,
        delay: f64,
    ) -> Self {
        let rest = 1.0 - a.1 - b.1;
        let mut shares = vec![a.1, b.1];
        if rest > 1e-9 {
            shares.push(rest);
        }
        Cell {
            label: label.into(),
            strategists: vec![a.0, b.0],
            shares,
            tie_gamma,
            delay,
        }
    }
}

/// One strategist's measured outcome in a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategistOutcome {
    /// Registry name (family id or artifact stem).
    pub name: String,
    /// Family metadata recorded in the table (`""` for solver artifacts).
    pub family: String,
    /// Hash share the strategist held in this cell.
    pub share: f64,
    /// The table's predicted objective value at its own `(α, γ)`.
    pub predicted: f64,
    /// Mean measured revenue (RegularRate normalization, comparable to
    /// ρ*).
    pub revenue: f64,
    /// Standard error of the mean over the cell's repetitions.
    pub std_err: f64,
}

/// A fully evaluated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's split label.
    pub label: String,
    /// Propagation delay of the cell.
    pub delay: f64,
    /// Tie-breaking γ of the cell.
    pub tie_gamma: f64,
    /// Per-strategist outcomes, in miner-slot order.
    pub strategists: Vec<StrategistOutcome>,
    /// Mean system-wide orphan rate across repetitions.
    pub orphan_rate: f64,
    /// Deterministic delay-engine counters summed over the cell's
    /// repetitions (bit-identical at any thread count).
    pub counters: DelayCounters,
}

impl CellResult {
    /// The first (slot-0) strategist's mean revenue — the ranking key for
    /// single-strategist cells.
    pub fn lead_revenue(&self) -> f64 {
        self.strategists[0].revenue
    }
}

/// A grid of cells over a registry, ready to sweep.
#[derive(Debug)]
pub struct Tournament<'r> {
    registry: &'r StrategyRegistry,
    config: TournamentConfig,
    cells: Vec<Cell>,
}

impl<'r> Tournament<'r> {
    /// An empty tournament over `registry`.
    pub fn new(registry: &'r StrategyRegistry, config: TournamentConfig) -> Self {
        Tournament {
            registry,
            config,
            cells: Vec::new(),
        }
    }

    /// Add a sweep point.
    ///
    /// # Panics
    ///
    /// Panics when the cell is structurally broken — no strategists, a
    /// registry index out of range, or fewer shares than strategists.
    /// (Share-distribution validity is enforced by the delay simulator's
    /// builder at evaluation time.)
    pub fn add_cell(&mut self, cell: Cell) {
        assert!(!cell.strategists.is_empty(), "cell without strategists");
        assert!(
            cell.shares.len() >= cell.strategists.len(),
            "cell with fewer shares than strategists"
        );
        for &idx in &cell.strategists {
            assert!(idx < self.registry.len(), "unknown strategist index {idx}");
        }
        self.cells.push(cell);
    }

    /// The grid so far.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Evaluate every cell, in parallel across sweep points, returning
    /// results in grid order. Bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics when a cell's delay configuration is rejected (invalid share
    /// distribution) — tournament grids are experiment code with no
    /// recovery path.
    pub fn run(&self) -> Vec<CellResult> {
        self.run_traced(&seleth_obs::NoopRecorder).0
    }

    /// [`Tournament::run`] with per-worker telemetry: cells sweep through
    /// `seleth_bench::par_map_traced`, each worker folding its cells'
    /// deterministic engine counters into a shard. Cell results are
    /// bit-identical to [`Tournament::run`]; shard counter totals merge
    /// to the same values at any thread count.
    ///
    /// # Panics
    ///
    /// As [`Tournament::run`].
    pub fn run_traced(
        &self,
        recorder: &dyn seleth_obs::Recorder,
    ) -> (Vec<CellResult>, Vec<seleth_obs::TelemetryShard>) {
        seleth_bench::par_map_traced(&self.cells, self.config.threads, recorder, |cell, shard| {
            let result = self.eval(cell);
            result.counters.record_into(shard);
            shard.add("study.runs", self.config.runs);
            result
        })
    }

    fn eval(&self, cell: &Cell) -> CellResult {
        let entries: Vec<_> = cell
            .strategists
            .iter()
            .map(|&i| self.registry.get(i))
            .collect();
        // The cell's reward schedule follows the lead strategist's reward
        // model (families are Bitcoin-model; Ethereum artifacts bring the
        // uncle schedule with them).
        let schedule = match entries[0].table.rewards() {
            RewardModel::Bitcoin => RewardSchedule::bitcoin(),
            RewardModel::EthereumApprox => RewardSchedule::ethereum(),
        };
        let strategies: Vec<MinerStrategy> = entries
            .iter()
            .map(|e| MinerStrategy::Table(e.table.clone()))
            .collect();
        let config = DelayConfig::builder()
            .shares(cell.shares.clone())
            .strategies(strategies)
            .tie_gamma(cell.tie_gamma)
            .delay(cell.delay)
            .interval(self.config.interval)
            .blocks(self.config.blocks)
            .seed(self.config.seed)
            .schedule(schedule)
            .build()
            .expect("valid tournament cell");

        let outcome = replay_revenue(self.config.runs, entries.len(), |k| {
            config.with_seed(self.config.seed + k)
        });

        let strategists = entries
            .iter()
            .zip(outcome.slots.iter())
            .enumerate()
            .map(|(slot, (entry, &(mean, std_err)))| StrategistOutcome {
                name: entry.name.clone(),
                family: entry.table.family().to_string(),
                share: cell.shares[slot],
                predicted: entry.predicted,
                revenue: mean,
                std_err,
            })
            .collect();
        CellResult {
            label: cell.label.clone(),
            delay: cell.delay,
            tie_gamma: cell.tie_gamma,
            strategists,
            orphan_rate: outcome.orphan_rate,
            counters: outcome.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::Family;

    fn small_config(threads: usize) -> TournamentConfig {
        TournamentConfig {
            runs: 2,
            blocks: 4_000,
            threads,
            ..TournamentConfig::default()
        }
    }

    fn grid(registry: &StrategyRegistry, threads: usize) -> Tournament<'_> {
        let mut t = Tournament::new(registry, small_config(threads));
        for delay in [0.0, 4.0] {
            t.add_cell(Cell::single("duopoly", 0, vec![0.3, 0.7], 0.5, delay));
            t.add_cell(Cell::single("duopoly", 1, vec![0.3, 0.7], 0.5, delay));
            t.add_cell(Cell::matchup("matchup", (1, 0.3), (1, 0.3), 0.5, delay));
        }
        t
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut registry = StrategyRegistry::new();
        registry.register_family(Family::Honest, 0.3, 0.5, 10);
        registry.register_family(Family::Sm1, 0.3, 0.5, 10);
        let reference = grid(&registry, 1).run();
        assert_eq!(reference.len(), 6);
        let parallel = grid(&registry, 4).run();
        assert_eq!(reference, parallel);
        // Honest playback in the zero-delay duopoly earns the fair share.
        let honest_zero = &reference[0];
        assert!((honest_zero.lead_revenue() - 0.3).abs() < 0.05);
        assert_eq!(honest_zero.strategists[0].family, "honest");
        // The matchup cell reports both strategists.
        assert_eq!(reference[2].strategists.len(), 2);
        assert_eq!(reference[2].strategists[1].name, "sm1");
    }

    #[test]
    #[should_panic(expected = "unknown strategist index")]
    fn unknown_indices_are_rejected() {
        let registry = StrategyRegistry::new();
        let mut t = Tournament::new(&registry, small_config(1));
        t.add_cell(Cell::single("duopoly", 0, vec![0.3, 0.7], 0.5, 0.0));
    }
}
