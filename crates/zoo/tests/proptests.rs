//! Property tests of the strategy-family generators: every lowered table
//! must survive the artifact JSON round-trip bit-identically, and the
//! honest/SM1 families must never trigger the forced-adopt fallback
//! inside their truncation region.

use proptest::prelude::*;

use seleth_mdp::{Fork, PolicyTable};
use seleth_zoo::Family;

/// The family picked by an arbitrary byte (the vendored proptest has no
/// enum strategies).
fn family_from(pick: u8, k: u32) -> Family {
    match pick % 6 {
        0 => Family::Honest,
        1 => Family::Sm1,
        2 => Family::LeadStubborn { k },
        3 => Family::TrailStubborn { k },
        4 => Family::EqualForkStubborn { race: true },
        _ => Family::EqualForkStubborn { race: false },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated family table round-trips through the artifact JSON
    /// bit-identically — metadata floats by bits, the family tag and every
    /// action slot exactly.
    #[test]
    fn family_tables_roundtrip_bit_identically(
        pick in any::<u8>(),
        k in 0u32..6,
        alpha in 0.05f64..0.49,
        gamma in 0.0f64..1.0,
        max_len in 1u32..14,
    ) {
        let family = family_from(pick, k);
        let table = family.table(alpha, gamma, max_len);
        let restored = PolicyTable::from_json(&table.to_json()).expect("parse");
        prop_assert_eq!(&table, &restored);
        prop_assert_eq!(table.alpha().to_bits(), restored.alpha().to_bits());
        prop_assert_eq!(table.gamma().to_bits(), restored.gamma().to_bits());
        prop_assert_eq!(
            table.predicted_revenue().to_bits(),
            restored.predicted_revenue().to_bits()
        );
        prop_assert_eq!(table.family(), family.id());
        prop_assert_eq!(restored.family(), family.id());
        // A second trip is a fixed point of the text form too.
        prop_assert_eq!(table.to_json(), restored.to_json());
    }

    /// Inside the truncation region, `decide` returns the honest and SM1
    /// prescriptions unchanged in every state — the replay executors never
    /// degrade them to the forced adopt.
    #[test]
    fn honest_and_sm1_never_hit_the_fallback_in_region(
        alpha in 0.05f64..0.49,
        gamma in 0.0f64..1.0,
        max_len in 1u32..14,
    ) {
        for family in [Family::Honest, Family::Sm1] {
            let table = family.table(alpha, gamma, max_len);
            prop_assert!(table.is_legal_everywhere(), "{} audit", family.id());
            for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
                for a in 0..=max_len {
                    for h in 0..=max_len {
                        prop_assert_eq!(
                            table.decide(a, h, fork),
                            family.action(a, h, fork),
                            "{} at ({}, {}, {:?})", family.id(), a, h, fork
                        );
                    }
                }
            }
        }
    }

    /// The stubborn variants are legal everywhere too, for any parameter.
    #[test]
    fn stubborn_families_lower_to_legal_tables(
        k in 0u32..9,
        race in any::<bool>(),
        max_len in 1u32..12,
    ) {
        for family in [
            Family::LeadStubborn { k },
            Family::TrailStubborn { k },
            Family::EqualForkStubborn { race },
        ] {
            prop_assert!(
                family.table(0.3, 0.5, max_len).is_legal_everywhere(),
                "{}", family.id()
            );
        }
    }
}
