//! Property tests of the strategy-family generators: every lowered table
//! must survive the artifact JSON round-trip bit-identically (including
//! the four-axis uncle-aware tables on the v2 wire format), and the
//! honest/SM1 families must never trigger the forced-adopt fallback
//! inside their truncation region.

use proptest::prelude::*;

use seleth_mdp::{Fork, PolicyTable};
use seleth_zoo::{canonicalize_boundary, Family};

/// The family picked by an arbitrary byte (the vendored proptest has no
/// enum strategies).
fn family_from(pick: u8, k: u32) -> Family {
    match pick % 7 {
        0 => Family::Honest,
        1 => Family::Sm1,
        2 => Family::LeadStubborn { k },
        3 => Family::TrailStubborn { k },
        4 => Family::EqualForkStubborn { race: true },
        5 => Family::EqualForkStubborn { race: false },
        _ => Family::UncleTrailStubborn {
            k,
            cash_d: (k % 7) as u8,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated family table round-trips through the artifact JSON
    /// bit-identically — metadata floats by bits, the family tag, the
    /// state-space descriptor and every action slot exactly. Uncle-aware
    /// families exercise the four-axis format-2 wire format.
    #[test]
    fn family_tables_roundtrip_bit_identically(
        pick in any::<u8>(),
        k in 0u32..6,
        alpha in 0.05f64..0.49,
        gamma in 0.0f64..1.0,
        max_len in 1u32..14,
    ) {
        let family = family_from(pick, k);
        let table = family.table(alpha, gamma, max_len);
        let restored = PolicyTable::from_json(&table.to_json()).expect("parse");
        prop_assert_eq!(&table, &restored);
        prop_assert_eq!(table.alpha().to_bits(), restored.alpha().to_bits());
        prop_assert_eq!(table.gamma().to_bits(), restored.gamma().to_bits());
        prop_assert_eq!(
            table.predicted_revenue().to_bits(),
            restored.predicted_revenue().to_bits()
        );
        prop_assert_eq!(table.family(), family.id());
        prop_assert_eq!(restored.family(), family.id());
        prop_assert_eq!(table.state_space(), restored.state_space());
        prop_assert_eq!(table.state_space().has_match_d(), family.is_uncle_aware());
        // A second trip is a fixed point of the text form too.
        prop_assert_eq!(table.to_json(), restored.to_json());
    }

    /// Inside the truncation region, `decide` returns the honest and SM1
    /// prescriptions unchanged in every state — the replay executors never
    /// degrade them to the forced adopt. On the boundary itself the
    /// lowering canonicalizes wait/match to the solver's boundary rule,
    /// so the expectation is the canonicalized family action.
    #[test]
    fn honest_and_sm1_never_hit_the_fallback_in_region(
        alpha in 0.05f64..0.49,
        gamma in 0.0f64..1.0,
        max_len in 1u32..14,
    ) {
        for family in [Family::Honest, Family::Sm1] {
            let table = family.table(alpha, gamma, max_len);
            prop_assert!(table.is_legal_everywhere(), "{} audit", family.id());
            for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
                for a in 0..=max_len {
                    for h in 0..=max_len {
                        prop_assert_eq!(
                            table.decide(a, h, fork, 0),
                            canonicalize_boundary(
                                family.action(a, h, fork, 0), a, h, max_len
                            ),
                            "{} at ({}, {}, {:?})", family.id(), a, h, fork
                        );
                    }
                }
            }
        }
    }

    /// The stubborn variants are legal everywhere too, for any parameter —
    /// including the uncle-aware variant across its whole distance axis.
    #[test]
    fn stubborn_families_lower_to_legal_tables(
        k in 0u32..9,
        race in any::<bool>(),
        cash_d in 0u8..8,
        max_len in 1u32..12,
    ) {
        for family in [
            Family::LeadStubborn { k },
            Family::TrailStubborn { k },
            Family::EqualForkStubborn { race },
            Family::UncleTrailStubborn { k, cash_d },
        ] {
            prop_assert!(
                family.table(0.3, 0.5, max_len).is_legal_everywhere(),
                "{}", family.id()
            );
        }
    }

    /// The uncle-aware generator honours `decide` across the fourth axis:
    /// every `(state, distance)` slot of the lowered four-axis table
    /// replays the family rule unchanged.
    #[test]
    fn uncle_aware_tables_replay_their_rule_on_every_slice(
        k in 0u32..4,
        cash_d in 0u8..8,
        max_len in 1u32..8,
    ) {
        let family = Family::UncleTrailStubborn { k, cash_d };
        let table = family.table(0.35, 0.5, max_len);
        for fork in [Fork::Irrelevant, Fork::Relevant, Fork::Active] {
            for d in 0..=7u8 {
                for a in 0..=max_len {
                    for h in 0..=max_len {
                        prop_assert_eq!(
                            table.decide(a, h, fork, d),
                            canonicalize_boundary(
                                family.action(a, h, fork, d), a, h, max_len
                            ),
                            "{} at ({}, {}, {:?}, {})", family.id(), a, h, fork, d
                        );
                    }
                }
            }
        }
    }
}
