//! Peer-graph gossip network layer for the selfish-ethereum workspace.
//!
//! The uniform delay model (`seleth_sim::delay`) treats propagation as a
//! single constant: every miner hears every block exactly `delay` seconds
//! after release. Real networks are graphs — miners and relay nodes joined
//! by links of unequal latency, with packet loss, re-gossip, and
//! compact-relay shortcuts — and the *position* of a miner in that graph
//! changes what selfish mining earns it. This crate supplies the graph:
//!
//! * [`Topology`]: a node set ([`NodeRole::Miner`] / [`NodeRole::Relay`])
//!   and directed [`Link`]s, each with a latency distribution
//!   ([`Latency::Fixed`] or [`Latency::Uniform`]), a loss probability and
//!   an optional compact-relay `shortcut` flag.
//! * A deterministic **gossip propagation engine**
//!   ([`Topology::propagate`]): blocks flood the graph with per-node
//!   seen-set dedup; the first copy to reach each node wins, every later
//!   copy is a dedup drop. Earliest arrivals are the graph
//!   shortest-path times under the per-edge traversal costs, computed by a
//!   deterministic Dijkstra (ties broken by node index).
//! * Builders for the canonical shapes the topology study sweeps:
//!   [`Topology::complete`], [`Topology::ring`], [`Topology::star_relay`],
//!   [`Topology::two_clusters`] and [`Topology::eclipse`], plus a general
//!   [`TopologyBuilder`].
//!
//! # Determinism contract
//!
//! All per-edge randomness — a `Uniform` latency draw, a loss coin — is a
//! pure function of `(topology seed, stream, block, edge, attempt)`
//! hashed through a splitmix64 counter chain, exactly like the fault
//! layer's per-link coins. The engine's RNG is **never** consulted, so a
//! propagation schedule is a constant of the topology and the block index:
//! bit-identical at any thread count, in any evaluation order.
//!
//! The complete-graph/uniform-latency topology reproduces the uniform
//! delay engine **bit-for-bit**: every pairwise arrival equals the edge
//! latency exactly (one hop, no loss), so the delay engine's folded
//! per-receiver surcharge is exactly `0.0` and every downstream `f64`
//! comparison is the same operation as in the uniform model. The PR 6 hex
//! anchors re-assert this in `tests/topology_study.rs`.
//!
//! # Example
//!
//! ```
//! use seleth_net::Topology;
//!
//! // Four miners behind one relay hub, 3s spokes: every pairwise
//! // arrival is 6s over two hops.
//! let star = Topology::star_relay(&[3.0, 3.0, 3.0, 3.0]).unwrap();
//! let p = star.propagate(0, 42);
//! assert_eq!(p.arrival[0], 0.0);
//! assert_eq!(p.arrival[2], 6.0);
//! assert_eq!(p.hops[2], 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use serde::{Deserialize, Serialize};

/// Stream tag of per-edge latency draws in the splitmix64 chain.
const STREAM_LATENCY: u64 = 1;
/// Stream tag of per-edge loss coins in the splitmix64 chain.
const STREAM_LOSS: u64 = 2;

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation
/// (the same construction the fault layer uses for its per-link coins).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)` with the standard 53-bit mantissa trick.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One splitmix64 chain over `(seed, stream, block, edge, attempt)` — the
/// entire randomness of a topology. Counter-based, never stateful.
fn hash(seed: u64, stream: u64, block: u64, edge: u64, attempt: u32) -> u64 {
    let mut h = splitmix64(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    h = splitmix64(h ^ block);
    h = splitmix64(h ^ edge);
    splitmix64(h ^ u64::from(attempt))
}

/// What a graph node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRole {
    /// A mining participant; the payload is the dense miner id (the index
    /// into the delay simulator's share vector).
    Miner(usize),
    /// A non-mining relay: it forwards gossip but never produces blocks.
    Relay,
}

/// Per-link latency model, in the simulation's time unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Latency {
    /// A constant traversal latency.
    Fixed(f64),
    /// A fresh draw per `(edge, block)` from `[lo, hi)`, via the
    /// counter-based splitmix64 chain (never the sim RNG).
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound (equal to `lo` degenerates to fixed).
        hi: f64,
    },
}

impl Latency {
    /// The expected traversal latency (midpoint for `Uniform`), used for
    /// nominal-mean scaling — never on the propagation path.
    fn expected(&self) -> f64 {
        match *self {
            Latency::Fixed(l) => l,
            Latency::Uniform { lo, hi } => lo + (hi - lo) * 0.5,
        }
    }

    fn scaled(&self, factor: f64) -> Latency {
        match *self {
            Latency::Fixed(l) => Latency::Fixed(l * factor),
            Latency::Uniform { lo, hi } => Latency::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        let ok = match *self {
            Latency::Fixed(l) => l.is_finite() && l >= 0.0,
            Latency::Uniform { lo, hi } => {
                lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi
            }
        };
        if ok {
            Ok(())
        } else {
            Err(NetError::InvalidLatency { latency: *self })
        }
    }
}

/// One directed edge of the peer graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Traversal latency model.
    pub latency: Latency,
    /// Probability that one gossip attempt over this link is lost
    /// (re-sent with capped exponential backoff until it succeeds).
    /// Must lie in `[0, 1)`.
    pub loss: f64,
    /// A compact-relay shortcut: announcement and body travel as one
    /// compact message on a persistent session, bypassing the loss/retry
    /// pipeline entirely (cf. compact-block relay networks).
    pub shortcut: bool,
}

/// Why a topology failed to build.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The node set contains no miner.
    NoMiners,
    /// A link names a node index outside the node set.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the set.
        nodes: usize,
    },
    /// A link loops a node back to itself.
    SelfLoop {
        /// The offending node index.
        node: usize,
    },
    /// A latency bound is not a finite non-negative number (or an empty
    /// uniform range).
    InvalidLatency {
        /// The rejected latency model.
        latency: Latency,
    },
    /// A loss probability is outside `[0, 1)`.
    InvalidLoss {
        /// The rejected value.
        loss: f64,
    },
    /// A retry/backoff parameter is not positive finite.
    InvalidBackoff {
        /// The rejected value.
        backoff: f64,
    },
    /// A latency scale factor is not positive finite (e.g. the nominal
    /// mean was zero or the graph has unreachable miner pairs).
    InvalidScale {
        /// The rejected factor.
        factor: f64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NoMiners => write!(f, "a topology needs at least one miner node"),
            NetError::UnknownNode { node, nodes } => {
                write!(
                    f,
                    "link names node {node} but the topology has {nodes} nodes"
                )
            }
            NetError::SelfLoop { node } => write!(f, "node {node} links to itself"),
            NetError::InvalidLatency { latency } => {
                write!(f, "latency {latency:?} must be finite and non-negative")
            }
            NetError::InvalidLoss { loss } => write!(f, "loss {loss} must lie in [0, 1)"),
            NetError::InvalidBackoff { backoff } => {
                write!(f, "backoff {backoff} must be positive finite")
            }
            NetError::InvalidScale { factor } => {
                write!(f, "latency scale factor {factor} must be positive finite")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Deterministic gossip-accounting totals of one propagation (plain `u64`
/// counts: summing them across blocks or runs is order-independent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipStats {
    /// Gossip messages sent over edges out of reached nodes.
    pub sends: u64,
    /// Copies discarded by a receiver's seen-set (the receiver already
    /// held the block, or an equal-or-earlier copy was already queued).
    pub dedup_drops: u64,
    /// Loss-coin failures that forced a backoff re-send on some edge.
    pub loss_retries: u64,
}

impl GossipStats {
    /// Add `other`'s totals into `self`.
    pub fn merge(&mut self, other: &GossipStats) {
        self.sends += other.sends;
        self.dedup_drops += other.dedup_drops;
        self.loss_retries += other.loss_retries;
    }
}

/// Earliest-arrival schedule of one block over the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Propagation {
    /// Per miner id: time after release at which the miner first holds
    /// the block. `0.0` for the producer, [`f64::INFINITY`] if the graph
    /// never delivers it.
    pub arrival: Vec<f64>,
    /// Per miner id: edges on the earliest-arrival path (0 for the
    /// producer and for unreachable miners). Paths through relays count
    /// every edge, so a star delivery is 2 hops.
    pub hops: Vec<u32>,
    /// Gossip accounting of this propagation.
    pub stats: GossipStats,
}

/// Precomputed all-pairs schedule of a static topology (all latencies
/// fixed, no lossy links): propagation is block-independent, so the
/// engine's hot path degenerates to a row copy.
#[derive(Debug, Clone, PartialEq)]
struct StaticPlan {
    /// Flattened `[producer * miners + receiver]` arrivals.
    arrival: Vec<f64>,
    /// Flattened `[producer * miners + receiver]` hop counts.
    hops: Vec<u32>,
    /// Per-producer gossip stats.
    stats: Vec<GossipStats>,
}

/// A validated peer graph. Build one with [`Topology::builder`] or a
/// canonical-shape constructor, then hand it to the delay simulator as a
/// `PropagationModel` (or query [`Topology::propagate`] directly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<NodeRole>,
    links: Vec<Link>,
    /// Outgoing link indices per node (insertion order — part of the
    /// deterministic tie-break contract).
    out: Vec<Vec<usize>>,
    /// Node index of each dense miner id.
    miner_nodes: Vec<usize>,
    seed: u64,
    /// Loss re-send attempts before the copy is forced through (gossip
    /// keeps retrying forever; the cap bounds the arithmetic).
    max_attempts: u32,
    /// Base of the capped exponential re-send backoff.
    backoff_base: f64,
    /// All-pairs schedule when the graph is static (no per-block draws).
    static_plan: Option<StaticPlan>,
}

/// Incremental constructor for arbitrary [`Topology`] graphs.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    nodes: Vec<NodeRole>,
    links: Vec<Link>,
    seed: u64,
    max_attempts: u32,
    backoff_base: f64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            nodes: Vec::new(),
            links: Vec::new(),
            seed: 0,
            max_attempts: 8,
            backoff_base: 1.0,
        }
    }
}

impl TopologyBuilder {
    /// Append a miner node; returns its node index. Miner ids are dense
    /// and assigned in call order (the first call is miner 0).
    pub fn miner(&mut self) -> usize {
        let id = self
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeRole::Miner(_)))
            .count();
        self.nodes.push(NodeRole::Miner(id));
        self.nodes.len() - 1
    }

    /// Append `count` miner nodes; returns the node index of the first.
    pub fn miners(&mut self, count: usize) -> usize {
        let first = self.nodes.len();
        for _ in 0..count {
            self.miner();
        }
        first
    }

    /// Append a relay node; returns its node index.
    pub fn relay(&mut self) -> usize {
        self.nodes.push(NodeRole::Relay);
        self.nodes.len() - 1
    }

    /// Seed of the counter-based per-edge draw chain.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Base of the capped exponential re-send backoff after a lost gossip
    /// (default 1.0 time units; the cap is `base * 2^6`).
    pub fn backoff(&mut self, base: f64) -> &mut Self {
        self.backoff_base = base;
        self
    }

    /// Loss re-send attempts before a copy is forced through (default 8).
    pub fn max_attempts(&mut self, attempts: u32) -> &mut Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Add one directed lossless fixed-latency edge.
    pub fn edge(&mut self, from: usize, to: usize, latency: f64) -> &mut Self {
        self.links.push(Link {
            from,
            to,
            latency: Latency::Fixed(latency),
            loss: 0.0,
            shortcut: false,
        });
        self
    }

    /// Add a lossless fixed-latency edge in both directions.
    pub fn link(&mut self, a: usize, b: usize, latency: f64) -> &mut Self {
        self.edge(a, b, latency).edge(b, a, latency)
    }

    /// Add one fully specified directed edge.
    pub fn edge_spec(&mut self, link: Link) -> &mut Self {
        self.links.push(link);
        self
    }

    /// Add a compact-relay shortcut in both directions: fixed latency, no
    /// loss pipeline (see [`Link::shortcut`]).
    pub fn shortcut(&mut self, a: usize, b: usize, latency: f64) -> &mut Self {
        for (from, to) in [(a, b), (b, a)] {
            self.links.push(Link {
                from,
                to,
                latency: Latency::Fixed(latency),
                loss: 0.0,
                shortcut: true,
            });
        }
        self
    }

    /// Validate and build the topology.
    ///
    /// # Errors
    ///
    /// [`NetError`] when the node set has no miner, a link names an
    /// unknown node or loops, a latency or loss parameter is out of
    /// range, or the backoff base is not positive finite.
    pub fn build(&self) -> Result<Topology, NetError> {
        let miners = self
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeRole::Miner(_)))
            .count();
        if miners == 0 {
            return Err(NetError::NoMiners);
        }
        if !self.backoff_base.is_finite() || self.backoff_base <= 0.0 {
            return Err(NetError::InvalidBackoff {
                backoff: self.backoff_base,
            });
        }
        for link in &self.links {
            for node in [link.from, link.to] {
                if node >= self.nodes.len() {
                    return Err(NetError::UnknownNode {
                        node,
                        nodes: self.nodes.len(),
                    });
                }
            }
            if link.from == link.to {
                return Err(NetError::SelfLoop { node: link.from });
            }
            link.latency.validate()?;
            if !link.loss.is_finite() || !(0.0..1.0).contains(&link.loss) {
                return Err(NetError::InvalidLoss { loss: link.loss });
            }
        }
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (e, link) in self.links.iter().enumerate() {
            out[link.from].push(e);
        }
        let mut miner_nodes = vec![0usize; miners];
        for (n, role) in self.nodes.iter().enumerate() {
            if let NodeRole::Miner(id) = role {
                miner_nodes[*id] = n;
            }
        }
        let mut topology = Topology {
            nodes: self.nodes.clone(),
            links: self.links.clone(),
            out,
            miner_nodes,
            seed: self.seed,
            max_attempts: self.max_attempts,
            backoff_base: self.backoff_base,
            static_plan: None,
        };
        if topology.is_static() {
            topology.static_plan = Some(topology.compile_static());
        }
        Ok(topology)
    }
}

impl Topology {
    /// Start building an arbitrary graph.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The complete graph over `miners` miners with one fixed `latency`
    /// on every ordered pair — the uniform delay model as a topology.
    /// With the delay simulator's base delay set to the same value the
    /// run is bit-identical to the uniform engine.
    ///
    /// # Errors
    ///
    /// [`NetError`] for zero miners or an invalid latency.
    pub fn complete(miners: usize, latency: f64) -> Result<Topology, NetError> {
        let mut b = Topology::builder();
        b.miners(miners);
        for i in 0..miners {
            for j in (i + 1)..miners {
                b.link(i, j, latency);
            }
        }
        b.build()
    }

    /// A bidirectional ring of `miners` miners with `hop_latency` per
    /// hop: arrival time grows linearly with ring distance.
    ///
    /// # Errors
    ///
    /// [`NetError`] for zero miners or an invalid latency.
    pub fn ring(miners: usize, hop_latency: f64) -> Result<Topology, NetError> {
        let mut b = Topology::builder();
        b.miners(miners);
        for i in 0..miners {
            b.link(i, (i + 1) % miners, hop_latency);
        }
        b.build()
    }

    /// A star: every miner hangs off one central relay node by its spoke
    /// latency (`spokes[i]` for miner `i`); pairwise arrival is the sum
    /// of the two spokes, over two hops. Unequal spokes express
    /// well-connected vs peripheral miners.
    ///
    /// # Errors
    ///
    /// [`NetError`] for an empty spoke list or an invalid latency.
    pub fn star_relay(spokes: &[f64]) -> Result<Topology, NetError> {
        let mut b = Topology::builder();
        b.miners(spokes.len());
        let hub = b.relay();
        for (i, &s) in spokes.iter().enumerate() {
            b.link(i, hub, s);
        }
        b.build()
    }

    /// Two complete clusters of `a` and `b` miners (intra-cluster latency
    /// `intra`) joined by a single bridge between miner `0` and miner `a`
    /// with latency `bridge` — a graph with a cut. Timed partitions over
    /// the cluster assignment express the cut opening and healing.
    ///
    /// # Errors
    ///
    /// [`NetError`] for an empty cluster or an invalid latency.
    pub fn two_clusters(a: usize, b: usize, intra: f64, bridge: f64) -> Result<Topology, NetError> {
        if a == 0 || b == 0 {
            return Err(NetError::NoMiners);
        }
        let mut bld = Topology::builder();
        bld.miners(a + b);
        for cluster in [0..a, a..a + b] {
            let members: Vec<usize> = cluster.collect();
            for (x, &i) in members.iter().enumerate() {
                for &j in &members[x + 1..] {
                    bld.link(i, j, intra);
                }
            }
        }
        bld.link(0, a, bridge);
        bld.build()
    }

    /// An eclipse-of-one: all miners except `victim` form a complete
    /// graph at `inner`; the victim's only connection is a single choked
    /// link (latency `choke`) to the lowest-indexed other miner.
    ///
    /// # Errors
    ///
    /// [`NetError`] for fewer than two miners, a victim index out of
    /// range, or an invalid latency.
    pub fn eclipse(
        miners: usize,
        victim: usize,
        inner: f64,
        choke: f64,
    ) -> Result<Topology, NetError> {
        if miners < 2 || victim >= miners {
            return Err(NetError::NoMiners);
        }
        let mut b = Topology::builder();
        b.miners(miners);
        for i in 0..miners {
            if i == victim {
                continue;
            }
            for j in (i + 1)..miners {
                if j == victim {
                    continue;
                }
                b.link(i, j, inner);
            }
        }
        let gateway = (0..miners).find(|&m| m != victim).unwrap_or(0);
        b.link(victim, gateway, choke);
        b.build()
    }

    /// Number of miner nodes (dense ids `0..miner_count`).
    pub fn miner_count(&self) -> usize {
        self.miner_nodes.len()
    }

    /// Total number of graph nodes (miners + relays).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of relay nodes.
    pub fn relay_count(&self) -> usize {
        self.nodes.len() - self.miner_nodes.len()
    }

    /// The directed links of the graph.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The seed of the per-edge draw chain.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A copy with a different draw seed (schedules decorrelate across
    /// runs while the graph shape stays put). Static topologies are
    /// unaffected — their schedule never consults the seed.
    pub fn with_seed(&self, seed: u64) -> Topology {
        Topology {
            seed,
            ..self.clone()
        }
    }

    /// `true` when propagation is block-independent: every latency fixed
    /// and every link lossless (shortcut links are always lossless).
    pub fn is_static(&self) -> bool {
        self.links
            .iter()
            .all(|l| matches!(l.latency, Latency::Fixed(_)) && (l.shortcut || l.loss == 0.0))
    }

    /// Mean nominal arrival latency over ordered miner pairs `(i, j)`,
    /// `i != j`, using expected per-edge latencies and ignoring loss —
    /// the normalizer that puts different shapes at the same effective
    /// delay. [`f64::INFINITY`] if any pair is unreachable.
    pub fn nominal_mean_latency(&self) -> f64 {
        let m = self.miner_count();
        if m < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for p in 0..m {
            let mut stats = GossipStats::default();
            let (dist, _) = self.shortest_from(self.miner_nodes[p], &mut stats, |link, _, _| {
                link.latency.expected()
            });
            for r in 0..m {
                if r != p {
                    total += dist[self.miner_nodes[r]];
                }
            }
        }
        total / (m * (m - 1)) as f64
    }

    /// A copy with every latency multiplied by `factor`.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidScale`] unless `factor` is positive finite.
    pub fn scaled(&self, factor: f64) -> Result<Topology, NetError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(NetError::InvalidScale { factor });
        }
        let mut b = TopologyBuilder {
            nodes: self.nodes.clone(),
            links: self.links.clone(),
            seed: self.seed,
            max_attempts: self.max_attempts,
            backoff_base: self.backoff_base,
        };
        for link in &mut b.links {
            link.latency = link.latency.scaled(factor);
        }
        b.build()
    }

    /// A copy rescaled so [`Topology::nominal_mean_latency`] equals
    /// `target` — the study's fixed-mean-delay normalization.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidScale`] when the current mean is zero or not
    /// finite (unreachable miner pairs cannot be normalized).
    pub fn scaled_to_mean(&self, target: f64) -> Result<Topology, NetError> {
        let mean = self.nominal_mean_latency();
        self.scaled(target / mean)
    }

    /// Gossip `block` from miner `producer` through the graph and return
    /// the earliest-arrival schedule per miner.
    ///
    /// Every reached node forwards to all its out-links; per-node
    /// seen-sets drop all but the first copy. Lost copies (per-edge,
    /// per-attempt counter-hashed coins) re-send with capped exponential
    /// backoff added to the traversal time. The result is a deterministic
    /// function of `(topology, producer, block)` alone.
    ///
    /// # Panics
    ///
    /// If `producer` is not a valid miner id.
    pub fn propagate(&self, producer: usize, block: u64) -> Propagation {
        assert!(
            producer < self.miner_count(),
            "producer {producer} out of range for {} miners",
            self.miner_count()
        );
        if let Some(plan) = &self.static_plan {
            let m = self.miner_count();
            let row = producer * m;
            return Propagation {
                arrival: plan.arrival[row..row + m].to_vec(),
                hops: plan.hops[row..row + m].to_vec(),
                stats: plan.stats[producer],
            };
        }
        self.propagate_dynamic(producer, block)
    }

    /// The general (per-block) propagation path.
    fn propagate_dynamic(&self, producer: usize, block: u64) -> Propagation {
        let mut stats = GossipStats::default();
        let (dist, hops) =
            self.shortest_from(self.miner_nodes[producer], &mut stats, |link, e, stats| {
                self.traversal_time(link, e, block, stats)
            });
        let arrival = self.miner_nodes.iter().map(|&n| dist[n]).collect();
        let hops = self.miner_nodes.iter().map(|&n| hops[n]).collect();
        Propagation {
            arrival,
            hops,
            stats,
        }
    }

    /// Effective traversal time of link `e` for `block`: the latency draw
    /// plus re-send backoff for every lost attempt. Shortcut links bypass
    /// the loss pipeline.
    fn traversal_time(&self, link: &Link, e: usize, block: u64, stats: &mut GossipStats) -> f64 {
        let base = match link.latency {
            Latency::Fixed(l) => l,
            Latency::Uniform { lo, hi } => {
                lo + unit(hash(self.seed, STREAM_LATENCY, block, e as u64, 0)) * (hi - lo)
            }
        };
        if link.shortcut || link.loss == 0.0 {
            return base;
        }
        let mut extra = 0.0;
        let mut attempt = 0u32;
        while attempt < self.max_attempts
            && unit(hash(self.seed, STREAM_LOSS, block, e as u64, attempt)) < link.loss
        {
            // Capped exponential backoff, mirroring the fault layer's
            // re-gossip schedule.
            let exp = attempt.min(6) as i32;
            extra += self.backoff_base * 2f64.powi(exp);
            stats.loss_retries += 1;
            attempt += 1;
        }
        base + extra
    }

    /// Deterministic Dijkstra from `src`: an O(n²) selection loop (the
    /// graphs here are tens of nodes) with ties broken by node index, and
    /// gossip accounting folded into `stats`. `weight` computes the
    /// traversal cost of one link.
    fn shortest_from(
        &self,
        src: usize,
        stats: &mut GossipStats,
        mut weight: impl FnMut(&Link, usize, &mut GossipStats) -> f64,
    ) -> (Vec<f64>, Vec<u32>) {
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut hops = vec![0u32; n];
        let mut settled = vec![false; n];
        dist[src] = 0.0;
        loop {
            // Lowest tentative arrival, lowest node index on ties: the
            // strict `<` keeps the earlier index.
            let mut u = usize::MAX;
            for v in 0..n {
                if !settled[v] && dist[v] < f64::INFINITY && (u == usize::MAX || dist[v] < dist[u])
                {
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            settled[u] = true;
            for &e in &self.out[u] {
                let link = self.links[e];
                stats.sends += 1;
                let w = weight(&link, e, stats);
                let cand = dist[u] + w;
                if settled[link.to] || cand >= dist[link.to] {
                    // The receiver's seen-set drops the copy: it already
                    // holds the block or an earlier copy is in flight.
                    stats.dedup_drops += 1;
                    continue;
                }
                dist[link.to] = cand;
                hops[link.to] = hops[u] + 1;
            }
        }
        (dist, hops)
    }

    /// All-pairs schedule of a static graph (every latency fixed, no
    /// loss): one Dijkstra per producer at build time, then every
    /// [`Topology::propagate`] is a row copy.
    fn compile_static(&self) -> StaticPlan {
        let m = self.miner_count();
        let mut arrival = Vec::with_capacity(m * m);
        let mut hops_flat = Vec::with_capacity(m * m);
        let mut stats = Vec::with_capacity(m);
        for p in 0..m {
            let prop = self.propagate_dynamic(p, 0);
            arrival.extend_from_slice(&prop.arrival);
            hops_flat.extend_from_slice(&prop.hops);
            stats.push(prop.stats);
        }
        StaticPlan {
            arrival,
            hops: hops_flat,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_arrivals_equal_the_edge_latency() {
        let t = Topology::complete(4, 6.0).unwrap();
        assert!(t.is_static());
        assert_eq!(t.miner_count(), 4);
        assert_eq!(t.relay_count(), 0);
        for p in 0..4 {
            let prop = t.propagate(p, 7);
            for r in 0..4 {
                if r == p {
                    assert_eq!(prop.arrival[r], 0.0);
                    assert_eq!(prop.hops[r], 0);
                } else {
                    // Bitwise the edge latency: the bit-identity contract.
                    assert_eq!(prop.arrival[r].to_bits(), 6.0f64.to_bits());
                    assert_eq!(prop.hops[r], 1);
                }
            }
        }
    }

    #[test]
    fn ring_arrival_grows_with_distance() {
        let t = Topology::ring(6, 2.0).unwrap();
        let p = t.propagate(0, 0);
        assert_eq!(p.arrival[1], 2.0);
        assert_eq!(p.arrival[2], 4.0);
        assert_eq!(p.arrival[3], 6.0); // antipode, either way round
        assert_eq!(p.arrival[5], 2.0);
        assert_eq!(p.hops[3], 3);
    }

    #[test]
    fn star_relay_sums_spokes_over_two_hops() {
        let t = Topology::star_relay(&[1.0, 3.0, 5.0]).unwrap();
        assert_eq!(t.relay_count(), 1);
        let p = t.propagate(0, 0);
        assert_eq!(p.arrival[1], 4.0);
        assert_eq!(p.arrival[2], 6.0);
        assert_eq!(p.hops[1], 2);
        // The peripheral miner is symmetrically late as a producer.
        let q = t.propagate(2, 0);
        assert_eq!(q.arrival[0], 6.0);
        assert_eq!(q.arrival[1], 8.0);
    }

    #[test]
    fn two_clusters_cross_via_the_bridge() {
        let t = Topology::two_clusters(2, 2, 1.0, 10.0).unwrap();
        let p = t.propagate(1, 0);
        assert_eq!(p.arrival[0], 1.0);
        // 1 -> 0 -> bridge -> 2: 1 + 10
        assert_eq!(p.arrival[2], 11.0);
        assert_eq!(p.arrival[3], 12.0);
        assert_eq!(p.hops[2], 2);
    }

    #[test]
    fn eclipse_funnels_the_victim_through_the_choke() {
        let t = Topology::eclipse(4, 2, 1.0, 9.0).unwrap();
        let p = t.propagate(0, 0);
        assert_eq!(p.arrival[1], 1.0);
        assert_eq!(p.arrival[3], 1.0);
        assert_eq!(p.arrival[2], 9.0); // via gateway miner 0
        let q = t.propagate(2, 0);
        assert_eq!(q.arrival[0], 9.0);
        assert_eq!(q.arrival[1], 10.0);
    }

    #[test]
    fn unreachable_miners_arrive_at_infinity() {
        let mut b = Topology::builder();
        b.miners(3);
        b.link(0, 1, 2.0); // miner 2 is isolated
        let t = b.build().unwrap();
        let p = t.propagate(0, 0);
        assert_eq!(p.arrival[1], 2.0);
        assert!(p.arrival[2].is_infinite());
        assert_eq!(p.hops[2], 0);
    }

    #[test]
    fn shortcut_beats_the_lossy_path_and_skips_coins() {
        // A lossy direct link vs a lossless shortcut of equal latency:
        // the shortcut must win whenever the loss coin fires.
        let mut b = Topology::builder();
        b.miners(2);
        b.seed(3).backoff(2.0);
        b.edge_spec(Link {
            from: 0,
            to: 1,
            latency: Latency::Fixed(4.0),
            loss: 0.9,
            shortcut: false,
        });
        b.shortcut(0, 1, 4.0);
        let t = b.build().unwrap();
        assert!(!t.is_static());
        let p = t.propagate(0, 1);
        assert_eq!(p.arrival[1], 4.0, "the shortcut path is never delayed");
    }

    #[test]
    fn lossy_links_retry_deterministically() {
        let mut b = Topology::builder();
        b.miners(2);
        b.seed(11).backoff(1.5);
        b.edge_spec(Link {
            from: 0,
            to: 1,
            latency: Latency::Fixed(2.0),
            loss: 0.5,
            shortcut: false,
        });
        let t = b.build().unwrap();
        let a = t.propagate(0, 5);
        let b2 = t.propagate(0, 5);
        assert_eq!(a, b2, "same (topology, block) => same schedule");
        // Across many blocks, some draw retries (arrival > base latency).
        let delayed = (0..200)
            .filter(|&blk| t.propagate(0, blk).arrival[1] > 2.0)
            .count();
        assert!(delayed > 40, "0.5 loss should delay ~half: {delayed}/200");
        let total_retries: u64 = (0..200)
            .map(|blk| t.propagate(0, blk).stats.loss_retries)
            .sum();
        assert!(total_retries > 0);
    }

    #[test]
    fn uniform_latency_draws_stay_in_range_and_vary_by_block() {
        let mut b = Topology::builder();
        b.miners(2);
        b.seed(29);
        b.edge_spec(Link {
            from: 0,
            to: 1,
            latency: Latency::Uniform { lo: 1.0, hi: 3.0 },
            loss: 0.0,
            shortcut: false,
        });
        let t = b.build().unwrap();
        assert!(!t.is_static());
        let mut distinct = std::collections::BTreeSet::new();
        for blk in 0..50 {
            let a = t.propagate(0, blk).arrival[1];
            assert!((1.0..3.0).contains(&a), "draw {a} out of range");
            distinct.insert(a.to_bits());
        }
        assert!(distinct.len() > 10, "draws should vary by block");
    }

    #[test]
    fn dedup_drops_count_redundant_copies() {
        // Complete graph: each delivery also draws redundant copies from
        // every other reached node.
        let t = Topology::complete(4, 1.0).unwrap();
        let p = t.propagate(0, 0);
        // 12 directed edges among reached nodes are all explored; 3 are
        // first deliveries, the rest hit seen-sets.
        assert_eq!(p.stats.sends, 12);
        assert_eq!(p.stats.dedup_drops, 9);
    }

    #[test]
    fn builder_validation_rejects_malformed_graphs() {
        assert!(matches!(
            Topology::builder().build(),
            Err(NetError::NoMiners)
        ));
        let mut b = Topology::builder();
        b.miners(2);
        b.edge(0, 5, 1.0);
        assert!(matches!(
            b.build(),
            Err(NetError::UnknownNode { node: 5, .. })
        ));
        let mut b = Topology::builder();
        b.miners(2);
        b.edge(1, 1, 1.0);
        assert!(matches!(b.build(), Err(NetError::SelfLoop { node: 1 })));
        let mut b = Topology::builder();
        b.miners(2);
        b.edge(0, 1, -2.0);
        assert!(matches!(b.build(), Err(NetError::InvalidLatency { .. })));
        let mut b = Topology::builder();
        b.miners(2);
        b.edge_spec(Link {
            from: 0,
            to: 1,
            latency: Latency::Fixed(1.0),
            loss: 1.0,
            shortcut: false,
        });
        assert!(matches!(b.build(), Err(NetError::InvalidLoss { .. })));
        let mut b = Topology::builder();
        b.miners(2);
        b.backoff(0.0);
        assert!(matches!(b.build(), Err(NetError::InvalidBackoff { .. })));
        assert!(Topology::complete(0, 1.0).is_err());
        assert!(Topology::two_clusters(0, 3, 1.0, 2.0).is_err());
        assert!(Topology::eclipse(4, 9, 1.0, 2.0).is_err());
    }

    #[test]
    fn nominal_mean_and_rescaling() {
        let t = Topology::star_relay(&[1.0, 1.0, 4.0]).unwrap();
        // Ordered pairs: (0,1)=2, (0,2)=5, (1,2)=5 and mirrors -> mean 4.
        assert!((t.nominal_mean_latency() - 4.0).abs() < 1e-12);
        let s = t.scaled_to_mean(6.0).unwrap();
        assert!((s.nominal_mean_latency() - 6.0).abs() < 1e-12);
        let p = s.propagate(0, 0);
        assert!((p.arrival[1] - 3.0).abs() < 1e-12);
        // Unreachable pairs cannot be normalized.
        let mut b = Topology::builder();
        b.miners(2);
        let iso = b.build().unwrap();
        assert!(iso.nominal_mean_latency().is_infinite());
        assert!(matches!(
            iso.scaled_to_mean(6.0),
            Err(NetError::InvalidScale { .. })
        ));
    }

    #[test]
    fn static_plan_matches_the_dynamic_path() {
        let t = Topology::two_clusters(3, 2, 1.5, 7.0).unwrap();
        assert!(t.is_static());
        for p in 0..5 {
            let cached = t.propagate(p, 123);
            let fresh = t.propagate_dynamic(p, 123);
            assert_eq!(cached, fresh);
        }
    }

    #[test]
    fn seed_changes_dynamic_schedules_only() {
        let mut b = Topology::builder();
        b.miners(2);
        b.seed(1);
        b.edge_spec(Link {
            from: 0,
            to: 1,
            latency: Latency::Uniform { lo: 0.0, hi: 5.0 },
            loss: 0.0,
            shortcut: false,
        });
        let t1 = b.build().unwrap();
        let t2 = t1.with_seed(2);
        let diff = (0..64).any(|blk| t1.propagate(0, blk) != t2.propagate(0, blk));
        assert!(diff, "reseeding must decorrelate uniform draws");
        let s1 = Topology::complete(3, 2.0).unwrap();
        let s2 = s1.with_seed(99);
        assert_eq!(s1.propagate(0, 0), s2.propagate(0, 0));
    }
}
