//! Property-based tests of the simulator across random configurations and
//! all three pool strategies: structural invariants that must hold for
//! every seed.

use proptest::prelude::*;

use seleth_chain::forkchoice::{self, TieBreak};
use seleth_chain::{RewardSchedule, Scenario};
use seleth_mdp::{Action, PolicyTable, RewardModel};
use seleth_sim::delay::{DelayConfig, DelaySimulation};
use seleth_sim::{PoolStrategy, SimConfig, Simulation};

fn strategy_strategy() -> impl Strategy<Value = PoolStrategy> {
    prop_oneof![
        Just(PoolStrategy::Selfish),
        Just(PoolStrategy::Honest),
        Just(PoolStrategy::LeadStubborn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every run produces a consistent tree and accounting, whatever the
    /// strategy and parameters.
    #[test]
    fn runs_are_internally_consistent(
        alpha in 0.0f64..0.6,
        gamma in 0.0f64..=1.0,
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(gamma)
            .strategy(strategy)
            .blocks(1_500)
            .n_honest(15)
            .seed(seed)
            .build()
            .expect("valid config");
        let report = Simulation::new(config).run();

        // Counts partition the mined blocks.
        prop_assert_eq!(report.reward_report.block_count(), 1_500);
        let (reg, unc, stale) = report.block_type_fractions();
        prop_assert!((reg + unc + stale - 1.0).abs() < 1e-12);

        // Static rewards equal regular count (Ks = 1).
        let static_total = report.pool.static_reward + report.honest.static_reward;
        prop_assert!((static_total - report.reward_report.regular_count as f64).abs() < 1e-9);

        // Revenue shares are sane.
        let share = report.relative_pool_share();
        prop_assert!((0.0..=1.0).contains(&share));
        prop_assert!(report.absolute_pool(Scenario::RegularRate) >= 0.0);
        // Scenario 1: every regular block pays Ks = 1 and uncles only add,
        // so system-wide absolute revenue is at least 1.
        prop_assert!(report.absolute_total(Scenario::RegularRate) >= 1.0 - 1e-9);
        // Scenario 2 divides by regular + uncle blocks, so the floor is
        // the regular fraction of the divisor.
        let floor = reg / (reg + unc).max(1e-12);
        prop_assert!(report.absolute_total(Scenario::RegularPlusUncleRate) >= floor - 1e-9);
    }

    /// The state machine invariant: after every step, the published prefix
    /// of the private chain equals the honest branch length (Algorithm 1's
    /// equal-length public branches property), checked via the tree.
    #[test]
    fn public_branches_stay_balanced(seed in any::<u64>(), alpha in 0.05f64..0.5) {
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(0.5)
            .blocks(400)
            .n_honest(8)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut sim = Simulation::new(config);
        for _ in 0..400 {
            sim.step();
            let (ls, lh) = sim.state();
            // Valid Algorithm-1 states only.
            prop_assert!(
                (ls == 0 && lh == 0) || (ls == 1 && lh <= 1) || ls >= lh + 2,
                "invalid state ({ls},{lh})"
            );
        }
    }

    /// Honest-pool runs never fork, for any parameters.
    #[test]
    fn honest_pool_never_forks(seed in any::<u64>(), alpha in 0.0f64..0.9) {
        let config = SimConfig::builder()
            .alpha(alpha)
            .strategy(PoolStrategy::Honest)
            .blocks(300)
            .n_honest(5)
            .seed(seed)
            .build()
            .expect("valid config");
        let report = Simulation::new(config).run();
        prop_assert_eq!(report.reward_report.regular_count, 300);
        prop_assert_eq!(report.reward_report.uncle_count, 0);
        prop_assert_eq!(report.reward_report.stale_count, 0);
    }

    /// The final main chain height equals the regular block count
    /// (genesis at height 0), under every strategy.
    #[test]
    fn main_chain_height_matches_regular_count(
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let config = SimConfig::builder()
            .alpha(0.4)
            .gamma(0.5)
            .strategy(strategy)
            .blocks(600)
            .n_honest(6)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut sim = Simulation::new(config);
        for _ in 0..600 {
            sim.step();
        }
        // Snapshot the tree before finalization; compare against the
        // report afterwards.
        let report = sim.finalize();
        prop_assert_eq!(
            report.reward_report.regular_count,
            // Height of the longest chain == number of regular blocks.
            report.pool.regular_blocks + report.honest.regular_blocks
        );
    }

    /// Delay-engine reward conservation: for arbitrary share splits,
    /// delays, seeds — honest and strategic alike — the per-miner reward
    /// tallies must sum to exactly what the canonical chain pays out:
    /// one static reward per regular block plus the schedule's uncle and
    /// nephew rewards at every accepted reference distance. Nothing is
    /// minted or lost by withholding, racing, or forced adopts.
    #[test]
    fn delay_rewards_are_conserved(
        weights in proptest::collection::vec(0.05f64..1.0, 2..6),
        delay in 0.0f64..10.0,
        seed in any::<u64>(),
        ethereum in any::<bool>(),
        strategic in any::<bool>(),
    ) {
        let total: f64 = weights.iter().sum();
        let shares: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let schedule = if ethereum {
            RewardSchedule::ethereum()
        } else {
            RewardSchedule::bitcoin()
        };
        let mut builder = DelayConfig::builder();
        builder
            .shares(shares)
            .delay(delay)
            .blocks(1_200)
            .seed(seed)
            .schedule(schedule.clone());
        if strategic {
            // A hand-written withholding table (never solver-produced):
            // hold small leads, override when caught, adopt behind.
            let table = PolicyTable::from_fn3(
                0.3,
                0.5,
                RewardModel::Bitcoin,
                seleth_chain::Scenario::RegularRate,
                6,
                0.3,
                |a, h, _| {
                    if a > h && h >= 1 {
                        Action::Override
                    } else if a >= h {
                        Action::Wait
                    } else {
                        Action::Adopt
                    }
                },
            );
            builder.policy(0, table);
        }
        let report = DelaySimulation::new(builder.build().expect("valid config")).run();

        let r = &report.report;
        prop_assert_eq!(r.block_count(), 1_200);
        // Canonical-chain payout, recomputed from the block-type counts
        // and the reference-distance histogram alone.
        let mut expected = r.regular_count as f64 * schedule.static_reward();
        for (i, n) in r.distance_histogram.iter().enumerate() {
            let d = (i + 1) as u64;
            expected += *n as f64 * (schedule.uncle_reward(d) + schedule.nephew_reward(d));
        }
        let paid: f64 = r.total_reward();
        prop_assert!(
            (paid - expected).abs() < 1e-6 * expected.max(1.0),
            "per-miner rewards {} disagree with canonical payout {}",
            paid,
            expected
        );
        // The miner split partitions the payout.
        let by_miner: f64 = (0..report.shares.len()).map(|i| report.miner(i).total()).sum();
        prop_assert!((by_miner - paid).abs() < 1e-9 * paid.max(1.0));
    }

    /// Bitcoin-schedule runs never reference or reward uncles, under every
    /// strategy.
    #[test]
    fn bitcoin_runs_have_no_uncles(
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let config = SimConfig::builder()
            .alpha(0.35)
            .schedule(RewardSchedule::bitcoin())
            .strategy(strategy)
            .blocks(500)
            .n_honest(5)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut sim = Simulation::new(config);
        for _ in 0..500 {
            sim.step();
        }
        for block in sim.tree().iter() {
            prop_assert!(block.uncle_refs().is_empty());
        }
        let chain = forkchoice::longest_chain(sim.tree(), TieBreak::FirstSeen);
        prop_assert!(!chain.is_empty());
        let report = sim.finalize();
        prop_assert_eq!(report.reward_report.uncle_count, 0);
        prop_assert_eq!(report.pool.uncle_reward + report.honest.uncle_reward, 0.0);
    }
}
