//! Property-based tests of the simulator across random configurations and
//! all three pool strategies: structural invariants that must hold for
//! every seed.

use proptest::prelude::*;

use seleth_chain::forkchoice::{self, TieBreak};
use seleth_chain::{RewardSchedule, Scenario};
use seleth_sim::{PoolStrategy, SimConfig, Simulation};

fn strategy_strategy() -> impl Strategy<Value = PoolStrategy> {
    prop_oneof![
        Just(PoolStrategy::Selfish),
        Just(PoolStrategy::Honest),
        Just(PoolStrategy::LeadStubborn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every run produces a consistent tree and accounting, whatever the
    /// strategy and parameters.
    #[test]
    fn runs_are_internally_consistent(
        alpha in 0.0f64..0.6,
        gamma in 0.0f64..=1.0,
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(gamma)
            .strategy(strategy)
            .blocks(1_500)
            .n_honest(15)
            .seed(seed)
            .build()
            .expect("valid config");
        let report = Simulation::new(config).run();

        // Counts partition the mined blocks.
        prop_assert_eq!(report.reward_report.block_count(), 1_500);
        let (reg, unc, stale) = report.block_type_fractions();
        prop_assert!((reg + unc + stale - 1.0).abs() < 1e-12);

        // Static rewards equal regular count (Ks = 1).
        let static_total = report.pool.static_reward + report.honest.static_reward;
        prop_assert!((static_total - report.reward_report.regular_count as f64).abs() < 1e-9);

        // Revenue shares are sane.
        let share = report.relative_pool_share();
        prop_assert!((0.0..=1.0).contains(&share));
        prop_assert!(report.absolute_pool(Scenario::RegularRate) >= 0.0);
        // Scenario 1: every regular block pays Ks = 1 and uncles only add,
        // so system-wide absolute revenue is at least 1.
        prop_assert!(report.absolute_total(Scenario::RegularRate) >= 1.0 - 1e-9);
        // Scenario 2 divides by regular + uncle blocks, so the floor is
        // the regular fraction of the divisor.
        let floor = reg / (reg + unc).max(1e-12);
        prop_assert!(report.absolute_total(Scenario::RegularPlusUncleRate) >= floor - 1e-9);
    }

    /// The state machine invariant: after every step, the published prefix
    /// of the private chain equals the honest branch length (Algorithm 1's
    /// equal-length public branches property), checked via the tree.
    #[test]
    fn public_branches_stay_balanced(seed in any::<u64>(), alpha in 0.05f64..0.5) {
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(0.5)
            .blocks(400)
            .n_honest(8)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut sim = Simulation::new(config);
        for _ in 0..400 {
            sim.step();
            let (ls, lh) = sim.state();
            // Valid Algorithm-1 states only.
            prop_assert!(
                (ls == 0 && lh == 0) || (ls == 1 && lh <= 1) || ls >= lh + 2,
                "invalid state ({ls},{lh})"
            );
        }
    }

    /// Honest-pool runs never fork, for any parameters.
    #[test]
    fn honest_pool_never_forks(seed in any::<u64>(), alpha in 0.0f64..0.9) {
        let config = SimConfig::builder()
            .alpha(alpha)
            .strategy(PoolStrategy::Honest)
            .blocks(300)
            .n_honest(5)
            .seed(seed)
            .build()
            .expect("valid config");
        let report = Simulation::new(config).run();
        prop_assert_eq!(report.reward_report.regular_count, 300);
        prop_assert_eq!(report.reward_report.uncle_count, 0);
        prop_assert_eq!(report.reward_report.stale_count, 0);
    }

    /// The final main chain height equals the regular block count
    /// (genesis at height 0), under every strategy.
    #[test]
    fn main_chain_height_matches_regular_count(
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let config = SimConfig::builder()
            .alpha(0.4)
            .gamma(0.5)
            .strategy(strategy)
            .blocks(600)
            .n_honest(6)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut sim = Simulation::new(config);
        for _ in 0..600 {
            sim.step();
        }
        // Snapshot the tree before finalization; compare against the
        // report afterwards.
        let report = sim.finalize();
        prop_assert_eq!(
            report.reward_report.regular_count,
            // Height of the longest chain == number of regular blocks.
            report.pool.regular_blocks + report.honest.regular_blocks
        );
    }

    /// Bitcoin-schedule runs never reference or reward uncles, under every
    /// strategy.
    #[test]
    fn bitcoin_runs_have_no_uncles(
        strategy in strategy_strategy(),
        seed in any::<u64>(),
    ) {
        let config = SimConfig::builder()
            .alpha(0.35)
            .schedule(RewardSchedule::bitcoin())
            .strategy(strategy)
            .blocks(500)
            .n_honest(5)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut sim = Simulation::new(config);
        for _ in 0..500 {
            sim.step();
        }
        for block in sim.tree().iter() {
            prop_assert!(block.uncle_refs().is_empty());
        }
        let chain = forkchoice::longest_chain(sim.tree(), TieBreak::FirstSeen);
        prop_assert!(!chain.is_empty());
        let report = sim.finalize();
        prop_assert_eq!(report.reward_report.uncle_count, 0);
        prop_assert_eq!(report.pool.uncle_reward + report.honest.uncle_reward, 0.0);
    }
}
