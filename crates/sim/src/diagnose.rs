//! First-divergence diagnostics for the determinism gates.
//!
//! The bit-identity suites (`tests/determinism.rs`, `tests/fault_sim.rs`,
//! `tests/flight_recorder.rs`) assert that two runs — same config twice,
//! fault-free plan vs fault-unaware engine, 1 thread vs N threads — produce
//! byte-identical reports. When such a gate fails, the raw assertion tells
//! you *that* the runs differ, not *where* they first did. This module
//! closes that gap: it re-runs both configurations with the flight
//! recorder attached and binary-searches the digest checkpoints for the
//! first divergent event (see [`seleth_obs::EventLog::first_divergence`]).
//!
//! Set the environment variable named by [`TRACE_ON_FAIL_ENV`] to a
//! directory (the CI driver exports it for the gated suites) and
//! [`explain_divergence`] additionally dumps both event logs as JSONL
//! next to the report, so a failure on a remote runner leaves a
//! post-mortem artifact.

use std::path::PathBuf;
use std::sync::Arc;

use seleth_obs::{trace_diff, Divergence, EventLog};

use crate::delay::{DelayConfig, DelayReport, DelaySimulation};
use crate::{SimConfig, SimReport, Simulation};

/// Environment variable consulted by [`explain_divergence`]: when set to a
/// writable directory, both event logs are dumped there as
/// `<label>.left.jsonl` / `<label>.right.jsonl`.
pub const TRACE_ON_FAIL_ENV: &str = "SELETH_TRACE_ON_FAIL";

/// Ring capacity for a diagnostic re-run with a `blocks`-sized budget.
///
/// A delay-sim step emits one mining event plus at most a handful of
/// hears, releases, policy decisions and fault outcomes per strategist;
/// 32 events per block is comfortably past that envelope, and the cap
/// keeps a pathological budget from pinning the ring's memory. The ring
/// grows lazily (it is a `VecDeque` push path), so a generous capacity
/// costs nothing until events actually arrive.
#[must_use]
pub fn capacity_for(blocks: u64) -> usize {
    usize::try_from(blocks.saturating_mul(32).min(1 << 22)).unwrap_or(1 << 22)
}

/// Run `config` in the delay engine with a fresh flight recorder attached.
///
/// The returned log holds every canonical event of the run and its rolling
/// state digest; recording never touches the RNG, so the report is
/// bit-identical to an unrecorded run of the same config.
#[must_use]
pub fn record_delay_run(config: &DelayConfig, capacity: usize) -> (DelayReport, Arc<EventLog>) {
    let log = Arc::new(EventLog::new(capacity));
    let mut sim = DelaySimulation::new(config.clone());
    sim.attach_events(Arc::clone(&log));
    (sim.run(), log)
}

/// Run `config` in the slot engine with a fresh flight recorder attached.
#[must_use]
pub fn record_engine_run(config: &SimConfig, capacity: usize) -> (SimReport, Arc<EventLog>) {
    let log = Arc::new(EventLog::new(capacity));
    let mut sim = Simulation::new(config.clone());
    sim.attach_events(Arc::clone(&log));
    (sim.run(), log)
}

/// Re-run two delay configurations with recording on and report the first
/// divergent event, or `None` if the two traces are identical.
#[must_use]
pub fn delay_divergence(left: &DelayConfig, right: &DelayConfig) -> Option<Divergence> {
    let capacity = capacity_for(left.blocks().max(right.blocks()));
    let (_, la) = record_delay_run(left, capacity);
    let (_, lb) = record_delay_run(right, capacity);
    trace_diff(&la, &lb)
}

/// Re-run two slot-engine configurations with recording on and report the
/// first divergent event, or `None` if the two traces are identical.
#[must_use]
pub fn engine_divergence(left: &SimConfig, right: &SimConfig) -> Option<Divergence> {
    let capacity = capacity_for(left.blocks().max(right.blocks()));
    let (_, la) = record_engine_run(left, capacity);
    let (_, lb) = record_engine_run(right, capacity);
    trace_diff(&la, &lb)
}

/// Render a human-readable first-divergence report for a failed gate.
///
/// Always returns the textual report (suitable for a panic message). When
/// [`TRACE_ON_FAIL_ENV`] names a directory, both logs are additionally
/// dumped there as JSONL and the dump paths are appended to the report;
/// dump errors degrade to a note rather than masking the original failure.
#[must_use]
pub fn explain_divergence(label: &str, left: &EventLog, right: &EventLog) -> String {
    let mut out = match trace_diff(left, right) {
        None => format!(
            "[{label}] traces are identical ({} events, digest {:016x}) — \
             the divergence is outside the recorded event set",
            left.count(),
            left.digest()
        ),
        Some(d) => format!("[{label}] {}", d.describe()),
    };
    if let Some(dir) = std::env::var_os(TRACE_ON_FAIL_ENV) {
        let dir = PathBuf::from(dir);
        for (side, log) in [("left", left), ("right", right)] {
            let path = dir.join(format!("{label}.{side}.jsonl"));
            match log.write_jsonl(&path) {
                Ok(()) => {
                    out.push_str(&format!("\n  {side} trace: {}", path.display()));
                }
                Err(e) => {
                    out.push_str(&format!("\n  {side} trace dump failed: {e}"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn base_config(seed: u64) -> DelayConfig {
        DelayConfig::builder()
            .shares(vec![0.3, 0.7])
            .delay(0.5)
            .blocks(400)
            .seed(seed)
            .build()
            .expect("valid config")
    }

    #[test]
    fn identical_configs_have_no_divergence() {
        let c = base_config(11);
        assert!(delay_divergence(&c, &c).is_none());
    }

    #[test]
    fn different_seeds_diverge_at_index_zero_region() {
        let a = base_config(11);
        let b = base_config(12);
        let d = delay_divergence(&a, &b).expect("seeds differ");
        // A different RNG seed changes the very first mining event.
        assert!(d.exact);
        assert_eq!(d.index, 0);
    }

    #[test]
    fn recording_does_not_change_the_report() {
        let c = base_config(21);
        let plain = DelaySimulation::new(c.clone()).run();
        let (recorded, log) = record_delay_run(&c, capacity_for(c.blocks()));
        assert_eq!(plain.report.regular_count, recorded.report.regular_count);
        assert_eq!(plain.counters.deliveries, recorded.counters.deliveries);
        assert!(log.count() > 0, "a 400-block run records events");
    }

    #[test]
    fn explain_divergence_reports_identical_and_dumps_nothing_without_env() {
        let c = base_config(31);
        let (_, a) = record_delay_run(&c, 1024);
        let (_, b) = record_delay_run(&c, 1024);
        let text = explain_divergence("gate", &a, &b);
        assert!(text.contains("identical"), "{text}");
    }

    #[test]
    fn fault_plan_divergence_is_localized() {
        let plan = FaultPlan::builder()
            .seed(9)
            .loss(0.05)
            .build()
            .expect("valid plan");
        let faulty = DelayConfig::builder()
            .shares(vec![0.3, 0.7])
            .delay(0.5)
            .blocks(400)
            .seed(11)
            .faults(plan)
            .build()
            .expect("valid config");
        let clean = base_config(11);
        let d = delay_divergence(&clean, &faulty).expect("faults diverge");
        assert!(d.exact);
    }
}
