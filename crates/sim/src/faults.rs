//! Deterministic fault injection for the propagation-delay simulator.
//!
//! Real gossip networks are lossy and churny: messages are dropped,
//! duplicated and reordered, peers crash and rejoin, and links partition
//! and heal. A [`FaultPlan`] describes such an environment as *data* —
//! per-link loss/duplication/jitter rates, miner crash/recovery churn,
//! explicit downtime windows, and timed network partitions — and the delay
//! engine compiles it into its event queue.
//!
//! Two properties anchor the design:
//!
//! - **Determinism.** Every fault decision is a pure function of the
//!   plan's own seed and the identity of the event it applies to (block,
//!   receiver, delivery attempt), computed with dedicated splitmix64
//!   streams and per-miner ChaCha churn generators. The simulator's main
//!   RNG is never consulted, so a given `(config, plan)` pair yields a
//!   bit-identical schedule wherever and however parallel the run is.
//! - **Zero-fault transparency.** [`FaultPlan::none`] injects nothing and
//!   adds exactly `0.0` to every delivery time; because `x + 0.0` is
//!   bitwise `x` for every finite release timestamp, a zero-fault run
//!   reproduces the fault-unaware engine byte for byte (regression-tested
//!   in `tests/chaos_study.rs`).
//!
//! Failed deliveries are re-gossiped with capped exponential backoff in
//! simulation time; crashed strategists resynchronize through the
//! existing forced-adopt path when they rejoin (see
//! [`crate::delay`]). This module is also the substrate the ROADMAP's
//! topology-aware propagation item builds on: a topology is, to first
//! order, a per-link delay/loss matrix — exactly the shape of data a
//! `FaultPlan` already carries per link.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::config::SimError;

/// Hash-stream tags: one per independent fault decision, so loss,
/// duplication, jitter and churn coins never correlate.
const STREAM_LOSS: u64 = 1;
const STREAM_DUP: u64 = 2;
const STREAM_JITTER: u64 = 3;
const STREAM_CHURN: u64 = 4;

/// Miner crash/recovery churn: alternating exponentially distributed
/// up/down phases, drawn per miner from a dedicated ChaCha stream keyed
/// by the plan seed. While down, a miner's hash power drops out of the
/// Poisson race and it hears nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Churn {
    /// Mean uptime between crashes (simulation time units).
    pub mean_uptime: f64,
    /// Mean downtime per crash.
    pub mean_downtime: f64,
}

/// An explicit downtime window for one miner: down during `[start, end)`.
/// `end = f64::INFINITY` models a miner that never comes back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Downtime {
    /// Miner index (into the share vector).
    pub miner: usize,
    /// Crash time.
    pub start: f64,
    /// Recovery time (exclusive); `INFINITY` = never recovers.
    pub end: f64,
}

/// A timed network split: during `[start, end)` a delivery crosses from
/// one side to the other only after the partition heals (its retries keep
/// backing off until then). `end = f64::INFINITY` models a partition that
/// never heals — the two sides finish the run on divergent chains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Activation time.
    pub start: f64,
    /// Heal time (exclusive); `INFINITY` = never heals.
    pub end: f64,
    /// Group id per miner (one entry per miner). Miners in the same group
    /// keep hearing each other; cross-group deliveries stall.
    pub groups: Vec<usize>,
}

impl Partition {
    /// `true` if any miner is assigned to group `g` by this partition.
    pub(crate) fn uses_group(&self, g: usize) -> bool {
        self.groups.contains(&g)
    }
}

/// A complete, seeded fault schedule for one delay run.
///
/// Built with [`FaultPlan::builder`]; [`FaultPlan::none`] (the default)
/// injects nothing. Rates apply per *link delivery attempt* — each
/// `(block, receiver, attempt)` triple draws its own coins — so loss and
/// duplication are independent across receivers, exactly like independent
/// gossip links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    loss: f64,
    duplication: f64,
    jitter: f64,
    backoff_base: f64,
    backoff_cap: f64,
    churn: Option<Churn>,
    downtimes: Vec<Downtime>,
    partitions: Vec<Partition>,
    /// Divergence injection for the flight-recorder diagnostics
    /// (`tests/flight_recorder.rs`): every loss coin of this block index
    /// reports the *opposite* outcome. Still a pure function of the coin's
    /// identity, so the perturbed schedule is as deterministic as the
    /// original — exactly one block's deliveries change.
    flip_drop_block: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Builder for [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Seed of the fault schedule's dedicated randomness (independent of
    /// the simulation seed: the same fault environment can be replayed
    /// across many simulation seeds, and vice versa).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.plan.seed = seed;
        self
    }

    /// Per-delivery-attempt loss probability, in `[0, 1]`. Lost
    /// deliveries are re-gossiped with capped exponential backoff.
    pub fn loss(&mut self, loss: f64) -> &mut Self {
        self.plan.loss = loss;
        self
    }

    /// Per-delivery duplication probability, in `[0, 1]`: a successful
    /// delivery is followed by an inert duplicate copy, exercising the
    /// receivers' idempotence.
    pub fn duplication(&mut self, duplication: f64) -> &mut Self {
        self.plan.duplication = duplication;
        self
    }

    /// Maximum per-link reorder jitter (time units): each delivery is
    /// delayed by an extra `Uniform[0, jitter)`, decorrelated across
    /// receivers, so two blocks released in one order can be heard in the
    /// other.
    pub fn jitter(&mut self, jitter: f64) -> &mut Self {
        self.plan.jitter = jitter;
        self
    }

    /// Re-gossip backoff: retry `k` waits `base · 2^k` capped at `cap`
    /// (both in simulation time units).
    pub fn backoff(&mut self, base: f64, cap: f64) -> &mut Self {
        self.plan.backoff_base = base;
        self.plan.backoff_cap = cap;
        self
    }

    /// Enable crash/recovery churn for every miner.
    pub fn churn(&mut self, mean_uptime: f64, mean_downtime: f64) -> &mut Self {
        self.plan.churn = Some(Churn {
            mean_uptime,
            mean_downtime,
        });
        self
    }

    /// Add an explicit downtime window (composable with churn).
    pub fn downtime(&mut self, miner: usize, start: f64, end: f64) -> &mut Self {
        self.plan.downtimes.push(Downtime { miner, start, end });
        self
    }

    /// Add a timed partition assigning each miner a group id. Partitions
    /// must be disjoint in time and sorted by start.
    pub fn partition(&mut self, start: f64, end: f64, groups: Vec<usize>) -> &mut Self {
        self.plan.partitions.push(Partition { start, end, groups });
        self
    }

    /// Diagnostics-only divergence injection: flip the outcome of every
    /// loss coin drawn for `block` (by tree index). Used by the
    /// flight-recorder acceptance tests to manufacture a single, exactly
    /// localizable mid-run divergence; not meant for studies.
    #[doc(hidden)]
    pub fn flip_drop_coin(&mut self, block: u64) -> &mut Self {
        self.plan.flip_drop_block = Some(block);
        self
    }

    /// Validate the numeric content and produce the plan. Miner-count
    /// checks (downtime indices, partition group vectors) happen when the
    /// plan meets a share vector in
    /// [`crate::delay::DelayConfigBuilder::build`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] for rates outside `[0, 1]`,
    /// negative or non-finite jitter, a non-positive backoff base, a cap
    /// below the base, degenerate churn means, or malformed / overlapping
    /// windows.
    pub fn build(&self) -> Result<FaultPlan, SimError> {
        self.plan.validate_numeric()?;
        Ok(self.plan.clone())
    }
}

fn fault_err(reason: impl Into<String>) -> SimError {
    SimError::InvalidFaultPlan {
        reason: reason.into(),
    }
}

impl FaultPlan {
    /// The zero-fault plan: nothing is lost, duplicated, jittered,
    /// crashed or partitioned. Runs under it are bit-identical to the
    /// fault-unaware engine.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss: 0.0,
            duplication: 0.0,
            jitter: 0.0,
            backoff_base: 1.0,
            backoff_cap: 64.0,
            churn: None,
            downtimes: Vec::new(),
            partitions: Vec::new(),
            flip_drop_block: None,
        }
    }

    /// Start building a plan.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan::none(),
        }
    }

    /// The plan's own seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-attempt loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Per-delivery duplication probability.
    pub fn duplication(&self) -> f64 {
        self.duplication
    }

    /// Maximum per-link reorder jitter.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Crash/recovery churn, if enabled.
    pub fn churn(&self) -> Option<Churn> {
        self.churn
    }

    /// Explicit downtime windows.
    pub fn downtimes(&self) -> &[Downtime] {
        &self.downtimes
    }

    /// Timed partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// A copy with a different fault seed (grid sweeps re-seed the fault
    /// schedule alongside the simulation seed).
    pub fn with_seed(&self, seed: u64) -> Self {
        FaultPlan {
            seed,
            ..self.clone()
        }
    }

    /// `true` if any per-link fault (loss, duplication, jitter, or a
    /// diagnostic coin flip) is active.
    pub(crate) fn has_link_faults(&self) -> bool {
        self.loss > 0.0
            || self.duplication > 0.0
            || self.jitter > 0.0
            || self.flip_drop_block.is_some()
    }

    /// `true` if any miner can ever be down.
    pub(crate) fn has_crashes(&self) -> bool {
        self.churn.is_some() || !self.downtimes.is_empty()
    }

    /// `true` if any partition window exists.
    pub(crate) fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// Number of public frontier views the engine must maintain: one per
    /// partition group id in use, and always at least the shared view 0.
    pub(crate) fn view_count(&self) -> usize {
        1 + self
            .partitions
            .iter()
            .flat_map(|p| p.groups.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// The partition active at time `t`, if any.
    pub(crate) fn active_partition(&self, t: f64) -> Option<&Partition> {
        let i = self.partitions.partition_point(|p| p.start <= t);
        if i == 0 {
            return None;
        }
        let p = &self.partitions[i - 1];
        (t < p.end).then_some(p)
    }

    /// The partition group miner `m` belongs to at time `t` (group 0 —
    /// the shared network — outside every partition window).
    pub(crate) fn group_of(&self, m: usize, t: f64) -> usize {
        self.active_partition(t).map_or(0, |p| p.groups[m])
    }

    /// `true` if a message from `from` to `to` is stalled by an active
    /// partition at time `t`.
    pub(crate) fn cross_blocked(&self, from: usize, to: usize, t: f64) -> bool {
        self.active_partition(t)
            .is_some_and(|p| p.groups[from] != p.groups[to])
    }

    /// Loss coin for one delivery attempt.
    pub(crate) fn drops(&self, block: u64, receiver: u64, attempt: u32) -> bool {
        let base =
            self.loss > 0.0 && unit(self.hash(STREAM_LOSS, block, receiver, attempt)) < self.loss;
        if self.flip_drop_block == Some(block) {
            return !base;
        }
        base
    }

    /// Duplication coin for one successful delivery.
    pub(crate) fn duplicates(&self, block: u64, receiver: u64, attempt: u32) -> bool {
        self.duplication > 0.0
            && unit(self.hash(STREAM_DUP, block, receiver, attempt)) < self.duplication
    }

    /// Reorder jitter for one delivery attempt: `Uniform[0, jitter)`,
    /// exactly `0.0` when jitter is disabled.
    pub(crate) fn delivery_jitter(&self, block: u64, receiver: u64, attempt: u32) -> f64 {
        if self.jitter == 0.0 {
            return 0.0;
        }
        unit(self.hash(STREAM_JITTER, block, receiver, attempt)) * self.jitter
    }

    /// Re-gossip delay before retry `attempt` (capped exponential).
    pub(crate) fn retry_backoff(&self, attempt: u32) -> f64 {
        let exp = attempt.min(63) as i32;
        (self.backoff_base * 2f64.powi(exp)).min(self.backoff_cap)
    }

    /// One splitmix64 chain over `(plan seed, stream, block, receiver,
    /// attempt)` — the entire per-link randomness of the plan.
    fn hash(&self, stream: u64, block: u64, receiver: u64, attempt: u32) -> u64 {
        let mut h = splitmix64(self.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix64(h ^ block);
        h = splitmix64(h ^ receiver);
        splitmix64(h ^ attempt as u64)
    }

    fn validate_numeric(&self) -> Result<(), SimError> {
        for (name, rate) in [("loss", self.loss), ("duplication", self.duplication)] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(fault_err(format!("{name} must be in [0, 1], got {rate}")));
            }
        }
        if !self.jitter.is_finite() || self.jitter < 0.0 {
            return Err(fault_err(format!(
                "jitter must be finite and non-negative, got {}",
                self.jitter
            )));
        }
        if !self.backoff_base.is_finite() || self.backoff_base <= 0.0 {
            return Err(fault_err(format!(
                "backoff base must be positive finite, got {}",
                self.backoff_base
            )));
        }
        if !self.backoff_cap.is_finite() || self.backoff_cap < self.backoff_base {
            return Err(fault_err(format!(
                "backoff cap must be finite and at least the base, got {}",
                self.backoff_cap
            )));
        }
        if let Some(c) = self.churn {
            for (name, mean) in [
                ("mean uptime", c.mean_uptime),
                ("mean downtime", c.mean_downtime),
            ] {
                if !mean.is_finite() || mean <= 0.0 {
                    return Err(fault_err(format!(
                        "churn {name} must be positive finite, got {mean}"
                    )));
                }
            }
        }
        for d in &self.downtimes {
            // end = INFINITY (never recovers) is legal; start must be a
            // real instant.
            if !d.start.is_finite() || d.start < 0.0 || d.end.is_nan() || d.end <= d.start {
                return Err(fault_err(format!(
                    "downtime window [{}, {}) of miner {} is malformed",
                    d.start, d.end, d.miner
                )));
            }
        }
        let mut prev_end = 0.0f64;
        for p in &self.partitions {
            if !p.start.is_finite() || p.start < 0.0 || p.end.is_nan() || p.end <= p.start {
                return Err(fault_err(format!(
                    "partition window [{}, {}) is malformed",
                    p.start, p.end
                )));
            }
            if p.start < prev_end {
                return Err(fault_err(
                    "partitions must be sorted by start and disjoint in time",
                ));
            }
            prev_end = p.end;
        }
        Ok(())
    }

    /// Full validation against a concrete miner count, called when the
    /// plan is installed into a delay configuration.
    pub(crate) fn validate_for(&self, miners: usize) -> Result<(), SimError> {
        self.validate_numeric()?;
        for d in &self.downtimes {
            if d.miner >= miners {
                return Err(fault_err(format!(
                    "downtime names miner {} but the run has {miners} miners",
                    d.miner
                )));
            }
        }
        for p in &self.partitions {
            if p.groups.len() != miners {
                return Err(fault_err(format!(
                    "partition group vector has {} entries for {miners} miners",
                    p.groups.len()
                )));
            }
            if p.groups.iter().any(|&g| g >= miners) {
                return Err(fault_err(
                    "partition group ids must be smaller than the miner count",
                ));
            }
        }
        Ok(())
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)` with the standard 53-bit mantissa trick.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The lazily generated crash schedule of one run: per miner, the merged
/// view of explicit downtime windows and churn-generated ones. Windows
/// are extended on demand as queries advance, from per-miner ChaCha
/// streams keyed by the plan seed alone — the schedule is a constant of
/// the plan, independent of anything the simulation does.
#[derive(Debug)]
pub(crate) struct CrashTimeline {
    miners: Vec<MinerTimeline>,
}

#[derive(Debug)]
struct MinerTimeline {
    /// Explicit windows, sorted by start.
    explicit: Vec<(f64, f64)>,
    churn: Option<ChurnGen>,
}

#[derive(Debug)]
struct ChurnGen {
    rng: ChaCha12Rng,
    mean_uptime: f64,
    mean_downtime: f64,
    /// Generated windows so far, sorted and disjoint.
    windows: Vec<(f64, f64)>,
    /// Start of the next not-yet-generated window.
    next_start: f64,
}

impl ChurnGen {
    fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Generate windows until the schedule covers time `t`.
    fn ensure(&mut self, t: f64) {
        while self.next_start <= t {
            let start = self.next_start;
            let down = self.exp(self.mean_downtime);
            self.windows.push((start, start + down));
            self.next_start = start + down + self.exp(self.mean_uptime);
        }
    }
}

/// `true` if some window of the sorted, disjoint list covers `t`.
fn covers(windows: &[(f64, f64)], t: f64) -> bool {
    let i = windows.partition_point(|w| w.0 <= t);
    i > 0 && t < windows[i - 1].1
}

impl CrashTimeline {
    pub(crate) fn new(plan: &FaultPlan, miners: usize) -> Self {
        let timelines = (0..miners)
            .map(|m| {
                let mut explicit: Vec<(f64, f64)> = plan
                    .downtimes
                    .iter()
                    .filter(|d| d.miner == m)
                    .map(|d| (d.start, d.end))
                    .collect();
                explicit.sort_by(|a, b| a.0.total_cmp(&b.0));
                let churn = plan.churn.map(|c| {
                    let rng = ChaCha12Rng::seed_from_u64(plan.hash(STREAM_CHURN, m as u64, 0, 0));
                    let mut g = ChurnGen {
                        rng,
                        mean_uptime: c.mean_uptime,
                        mean_downtime: c.mean_downtime,
                        windows: Vec::new(),
                        next_start: 0.0,
                    };
                    // Every miner starts up; the first crash arrives after
                    // an exponential uptime.
                    g.next_start = g.exp(g.mean_uptime);
                    g
                });
                MinerTimeline { explicit, churn }
            })
            .collect();
        CrashTimeline { miners: timelines }
    }

    /// Is miner `m` down at time `t`? (`&mut`: extends the lazy churn
    /// schedule up to `t`.) Queries may go backwards in time — the
    /// generated windows are kept, only generation is monotone.
    pub(crate) fn is_down(&mut self, m: usize, t: f64) -> bool {
        let tl = &mut self.miners[m];
        // Explicit windows may overlap each other; scan the (few) entries.
        if tl.explicit.iter().any(|&(s, e)| s <= t && t < e) {
            return true;
        }
        match &mut tl.churn {
            Some(g) => {
                g.ensure(t);
                covers(&g.windows, t)
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_default() {
        let p = FaultPlan::none();
        assert_eq!(p, FaultPlan::default());
        assert!(!p.has_link_faults() && !p.has_crashes() && !p.has_partitions());
        assert_eq!(p.view_count(), 1);
        assert_eq!(p.delivery_jitter(1, 2, 3), 0.0);
        assert!(!p.drops(1, 2, 3) && !p.duplicates(1, 2, 3));
        assert!(!p.cross_blocked(0, 1, 10.0));
        let mut tl = CrashTimeline::new(&p, 4);
        assert!(!tl.is_down(0, 1e9));
    }

    #[test]
    fn builder_validation() {
        assert!(FaultPlan::builder().loss(1.5).build().is_err());
        assert!(FaultPlan::builder().loss(-0.1).build().is_err());
        assert!(FaultPlan::builder().duplication(f64::NAN).build().is_err());
        assert!(FaultPlan::builder().jitter(-1.0).build().is_err());
        assert!(FaultPlan::builder().backoff(0.0, 10.0).build().is_err());
        assert!(FaultPlan::builder().backoff(5.0, 1.0).build().is_err());
        assert!(FaultPlan::builder().churn(0.0, 5.0).build().is_err());
        assert!(FaultPlan::builder().downtime(0, 5.0, 5.0).build().is_err());
        assert!(FaultPlan::builder()
            .partition(10.0, 5.0, vec![0, 1])
            .build()
            .is_err());
        // Overlapping partitions are rejected; disjoint sorted ones pass.
        assert!(FaultPlan::builder()
            .partition(0.0, 10.0, vec![0, 1])
            .partition(5.0, 20.0, vec![0, 1])
            .build()
            .is_err());
        let ok = FaultPlan::builder()
            .loss(0.2)
            .duplication(0.1)
            .jitter(1.5)
            .churn(300.0, 30.0)
            .downtime(1, 10.0, f64::INFINITY)
            .partition(0.0, 10.0, vec![0, 1])
            .partition(20.0, f64::INFINITY, vec![1, 0])
            .build()
            .expect("valid plan");
        assert!(ok.has_link_faults() && ok.has_crashes() && ok.has_partitions());
        assert_eq!(ok.view_count(), 2);
    }

    #[test]
    fn miner_count_validation() {
        let plan = FaultPlan::builder()
            .downtime(3, 0.0, 5.0)
            .build()
            .expect("numerically valid");
        assert!(plan.validate_for(3).is_err());
        assert!(plan.validate_for(4).is_ok());
        let plan = FaultPlan::builder()
            .partition(0.0, 5.0, vec![0, 1])
            .build()
            .expect("numerically valid");
        assert!(plan.validate_for(3).is_err(), "group vector too short");
        assert!(plan.validate_for(2).is_ok());
        let plan = FaultPlan::builder()
            .partition(0.0, 5.0, vec![0, 5])
            .build()
            .expect("numerically valid");
        assert!(plan.validate_for(2).is_err(), "group id out of range");
    }

    #[test]
    fn coins_are_deterministic_and_seed_sensitive() {
        let p = FaultPlan::builder().loss(0.5).jitter(2.0).build().unwrap();
        let q = p.with_seed(1);
        let same = (0..200).all(|i| p.drops(i, 3, 0) == p.drops(i, 3, 0));
        assert!(same, "coins are pure functions of their identity");
        let differs = (0..200).any(|i| p.drops(i, 3, 0) != q.drops(i, 3, 0));
        assert!(differs, "different plan seeds give different schedules");
        let jitter_in_range = (0..200).all(|i| {
            let j = p.delivery_jitter(i, 7, 2);
            (0.0..2.0).contains(&j)
        });
        assert!(jitter_in_range);
    }

    #[test]
    fn loss_rate_is_respected() {
        let p = FaultPlan::builder().loss(0.25).build().unwrap();
        let n = 20_000u64;
        let dropped = (0..n).filter(|&i| p.drops(i, 1, 0)).count() as f64;
        let rate = dropped / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = FaultPlan::builder().backoff(2.0, 50.0).build().unwrap();
        assert_eq!(p.retry_backoff(0), 2.0);
        assert_eq!(p.retry_backoff(1), 4.0);
        assert_eq!(p.retry_backoff(3), 16.0);
        assert_eq!(p.retry_backoff(5), 50.0, "cap binds");
        assert_eq!(p.retry_backoff(1000), 50.0, "huge attempts stay capped");
    }

    #[test]
    fn partitions_are_time_indexed() {
        let p = FaultPlan::builder()
            .partition(10.0, 20.0, vec![0, 1, 0])
            .partition(30.0, f64::INFINITY, vec![1, 1, 0])
            .build()
            .unwrap();
        assert!(p.active_partition(5.0).is_none());
        assert_eq!(p.group_of(1, 15.0), 1);
        assert_eq!(p.group_of(1, 25.0), 0, "healed between windows");
        assert!(p.cross_blocked(0, 1, 15.0));
        assert!(!p.cross_blocked(0, 2, 15.0));
        assert!(p.cross_blocked(0, 2, 1e12), "the second split never heals");
        assert_eq!(p.view_count(), 2);
    }

    #[test]
    fn churn_timelines_are_deterministic_and_alternate() {
        let p = FaultPlan::builder().churn(100.0, 20.0).build().unwrap();
        let mut a = CrashTimeline::new(&p, 2);
        let mut b = CrashTimeline::new(&p, 2);
        let mut down_seen = false;
        let mut up_seen = false;
        for i in 0..4000 {
            let t = i as f64 * 7.3;
            let da = a.is_down(0, t);
            assert_eq!(da, b.is_down(0, t), "same plan, same schedule");
            down_seen |= da;
            up_seen |= !da;
        }
        assert!(down_seen && up_seen, "both phases occur over a long span");
        // Backwards queries agree with what was generated forwards.
        assert_eq!(a.is_down(0, 35.0), b.is_down(0, 35.0));
        // Per-miner streams are independent: schedules differ somewhere.
        let differs = (0..4000).any(|i| {
            let t = i as f64 * 7.3;
            a.is_down(0, t) != a.is_down(1, t)
        });
        assert!(differs);
    }

    #[test]
    fn explicit_downtime_windows_apply() {
        let p = FaultPlan::builder()
            .downtime(1, 50.0, 80.0)
            .downtime(1, 100.0, f64::INFINITY)
            .build()
            .unwrap();
        let mut tl = CrashTimeline::new(&p, 3);
        assert!(!tl.is_down(1, 49.9));
        assert!(tl.is_down(1, 50.0));
        assert!(tl.is_down(1, 79.9));
        assert!(!tl.is_down(1, 80.0), "recovered at the window end");
        assert!(tl.is_down(1, 1e15), "the second window never ends");
        assert!(!tl.is_down(0, 60.0), "other miners unaffected");
    }
}
