//! Discrete-event Monte-Carlo simulator for selfish mining in Ethereum.
//!
//! This crate implements the simulation study of Section V of *Selfish
//! Mining in Ethereum* (Niu & Feng, ICDCS 2019): a system of `n` miners
//! whose block production is a sequence of Bernoulli/Poisson trials, a
//! selfish pool running the paper's Algorithm 1, honest miners following
//! the protocol (with the `γ` tie-breaking network model of Section IV-A),
//! uncle referencing per the Ethereum rules, and full per-miner reward
//! accounting over the resulting block tree.
//!
//! Unlike the analytical model in `seleth-core`, nothing here is derived:
//! the simulator builds the actual tree, runs the actual strategy state
//! machine and counts actual rewards — which is what makes it a meaningful
//! cross-check of the theory (Fig. 8 of the paper).
//!
//! Besides the hand-coded strategies the pool can replay an *exported MDP
//! policy artifact* ([`seleth_mdp::PolicyTable`], installed with
//! [`SimConfigBuilder::policy`]): the same derive-optimal-then-simulate
//! loop Sapirshtein et al. close for Bitcoin, here closing the gap between
//! `seleth-mdp`'s predicted optimal revenue ρ* and Monte-Carlo measurement
//! (see `tests/policy_playback.rs` and the `optimal_sim` experiment).
//!
//! The [`delay`] module extends the playback loop to the regime the MDP
//! cannot model: a network with *propagation delay* and arbitrarily many
//! weighted pools, where each miner carries its own
//! [`delay::MinerStrategy`] — honest protocol-following or artifact
//! replay over a private fork. At zero delay the strategic replay
//! reproduces ρ*; as the delay grows the artifact's edge degrades (the
//! `optimal_delay` experiment and `results/delay_study.json`).
//!
//! # Quickstart
//!
//! ```
//! use seleth_sim::{SimConfig, Simulation};
//! use seleth_chain::Scenario;
//!
//! let config = SimConfig::builder()
//!     .alpha(0.3)
//!     .gamma(0.5)
//!     .blocks(20_000)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let report = Simulation::new(config).run();
//! let us = report.absolute_pool(Scenario::RegularRate);
//! // At α = 0.3 > α* ≈ 0.054 selfish mining is profitable.
//! assert!(us > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never a panic, on
// untrusted input; invariant violations use `expect` with a message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod config;
pub mod delay;
pub mod diagnose;
mod engine;
pub mod faults;
pub mod multi;
pub mod pools;
mod stats;

pub use config::{PoolStrategy, SimConfig, SimConfigBuilder, SimError};
pub use diagnose::{
    delay_divergence, engine_divergence, explain_divergence, record_delay_run, record_engine_run,
    TRACE_ON_FAIL_ENV,
};
pub use engine::Simulation;
pub use faults::{FaultPlan, FaultPlanBuilder};
pub use stats::SimReport;
