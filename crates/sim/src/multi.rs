//! Multi-run orchestration: the paper averages 10 independent runs of
//! 100,000 blocks each (Section V); this module runs seeds in parallel and
//! aggregates the reports.

use crossbeam::thread;

use seleth_chain::Scenario;

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::stats::SimReport;

/// Run `runs` independent simulations (seeds `base_seed..base_seed+runs`)
/// in parallel and collect the reports in seed order.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the simulator, not a
/// recoverable condition).
pub fn run_many(config: &SimConfig, runs: u64) -> Vec<SimReport> {
    let base = config.seed();
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(runs as usize);
    if runs <= 1 || threads <= 1 {
        return (0..runs)
            .map(|k| Simulation::new(config.with_seed(base + k)).run())
            .collect();
    }
    let mut reports: Vec<Option<SimReport>> = (0..runs).map(|_| None).collect();
    thread::scope(|scope| {
        for (chunk_idx, chunk) in reports
            .chunks_mut(runs.div_ceil(threads as u64) as usize)
            .enumerate()
        {
            let config = config.clone();
            let chunk_len = chunk.len();
            let start = chunk_idx * chunk_len;
            scope.spawn(move |_| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let seed = base + (start + i) as u64;
                    *slot = Some(Simulation::new(config.with_seed(seed)).run());
                }
            });
        }
    })
    .expect("simulation worker panicked");
    reports
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Mean and sample standard deviation of a metric over several runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single run).
    pub std_dev: f64,
}

/// Summarize an arbitrary per-run metric.
pub fn summarize<F: FnMut(&SimReport) -> f64>(reports: &[SimReport], mut metric: F) -> Summary {
    let n = reports.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let values: Vec<f64> = reports.iter().map(&mut metric).collect();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    Summary {
        mean,
        std_dev: var.sqrt(),
    }
}

/// Mean pool absolute revenue `U_s` across runs.
pub fn mean_absolute_pool(reports: &[SimReport], scenario: Scenario) -> Summary {
    summarize(reports, |r| r.absolute_pool(scenario))
}

/// Mean honest absolute revenue `U_h` across runs.
pub fn mean_absolute_honest(reports: &[SimReport], scenario: Scenario) -> Summary {
    summarize(reports, |r| r.absolute_honest(scenario))
}

/// Element-wise mean of the honest uncle-distance distributions.
pub fn mean_honest_distance_distribution(reports: &[SimReport]) -> Vec<f64> {
    if reports.is_empty() {
        return Vec::new();
    }
    let len = reports
        .iter()
        .map(|r| r.honest_uncle_histogram.len())
        .max()
        .unwrap_or(0);
    let mut acc = vec![0.0; len];
    for r in reports {
        let pmf = r.honest_distance_distribution();
        for (a, p) in acc.iter_mut().zip(pmf.iter()) {
            *a += p;
        }
    }
    for a in &mut acc {
        *a /= reports.len() as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(blocks: u64) -> SimConfig {
        SimConfig::builder()
            .alpha(0.3)
            .gamma(0.5)
            .blocks(blocks)
            .n_honest(50)
            .seed(100)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = config(3_000);
        let seq: Vec<SimReport> = (0..4)
            .map(|k| Simulation::new(c.with_seed(100 + k)).run())
            .collect();
        let par = run_many(&c, 4);
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.pool.total(), p.pool.total());
            assert_eq!(s.reward_report.regular_count, p.reward_report.regular_count);
        }
    }

    #[test]
    fn summary_statistics() {
        let c = config(2_000);
        let reports = run_many(&c, 3);
        let s = mean_absolute_pool(&reports, Scenario::RegularRate);
        assert!(s.mean > 0.0);
        assert!(s.std_dev >= 0.0);
        // Distinct seeds → some variation.
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn empty_and_single_run_summaries() {
        assert_eq!(
            summarize(&[], |_| 1.0),
            Summary {
                mean: 0.0,
                std_dev: 0.0
            }
        );
        let c = config(1_000);
        let reports = run_many(&c, 1);
        let s = summarize(&reports, |r| r.alpha);
        assert_eq!(s.mean, 0.3);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn mean_distance_distribution_normalized() {
        let c = config(5_000);
        let reports = run_many(&c, 2);
        let pmf = mean_honest_distance_distribution(&reports);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mean pmf sums to {total}");
    }
}
