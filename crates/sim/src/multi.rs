//! Multi-run orchestration: the paper averages 10 independent runs of
//! 100,000 blocks each (Section V); this module runs seeds in parallel and
//! aggregates the reports.
//!
//! Each run `k` is an independent simulation seeded `base_seed + k`, so the
//! reports are a pure function of the configuration: the thread count only
//! decides which worker executes which seed, never the result. Workers pull
//! run indices from a shared queue (no up-front chunking, so any
//! `runs`/`threads` ratio stays fully utilized) and recycle one
//! [`Simulation`] engine — block-tree arena included — across all the runs
//! they execute.

use std::sync::atomic::{AtomicU64, Ordering};

use seleth_chain::Scenario;
use seleth_obs::{NoopRecorder, Recorder, Stopwatch, TelemetryShard};

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::stats::SimReport;

/// Run `runs` independent simulations (seeds `base_seed..base_seed+runs`)
/// in parallel and collect the reports in seed order.
///
/// Uses up to `available_parallelism` threads; see
/// [`run_many_with_threads`] for an explicit thread count. Results are
/// identical for every thread count.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the simulator, not a
/// recoverable condition).
pub fn run_many(config: &SimConfig, runs: u64) -> Vec<SimReport> {
    run_many_with_threads(config, runs, 0)
}

/// As [`run_many`], with an explicit worker count (`0` = use
/// `available_parallelism`). Reports depend only on `config` and `runs`,
/// never on `threads`.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_many_with_threads(config: &SimConfig, runs: u64, threads: usize) -> Vec<SimReport> {
    run_many_recorded(config, runs, threads, &NoopRecorder).0
}

/// As [`run_many_with_threads`], additionally returning one
/// [`TelemetryShard`] per worker thread.
///
/// Each shard carries the worker's busy time, queue wait (time between
/// finishing one run and starting the next, including thread startup),
/// tasks claimed, and the deterministic scheduler counters `sim.runs`,
/// `sim.blocks`, `sim.engine_builds` and `sim.engine_reuses`. Counter
/// *totals* over all shards are bit-identical for every thread count
/// (each run contributes fixed deltas; only their grouping varies);
/// per-worker timing is a wall-clock measurement with no such guarantee.
/// When `recorder` is enabled, one `"run"` span per simulation is emitted.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_many_recorded(
    config: &SimConfig,
    runs: u64,
    threads: usize,
    recorder: &dyn Recorder,
) -> (Vec<SimReport>, Vec<TelemetryShard>) {
    let base = config.seed();
    if runs == 0 {
        return (Vec::new(), Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(usize::try_from(runs).unwrap_or(usize::MAX))
    .max(1);

    // One worker body shared by the sequential and parallel paths, so the
    // engine-reuse discipline and telemetry accounting cannot drift apart.
    let work = |worker: usize, next: &AtomicU64| -> (Vec<(u64, SimReport)>, TelemetryShard) {
        let mut shard = TelemetryShard::new(worker);
        let mut produced: Vec<(u64, SimReport)> = Vec::new();
        let mut engine: Option<Simulation> = None;
        let mut idle = Stopwatch::start();
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= runs {
                break;
            }
            shard.queue_wait_ns += idle.elapsed_ns();
            let busy = Stopwatch::start();
            let span_start = if recorder.enabled() {
                recorder.now_ns()
            } else {
                0
            };
            let run_config = config.with_seed(base + k);
            let report = match engine.as_mut() {
                Some(sim) => {
                    shard.add("sim.engine_reuses", 1);
                    sim.reset(run_config);
                    sim.run_in_place()
                }
                None => {
                    shard.add("sim.engine_builds", 1);
                    let mut sim = Simulation::new(run_config);
                    let report = sim.run_in_place();
                    engine = Some(sim);
                    report
                }
            };
            shard.tasks += 1;
            shard.busy_ns += busy.elapsed_ns();
            shard.add("sim.runs", 1);
            shard.add("sim.blocks", config.blocks());
            if recorder.enabled() {
                recorder.span("run", worker, span_start, recorder.now_ns());
            }
            produced.push((k, report));
            idle = Stopwatch::start();
        }
        (produced, shard)
    };

    if threads == 1 {
        let next = AtomicU64::new(0);
        let (produced, shard) = work(0, &next);
        return (produced.into_iter().map(|(_, r)| r).collect(), vec![shard]);
    }

    let next = AtomicU64::new(0);
    let mut reports: Vec<Option<SimReport>> = (0..runs).map(|_| None).collect();
    let mut shards: Vec<TelemetryShard> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let work = &work;
                scope.spawn(move || work(worker, next))
            })
            .collect();
        for handle in handles {
            let (produced, shard) = handle.join().expect("simulation worker panicked");
            for (k, report) in produced {
                reports[usize::try_from(k).expect("run index fits usize")] = Some(report);
            }
            shards.push(shard);
        }
    });
    (
        reports
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect(),
        shards,
    )
}

/// Mean and sample standard deviation of a metric over several runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single run).
    pub std_dev: f64,
}

/// Summarize an arbitrary per-run metric.
pub fn summarize<F: FnMut(&SimReport) -> f64>(reports: &[SimReport], mut metric: F) -> Summary {
    let n = reports.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let values: Vec<f64> = reports.iter().map(&mut metric).collect();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    Summary {
        mean,
        std_dev: var.sqrt(),
    }
}

/// Mean pool absolute revenue `U_s` across runs.
pub fn mean_absolute_pool(reports: &[SimReport], scenario: Scenario) -> Summary {
    summarize(reports, |r| r.absolute_pool(scenario))
}

/// Mean honest absolute revenue `U_h` across runs.
pub fn mean_absolute_honest(reports: &[SimReport], scenario: Scenario) -> Summary {
    summarize(reports, |r| r.absolute_honest(scenario))
}

/// Element-wise mean of the honest uncle-distance distributions.
pub fn mean_honest_distance_distribution(reports: &[SimReport]) -> Vec<f64> {
    if reports.is_empty() {
        return Vec::new();
    }
    let len = reports
        .iter()
        .map(|r| r.honest_uncle_histogram.len())
        .max()
        .unwrap_or(0);
    let mut acc = vec![0.0; len];
    for r in reports {
        let pmf = r.honest_distance_distribution();
        for (a, p) in acc.iter_mut().zip(pmf.iter()) {
            *a += p;
        }
    }
    for a in &mut acc {
        *a /= reports.len() as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(blocks: u64) -> SimConfig {
        SimConfig::builder()
            .alpha(0.3)
            .gamma(0.5)
            .blocks(blocks)
            .n_honest(50)
            .seed(100)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = config(3_000);
        let seq: Vec<SimReport> = (0..4)
            .map(|k| Simulation::new(c.with_seed(100 + k)).run())
            .collect();
        let par = run_many(&c, 4);
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.pool.total(), p.pool.total());
            assert_eq!(s.reward_report.regular_count, p.reward_report.regular_count);
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        // Regression test for the chunked scheduler this module used to
        // have: per-seed results must be a pure function of the config,
        // bit-for-bit, whatever the worker count — including worker counts
        // exceeding the run count (the old degenerate-partition case).
        let c = config(2_000);
        let runs = 5;
        let reference = run_many_with_threads(&c, runs, 1);
        for threads in [2, 3, 8, 64] {
            let parallel = run_many_with_threads(&c, runs, threads);
            assert_eq!(parallel.len(), reference.len());
            for (r, p) in reference.iter().zip(parallel.iter()) {
                assert_eq!(r.pool.total(), p.pool.total(), "threads={threads}");
                assert_eq!(r.honest.total(), p.honest.total(), "threads={threads}");
                assert_eq!(
                    r.reward_report.regular_count, p.reward_report.regular_count,
                    "threads={threads}"
                );
                assert_eq!(
                    r.reward_report.uncle_count, p.reward_report.uncle_count,
                    "threads={threads}"
                );
                assert_eq!(r.state_visits, p.state_visits, "threads={threads}");
            }
        }
    }

    #[test]
    fn fewer_runs_than_threads() {
        // runs < threads used to yield degenerate chunk partitions; the
        // work queue must handle it and still return every report in seed
        // order.
        let c = config(500);
        let reports = run_many_with_threads(&c, 2, 16);
        assert_eq!(reports.len(), 2);
        let solo: Vec<SimReport> = (0..2)
            .map(|k| Simulation::new(c.with_seed(100 + k)).run())
            .collect();
        for (a, b) in reports.iter().zip(solo.iter()) {
            assert_eq!(a.pool.total(), b.pool.total());
        }
    }

    #[test]
    fn engine_reuse_matches_fresh_engines() {
        // The sequential path recycles one engine across seeds; recycling
        // must be observationally identical to constructing fresh engines.
        let c = config(1_500);
        let recycled = run_many_with_threads(&c, 3, 1);
        let fresh: Vec<SimReport> = (0..3)
            .map(|k| Simulation::new(c.with_seed(100 + k)).run())
            .collect();
        for (a, b) in recycled.iter().zip(fresh.iter()) {
            assert_eq!(a.pool.total(), b.pool.total());
            assert_eq!(a.reward_report.regular_count, b.reward_report.regular_count);
            assert_eq!(a.state_visits, b.state_visits);
        }
    }

    #[test]
    fn recorded_counter_totals_are_thread_invariant() {
        let c = config(1_000);
        let total = |threads: usize| {
            let (reports, shards) = run_many_recorded(&c, 6, threads, &seleth_obs::NoopRecorder);
            assert_eq!(reports.len(), 6);
            let merged = seleth_obs::Telemetry::merge_shards(&shards);
            (
                merged.counter("sim.runs"),
                merged.counter("sim.blocks"),
                merged.counter("sim.engine_builds") + merged.counter("sim.engine_reuses"),
            )
        };
        let reference = total(1);
        assert_eq!(reference, (6, 6_000, 6));
        for threads in [2, 3, 8] {
            assert_eq!(total(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn recorded_spans_cover_every_run() {
        let c = config(500);
        let log = seleth_obs::TraceLog::new();
        let (_, shards) = run_many_recorded(&c, 3, 2, &log);
        assert_eq!(log.events().len(), 3);
        let tasks: u64 = shards.iter().map(|s| s.tasks).sum();
        assert_eq!(tasks, 3);
    }

    #[test]
    fn summary_statistics() {
        let c = config(2_000);
        let reports = run_many(&c, 3);
        let s = mean_absolute_pool(&reports, Scenario::RegularRate);
        assert!(s.mean > 0.0);
        assert!(s.std_dev >= 0.0);
        // Distinct seeds → some variation.
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn empty_and_single_run_summaries() {
        assert_eq!(
            summarize(&[], |_| 1.0),
            Summary {
                mean: 0.0,
                std_dev: 0.0
            }
        );
        let c = config(1_000);
        let reports = run_many(&c, 1);
        let s = summarize(&reports, |r| r.alpha);
        assert_eq!(s.mean, 0.3);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn mean_distance_distribution_normalized() {
        let c = config(5_000);
        let reports = run_many(&c, 2);
        let pmf = mean_honest_distance_distribution(&reports);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mean pmf sums to {total}");
    }
}
