//! Propagation-delay simulator — honest networks *and* strategic playback.
//!
//! Section VI of the paper recalls that uncle and nephew rewards were
//! introduced to counter *centralization bias*: with real propagation
//! delay, large miners hear about their own blocks instantly and therefore
//! orphan fewer of them, earning a super-proportional revenue share.
//! Rewarding stale blocks compresses that advantage.
//!
//! This module simulates a network of weighted miners with a propagation
//! delay: block production is a Poisson process; a block released at time
//! `t` becomes visible to other miners at `t + delay`, while its producer
//! sees it immediately. Each miner carries a [`MinerStrategy`]:
//!
//! - [`MinerStrategy::Honest`] miners mine on the longest chain they can
//!   see, reference every visible eligible uncle, and release every block
//!   the moment it is mined.
//! - [`MinerStrategy::Table`] miners replay an exported MDP policy
//!   artifact ([`seleth_mdp::PolicyTable`]): they keep a **private fork**,
//!   consult the table at every event they observe (mining a block,
//!   hearing a released block) in the MDP's decision order, and execute
//!   the prescribed *adopt / override / match / wait* over the real block
//!   tree. Lookups go through [`seleth_mdp::PolicyTable::decide`], the
//!   same fallback-resolving procedure the instant-broadcast engine uses:
//!   states outside the table's truncation and illegal prescriptions
//!   degrade to a forced adopt, never a panic.
//!
//! Several strategists may run concurrently — one [`MinerStrategy::Table`]
//! per attacking miner, each with its own artifact. Every strategist keeps
//! its own private fork and treats the *other* miners' released blocks,
//! honest or strategic, as the foreign public chain: a rival's override
//! arrives through the same hear path as an honest block, and a branch
//! that forks below the strategist's epoch forces an adopt once it catches
//! up. Equal-height ties between two rival strategists' tips split the
//! honest hash power evenly (the network model's γ is defined against an
//! honest incumbent, so neither attacker earns it), while
//! strategic-vs-honest ties follow `tie_gamma` as before. This is the
//! engine under the strategy zoo's multi-strategist tournament matchups
//! (`seleth-zoo`, the `strategy_zoo` experiment).
//!
//! This is the regime the MDP itself cannot model — its ρ* is derived in
//! a zero-delay two-player world — which is exactly what makes the replay
//! interesting: at `delay = 0` with two miners the strategic run
//! reproduces the engine's `PoolStrategy::Table` playback (and therefore
//! ρ*, see `tests/delay_study.rs`); as the delay grows the artifact's
//! edge degrades, measured by the `optimal_delay` experiment.
//!
//! Accounting reuses the standard tree machinery, so the same run can be
//! scored under Ethereum and Bitcoin reward schedules.
//!
//! ```
//! use seleth_sim::delay::{DelayConfig, DelaySimulation};
//!
//! // Three honest miners, one 3x larger; blocks every 13 "seconds",
//! // 6-second delay.
//! let config = DelayConfig::builder()
//!     .shares(vec![0.6, 0.2, 0.2])
//!     .delay(6.0)
//!     .blocks(5_000)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! let report = DelaySimulation::new(config).run();
//! // The large miner orphans proportionally fewer of its blocks.
//! assert!(report.stale_fraction(0) <= report.stale_fraction(1) + 0.05);
//! ```
//!
//! Strategic playback:
//!
//! ```
//! use seleth_chain::RewardSchedule;
//! use seleth_mdp::PolicyTable;
//! use seleth_sim::delay::{DelayConfig, DelaySimulation};
//!
//! // A 35% pool replays the honest baseline table against a 65% miner.
//! let config = DelayConfig::builder()
//!     .shares(vec![0.35, 0.65])
//!     .policy(0, PolicyTable::honest(0.35, 0.0, 12))
//!     .tie_gamma(0.0)
//!     .delay(0.0)
//!     .schedule(RewardSchedule::bitcoin())
//!     .blocks(4_000)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! let report = DelaySimulation::new(config).run();
//! // Honest play earns the fair share.
//! assert!((report.revenue_share(0) - 0.35).abs() < 0.05);
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use seleth_chain::accounting::{self, MinerRewards};
use seleth_chain::forkchoice::{longest_chain, TieBreak};
use seleth_chain::{BlockId, BlockTree, MinerId, RewardSchedule};
use seleth_mdp::{Action, Fork, PolicyTable, StateSpace};
use seleth_net::Topology;
use seleth_obs::{EventKind, EventLog};

use crate::config::SimError;
use crate::engine::record_event;
use crate::faults::{CrashTimeline, FaultPlan};

/// The behaviour of one miner in the delay simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MinerStrategy {
    /// Follow the protocol: mine on the best visible tip, reference
    /// visible uncles, release every block immediately.
    Honest,
    /// Replay an exported MDP policy artifact over a private fork,
    /// consulting the table at every observed event (see the
    /// [module docs](self)). Shared via [`Arc`] so that cloning a
    /// configuration per seed never copies the action arrays.
    Table(Arc<PolicyTable>),
}

impl MinerStrategy {
    /// `true` for policy-driven (withholding) miners.
    pub fn is_strategic(&self) -> bool {
        matches!(self, MinerStrategy::Table(_))
    }
}

/// How released blocks reach the other miners.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum PropagationModel {
    /// The uniform model: every miner hears every block exactly `delay`
    /// after release (the original delay engine).
    #[default]
    Uniform,
    /// Gossip over a peer graph ([`seleth_net::Topology`]): each miner
    /// hears each block at its graph-shortest-path arrival time. The
    /// per-receiver surcharge relative to the base `delay` folds into the
    /// same pending-queue machinery the uniform model uses, so a
    /// complete-graph topology whose edge latency equals `delay`
    /// reproduces the uniform engine bit-for-bit. Shared via [`Arc`]:
    /// cloning a configuration per seed never copies the graph.
    Graph(Arc<Topology>),
}

/// Configuration of a delay study run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayConfig {
    shares: Vec<f64>,
    strategies: Vec<MinerStrategy>,
    tie_gamma: f64,
    delay: f64,
    interval: f64,
    blocks: u64,
    seed: u64,
    schedule: RewardSchedule,
    faults: FaultPlan,
    propagation: PropagationModel,
}

/// Builder for [`DelayConfig`].
#[derive(Debug, Clone)]
pub struct DelayConfigBuilder {
    shares: Vec<f64>,
    strategies: Vec<MinerStrategy>,
    tie_gamma: f64,
    delay: f64,
    interval: f64,
    blocks: u64,
    seed: u64,
    schedule: RewardSchedule,
    faults: FaultPlan,
    propagation: PropagationModel,
}

impl Default for DelayConfigBuilder {
    fn default() -> Self {
        DelayConfigBuilder {
            shares: vec![0.25; 4],
            strategies: Vec::new(),
            tie_gamma: 0.5,
            delay: 6.0,
            interval: 13.0,
            blocks: 100_000,
            seed: 0,
            schedule: RewardSchedule::ethereum(),
            faults: FaultPlan::none(),
            propagation: PropagationModel::Uniform,
        }
    }
}

impl DelayConfigBuilder {
    /// Hash-power shares per miner. Must form a probability distribution:
    /// finite, non-negative, summing to 1 (see [`crate::pools`] for
    /// ready-made splits) — [`DelayConfigBuilder::build`] rejects anything
    /// else instead of silently renormalizing.
    pub fn shares(&mut self, shares: Vec<f64>) -> &mut Self {
        self.shares = shares;
        self
    }

    /// One [`MinerStrategy`] per miner (default: all honest). May be
    /// shorter than the share vector — the tail defaults to honest — but
    /// never longer.
    pub fn strategies(&mut self, strategies: Vec<MinerStrategy>) -> &mut Self {
        self.strategies = strategies;
        self
    }

    /// Have miner `index` replay `table` ([`MinerStrategy::Table`]);
    /// miners without an explicit strategy stay honest.
    pub fn policy(&mut self, index: usize, table: PolicyTable) -> &mut Self {
        if self.strategies.len() <= index {
            self.strategies.resize(index + 1, MinerStrategy::Honest);
        }
        self.strategies[index] = MinerStrategy::Table(Arc::new(table));
        self
    }

    /// Tie-breaking parameter for strategic races: the fraction of honest
    /// mining power that mines on a strategic miner's published branch
    /// when it ties the honest public tip (the network model's `γ`,
    /// Section IV-A). Irrelevant in all-honest networks, where equal-height
    /// tips resolve first-seen.
    pub fn tie_gamma(&mut self, gamma: f64) -> &mut Self {
        self.tie_gamma = gamma;
        self
    }

    /// Propagation delay, in the same time unit as `interval`.
    pub fn delay(&mut self, delay: f64) -> &mut Self {
        self.delay = delay;
        self
    }

    /// Mean block interval (Ethereum ≈ 13 s; Bitcoin 600 s).
    pub fn interval(&mut self, interval: f64) -> &mut Self {
        self.interval = interval;
        self
    }

    /// Number of blocks to mine.
    pub fn blocks(&mut self, blocks: u64) -> &mut Self {
        self.blocks = blocks;
        self
    }

    /// RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Reward schedule used for accounting.
    pub fn schedule(&mut self, schedule: RewardSchedule) -> &mut Self {
        self.schedule = schedule;
        self
    }

    /// Install a fault plan ([`crate::faults`]). The default,
    /// [`FaultPlan::none`], injects nothing and keeps the run
    /// bit-identical to the fault-unaware engine.
    pub fn faults(&mut self, faults: FaultPlan) -> &mut Self {
        self.faults = faults;
        self
    }

    /// Choose the propagation model (default [`PropagationModel::Uniform`]).
    pub fn propagation(&mut self, propagation: PropagationModel) -> &mut Self {
        self.propagation = propagation;
        self
    }

    /// Propagate over a peer graph — shorthand for
    /// [`PropagationModel::Graph`]. The topology's miner count must equal
    /// the share vector's length (checked at build).
    pub fn topology(&mut self, topology: Topology) -> &mut Self {
        self.propagation = PropagationModel::Graph(Arc::new(topology));
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// [`SimError::NoHonestMiners`] without at least two miners (a solo
    /// network has no propagation), [`SimError::NoBlocks`] for an empty
    /// budget, [`SimError::InvalidShares`] unless the shares are a
    /// probability distribution (finite, non-negative, summing to 1 within
    /// `1e-6`), [`SimError::StrategyCount`] when the strategy vector
    /// disagrees with the number of miners, [`SimError::InvalidGamma`] for
    /// a tie-breaking parameter outside `[0, 1]`, and
    /// [`SimError::InvalidAlpha`] if the delay/interval are not positive
    /// finite numbers, and [`SimError::InvalidFaultPlan`] when the fault
    /// plan is malformed or disagrees with the miner count.
    pub fn build(&self) -> Result<DelayConfig, SimError> {
        if self.shares.len() < 2 {
            return Err(SimError::NoHonestMiners);
        }
        if self.blocks == 0 {
            return Err(SimError::NoBlocks);
        }
        let total: f64 = self.shares.iter().sum();
        if self.shares.iter().any(|s| !s.is_finite() || *s < 0.0) || (total - 1.0).abs() > 1e-6 {
            return Err(SimError::InvalidShares { total });
        }
        if self.strategies.len() > self.shares.len() {
            return Err(SimError::StrategyCount {
                miners: self.shares.len(),
                strategies: self.strategies.len(),
            });
        }
        // Unspecified miners default to honest, so `policy(0, table)`
        // works without spelling out the whole vector.
        let mut strategies = self.strategies.clone();
        strategies.resize(self.shares.len(), MinerStrategy::Honest);
        if !self.tie_gamma.is_finite() || !(0.0..=1.0).contains(&self.tie_gamma) {
            return Err(SimError::InvalidGamma {
                gamma: self.tie_gamma,
            });
        }
        let timing_ok = self.delay.is_finite()
            && self.delay >= 0.0
            && self.interval.is_finite()
            && self.interval > 0.0;
        if !timing_ok {
            return Err(SimError::InvalidAlpha { alpha: self.delay });
        }
        self.faults.validate_for(self.shares.len())?;
        if let PropagationModel::Graph(topology) = &self.propagation {
            if topology.miner_count() != self.shares.len() {
                return Err(SimError::InvalidTopology {
                    reason: format!(
                        "topology has {} miners but the share vector has {}",
                        topology.miner_count(),
                        self.shares.len()
                    ),
                });
            }
        }
        Ok(DelayConfig {
            shares: self.shares.clone(),
            strategies,
            tie_gamma: self.tie_gamma,
            delay: self.delay,
            interval: self.interval,
            blocks: self.blocks,
            seed: self.seed,
            schedule: self.schedule.clone(),
            faults: self.faults.clone(),
            propagation: self.propagation.clone(),
        })
    }
}

impl DelayConfig {
    /// Start building a configuration.
    pub fn builder() -> DelayConfigBuilder {
        DelayConfigBuilder::default()
    }

    /// Hash shares (a probability distribution; validated at build).
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Per-miner strategies, parallel to [`DelayConfig::shares`].
    pub fn strategies(&self) -> &[MinerStrategy] {
        &self.strategies
    }

    /// Tie-breaking parameter for strategic races.
    pub fn tie_gamma(&self) -> f64 {
        self.tie_gamma
    }

    /// RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Propagation delay.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Mean block interval.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Block budget per run.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// The reward schedule in force.
    pub fn schedule(&self) -> &RewardSchedule {
        &self.schedule
    }

    /// The fault plan in force ([`FaultPlan::none`] by default).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The propagation model in force ([`PropagationModel::Uniform`] by
    /// default).
    pub fn propagation(&self) -> &PropagationModel {
        &self.propagation
    }

    /// A copy with a different seed (for multi-run averaging; shared
    /// policy tables are never copied).
    pub fn with_seed(&self, seed: u64) -> Self {
        DelayConfig {
            seed,
            ..self.clone()
        }
    }
}

/// A strategic miner's private-fork bookkeeping: the delay-world analogue
/// of the engine's epoch state, except that `h` is *the pool's view* of
/// the public chain — it lags reality by up to one propagation delay.
#[derive(Debug)]
struct Strategist {
    miner: MinerId,
    table: Arc<PolicyTable>,
    /// Last block this miner considers settled; both branches fork here.
    fork_base: BlockId,
    /// The private chain above `fork_base`, oldest first.
    private: Vec<BlockId>,
    /// How many of `private` have been released.
    published_count: usize,
    /// Highest block heard from other miners so far.
    best_heard: BlockId,
    /// Heard public-branch length above `fork_base`.
    h: u64,
    /// MDP fork qualifier, maintained exactly as in the engine.
    fork: Fork,
    /// Published-prefix reference distance, maintained exactly as in the
    /// engine: fixed at the heard height of the epoch's first match,
    /// cleared when the epoch settles. Four-axis tables consult it.
    match_d: u8,
    /// Released blocks by other miners, not yet heard; an entry is heard
    /// at `pub_time + delay + extra`. Kept sorted by that due time
    /// (without faults every `extra` is zero and release times never
    /// decrease, so insertion degenerates to a plain `push_back`).
    inbox: VecDeque<Pending>,
    /// `true` while the miner is down and has not yet resynchronized
    /// (set by the crash gate, cleared by the forced-adopt resync on the
    /// first event after recovery).
    crashed: bool,
}

/// One queued delivery of a released block to a receiver — a public view
/// or a strategist's inbox — due at `pub_time(block) + delay + extra`
/// (strategists) or visible at `pub_time(block) + extra + delay` past
/// release (views; same ordering).
#[derive(Debug, Clone, Copy)]
struct Pending {
    block: BlockId,
    /// The fault layer's surcharge on top of the base propagation delay:
    /// accumulated reorder jitter and re-gossip backoff. Exactly `0.0` on
    /// the zero-fault path — and `x + 0.0` is bitwise `x` for the finite
    /// release timestamps, which is what keeps zero-fault runs
    /// byte-identical to the fault-unaware engine.
    extra: f64,
    /// Delivery attempts so far; keys the per-attempt fault coins.
    attempt: u32,
    /// An inert duplicate copy: skips the fault pipeline, exercising only
    /// the receiver's idempotence.
    dup: bool,
}

impl Pending {
    fn first(block: BlockId, extra: f64) -> Self {
        Pending {
            block,
            extra,
            attempt: 0,
            dup: false,
        }
    }
}

/// One public frontier. View 0 is the shared network; under a fault plan
/// with partitions there is one additional view per partition group id,
/// and honest miners read the view of their current group. Every view
/// receives every delivery at all times (so dormant views track the
/// shared frontier for free); a delivery into view `v` stalls only while
/// an *active* partition uses group `v` and assigns the producer
/// elsewhere — it then retries with backoff until the partition heals.
#[derive(Debug)]
struct PublicView {
    /// Best (highest, earliest-released) block fully propagated to this
    /// view.
    best: BlockId,
    /// A competing fully-propagated tip at `best`'s height — a live race
    /// honest miners must split (see [`DelaySimulation::promote_public`]).
    race: Option<BlockId>,
    /// Deliveries still inside the propagation pipeline, in due-time
    /// order.
    pending: VecDeque<Pending>,
}

/// Receiver-id namespace of the public views inside the fault plan's hash
/// streams; strategist receivers use their (small) miner index directly.
fn view_receiver(v: usize) -> u64 {
    (1u64 << 32) + v as u64
}

/// Insert `p` into a due-time-ordered queue. Duplicates and retries can
/// land out of order; the zero-fault path (every `extra` zero, release
/// times monotone) always takes the `push_back` branch, preserving the
/// fault-unaware engine's queue order exactly.
fn enqueue(queue: &mut VecDeque<Pending>, pub_time: &[f64], p: Pending) {
    let due = pub_time[p.block.index()] + p.extra;
    match queue.back() {
        Some(b) if pub_time[b.block.index()] + b.extra > due => {
            let at = queue.partition_point(|e| pub_time[e.block.index()] + e.extra <= due);
            queue.insert(at, p);
        }
        _ => queue.push_back(p),
    }
}

/// Deterministic event counters of one delay run.
///
/// Every field is a plain `u64` incremented on the engine's control-flow
/// paths without ever touching the RNG or the event timeline, so counting
/// preserves the zero-fault bit-identity invariant (a [`FaultPlan::none`]
/// run stays bit-identical to the fault-unaware engine) and counter totals
/// summed across runs are bit-identical in any grouping — the property the
/// telemetry shard merge relies on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayCounters {
    /// Poisson event slots that produced a block.
    pub mining_events: u64,
    /// Poisson event slots lost to a crashed miner (thinning).
    pub thinned_events: u64,
    /// Delivery events processed at a receiver (views and strategist
    /// inboxes; duplicate copies count here too once processed).
    pub deliveries: u64,
    /// Inert duplicate copies processed at a receiver.
    pub duplicate_deliveries: u64,
    /// Gossip messages lost to the link-fault drop coin.
    pub drops: u64,
    /// Re-gossip retries enqueued after a drop or a partition stall.
    pub regossip_attempts: u64,
    /// Deliveries stalled because a partition separated producer and
    /// receiver at arrival time.
    pub partition_stalls: u64,
    /// Partition windows observed closing (active → healed transitions
    /// sampled at mining events).
    pub partition_heals: u64,
    /// Hear events a crashed strategist missed outright.
    pub crash_misses: u64,
    /// Crash-recovery resynchronizations (forced-adopt rejoins).
    pub crash_resyncs: u64,
    /// Epochs conceded because a below-epoch branch caught up.
    pub forced_adopts: u64,
    /// Policy *adopt* actions executed.
    pub adopts: u64,
    /// Policy *override* actions executed.
    pub overrides: u64,
    /// Policy *match* actions executed.
    pub matches: u64,
    /// Blocks released into the gossip layer (honest blocks at mine time,
    /// strategic blocks at publication).
    pub released_blocks: u64,
    /// Blocks that ended the run off the main chain (uncles + stales).
    pub orphan_blocks: u64,
    /// Graph mode: gossip messages sent over edges (all zero under the
    /// uniform model, like the rest of the `gossip_*` family).
    pub gossip_sends: u64,
    /// Graph mode: copies dropped by a receiving node's seen-set.
    pub gossip_dedup_drops: u64,
    /// Graph mode: per-edge loss coins that forced a backoff re-send.
    pub gossip_loss_retries: u64,
    /// Graph mode: (block, miner) pairs the graph never delivered.
    pub gossip_unreachable: u64,
    /// Graph mode: deliveries whose earliest path was one edge.
    pub gossip_hops_1: u64,
    /// Graph mode: deliveries whose earliest path was two edges (e.g.
    /// through one relay).
    pub gossip_hops_2: u64,
    /// Graph mode: deliveries whose earliest path was three edges.
    pub gossip_hops_3: u64,
    /// Graph mode: deliveries whose earliest path was four or more edges.
    pub gossip_hops_4_plus: u64,
}

impl DelayCounters {
    /// Add `other`'s totals into `self` (u64 sums: order-independent).
    pub fn merge(&mut self, other: &DelayCounters) {
        for ((_, lhs), (_, rhs)) in self.entries_mut().into_iter().zip(other.entries()) {
            *lhs += rhs;
        }
    }

    /// Counter values under their stable telemetry keys.
    pub fn entries(&self) -> [(&'static str, u64); 24] {
        [
            ("delay.mining_events", self.mining_events),
            ("delay.thinned_events", self.thinned_events),
            ("delay.deliveries", self.deliveries),
            ("delay.duplicate_deliveries", self.duplicate_deliveries),
            ("delay.drops", self.drops),
            ("delay.regossip_attempts", self.regossip_attempts),
            ("delay.partition_stalls", self.partition_stalls),
            ("delay.partition_heals", self.partition_heals),
            ("delay.crash_misses", self.crash_misses),
            ("delay.crash_resyncs", self.crash_resyncs),
            ("delay.forced_adopts", self.forced_adopts),
            ("delay.adopts", self.adopts),
            ("delay.overrides", self.overrides),
            ("delay.matches", self.matches),
            ("delay.released_blocks", self.released_blocks),
            ("delay.orphan_blocks", self.orphan_blocks),
            ("delay.gossip_sends", self.gossip_sends),
            ("delay.gossip_dedup_drops", self.gossip_dedup_drops),
            ("delay.gossip_loss_retries", self.gossip_loss_retries),
            ("delay.gossip_unreachable", self.gossip_unreachable),
            ("delay.gossip_hops_1", self.gossip_hops_1),
            ("delay.gossip_hops_2", self.gossip_hops_2),
            ("delay.gossip_hops_3", self.gossip_hops_3),
            ("delay.gossip_hops_4_plus", self.gossip_hops_4_plus),
        ]
    }

    fn entries_mut(&mut self) -> [(&'static str, &mut u64); 24] {
        [
            ("delay.mining_events", &mut self.mining_events),
            ("delay.thinned_events", &mut self.thinned_events),
            ("delay.deliveries", &mut self.deliveries),
            ("delay.duplicate_deliveries", &mut self.duplicate_deliveries),
            ("delay.drops", &mut self.drops),
            ("delay.regossip_attempts", &mut self.regossip_attempts),
            ("delay.partition_stalls", &mut self.partition_stalls),
            ("delay.partition_heals", &mut self.partition_heals),
            ("delay.crash_misses", &mut self.crash_misses),
            ("delay.crash_resyncs", &mut self.crash_resyncs),
            ("delay.forced_adopts", &mut self.forced_adopts),
            ("delay.adopts", &mut self.adopts),
            ("delay.overrides", &mut self.overrides),
            ("delay.matches", &mut self.matches),
            ("delay.released_blocks", &mut self.released_blocks),
            ("delay.orphan_blocks", &mut self.orphan_blocks),
            ("delay.gossip_sends", &mut self.gossip_sends),
            ("delay.gossip_dedup_drops", &mut self.gossip_dedup_drops),
            ("delay.gossip_loss_retries", &mut self.gossip_loss_retries),
            ("delay.gossip_unreachable", &mut self.gossip_unreachable),
            ("delay.gossip_hops_1", &mut self.gossip_hops_1),
            ("delay.gossip_hops_2", &mut self.gossip_hops_2),
            ("delay.gossip_hops_3", &mut self.gossip_hops_3),
            ("delay.gossip_hops_4_plus", &mut self.gossip_hops_4_plus),
        ]
    }

    /// Fold the totals into a telemetry shard under the `delay.` keys,
    /// plus the per-hop delivery histogram (`delay.gossip_hops`) rebuilt
    /// from its deterministic bucket counters.
    pub fn record_into(&self, shard: &mut seleth_obs::TelemetryShard) {
        for (key, value) in self.entries() {
            shard.add(key, value);
        }
        for (hops, n) in [
            (1u64, self.gossip_hops_1),
            (2, self.gossip_hops_2),
            (3, self.gossip_hops_3),
            (4, self.gossip_hops_4_plus),
        ] {
            shard.observe_n("delay.gossip_hops", hops, n);
        }
    }
}

/// Graph-propagation state of a run ([`PropagationModel::Graph`]): the
/// topology plus the per-(block, receiver) arrival surcharges its gossip
/// schedule produced.
#[derive(Debug)]
struct GraphNet {
    topology: Arc<Topology>,
    /// Flattened `[block_index * miners + receiver]` queue surcharges:
    /// `arrival - delay` for cross-miner deliveries, `0.0` for the
    /// producer's own view (its frontier adopts the block on the shared
    /// schedule, exactly like the uniform model — instant self-visibility
    /// comes from the pending self-scan), [`f64::INFINITY`] while a block
    /// is withheld or unreachable.
    extras: Vec<f64>,
}

impl GraphNet {
    /// The surcharge of `block` toward `receiver` (`INFINITY` when the
    /// block was never released or never reaches the receiver).
    fn extra(&self, block: usize, miners: usize, receiver: usize) -> f64 {
        self.extras
            .get(block * miners + receiver)
            .copied()
            .unwrap_or(f64::INFINITY)
    }
}

/// The delay-study simulator.
#[derive(Debug)]
pub struct DelaySimulation {
    config: DelayConfig,
    rng: ChaCha12Rng,
    tree: BlockTree,
    /// Release time per block (`f64::INFINITY` while withheld); visible to
    /// non-producers at `+delay`.
    pub_time: Vec<f64>,
    /// Public frontier views (always at least the shared view 0; one per
    /// partition group under a partitioned fault plan).
    views: Vec<PublicView>,
    strategists: Vec<Strategist>,
    /// The fault plan's crash schedule (inert without crash faults).
    crashes: CrashTimeline,
    /// Fast-path flags hoisted from the plan: with all three false every
    /// fault branch is skipped and the run is bit-identical to the
    /// fault-unaware engine.
    link_faults: bool,
    crash_faults: bool,
    partition_faults: bool,
    now: f64,
    /// Deterministic event counters (no RNG interaction; see
    /// [`DelayCounters`]).
    counters: DelayCounters,
    /// Whether a partition window was active at the last mining event
    /// (tracks active → healed transitions for `partition_heals`).
    partition_open: bool,
    /// Optional flight recorder ([`DelaySimulation::attach_events`]);
    /// `None` (the default) keeps every instrumentation site one branch.
    events: Option<Arc<EventLog>>,
    /// Graph-propagation state; `None` under the uniform model (every
    /// graph branch is then one predictable-false test).
    graph: Option<GraphNet>,
}

/// Outcome of a delay run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayReport {
    /// Hash shares the run used.
    pub shares: Vec<f64>,
    /// Per-miner accounting.
    pub report: accounting::RewardReport,
    /// Deterministic event counters of the run.
    pub counters: DelayCounters,
}

impl DelaySimulation {
    /// Set up a run.
    pub fn new(config: DelayConfig) -> Self {
        let tree = BlockTree::new();
        let rng = ChaCha12Rng::seed_from_u64(config.seed());
        let genesis = tree.genesis();
        let strategists = config
            .strategies()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                MinerStrategy::Honest => None,
                MinerStrategy::Table(table) => Some(Strategist {
                    miner: MinerId(i as u32),
                    table: Arc::clone(table),
                    fork_base: genesis,
                    private: Vec::new(),
                    published_count: 0,
                    best_heard: genesis,
                    h: 0,
                    fork: Fork::Irrelevant,
                    match_d: 0,
                    inbox: VecDeque::new(),
                    crashed: false,
                }),
            })
            .collect();
        let graph = match config.propagation() {
            PropagationModel::Uniform => None,
            PropagationModel::Graph(topology) => Some(GraphNet {
                topology: Arc::clone(topology),
                extras: Vec::new(),
            }),
        };
        let plan = config.faults();
        // Uniform mode: the shared view 0 plus one view per partition
        // group. Graph mode: every miner has its own frontier (view
        // index = miner index) because arrival times differ per receiver;
        // partitions then act as timed graph cuts over the same views.
        let view_count = if graph.is_some() {
            config.shares().len()
        } else {
            plan.view_count()
        };
        let views = (0..view_count)
            .map(|_| PublicView {
                best: genesis,
                race: None,
                pending: VecDeque::new(),
            })
            .collect();
        let crashes = CrashTimeline::new(plan, config.shares().len());
        let (link_faults, crash_faults, partition_faults) = (
            plan.has_link_faults(),
            plan.has_crashes(),
            plan.has_partitions(),
        );
        DelaySimulation {
            config,
            rng,
            tree,
            pub_time: vec![f64::NEG_INFINITY], // genesis: always visible
            views,
            strategists,
            crashes,
            link_faults,
            crash_faults,
            partition_faults,
            now: 0.0,
            counters: DelayCounters::default(),
            partition_open: false,
            events: None,
            graph,
        }
    }

    /// Attach a flight recorder: every mining event, hear, release, policy
    /// decision and fault-coin outcome is recorded as a canonical
    /// [`EventKind`] event. Recording only *reads* simulator state (never
    /// the RNG), so an attached log cannot change a run's results — the
    /// property the recording-enabled bit-identity gate in
    /// `tests/flight_recorder.rs` asserts.
    pub fn attach_events(&mut self, log: Arc<EventLog>) {
        self.events = Some(log);
    }

    /// Detach the flight recorder, restoring the zero-overhead path.
    pub fn detach_events(&mut self) -> Option<Arc<EventLog>> {
        self.events.take()
    }

    /// Run to the block budget and account the tree.
    ///
    /// Finalization mirrors the engine exactly: every strategic miner
    /// releases the remaining private blocks of its *live* epoch (what a
    /// pool does when it stops attacking) before the canonical chain is
    /// chosen, while branches abandoned by earlier adopts stay withheld.
    /// As in the engine, the closing fork choice is publication-blind —
    /// an abandoned branch the public chain has not yet overtaken when
    /// the budget expires can still win `longest_chain`. That end-of-run
    /// boundary effect is bounded by a single truncation length of
    /// blocks per run, is shared bit-for-bit with the engine's
    /// `PoolStrategy::Table` finalization (which the zero-delay
    /// cross-validation in `tests/delay_study.rs` relies on), and washes
    /// out in the multi-run study averages.
    pub fn run(mut self) -> DelayReport {
        for _ in 0..self.config.blocks {
            self.step();
        }
        for i in 0..self.strategists.len() {
            let pending: Vec<BlockId> = {
                let s = &mut self.strategists[i];
                s.private.drain(s.published_count..).collect()
            };
            for b in pending {
                self.release(b, self.now, self.strategists[i].miner);
            }
        }
        let chain = longest_chain(&self.tree, TieBreak::FirstSeen);
        let report = accounting::account(&self.tree, &chain, &self.config.schedule);
        self.counters.orphan_blocks = report.uncle_count + report.stale_count;
        DelayReport {
            shares: self.config.shares.clone(),
            report,
            counters: self.counters,
        }
    }

    fn step(&mut self) {
        // Exponential inter-arrival; the winner is share-weighted.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        self.now += -self.config.interval * u.ln();
        let miner = self.pick_miner();

        if self.partition_faults {
            let open = self.config.faults.active_partition(self.now).is_some();
            if self.partition_open && !open {
                self.counters.partition_heals += 1;
            }
            self.partition_open = open;
        }

        // Deliver everything that reached a strategic miner before this
        // mining event (their decisions — and therefore their release
        // timestamps — happen at hear time, not at the next block).
        self.deliver_to_strategists();
        // Promote fully propagated blocks into the public frontier views.
        self.promote_public();

        match self.strategists.iter().position(|s| s.miner == miner) {
            Some(i) => {
                // A crashed miner's hash power drops out of the Poisson
                // race: the event slot produces no block (thinning — the
                // arrival process stays exact for the remaining power).
                if self.strategist_down(i, self.now) {
                    self.counters.thinned_events += 1;
                    record_event(
                        &self.events,
                        EventKind::Thinned,
                        miner.0,
                        0,
                        self.now.to_bits(),
                    );
                    return;
                }
                self.counters.mining_events += 1;
                self.strategic_mines(i)
            }
            None => {
                if self.crash_faults && self.crashes.is_down(miner.0 as usize, self.now) {
                    self.counters.thinned_events += 1;
                    record_event(
                        &self.events,
                        EventKind::Thinned,
                        miner.0,
                        0,
                        self.now.to_bits(),
                    );
                    return;
                }
                self.counters.mining_events += 1;
                self.honest_mines(miner)
            }
        }
    }

    fn pick_miner(&mut self) -> MinerId {
        let x: f64 = self.rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, share) in self.config.shares.iter().enumerate() {
            acc += share;
            if x < acc {
                return MinerId(i as u32);
            }
        }
        MinerId(self.config.shares.len() as u32 - 1)
    }

    /// `true` if the block was mined by a policy-driven miner.
    fn is_strategic_block(&self, id: BlockId) -> bool {
        let m = self.tree.block(id).miner().0 as usize;
        self.config
            .strategies
            .get(m)
            .is_some_and(MinerStrategy::is_strategic)
    }

    /// Release a withheld block at time `t`: it enters every public
    /// view's propagation pipeline and every other strategic miner's
    /// inbox, each link drawing its own reorder jitter from the fault
    /// plan (exactly `0.0` without link faults).
    fn release(&mut self, id: BlockId, t: f64, producer: MinerId) {
        if self.pub_time[id.index()] < f64::INFINITY {
            return; // already out (e.g. a matched prefix being overridden)
        }
        self.counters.released_blocks += 1;
        record_event(
            &self.events,
            EventKind::Release,
            producer.0,
            id.index() as u64,
            t.to_bits(),
        );
        self.pub_time[id.index()] = t;
        let block = id.index() as u64;
        // Graph mode: one gossip propagation per release. Per-receiver
        // arrivals fold into the queues' `extra` surcharge relative to
        // the base delay: a complete/uniform topology yields exactly
        // `0.0` for every pair (`latency - delay` on bitwise-equal
        // values), which keeps every downstream comparison the same
        // operation as under the uniform model. The schedule is a pure
        // function of (topology, producer, block) — never the sim RNG.
        if self.graph.is_some() {
            self.gossip_release(id, producer);
        }
        for v in 0..self.views.len() {
            let mut extra = match &self.graph {
                // The producer's own view keeps the shared schedule
                // (extra 0.0, stored as such by gossip_release).
                Some(net) => net.extra(id.index(), self.config.shares.len(), v),
                None => 0.0,
            };
            if !extra.is_finite() {
                continue; // the graph never delivers it to this miner
            }
            if self.link_faults {
                extra += self
                    .config
                    .faults
                    .delivery_jitter(block, view_receiver(v), 0);
            }
            enqueue(
                &mut self.views[v].pending,
                &self.pub_time,
                Pending::first(id, extra),
            );
        }
        let miners = self.config.shares.len();
        let link_faults = self.link_faults;
        let Self {
            strategists,
            graph,
            config,
            pub_time,
            ..
        } = self;
        let plan = &config.faults;
        for s in strategists.iter_mut() {
            if s.miner != producer {
                let mut extra = match graph {
                    Some(net) => net.extra(id.index(), miners, s.miner.0 as usize),
                    None => 0.0,
                };
                if !extra.is_finite() {
                    continue;
                }
                if link_faults {
                    extra += plan.delivery_jitter(block, s.miner.0 as u64, 0);
                }
                enqueue(&mut s.inbox, pub_time, Pending::first(id, extra));
            }
        }
    }

    /// Graph-mode half of [`DelaySimulation::release`]: run the gossip
    /// schedule for one released block, store the per-receiver surcharges,
    /// count edge-level activity, and (with a recorder attached) emit the
    /// per-receiver `EdgeDelivery`/`RelayHop` events.
    fn gossip_release(&mut self, id: BlockId, producer: MinerId) {
        let miners = self.config.shares.len();
        let src = producer.0 as usize;
        let block = id.index() as u64;
        let prop = {
            let net = self.graph.as_ref().expect("caller checked graph mode");
            net.topology.propagate(src, block)
        };
        self.counters.gossip_sends += prop.stats.sends;
        self.counters.gossip_dedup_drops += prop.stats.dedup_drops;
        self.counters.gossip_loss_retries += prop.stats.loss_retries;
        for (r, (&arrival, &hops)) in prop.arrival.iter().zip(&prop.hops).enumerate() {
            if r == src {
                continue;
            }
            if !arrival.is_finite() {
                self.counters.gossip_unreachable += 1;
                continue;
            }
            match hops {
                0 | 1 => self.counters.gossip_hops_1 += 1,
                2 => self.counters.gossip_hops_2 += 1,
                3 => self.counters.gossip_hops_3 += 1,
                _ => self.counters.gossip_hops_4_plus += 1,
            }
        }
        if self.events.is_some() {
            for (r, (&arrival, &hops)) in prop.arrival.iter().zip(&prop.hops).enumerate() {
                if r == src || !arrival.is_finite() {
                    continue;
                }
                record_event(
                    &self.events,
                    EventKind::EdgeDelivery,
                    r as u32,
                    block,
                    arrival.to_bits(),
                );
                if hops >= 2 {
                    record_event(
                        &self.events,
                        EventKind::RelayHop,
                        r as u32,
                        block,
                        u64::from(hops),
                    );
                }
            }
        }
        let delay = self.config.delay;
        let net = self.graph.as_mut().expect("caller checked graph mode");
        let base = id.index() * miners;
        if net.extras.len() < base + miners {
            net.extras.resize(base + miners, f64::INFINITY);
        }
        for (r, &arrival) in prop.arrival.iter().enumerate() {
            net.extras[base + r] = if r == src { 0.0 } else { arrival - delay };
        }
    }

    /// Promote fully propagated blocks into the shared honest frontier,
    /// tracking races at the frontier height: strategic-vs-honest ties
    /// (split by `tie_gamma`) and — with several concurrent strategists —
    /// ties between two *rival* strategists' tips (split evenly, since the
    /// network model's γ is defined against an honest incumbent and
    /// neither attacker controls the other's propagation).
    fn promote_public(&mut self) {
        let horizon = self.now - self.config.delay;
        for v in 0..self.views.len() {
            self.promote_view(v, horizon);
        }
    }

    /// Drain view `v`'s pipeline up to the propagation horizon, running
    /// each non-duplicate delivery through the fault pipeline first: a
    /// partition stall or a lost gossip re-enqueues the entry with capped
    /// exponential backoff (plus fresh jitter); a duplication coin adds an
    /// inert second copy at the same due time.
    fn promote_view(&mut self, v: usize, horizon: f64) {
        while let Some(&p) = self.views[v].pending.front() {
            if self.pub_time[p.block.index()] + p.extra > horizon {
                break;
            }
            self.views[v].pending.pop_front();
            let front = p.block;
            if p.dup {
                self.counters.duplicate_deliveries += 1;
            }
            if !p.dup && (self.link_faults || self.partition_faults) {
                let plan = &self.config.faults;
                let block = front.index() as u64;
                let receiver = view_receiver(v);
                // The view's group hears the block when it finishes
                // propagating; a partition active *then* that uses this
                // group but assigns the producer elsewhere stalls it.
                let arrival = self.pub_time[front.index()] + self.config.delay + p.extra;
                let producer = self.tree.block(front).miner().0 as usize;
                // Graph mode: views are per-miner, so a partition stalls
                // the delivery exactly when it cuts producer from the
                // view's miner — the graph-cut reading of the same timed
                // group vectors.
                let stalled = self.partition_faults
                    && if self.graph.is_some() {
                        plan.cross_blocked(producer, v, arrival)
                    } else {
                        plan.active_partition(arrival)
                            .is_some_and(|part| part.uses_group(v) && part.groups[producer] != v)
                    };
                if stalled || (self.link_faults && plan.drops(block, receiver, p.attempt)) {
                    let retry = Pending {
                        block: front,
                        extra: p.extra
                            + plan.retry_backoff(p.attempt)
                            + plan.delivery_jitter(block, receiver, p.attempt + 1),
                        attempt: p.attempt + 1,
                        dup: false,
                    };
                    if stalled {
                        self.counters.partition_stalls += 1;
                        record_event(
                            &self.events,
                            EventKind::FaultStall,
                            v as u32,
                            block,
                            u64::from(p.attempt),
                        );
                    } else {
                        self.counters.drops += 1;
                        record_event(
                            &self.events,
                            EventKind::FaultDrop,
                            v as u32,
                            block,
                            u64::from(p.attempt),
                        );
                    }
                    self.counters.regossip_attempts += 1;
                    enqueue(&mut self.views[v].pending, &self.pub_time, retry);
                    continue;
                }
                if self.link_faults && plan.duplicates(block, receiver, p.attempt) {
                    record_event(
                        &self.events,
                        EventKind::FaultDuplicate,
                        v as u32,
                        block,
                        u64::from(p.attempt),
                    );
                    enqueue(
                        &mut self.views[v].pending,
                        &self.pub_time,
                        Pending { dup: true, ..p },
                    );
                }
            }
            self.counters.deliveries += 1;
            let h = self.tree.height(front);
            let best = self.views[v].best;
            let best_h = self.tree.height(best);
            if h > best_h {
                self.views[v].best = front;
                self.views[v].race = None;
            } else if h == best_h && front != best && self.views[v].race.is_none() {
                let front_strategic = self.is_strategic_block(front);
                let best_strategic = self.is_strategic_block(best);
                let rivals = front_strategic
                    && best_strategic
                    && self.tree.block(front).miner() != self.tree.block(best).miner();
                if front_strategic != best_strategic || rivals {
                    self.views[v].race = Some(front);
                }
            }
        }
    }

    /// Process every pending hear event up to `self.now`, globally in
    /// chronological order (strategists' reactions can release blocks that
    /// other strategists then hear).
    ///
    /// *Simultaneous* hear events — several strategists hearing blocks
    /// released at the same instant, the common case when rivals react to
    /// the same honest block at zero delay — are processed in uniformly
    /// random order. A fixed index order would make one strategist
    /// structurally the first reactor at every tie, which measurably
    /// biases otherwise-symmetric matchups (≈ 0.06 revenue between two
    /// identical SM1 miners at γ = 0.5). Runs with at most one strategist
    /// never tie, so they draw no extra randomness and stay bit-identical
    /// to the single-strategist semantics.
    fn deliver_to_strategists(&mut self) {
        // Reused across loop iterations; non-empty only while several
        // strategists' next hear events coincide.
        let mut tied: Vec<usize> = Vec::new();
        loop {
            let mut earliest: Option<f64> = None;
            tied.clear();
            for (i, s) in self.strategists.iter().enumerate() {
                if let Some(&p) = s.inbox.front() {
                    let t = self.pub_time[p.block.index()] + self.config.delay + p.extra;
                    if t > self.now {
                        continue;
                    }
                    match earliest {
                        Some(bt) if t > bt => {}
                        Some(bt) if t == bt => tied.push(i),
                        _ => {
                            earliest = Some(t);
                            tied.clear();
                            tied.push(i);
                        }
                    }
                }
            }
            let Some(t) = earliest else { break };
            let chosen = if tied.len() > 1 {
                tied[self.rng.gen_range(0..tied.len())]
            } else {
                tied[0]
            };
            let p = self.strategists[chosen].inbox.pop_front().expect("peeked");
            // A down receiver simply misses the gossip; re-gossip retries
            // (below, for fault plans with link faults) or the forced-adopt
            // resync on recovery pick the chain back up.
            if self.crash_faults && self.strategist_down(chosen, t) {
                self.counters.crash_misses += 1;
                record_event(
                    &self.events,
                    EventKind::CrashMiss,
                    self.strategists[chosen].miner.0,
                    p.block.index() as u64,
                    t.to_bits(),
                );
                continue;
            }
            if p.dup {
                self.counters.duplicate_deliveries += 1;
            }
            if !p.dup && (self.link_faults || self.partition_faults) {
                let plan = &self.config.faults;
                let block = p.block.index() as u64;
                let receiver = self.strategists[chosen].miner.0 as u64;
                let producer = self.tree.block(p.block).miner().0 as usize;
                let stalled =
                    self.partition_faults && plan.cross_blocked(producer, receiver as usize, t);
                if stalled || (self.link_faults && plan.drops(block, receiver, p.attempt)) {
                    let retry = Pending {
                        block: p.block,
                        extra: p.extra
                            + plan.retry_backoff(p.attempt)
                            + plan.delivery_jitter(block, receiver, p.attempt + 1),
                        attempt: p.attempt + 1,
                        dup: false,
                    };
                    if stalled {
                        self.counters.partition_stalls += 1;
                        record_event(
                            &self.events,
                            EventKind::FaultStall,
                            receiver as u32,
                            block,
                            u64::from(p.attempt),
                        );
                    } else {
                        self.counters.drops += 1;
                        record_event(
                            &self.events,
                            EventKind::FaultDrop,
                            receiver as u32,
                            block,
                            u64::from(p.attempt),
                        );
                    }
                    self.counters.regossip_attempts += 1;
                    enqueue(&mut self.strategists[chosen].inbox, &self.pub_time, retry);
                    continue;
                }
                if self.link_faults && plan.duplicates(block, receiver, p.attempt) {
                    record_event(
                        &self.events,
                        EventKind::FaultDuplicate,
                        receiver as u32,
                        block,
                        u64::from(p.attempt),
                    );
                    enqueue(
                        &mut self.strategists[chosen].inbox,
                        &self.pub_time,
                        Pending { dup: true, ..p },
                    );
                }
            }
            self.counters.deliveries += 1;
            self.hear(chosen, p.block, t);
        }
    }

    /// Crash gate for strategist `i` at event time `t`: `true` while the
    /// miner is down (the event is lost). The first gated event marks the
    /// miner crashed; the first event after recovery resynchronizes it via
    /// the forced-adopt path before normal processing resumes.
    fn strategist_down(&mut self, i: usize, t: f64) -> bool {
        if !self.crash_faults {
            return false;
        }
        let m = self.strategists[i].miner.0 as usize;
        if self.crashes.is_down(m, t) {
            self.strategists[i].crashed = true;
            return true;
        }
        if self.strategists[i].crashed {
            self.resync_strategist(i, t);
            self.strategists[i].crashed = false;
        }
        false
    }

    /// A recovering strategist rejoins the network the way a restarted
    /// node does: it syncs to the public tip its group currently sees and
    /// concedes whatever private fork it held before the crash — the
    /// forced-adopt path, identical to losing an epoch.
    fn resync_strategist(&mut self, i: usize, t: f64) {
        self.counters.crash_resyncs += 1;
        record_event(
            &self.events,
            EventKind::CrashResync,
            self.strategists[i].miner.0,
            0,
            t.to_bits(),
        );
        let m = self.strategists[i].miner.0 as usize;
        let g = if self.graph.is_some() {
            m // per-miner views in graph mode
        } else if self.partition_faults {
            self.config.faults.group_of(m, t)
        } else {
            0
        };
        let tip = self.views[g].best;
        let Self {
            tree, strategists, ..
        } = self;
        let s = &mut strategists[i];
        if tree.height(tip) > tree.height(s.fork_base) {
            s.fork_base = tip;
        }
        if tree.height(tip) > tree.height(s.best_heard) {
            s.best_heard = tip;
        }
        s.private.clear();
        s.published_count = 0;
        s.h = 0;
        s.fork = Fork::Irrelevant;
        s.match_d = 0;
    }

    /// Strategic miner `i` hears `block` at time `t`: update its private
    /// view of the `(a, h, fork, match_d)` state and consult the table.
    fn hear(&mut self, i: usize, block: BlockId, t: f64) {
        record_event(
            &self.events,
            EventKind::Hear,
            self.strategists[i].miner.0,
            block.index() as u64,
            t.to_bits(),
        );
        let Self {
            tree,
            strategists,
            counters,
            events,
            ..
        } = self;
        let s = &mut strategists[i];
        // Only a new best tip changes the MDP state; natural-fork losers
        // at or below the known height carry no decision weight.
        if tree.height(block) <= tree.height(s.best_heard) {
            return;
        }
        s.best_heard = block;
        let base_h = tree.height(s.fork_base);
        let tip_h = tree.height(block);
        if tip_h <= base_h {
            return;
        }
        let anchor = tree.ancestor_at(block, base_h).expect("height checked");
        if anchor == s.fork_base {
            // How much of our released prefix the heard chain builds on.
            let mut k = 0usize;
            while k < s.published_count
                && tree.ancestor_at(block, base_h + k as u64 + 1) == Some(s.private[k])
            {
                k += 1;
            }
            if k > 0 {
                // The network adopted our published prefix (the MDP's γβ
                // outcome): those blocks are settled wins; rebase on them.
                s.fork_base = s.private[k - 1];
                s.private.drain(..k);
                s.published_count -= k;
                if s.published_count == 0 {
                    // No public prefix left in the new epoch.
                    s.match_d = 0;
                }
            }
            s.h = tip_h - tree.height(s.fork_base);
            s.fork = Fork::Relevant;
        } else {
            // A branch that forked below our epoch (e.g. honest blocks
            // released before they heard an override) — outside the MDP's
            // state abstraction. If it has caught up with the private
            // chain the epoch is lost: forced adopt. While we are still
            // strictly ahead, ignore it.
            if tip_h >= base_h + s.private.len() as u64 {
                counters.forced_adopts += 1;
                record_event(
                    events,
                    EventKind::ForcedAdopt,
                    s.miner.0,
                    block.index() as u64,
                    tip_h,
                );
                s.fork_base = block;
                s.private.clear();
                s.published_count = 0;
                s.h = 0;
                s.fork = Fork::Irrelevant;
                s.match_d = 0;
            }
            return;
        }
        self.consult(i, t);
    }

    /// Consult the table at the live state; decisions (and the release
    /// timestamps they produce) happen at event time `t`.
    fn consult(&mut self, i: usize, t: f64) {
        let s = &self.strategists[i];
        let a = u32::try_from(s.private.len()).unwrap_or(u32::MAX);
        let h = u32::try_from(s.h).unwrap_or(u32::MAX);
        let miner = s.miner.0;
        match s.table.decide(a, h, s.fork, s.match_d) {
            Action::Wait => {}
            Action::Adopt => {
                self.counters.adopts += 1;
                record_event(
                    &self.events,
                    EventKind::Adopt,
                    miner,
                    u64::from(a),
                    u64::from(h),
                );
                self.strategic_adopt(i);
            }
            Action::Override => {
                self.counters.overrides += 1;
                record_event(
                    &self.events,
                    EventKind::Override,
                    miner,
                    u64::from(a),
                    u64::from(h),
                );
                self.strategic_override(i, t);
            }
            Action::Match => {
                self.counters.matches += 1;
                record_event(
                    &self.events,
                    EventKind::Match,
                    miner,
                    u64::from(a),
                    u64::from(h),
                );
                self.strategic_match(i, t);
            }
        }
    }

    /// *Adopt*: concede the epoch — mine on the best heard tip, abandoning
    /// unreleased private blocks (they settle as stale).
    fn strategic_adopt(&mut self, i: usize) {
        let s = &mut self.strategists[i];
        if self.tree.height(s.best_heard) > self.tree.height(s.fork_base) {
            s.fork_base = s.best_heard;
        }
        s.private.clear();
        s.published_count = 0;
        s.h = 0;
        s.fork = Fork::Irrelevant;
        s.match_d = 0;
    }

    /// *Override*: release the first `h + 1` private blocks, outracing the
    /// heard public branch; the fork base moves to the last released block.
    fn strategic_override(&mut self, i: usize, t: f64) {
        let (to_release, producer) = {
            let s = &mut self.strategists[i];
            let h = usize::try_from(s.h).unwrap_or(usize::MAX);
            debug_assert!(s.private.len() > h, "override needs a > h");
            let released: Vec<BlockId> = s.private.drain(..=h).collect();
            s.fork_base = *released.last().expect("h + 1 >= 1 blocks");
            s.published_count = s.published_count.saturating_sub(h + 1);
            s.h = 0;
            s.fork = Fork::Irrelevant;
            s.match_d = 0;
            (released, s.miner)
        };
        for b in to_release {
            self.release(b, t, producer);
        }
    }

    /// *Match*: release a private prefix of length `h`, tying the heard
    /// public branch; honest miners split by `tie_gamma` once it
    /// propagates.
    fn strategic_match(&mut self, i: usize, t: f64) {
        let (to_release, producer) = {
            let s = &mut self.strategists[i];
            let h = usize::try_from(s.h).unwrap_or(usize::MAX);
            debug_assert!(s.private.len() >= h && h >= 1);
            let released: Vec<BlockId> = s.private[s.published_count.min(h)..h].to_vec();
            s.published_count = h;
            s.fork = Fork::Active;
            // The epoch's first match fixes the prefix's reference
            // distance (the MDP's match_d); re-matches keep it.
            if s.match_d == 0 {
                s.match_d = StateSpace::first_match_d(u32::try_from(s.h).unwrap_or(u32::MAX));
            }
            (released, s.miner)
        };
        for b in to_release {
            self.release(b, t, producer);
        }
    }

    /// A strategic miner mines: always privately (releasing is the
    /// policy's job), on its own fork; then a decision point.
    fn strategic_mines(&mut self, i: usize) {
        let (parent, miner) = {
            let s = &self.strategists[i];
            (s.private.last().copied().unwrap_or(s.fork_base), s.miner)
        };
        let refs = self.collect_refs(parent, miner);
        let id = self
            .tree
            .add_block(parent, miner, &refs)
            .expect("engine-created ids");
        record_event(
            &self.events,
            EventKind::Mine,
            miner.0,
            id.index() as u64,
            self.tree.height(id),
        );
        self.pub_time.push(f64::INFINITY);
        let s = &mut self.strategists[i];
        s.private.push(id);
        if s.fork != Fork::Active {
            s.fork = Fork::Irrelevant;
        }
        self.consult(i, self.now);
    }

    /// An honest miner mines on the best tip it can see and releases the
    /// block immediately.
    fn honest_mines(&mut self, miner: MinerId) {
        // The miner's public frontier (its partition group's view; the
        // shared view 0 outside partitions), with a live race:
        // strategic-vs-honest ties split by tie_gamma, rival-strategist
        // ties split evenly...
        let g = if self.graph.is_some() {
            miner.0 as usize // the miner's own frontier in graph mode
        } else if self.partition_faults {
            self.config.faults.group_of(miner.0 as usize, self.now)
        } else {
            0
        };
        let view = &self.views[g];
        let mut tip = view.best;
        if let Some(contender) = view.race {
            let incumbent_strategic = self.is_strategic_block(view.best);
            tip = if incumbent_strategic && self.is_strategic_block(contender) {
                // Two different strategists tying (promote_view only
                // records same-side races across distinct miners): γ is
                // defined against an honest tip, so neither side earns it.
                if self.rng.gen_bool(0.5) {
                    view.best
                } else {
                    contender
                }
            } else {
                let (strategic, honest) = if incumbent_strategic {
                    (view.best, contender)
                } else {
                    (contender, view.best)
                };
                if self.rng.gen_bool(self.config.tie_gamma) {
                    strategic
                } else {
                    honest
                }
            };
        }
        // ...plus any block the miner produced itself that is still
        // propagating.
        for p in &self.views[g].pending {
            let b = p.block;
            if self.tree.block(b).miner() == miner && self.tree.height(b) > self.tree.height(tip) {
                tip = b;
            }
        }

        let refs = self.collect_refs(tip, miner);
        let id = self
            .tree
            .add_block(tip, miner, &refs)
            .expect("engine-created ids");
        record_event(
            &self.events,
            EventKind::Mine,
            miner.0,
            id.index() as u64,
            self.tree.height(id),
        );
        self.pub_time.push(f64::INFINITY);
        self.release(id, self.now, miner);
    }

    /// Ethereum uncle referencing against the blocks *visible to the
    /// miner*: released and propagated, or released and self-mined.
    /// Withheld blocks are invisible to everyone — abandoning a private
    /// branch leaves plain stales, exactly like the engine.
    fn collect_refs(&self, parent: BlockId, miner: MinerId) -> Vec<BlockId> {
        let schedule = &self.config.schedule;
        let max_d = schedule.max_uncle_distance();
        if max_d == 0 {
            return Vec::new();
        }
        let cap = schedule.max_uncles_per_block().unwrap_or(usize::MAX);
        if cap == 0 {
            return Vec::new();
        }
        let new_height = self.tree.height(parent) + 1;
        let horizon = self.now - self.config.delay;

        let mut ancestors = Vec::with_capacity(max_d as usize + 1);
        let mut cur = parent;
        for _ in 0..=max_d {
            ancestors.push(cur);
            match self.tree.block(cur).parent() {
                Some(p) => cur = p,
                None => break,
            }
        }
        let on_chain: std::collections::HashSet<BlockId> = ancestors.iter().copied().collect();
        let referenced: std::collections::HashSet<BlockId> = ancestors
            .iter()
            .flat_map(|&a| self.tree.block(a).uncle_refs().iter().copied())
            .collect();

        let mut refs = Vec::new();
        'outer: for &a in &ancestors[1..] {
            if new_height - self.tree.height(a) > max_d + 1 {
                break;
            }
            for &u in self.tree.children(a) {
                let released = self.pub_time[u.index()] < f64::INFINITY;
                // Graph mode: visibility is per-pair — the block must
                // have finished its graph path *to this miner* by the
                // horizon. The uniform expression is untouched (the
                // complete/uniform surcharge is exactly 0.0, but keeping
                // the original comparison makes the bit-identity claim
                // local to this line).
                let heard = match &self.graph {
                    Some(net) => {
                        self.pub_time[u.index()]
                            + net.extra(u.index(), self.config.shares.len(), miner.0 as usize)
                            <= horizon
                    }
                    None => self.pub_time[u.index()] <= horizon,
                };
                let propagated = heard
                    && (!self.partition_faults
                        || !self.config.faults.cross_blocked(
                            self.tree.block(u).miner().0 as usize,
                            miner.0 as usize,
                            self.now,
                        ));
                let visible = propagated || (released && self.tree.block(u).miner() == miner);
                if on_chain.contains(&u) || referenced.contains(&u) || !visible {
                    continue;
                }
                refs.push(u);
                if refs.len() >= cap {
                    break 'outer;
                }
            }
        }
        refs
    }
}

impl DelayReport {
    /// Rewards of miner `i`.
    pub fn miner(&self, i: usize) -> MinerRewards {
        self.report.miner(MinerId(i as u32))
    }

    /// Miner `i`'s share of all rewards paid.
    pub fn revenue_share(&self, i: usize) -> f64 {
        let total = self.report.total_reward();
        if total > 0.0 {
            self.miner(i).total() / total
        } else {
            0.0
        }
    }

    /// Miner `i`'s absolute revenue under the paper's `scenario`
    /// normalization: total reward per normalized block slot (regular
    /// blocks, or regular + uncle blocks) — the delay-world analogue of
    /// the engine's `SimReport::absolute_pool`, and the quantity
    /// comparable against an artifact's predicted ρ*. Under the Bitcoin
    /// schedule it coincides with [`DelayReport::revenue_share`].
    pub fn absolute_revenue(&self, i: usize, scenario: seleth_chain::Scenario) -> f64 {
        let r = self.report.regular_count as f64;
        let norm = match scenario {
            seleth_chain::Scenario::RegularRate => r,
            seleth_chain::Scenario::RegularPlusUncleRate => r + self.report.uncle_count as f64,
        };
        if norm > 0.0 {
            self.miner(i).total() / norm
        } else {
            0.0
        }
    }

    /// Fraction of miner `i`'s blocks that earned nothing (plain stale).
    pub fn stale_fraction(&self, i: usize) -> f64 {
        let m = self.miner(i);
        let mined = m.regular_blocks + m.uncle_blocks + m.stale_blocks;
        if mined == 0 {
            return 0.0;
        }
        m.stale_blocks as f64 / mined as f64
    }

    /// Miner `i`'s *advantage*: revenue share divided by hash share; 1.0
    /// is perfectly fair, above 1.0 means the miner profits from its size.
    pub fn advantage(&self, i: usize) -> f64 {
        self.revenue_share(i) / self.shares[i]
    }

    /// System-wide fraction of blocks that ended up off the main chain.
    pub fn orphan_rate(&self) -> f64 {
        let total = self.report.block_count().max(1) as f64;
        (self.report.uncle_count + self.report.stale_count) as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seleth_chain::Scenario;
    use seleth_mdp::RewardModel;

    fn run(shares: Vec<f64>, delay: f64, schedule: RewardSchedule, seed: u64) -> DelayReport {
        let config = DelayConfig::builder()
            .shares(shares)
            .delay(delay)
            .blocks(40_000)
            .seed(seed)
            .schedule(schedule)
            .build()
            .unwrap();
        DelaySimulation::new(config).run()
    }

    #[test]
    fn zero_delay_means_no_forks() {
        let r = run(vec![0.5, 0.3, 0.2], 0.0, RewardSchedule::ethereum(), 1);
        assert_eq!(r.orphan_rate(), 0.0);
        // Fair shares within sampling noise.
        for i in 0..3 {
            assert!(
                (r.advantage(i) - 1.0).abs() < 0.05,
                "miner {i}: {}",
                r.advantage(i)
            );
        }
    }

    #[test]
    fn delay_creates_orphans_at_ethereum_rates() {
        // delay/interval ≈ 0.46: a sizeable natural fork rate, like early
        // Ethereum's.
        let r = run(vec![0.25; 4], 6.0, RewardSchedule::ethereum(), 2);
        assert!(r.orphan_rate() > 0.05, "orphan rate {}", r.orphan_rate());
        assert!(r.orphan_rate() < 0.5);
        // Most orphans are referenced as uncles under unlimited refs.
        assert!(r.report.uncle_count > r.report.stale_count);
    }

    #[test]
    fn big_miners_orphan_less() {
        let r = run(
            vec![0.6, 0.1, 0.1, 0.1, 0.1],
            6.0,
            RewardSchedule::bitcoin(),
            3,
        );
        let big = r.stale_fraction(0);
        let small: f64 = (1..5).map(|i| r.stale_fraction(i)).sum::<f64>() / 4.0;
        assert!(
            big < small,
            "big miner stale {big:.4} should undercut small miners' {small:.4}"
        );
    }

    #[test]
    fn uncle_rewards_compress_the_size_advantage() {
        // The paper's Section VI premise: rewarding stale blocks reduces
        // the big miner's edge. Same seed, same tree dynamics — only the
        // reward schedule differs.
        let shares = vec![0.6, 0.1, 0.1, 0.1, 0.1];
        let btc = run(shares.clone(), 6.0, RewardSchedule::bitcoin(), 4);
        let eth = run(shares, 6.0, RewardSchedule::ethereum(), 4);
        let adv_btc = btc.advantage(0);
        let adv_eth = eth.advantage(0);
        assert!(adv_btc > 1.0, "without uncle rewards size pays: {adv_btc}");
        assert!(
            adv_eth < adv_btc,
            "uncle rewards must shrink the advantage: {adv_eth} vs {adv_btc}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(vec![0.5, 0.5], 4.0, RewardSchedule::ethereum(), 9);
        let b = run(vec![0.5, 0.5], 4.0, RewardSchedule::ethereum(), 9);
        assert_eq!(a.report.total_reward(), b.report.total_reward());
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            DelayConfig::builder().shares(vec![1.0]).build(),
            Err(SimError::NoHonestMiners)
        ));
        // Share vectors must be distributions — no silent renormalization.
        assert!(matches!(
            DelayConfig::builder().shares(vec![2.0, 6.0]).build(),
            Err(SimError::InvalidShares { total }) if (total - 8.0).abs() < 1e-12
        ));
        assert!(matches!(
            DelayConfig::builder().shares(vec![-0.2, 1.2]).build(),
            Err(SimError::InvalidShares { .. })
        ));
        assert!(matches!(
            DelayConfig::builder().shares(vec![f64::NAN, 0.5]).build(),
            Err(SimError::InvalidShares { .. })
        ));
        assert!(DelayConfig::builder()
            .shares(vec![0.25, 0.75])
            .build()
            .is_ok());
        assert!(DelayConfig::builder().delay(-1.0).build().is_err());
        assert!(DelayConfig::builder().blocks(0).build().is_err());
        assert!(matches!(
            DelayConfig::builder().tie_gamma(1.5).build(),
            Err(SimError::InvalidGamma { .. })
        ));
        // Strategy vectors must match the miner count.
        assert!(matches!(
            DelayConfig::builder()
                .shares(vec![0.5, 0.5])
                .strategies(vec![MinerStrategy::Honest; 3])
                .build(),
            Err(SimError::StrategyCount {
                miners: 2,
                strategies: 3
            })
        ));
        // pools helpers produce accepted splits.
        assert!(DelayConfig::builder()
            .shares(crate::pools::shares_with_strategist(0.3))
            .build()
            .is_ok());
    }

    fn strategic_run(
        table: PolicyTable,
        alpha: f64,
        gamma: f64,
        delay: f64,
        schedule: RewardSchedule,
        blocks: u64,
        seed: u64,
    ) -> DelayReport {
        let config = DelayConfig::builder()
            .shares(vec![alpha, 1.0 - alpha])
            .policy(0, table)
            .tie_gamma(gamma)
            .delay(delay)
            .blocks(blocks)
            .seed(seed)
            .schedule(schedule)
            .build()
            .unwrap();
        DelaySimulation::new(config).run()
    }

    #[test]
    fn strategic_runs_are_deterministic_per_seed() {
        let mk = |seed| {
            strategic_run(
                PolicyTable::honest(0.35, 0.5, 10),
                0.35,
                0.5,
                3.0,
                RewardSchedule::ethereum(),
                10_000,
                seed,
            )
        };
        let (a, b, c) = (mk(5), mk(5), mk(6));
        assert_eq!(a.report.total_reward(), b.report.total_reward());
        assert_eq!(a.miner(0).total(), b.miner(0).total());
        assert_ne!(a.report.total_reward(), c.report.total_reward());
    }

    #[test]
    fn honest_table_at_zero_delay_earns_fair_share() {
        let r = strategic_run(
            PolicyTable::honest(0.3, 0.0, 12),
            0.3,
            0.0,
            0.0,
            RewardSchedule::bitcoin(),
            40_000,
            7,
        );
        // Publishing every lead immediately at zero delay forks nothing.
        assert_eq!(r.orphan_rate(), 0.0);
        assert!(
            (r.revenue_share(0) - 0.3).abs() < 0.02,
            "honest playback share {}",
            r.revenue_share(0)
        );
    }

    /// A solved Bitcoin-model optimal table at `(α, γ)` — small truncation
    /// keeps unit-test solves cheap.
    fn solved_table(alpha: f64, gamma: f64) -> PolicyTable {
        let config =
            seleth_mdp::MdpConfig::new(alpha, gamma, RewardModel::Bitcoin).with_max_len(16);
        let solution = config.solve().expect("mdp solve");
        PolicyTable::from_solution(&config, &solution)
    }

    #[test]
    fn withholding_earns_more_than_fair_share_at_zero_delay() {
        // The solved optimal policy at α = 0.4, γ = 0 predicts ρ* ≈ 0.487;
        // its zero-delay replay must comfortably clear the fair share.
        let r = strategic_run(
            solved_table(0.4, 0.0),
            0.4,
            0.0,
            0.0,
            RewardSchedule::bitcoin(),
            60_000,
            11,
        );
        assert!(
            r.revenue_share(0) > 0.44,
            "withholding share {} should clear alpha 0.4",
            r.revenue_share(0)
        );
    }

    #[test]
    fn delay_degrades_the_strategic_edge() {
        // The tentpole claim, in miniature: the same optimal artifact earns
        // less once its overrides race a propagation delay (honest miners
        // keep extending the branch it tries to orphan until they hear it).
        let table = solved_table(0.4, 0.0);
        let fast = strategic_run(
            table.clone(),
            0.4,
            0.0,
            0.0,
            RewardSchedule::bitcoin(),
            60_000,
            13,
        );
        let slow = strategic_run(table, 0.4, 0.0, 9.0, RewardSchedule::bitcoin(), 60_000, 13);
        assert!(
            slow.revenue_share(0) < fast.revenue_share(0) - 0.01,
            "delay must cost the strategist: {} vs {}",
            slow.revenue_share(0),
            fast.revenue_share(0)
        );
    }

    #[test]
    fn corrupt_tables_degrade_to_adopt_without_panic() {
        // Override-everywhere is illegal half the time; match-everywhere
        // almost always; every prescription must resolve via the shared
        // PolicyTable::decide fallback, never a panic — including under
        // delay, where overrides can lose races.
        for (bad, seed) in [(Action::Override, 21u64), (Action::Match, 22)] {
            let table = PolicyTable::from_fn3(
                0.3,
                0.5,
                RewardModel::Bitcoin,
                Scenario::RegularRate,
                5,
                0.3,
                move |_, _, _| bad,
            );
            // The shared audit agrees these tables are corrupt — the same
            // judgement `decide` applies slot by slot during the replay.
            assert!(!table.is_legal_everywhere());
            let r = strategic_run(
                table,
                0.3,
                0.5,
                5.0,
                RewardSchedule::ethereum(),
                8_000,
                seed,
            );
            assert_eq!(r.report.block_count(), 8_000);
        }
    }

    #[test]
    fn out_of_truncation_states_force_adopt() {
        // An all-wait table truncated at 3: the private branch must be
        // conceded at the boundary, so the pool's stale blocks exist but
        // the run completes with full accounting.
        let table = PolicyTable::from_fn3(
            0.45,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            3,
            0.45,
            |_, _, _| Action::Wait,
        );
        let r = strategic_run(table, 0.45, 0.5, 2.0, RewardSchedule::bitcoin(), 10_000, 31);
        assert_eq!(r.report.block_count(), 10_000);
        assert!(
            r.miner(0).stale_blocks > 0,
            "forced adopts must abandon private blocks"
        );
    }

    /// A hand-written SM1 table in the MDP's state encoding (the richer
    /// parametric generators live upstream in `seleth-zoo`; this inline
    /// rule keeps the engine tests self-contained).
    fn sm1_table(alpha: f64, gamma: f64, max_len: u32) -> PolicyTable {
        PolicyTable::from_fn3(
            alpha,
            gamma,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            max_len,
            alpha,
            |a, h, fork| {
                if h > a {
                    Action::Adopt
                } else if a == h && a >= 1 {
                    if fork == Fork::Relevant {
                        Action::Match
                    } else {
                        Action::Wait
                    }
                } else if a == h + 1 && h >= 1 {
                    Action::Override
                } else {
                    Action::Wait
                }
            },
        )
    }

    #[test]
    fn two_strategists_attack_each_other() {
        // The multi-strategist matchup: two SM1 miners and one honest pool
        // in a single run. Each strategist must treat the rival's released
        // blocks as foreign chain, the run must complete with full
        // accounting, and results must stay seed-deterministic.
        let mk = |seed| {
            let config = DelayConfig::builder()
                .shares(vec![0.3, 0.3, 0.4])
                .policy(0, sm1_table(0.3, 0.5, 12))
                .policy(1, sm1_table(0.3, 0.5, 12))
                .tie_gamma(0.5)
                .delay(2.0)
                .blocks(30_000)
                .seed(seed)
                .schedule(RewardSchedule::bitcoin())
                .build()
                .unwrap();
            DelaySimulation::new(config).run()
        };
        let r = mk(17);
        assert_eq!(r.report.block_count(), 30_000);
        let total: f64 = (0..3).map(|i| r.revenue_share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        assert!(
            r.revenue_share(0) > 0.05 && r.revenue_share(1) > 0.05,
            "both strategists stay in the game: {} / {}",
            r.revenue_share(0),
            r.revenue_share(1)
        );
        let r2 = mk(17);
        assert_eq!(r.report.total_reward(), r2.report.total_reward());
        assert_eq!(r.miner(0).total(), r2.miner(0).total());
        assert_eq!(r.miner(1).total(), r2.miner(1).total());
    }

    #[test]
    fn rival_matchups_are_slot_symmetric() {
        // Two identical SM1 miners with identical shares must earn the
        // same revenue in distribution. Regression for the deliver-loop's
        // tie handling: a fixed processing order at simultaneous hear
        // events made one slot structurally the first reactor, worth a
        // reproducible ~0.06 revenue at γ = 0.5 — far outside the ~0.006
        // Monte-Carlo noise of this budget.
        let mut diffs = Vec::new();
        for seed in 0..6u64 {
            let config = DelayConfig::builder()
                .shares(vec![0.3, 0.3, 0.4])
                .policy(0, sm1_table(0.3, 0.5, 30))
                .policy(1, sm1_table(0.3, 0.5, 30))
                .tie_gamma(0.5)
                .delay(0.0)
                .blocks(30_000)
                .seed(seed)
                .schedule(RewardSchedule::bitcoin())
                .build()
                .unwrap();
            let r = DelaySimulation::new(config).run();
            diffs.push(r.revenue_share(1) - r.revenue_share(0));
        }
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        assert!(
            mean.abs() < 0.025,
            "slot asymmetry {mean:+.4} exceeds noise (diffs {diffs:?})"
        );
    }

    #[test]
    fn strategist_duopoly_without_honest_miners() {
        // Two table-driven miners and nobody else: an SM1 attacker against
        // a rival replaying the honest baseline table. The rival's
        // immediate releases feed the attacker's hear path; the attacker's
        // overrides arrive as foreign chain. (Two SM1s alone would be a
        // degenerate standoff — neither ever publishes without honest
        // blocks to react to.)
        let config = DelayConfig::builder()
            .shares(vec![0.35, 0.65])
            .policy(0, sm1_table(0.35, 0.0, 12))
            .policy(1, PolicyTable::honest(0.65, 0.0, 12))
            .tie_gamma(0.0)
            .delay(1.0)
            .blocks(20_000)
            .seed(23)
            .schedule(RewardSchedule::bitcoin())
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        assert_eq!(r.report.block_count(), 20_000);
        let total: f64 = (0..2).map(|i| r.revenue_share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        assert!(
            r.revenue_share(0) > 0.15 && r.revenue_share(1) > 0.3,
            "attacker and table-honest rival both earn: {} / {}",
            r.revenue_share(0),
            r.revenue_share(1)
        );
    }

    #[test]
    fn zero_hash_power_miner_is_inert() {
        // A 0-share miner never wins a slot: the run completes, the miner
        // earns nothing, and the distribution still validates.
        let config = DelayConfig::builder()
            .shares(vec![0.5, 0.5, 0.0])
            .delay(4.0)
            .blocks(10_000)
            .seed(3)
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        assert_eq!(r.report.block_count(), 10_000);
        assert_eq!(r.miner(2).total(), 0.0);
        assert_eq!(r.revenue_share(2), 0.0);
    }

    #[test]
    fn inert_fault_settings_stay_bit_identical() {
        // A plan that only reconfigures backoff (no loss, churn or
        // partitions) must not perturb a single bit of the run — the
        // fault pipeline is fully gated behind the activity flags.
        let base = strategic_run(
            sm1_table(0.35, 0.5, 12),
            0.35,
            0.5,
            2.0,
            RewardSchedule::ethereum(),
            15_000,
            19,
        );
        let plan = FaultPlan::builder().backoff(2.5, 40.0).build().unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.35, 0.65])
            .policy(0, sm1_table(0.35, 0.5, 12))
            .tie_gamma(0.5)
            .delay(2.0)
            .blocks(15_000)
            .seed(19)
            .schedule(RewardSchedule::ethereum())
            .faults(plan)
            .build()
            .unwrap();
        let faulty = DelaySimulation::new(config).run();
        assert_eq!(
            base.report.total_reward().to_bits(),
            faulty.report.total_reward().to_bits()
        );
        assert_eq!(
            base.miner(0).total().to_bits(),
            faulty.miner(0).total().to_bits()
        );
    }

    #[test]
    fn duplicate_delivery_of_every_release_is_idempotent() {
        // duplication = 1.0 re-delivers every block once to every
        // receiver. With a single strategist no hear-time ties can arise,
        // so the extra copies must be absorbed by the height guards with
        // zero effect on the outcome.
        let base = strategic_run(
            sm1_table(0.35, 0.5, 12),
            0.35,
            0.5,
            2.0,
            RewardSchedule::bitcoin(),
            12_000,
            29,
        );
        let plan = FaultPlan::builder().duplication(1.0).build().unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.35, 0.65])
            .policy(0, sm1_table(0.35, 0.5, 12))
            .tie_gamma(0.5)
            .delay(2.0)
            .blocks(12_000)
            .seed(29)
            .schedule(RewardSchedule::bitcoin())
            .faults(plan)
            .build()
            .unwrap();
        let doubled = DelaySimulation::new(config).run();
        assert_eq!(doubled.report.block_count(), 12_000);
        assert_eq!(
            base.report.total_reward().to_bits(),
            doubled.report.total_reward().to_bits(),
            "inert duplicates must not change the run"
        );
        assert_eq!(
            base.miner(0).total().to_bits(),
            doubled.miner(0).total().to_bits()
        );
    }

    #[test]
    fn lossy_jittery_network_completes_and_conserves() {
        let plan = FaultPlan::builder()
            .loss(0.3)
            .duplication(0.2)
            .jitter(3.0)
            .seed(5)
            .build()
            .unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.3, 0.3, 0.4])
            .policy(0, sm1_table(0.3, 0.5, 12))
            .tie_gamma(0.5)
            .delay(3.0)
            .blocks(15_000)
            .seed(7)
            .schedule(RewardSchedule::ethereum())
            .faults(plan)
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        assert_eq!(
            r.report.block_count(),
            15_000,
            "loss delays, never destroys"
        );
        let total: f64 = (0..3).map(|i| r.revenue_share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn all_strategists_crashed_window_recovers() {
        // Both strategists are down for the first half of the run: honest
        // mining proceeds alone (their slots thin out of the Poisson
        // race), and on recovery they resync via the forced-adopt path
        // and resume attacking. Deterministic per seed throughout.
        let mk = |seed| {
            let plan = FaultPlan::builder()
                .downtime(0, 0.0, 70_000.0)
                .downtime(1, 0.0, 70_000.0)
                .build()
                .unwrap();
            let config = DelayConfig::builder()
                .shares(vec![0.3, 0.3, 0.4])
                .policy(0, sm1_table(0.3, 0.5, 12))
                .policy(1, sm1_table(0.3, 0.5, 12))
                .tie_gamma(0.5)
                .delay(2.0)
                .blocks(10_000)
                .seed(seed)
                .schedule(RewardSchedule::bitcoin())
                .faults(plan)
                .build()
                .unwrap();
            DelaySimulation::new(config).run()
        };
        let r = mk(11);
        // Thinning: crashed slots mine nothing, so the tree is smaller
        // than the budget but everything in it is accounted.
        assert!(r.report.block_count() < 10_000);
        assert!(r.report.block_count() > 4_000);
        let total: f64 = (0..3).map(|i| r.revenue_share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The strategists still earn after recovery, but far below the
        // all-up baseline.
        assert!(r.revenue_share(0) > 0.0 && r.revenue_share(0) < 0.3);
        let r2 = mk(11);
        assert_eq!(r.report.total_reward(), r2.report.total_reward());
        assert_eq!(r.miner(0).total(), r2.miner(0).total());
    }

    #[test]
    fn crashed_forever_miner_mines_nothing() {
        let plan = FaultPlan::builder()
            .downtime(0, 0.0, f64::INFINITY)
            .build()
            .unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.4, 0.6])
            .delay(4.0)
            .blocks(8_000)
            .seed(13)
            .faults(plan)
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        assert_eq!(r.miner(0).total(), 0.0);
        let m = r.miner(0);
        assert_eq!(m.regular_blocks + m.uncle_blocks + m.stale_blocks, 0);
        assert!(r.report.block_count() < 8_000, "its slots thin out");
    }

    #[test]
    fn partition_that_never_heals_diverges() {
        // Two honest camps split for good halfway through the run: each
        // side keeps extending its own view, cross-deliveries stall
        // forever, and the closing fork choice picks one side — the other
        // side's blocks settle as orphans. Wide backoff keeps the eternal
        // retries cheap.
        let plan = FaultPlan::builder()
            .partition(26_000.0, f64::INFINITY, vec![0, 0, 1, 1])
            .backoff(13.0, 3_328.0)
            .build()
            .unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.3, 0.2, 0.3, 0.2])
            .delay(4.0)
            .blocks(4_000)
            .seed(15)
            .schedule(RewardSchedule::bitcoin())
            .faults(plan)
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        assert_eq!(r.report.block_count(), 4_000);
        // Both camps mine roughly half the run apiece after the split, so
        // a large fraction of all blocks must end up off-chain.
        assert!(
            r.orphan_rate() > 0.2,
            "a permanent split must orphan a camp: {}",
            r.orphan_rate()
        );
        let total: f64 = (0..4).map(|i| r.revenue_share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn healing_partition_reconverges() {
        // A timed split heals: the stalled cross-deliveries drain through
        // their backoff retries and both sides converge back onto one
        // chain — the orphan rate stays near the no-fault level instead
        // of the permanent-split level.
        let plan = FaultPlan::builder()
            .partition(13_000.0, 16_000.0, vec![0, 0, 1, 1])
            .build()
            .unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.3, 0.2, 0.3, 0.2])
            .delay(4.0)
            .blocks(4_000)
            .seed(15)
            .schedule(RewardSchedule::bitcoin())
            .faults(plan)
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        assert_eq!(r.report.block_count(), 4_000);
        assert!(
            r.orphan_rate() < 0.2,
            "a healed split reconverges: {}",
            r.orphan_rate()
        );
    }

    #[test]
    fn fault_runs_are_deterministic_and_fault_seed_sensitive() {
        let mk = |fault_seed| {
            let plan = FaultPlan::builder()
                .loss(0.2)
                .jitter(2.0)
                .churn(2_000.0, 300.0)
                .seed(fault_seed)
                .build()
                .unwrap();
            let config = DelayConfig::builder()
                .shares(vec![0.35, 0.65])
                .policy(0, sm1_table(0.35, 0.5, 12))
                .tie_gamma(0.5)
                .delay(2.0)
                .blocks(10_000)
                .seed(23)
                .schedule(RewardSchedule::bitcoin())
                .faults(plan)
                .build()
                .unwrap();
            DelaySimulation::new(config).run()
        };
        let (a, b, c) = (mk(1), mk(1), mk(2));
        assert_eq!(a.report.total_reward(), b.report.total_reward());
        assert_eq!(a.miner(0).total(), b.miner(0).total());
        assert_ne!(
            a.report.total_reward(),
            c.report.total_reward(),
            "the fault seed is a real axis of the schedule"
        );
    }

    #[test]
    fn trail_stubborn_table_plays_through() {
        // Policy-space tooling on top of PolicyTable::from_fn: a
        // trail-stubborn variant keeps mining one block behind instead of
        // adopting — legal everywhere, never solver-produced.
        let table = PolicyTable::from_fn3(
            0.4,
            0.5,
            RewardModel::Bitcoin,
            Scenario::RegularRate,
            10,
            0.4,
            |a, h, _| {
                if a > h && h >= 1 {
                    Action::Override
                } else if a + 1 >= h && a < 10 && h < 10 {
                    // Waiting is only legal strictly inside the
                    // truncation region; the boundary must resolve.
                    Action::Wait
                } else {
                    Action::Adopt
                }
            },
        );
        assert!(table.is_legal_everywhere(), "hand-written but fully legal");
        let r = strategic_run(table, 0.4, 0.5, 4.0, RewardSchedule::ethereum(), 20_000, 41);
        assert_eq!(r.report.block_count(), 20_000);
        let share = r.revenue_share(0);
        assert!((0.0..=1.0).contains(&share), "share {share}");
    }

    #[test]
    fn boundary_fallback_matches_an_explicitly_resolved_table() {
        // Regression for the truncation-boundary reconciliation, delay
        // engine side (the instant-broadcast engine has the twin test): a
        // table whose boundary slots still say "wait" and the same table
        // with those slots explicitly resolved to the solver's boundary
        // rule must replay bit-for-bit identically. A tiny truncation
        // walks the strategist onto the boundary constantly.
        let mk = |boundary_resolved: bool| {
            let table = PolicyTable::from_fn3(
                0.4,
                0.5,
                RewardModel::Bitcoin,
                Scenario::RegularRate,
                3,
                0.4,
                move |a, h, _| {
                    if boundary_resolved && (a >= 3 || h >= 3) {
                        Action::Adopt
                    } else {
                        Action::Wait
                    }
                },
            );
            strategic_run(table, 0.4, 0.5, 3.0, RewardSchedule::bitcoin(), 12_000, 77)
        };
        let (implicit, explicit) = (mk(false), mk(true));
        assert_eq!(
            implicit.miner(0).total().to_bits(),
            explicit.miner(0).total().to_bits()
        );
        assert_eq!(
            implicit.report.total_reward().to_bits(),
            explicit.report.total_reward().to_bits()
        );
        assert_eq!(implicit.report.stale_count, explicit.report.stale_count);
        assert_eq!(
            implicit.counters.released_blocks,
            explicit.counters.released_blocks
        );
    }

    #[test]
    fn counters_trace_a_zero_fault_run() {
        let r = run(vec![0.5, 0.5], 4.0, RewardSchedule::ethereum(), 9);
        let c = r.counters;
        // Without crash faults every Poisson slot mines and every honest
        // block is released; no fault path can fire.
        assert_eq!(c.mining_events, 40_000);
        assert_eq!(c.thinned_events, 0);
        assert_eq!(c.released_blocks, 40_000);
        assert_eq!(c.drops, 0);
        assert_eq!(c.regossip_attempts, 0);
        assert_eq!(c.duplicate_deliveries, 0);
        assert_eq!(c.partition_stalls, 0);
        assert_eq!(c.partition_heals, 0);
        assert_eq!(c.crash_misses + c.crash_resyncs, 0);
        assert!(c.deliveries > 0, "views promote released blocks");
        assert_eq!(c.orphan_blocks, r.report.uncle_count + r.report.stale_count);
    }

    #[test]
    fn counters_expose_fault_activity() {
        let plan = FaultPlan::builder()
            .loss(0.25)
            .jitter(2.0)
            .duplication(0.2)
            .churn(2_000.0, 300.0)
            .partition(13_000.0, 16_000.0, vec![0, 0, 1, 1])
            .seed(5)
            .build()
            .unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.35, 0.25, 0.2, 0.2])
            .policy(0, sm1_table(0.35, 0.5, 12))
            .tie_gamma(0.5)
            .delay(2.0)
            .blocks(10_000)
            .seed(23)
            .schedule(RewardSchedule::bitcoin())
            .faults(plan)
            .build()
            .unwrap();
        let c = DelaySimulation::new(config).run().counters;
        assert!(c.drops > 0, "25% loss must drop gossip");
        assert_eq!(
            c.regossip_attempts,
            c.drops + c.partition_stalls,
            "every drop or stall re-enqueues exactly one retry"
        );
        assert!(c.duplicate_deliveries > 0, "20% duplication fires");
        assert!(c.partition_stalls > 0, "the split stalls cross-deliveries");
        assert_eq!(c.partition_heals, 1, "one timed window closes once");
        assert!(c.thinned_events > 0, "churn thins mining slots");
        assert!(c.adopts + c.overrides + c.matches > 0, "policy acted");
    }

    #[test]
    fn counters_merge_sums_fieldwise() {
        let a = run(vec![0.5, 0.5], 4.0, RewardSchedule::ethereum(), 9).counters;
        let b = run(vec![0.5, 0.5], 4.0, RewardSchedule::ethereum(), 10).counters;
        let mut m = a;
        m.merge(&b);
        for (((key, av), (_, bv)), (_, mv)) in
            a.entries().into_iter().zip(b.entries()).zip(m.entries())
        {
            assert_eq!(mv, av + bv, "{key}");
        }
        let mut shard = seleth_obs::TelemetryShard::new(0);
        m.record_into(&mut shard);
        assert_eq!(shard.counter("delay.mining_events"), 80_000);
    }

    #[test]
    fn complete_uniform_topology_matches_uniform_engine_bitwise() {
        // The acceptance gate in miniature: a complete graph whose every
        // edge carries exactly the uniform delay folds to extra == 0.0
        // bitwise, so the graph engine must replay the uniform engine's
        // event order, RNG draws, and rewards exactly.
        let base = |topo: Option<Topology>| {
            let mut b = DelayConfig::builder();
            b.shares(vec![0.25; 4])
                .delay(6.0)
                .blocks(15_000)
                .seed(2)
                .schedule(RewardSchedule::ethereum());
            if let Some(t) = topo {
                b.topology(t);
            }
            DelaySimulation::new(b.build().unwrap()).run()
        };
        let uniform = base(None);
        let graph = base(Some(Topology::complete(4, 6.0).unwrap()));
        assert_eq!(
            uniform.report.total_reward().to_bits(),
            graph.report.total_reward().to_bits()
        );
        for i in 0..4 {
            assert_eq!(
                uniform.miner(i).total().to_bits(),
                graph.miner(i).total().to_bits(),
                "miner {i}"
            );
        }
        assert_eq!(uniform.report.stale_count, graph.report.stale_count);
        assert_eq!(uniform.report.uncle_count, graph.report.uncle_count);
        // Graph mode additionally reports gossip traffic the uniform
        // engine never tracks.
        assert_eq!(uniform.counters.gossip_sends, 0);
        assert!(graph.counters.gossip_sends > 0);
        assert_eq!(graph.counters.gossip_unreachable, 0);
        assert!(graph.counters.gossip_hops_1 > 0, "complete graph is 1 hop");
        assert_eq!(graph.counters.gossip_hops_2, 0);
    }

    #[test]
    fn strategic_complete_topology_matches_uniform_engine_bitwise() {
        // Same gate with a strategist in the mix: the private-fork release
        // machinery and tie races must also see identical arrival times.
        let base = |topo: Option<Topology>| {
            let mut b = DelayConfig::builder();
            b.shares(vec![0.35, 0.65])
                .policy(0, sm1_table(0.35, 0.5, 12))
                .tie_gamma(0.5)
                .delay(2.0)
                .blocks(10_000)
                .seed(17)
                .schedule(RewardSchedule::bitcoin());
            if let Some(t) = topo {
                b.topology(t);
            }
            DelaySimulation::new(b.build().unwrap()).run()
        };
        let uniform = base(None);
        let graph = base(Some(Topology::complete(2, 2.0).unwrap()));
        assert_eq!(
            uniform.report.total_reward().to_bits(),
            graph.report.total_reward().to_bits()
        );
        assert_eq!(
            uniform.miner(0).total().to_bits(),
            graph.miner(0).total().to_bits()
        );
        assert_eq!(uniform.report.stale_count, graph.report.stale_count);
    }

    #[test]
    fn topology_miner_count_must_match_shares() {
        let err = DelayConfig::builder()
            .shares(vec![0.5, 0.5])
            .topology(Topology::complete(3, 2.0).unwrap())
            .build();
        assert!(matches!(err, Err(SimError::InvalidTopology { .. })));
    }

    #[test]
    fn peripheral_miner_orphans_more_than_well_connected() {
        // Star with one distant spoke: the peripheral miner hears blocks
        // late and loses more of its work than the well-connected peers.
        let topo = Topology::star_relay(&[1.0, 1.0, 1.0, 12.0]).unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.25; 4])
            .delay(6.0)
            .blocks(30_000)
            .seed(11)
            .schedule(RewardSchedule::bitcoin())
            .topology(topo)
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        let near: f64 = (0..3).map(|i| r.stale_fraction(i)).sum::<f64>() / 3.0;
        let far = r.stale_fraction(3);
        assert!(
            far > near,
            "peripheral miner stale {far:.4} should exceed core {near:.4}"
        );
        assert!(
            r.counters.gossip_hops_2 > 0,
            "star topology routes through the relay hub"
        );
    }

    #[test]
    fn eclipsed_victim_loses_revenue() {
        let topo = Topology::eclipse(4, 3, 1.0, 20.0).unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.25; 4])
            .delay(6.0)
            .blocks(30_000)
            .seed(11)
            .schedule(RewardSchedule::bitcoin())
            .topology(topo)
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        let inner: f64 = (0..3).map(|i| r.advantage(i)).sum::<f64>() / 3.0;
        assert!(
            r.advantage(3) < inner,
            "eclipsed miner advantage {:.4} should trail the inner clique's {inner:.4}",
            r.advantage(3)
        );
    }

    #[test]
    fn graph_mode_composes_with_partition_cuts() {
        // A two-cluster graph plus a timed partition over the matching
        // groups: during the window cross-cluster deliveries stall and
        // re-enqueue, exactly like the uniform engine's group partitions.
        let plan = FaultPlan::builder()
            .partition(10_000.0, 14_000.0, vec![0, 0, 1, 1])
            .seed(5)
            .build()
            .unwrap();
        let config = DelayConfig::builder()
            .shares(vec![0.25; 4])
            .delay(4.0)
            .blocks(20_000)
            .seed(11)
            .schedule(RewardSchedule::ethereum())
            .topology(Topology::two_clusters(2, 2, 1.5, 6.0).unwrap())
            .faults(plan)
            .build()
            .unwrap();
        let r = DelaySimulation::new(config).run();
        assert!(r.counters.partition_stalls > 0, "the cut must stall gossip");
        assert_eq!(r.counters.partition_heals, 1, "one window closes once");
        let baseline = {
            let config = DelayConfig::builder()
                .shares(vec![0.25; 4])
                .delay(4.0)
                .blocks(20_000)
                .seed(11)
                .schedule(RewardSchedule::ethereum())
                .topology(Topology::two_clusters(2, 2, 1.5, 6.0).unwrap())
                .build()
                .unwrap();
            DelaySimulation::new(config).run()
        };
        assert!(
            r.orphan_rate() > baseline.orphan_rate(),
            "a timed cut must raise the fork rate: {} vs {}",
            r.orphan_rate(),
            baseline.orphan_rate()
        );
    }
}
